file(REMOVE_RECURSE
  "CMakeFiles/power_test.dir/power/area_model_test.cc.o"
  "CMakeFiles/power_test.dir/power/area_model_test.cc.o.d"
  "CMakeFiles/power_test.dir/power/energy_model_test.cc.o"
  "CMakeFiles/power_test.dir/power/energy_model_test.cc.o.d"
  "power_test"
  "power_test.pdb"
  "power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
