file(REMOVE_RECURSE
  "CMakeFiles/queueing_test.dir/queueing/analytic_test.cc.o"
  "CMakeFiles/queueing_test.dir/queueing/analytic_test.cc.o.d"
  "CMakeFiles/queueing_test.dir/queueing/queue_sim_test.cc.o"
  "CMakeFiles/queueing_test.dir/queueing/queue_sim_test.cc.o.d"
  "queueing_test"
  "queueing_test.pdb"
  "queueing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
