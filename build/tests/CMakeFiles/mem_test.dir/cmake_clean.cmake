file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/cache_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/cache_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/memory_system_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/memory_system_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/prefetcher_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/prefetcher_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/tlb_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/tlb_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
