file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/calibration_test.cc.o"
  "CMakeFiles/core_test.dir/core/calibration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/designs_test.cc.o"
  "CMakeFiles/core_test.dir/core/designs_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scenario_test.cc.o"
  "CMakeFiles/core_test.dir/core/scenario_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/smt_sweep_test.cc.o"
  "CMakeFiles/core_test.dir/core/smt_sweep_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
