file(REMOVE_RECURSE
  "CMakeFiles/branch_test.dir/branch/predictor_test.cc.o"
  "CMakeFiles/branch_test.dir/branch/predictor_test.cc.o.d"
  "branch_test"
  "branch_test.pdb"
  "branch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
