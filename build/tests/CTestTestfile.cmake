# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/branch_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
