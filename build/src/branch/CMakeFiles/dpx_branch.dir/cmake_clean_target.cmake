file(REMOVE_RECURSE
  "libdpx_branch.a"
)
