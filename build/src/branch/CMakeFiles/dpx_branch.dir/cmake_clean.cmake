file(REMOVE_RECURSE
  "CMakeFiles/dpx_branch.dir/predictor.cc.o"
  "CMakeFiles/dpx_branch.dir/predictor.cc.o.d"
  "libdpx_branch.a"
  "libdpx_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
