# Empty compiler generated dependencies file for dpx_branch.
# This may be replaced when dependencies are built.
