file(REMOVE_RECURSE
  "libdpx_core.a"
)
