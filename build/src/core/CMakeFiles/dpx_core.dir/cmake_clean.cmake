file(REMOVE_RECURSE
  "CMakeFiles/dpx_core.dir/calibration.cc.o"
  "CMakeFiles/dpx_core.dir/calibration.cc.o.d"
  "CMakeFiles/dpx_core.dir/designs.cc.o"
  "CMakeFiles/dpx_core.dir/designs.cc.o.d"
  "CMakeFiles/dpx_core.dir/scenario.cc.o"
  "CMakeFiles/dpx_core.dir/scenario.cc.o.d"
  "CMakeFiles/dpx_core.dir/smt_sweep.cc.o"
  "CMakeFiles/dpx_core.dir/smt_sweep.cc.o.d"
  "libdpx_core.a"
  "libdpx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
