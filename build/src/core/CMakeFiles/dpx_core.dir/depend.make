# Empty dependencies file for dpx_core.
# This may be replaced when dependencies are built.
