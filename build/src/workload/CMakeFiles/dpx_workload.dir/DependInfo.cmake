
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/dpx_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/dpx_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/microservice.cc" "src/workload/CMakeFiles/dpx_workload.dir/microservice.cc.o" "gcc" "src/workload/CMakeFiles/dpx_workload.dir/microservice.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/dpx_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/dpx_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dpx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dpx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dpx_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
