file(REMOVE_RECURSE
  "libdpx_workload.a"
)
