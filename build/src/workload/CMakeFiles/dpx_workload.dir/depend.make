# Empty dependencies file for dpx_workload.
# This may be replaced when dependencies are built.
