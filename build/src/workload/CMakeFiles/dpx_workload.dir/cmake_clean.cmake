file(REMOVE_RECURSE
  "CMakeFiles/dpx_workload.dir/catalog.cc.o"
  "CMakeFiles/dpx_workload.dir/catalog.cc.o.d"
  "CMakeFiles/dpx_workload.dir/microservice.cc.o"
  "CMakeFiles/dpx_workload.dir/microservice.cc.o.d"
  "CMakeFiles/dpx_workload.dir/synthetic.cc.o"
  "CMakeFiles/dpx_workload.dir/synthetic.cc.o.d"
  "libdpx_workload.a"
  "libdpx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
