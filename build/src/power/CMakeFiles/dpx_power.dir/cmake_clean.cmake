file(REMOVE_RECURSE
  "CMakeFiles/dpx_power.dir/area_model.cc.o"
  "CMakeFiles/dpx_power.dir/area_model.cc.o.d"
  "CMakeFiles/dpx_power.dir/energy_model.cc.o"
  "CMakeFiles/dpx_power.dir/energy_model.cc.o.d"
  "libdpx_power.a"
  "libdpx_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
