# Empty dependencies file for dpx_power.
# This may be replaced when dependencies are built.
