file(REMOVE_RECURSE
  "libdpx_power.a"
)
