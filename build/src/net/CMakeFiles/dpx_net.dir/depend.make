# Empty dependencies file for dpx_net.
# This may be replaced when dependencies are built.
