file(REMOVE_RECURSE
  "CMakeFiles/dpx_net.dir/nic_model.cc.o"
  "CMakeFiles/dpx_net.dir/nic_model.cc.o.d"
  "libdpx_net.a"
  "libdpx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
