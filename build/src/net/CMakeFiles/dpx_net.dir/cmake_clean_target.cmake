file(REMOVE_RECURSE
  "libdpx_net.a"
)
