file(REMOVE_RECURSE
  "CMakeFiles/dpx_mem.dir/cache.cc.o"
  "CMakeFiles/dpx_mem.dir/cache.cc.o.d"
  "CMakeFiles/dpx_mem.dir/memory_system.cc.o"
  "CMakeFiles/dpx_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/dpx_mem.dir/prefetcher.cc.o"
  "CMakeFiles/dpx_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/dpx_mem.dir/tlb.cc.o"
  "CMakeFiles/dpx_mem.dir/tlb.cc.o.d"
  "libdpx_mem.a"
  "libdpx_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
