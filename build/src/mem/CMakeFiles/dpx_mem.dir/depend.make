# Empty dependencies file for dpx_mem.
# This may be replaced when dependencies are built.
