file(REMOVE_RECURSE
  "libdpx_mem.a"
)
