
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/dpx_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/dpx_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/dpx_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/dpx_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/mem/CMakeFiles/dpx_mem.dir/prefetcher.cc.o" "gcc" "src/mem/CMakeFiles/dpx_mem.dir/prefetcher.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/dpx_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/dpx_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
