file(REMOVE_RECURSE
  "CMakeFiles/dpx_cpu.dir/core_engine.cc.o"
  "CMakeFiles/dpx_cpu.dir/core_engine.cc.o.d"
  "CMakeFiles/dpx_cpu.dir/hsmt.cc.o"
  "CMakeFiles/dpx_cpu.dir/hsmt.cc.o.d"
  "CMakeFiles/dpx_cpu.dir/virtual_context.cc.o"
  "CMakeFiles/dpx_cpu.dir/virtual_context.cc.o.d"
  "libdpx_cpu.a"
  "libdpx_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
