file(REMOVE_RECURSE
  "libdpx_cpu.a"
)
