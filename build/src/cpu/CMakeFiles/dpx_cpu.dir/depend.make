# Empty dependencies file for dpx_cpu.
# This may be replaced when dependencies are built.
