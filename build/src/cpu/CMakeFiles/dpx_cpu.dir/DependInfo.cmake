
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core_engine.cc" "src/cpu/CMakeFiles/dpx_cpu.dir/core_engine.cc.o" "gcc" "src/cpu/CMakeFiles/dpx_cpu.dir/core_engine.cc.o.d"
  "/root/repo/src/cpu/hsmt.cc" "src/cpu/CMakeFiles/dpx_cpu.dir/hsmt.cc.o" "gcc" "src/cpu/CMakeFiles/dpx_cpu.dir/hsmt.cc.o.d"
  "/root/repo/src/cpu/virtual_context.cc" "src/cpu/CMakeFiles/dpx_cpu.dir/virtual_context.cc.o" "gcc" "src/cpu/CMakeFiles/dpx_cpu.dir/virtual_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dpx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dpx_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
