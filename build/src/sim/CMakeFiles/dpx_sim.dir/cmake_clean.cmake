file(REMOVE_RECURSE
  "CMakeFiles/dpx_sim.dir/distributions.cc.o"
  "CMakeFiles/dpx_sim.dir/distributions.cc.o.d"
  "CMakeFiles/dpx_sim.dir/event_queue.cc.o"
  "CMakeFiles/dpx_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/dpx_sim.dir/rng.cc.o"
  "CMakeFiles/dpx_sim.dir/rng.cc.o.d"
  "CMakeFiles/dpx_sim.dir/slot_calendar.cc.o"
  "CMakeFiles/dpx_sim.dir/slot_calendar.cc.o.d"
  "CMakeFiles/dpx_sim.dir/stats.cc.o"
  "CMakeFiles/dpx_sim.dir/stats.cc.o.d"
  "libdpx_sim.a"
  "libdpx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
