# Empty dependencies file for dpx_sim.
# This may be replaced when dependencies are built.
