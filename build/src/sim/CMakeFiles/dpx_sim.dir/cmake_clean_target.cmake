file(REMOVE_RECURSE
  "libdpx_sim.a"
)
