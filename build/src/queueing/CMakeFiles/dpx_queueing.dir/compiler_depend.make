# Empty compiler generated dependencies file for dpx_queueing.
# This may be replaced when dependencies are built.
