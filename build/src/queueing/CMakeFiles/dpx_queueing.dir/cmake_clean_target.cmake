file(REMOVE_RECURSE
  "libdpx_queueing.a"
)
