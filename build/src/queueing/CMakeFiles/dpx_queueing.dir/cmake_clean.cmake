file(REMOVE_RECURSE
  "CMakeFiles/dpx_queueing.dir/analytic.cc.o"
  "CMakeFiles/dpx_queueing.dir/analytic.cc.o.d"
  "CMakeFiles/dpx_queueing.dir/queue_sim.cc.o"
  "CMakeFiles/dpx_queueing.dir/queue_sim.cc.o.d"
  "libdpx_queueing.a"
  "libdpx_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
