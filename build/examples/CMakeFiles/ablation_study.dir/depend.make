# Empty dependencies file for ablation_study.
# This may be replaced when dependencies are built.
