file(REMOVE_RECURSE
  "CMakeFiles/ablation_study.dir/ablation_study.cpp.o"
  "CMakeFiles/ablation_study.dir/ablation_study.cpp.o.d"
  "ablation_study"
  "ablation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
