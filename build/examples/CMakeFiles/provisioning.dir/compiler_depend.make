# Empty compiler generated dependencies file for provisioning.
# This may be replaced when dependencies are built.
