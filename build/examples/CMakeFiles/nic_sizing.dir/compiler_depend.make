# Empty compiler generated dependencies file for nic_sizing.
# This may be replaced when dependencies are built.
