file(REMOVE_RECURSE
  "CMakeFiles/nic_sizing.dir/nic_sizing.cpp.o"
  "CMakeFiles/nic_sizing.dir/nic_sizing.cpp.o.d"
  "nic_sizing"
  "nic_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
