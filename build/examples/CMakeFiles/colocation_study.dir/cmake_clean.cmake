file(REMOVE_RECURSE
  "CMakeFiles/colocation_study.dir/colocation_study.cpp.o"
  "CMakeFiles/colocation_study.dir/colocation_study.cpp.o.d"
  "colocation_study"
  "colocation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
