# Empty dependencies file for colocation_study.
# This may be replaced when dependencies are built.
