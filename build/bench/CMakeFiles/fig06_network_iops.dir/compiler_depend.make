# Empty compiler generated dependencies file for fig06_network_iops.
# This may be replaced when dependencies are built.
