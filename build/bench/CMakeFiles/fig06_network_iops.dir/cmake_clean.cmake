file(REMOVE_RECURSE
  "CMakeFiles/fig06_network_iops.dir/fig06_network_iops.cc.o"
  "CMakeFiles/fig06_network_iops.dir/fig06_network_iops.cc.o.d"
  "fig06_network_iops"
  "fig06_network_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_network_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
