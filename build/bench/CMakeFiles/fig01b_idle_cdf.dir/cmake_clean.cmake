file(REMOVE_RECURSE
  "CMakeFiles/fig01b_idle_cdf.dir/fig01b_idle_cdf.cc.o"
  "CMakeFiles/fig01b_idle_cdf.dir/fig01b_idle_cdf.cc.o.d"
  "fig01b_idle_cdf"
  "fig01b_idle_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_idle_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
