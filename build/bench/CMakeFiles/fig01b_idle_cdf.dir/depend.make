# Empty dependencies file for fig01b_idle_cdf.
# This may be replaced when dependencies are built.
