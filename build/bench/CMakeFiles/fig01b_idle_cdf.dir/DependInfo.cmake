
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig01b_idle_cdf.cc" "bench/CMakeFiles/fig01b_idle_cdf.dir/fig01b_idle_cdf.cc.o" "gcc" "bench/CMakeFiles/fig01b_idle_cdf.dir/fig01b_idle_cdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dpx_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dpx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dpx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dpx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/dpx_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/dpx_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dpx_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dpx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
