file(REMOVE_RECURSE
  "CMakeFiles/fig05f_batch_stp.dir/fig05f_batch_stp.cc.o"
  "CMakeFiles/fig05f_batch_stp.dir/fig05f_batch_stp.cc.o.d"
  "fig05f_batch_stp"
  "fig05f_batch_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05f_batch_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
