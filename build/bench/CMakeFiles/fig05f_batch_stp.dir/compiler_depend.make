# Empty compiler generated dependencies file for fig05f_batch_stp.
# This may be replaced when dependencies are built.
