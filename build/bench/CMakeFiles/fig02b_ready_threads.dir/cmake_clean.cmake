file(REMOVE_RECURSE
  "CMakeFiles/fig02b_ready_threads.dir/fig02b_ready_threads.cc.o"
  "CMakeFiles/fig02b_ready_threads.dir/fig02b_ready_threads.cc.o.d"
  "fig02b_ready_threads"
  "fig02b_ready_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02b_ready_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
