# Empty dependencies file for fig02b_ready_threads.
# This may be replaced when dependencies are built.
