# Empty dependencies file for fig01c_smt_scaling.
# This may be replaced when dependencies are built.
