file(REMOVE_RECURSE
  "CMakeFiles/fig01c_smt_scaling.dir/fig01c_smt_scaling.cc.o"
  "CMakeFiles/fig01c_smt_scaling.dir/fig01c_smt_scaling.cc.o.d"
  "fig01c_smt_scaling"
  "fig01c_smt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01c_smt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
