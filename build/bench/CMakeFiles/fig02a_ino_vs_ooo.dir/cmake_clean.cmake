file(REMOVE_RECURSE
  "CMakeFiles/fig02a_ino_vs_ooo.dir/fig02a_ino_vs_ooo.cc.o"
  "CMakeFiles/fig02a_ino_vs_ooo.dir/fig02a_ino_vs_ooo.cc.o.d"
  "fig02a_ino_vs_ooo"
  "fig02a_ino_vs_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02a_ino_vs_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
