# Empty dependencies file for fig02a_ino_vs_ooo.
# This may be replaced when dependencies are built.
