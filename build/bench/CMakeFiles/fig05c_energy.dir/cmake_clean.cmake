file(REMOVE_RECURSE
  "CMakeFiles/fig05c_energy.dir/fig05c_energy.cc.o"
  "CMakeFiles/fig05c_energy.dir/fig05c_energy.cc.o.d"
  "fig05c_energy"
  "fig05c_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05c_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
