# Empty compiler generated dependencies file for fig05c_energy.
# This may be replaced when dependencies are built.
