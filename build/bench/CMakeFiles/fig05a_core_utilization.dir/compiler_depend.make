# Empty compiler generated dependencies file for fig05a_core_utilization.
# This may be replaced when dependencies are built.
