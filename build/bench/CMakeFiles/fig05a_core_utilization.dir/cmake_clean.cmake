file(REMOVE_RECURSE
  "CMakeFiles/fig05a_core_utilization.dir/fig05a_core_utilization.cc.o"
  "CMakeFiles/fig05a_core_utilization.dir/fig05a_core_utilization.cc.o.d"
  "fig05a_core_utilization"
  "fig05a_core_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_core_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
