# Empty compiler generated dependencies file for table2_area_frequency.
# This may be replaced when dependencies are built.
