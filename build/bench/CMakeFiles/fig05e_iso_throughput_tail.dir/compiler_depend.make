# Empty compiler generated dependencies file for fig05e_iso_throughput_tail.
# This may be replaced when dependencies are built.
