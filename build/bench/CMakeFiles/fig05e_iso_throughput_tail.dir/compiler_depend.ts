# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05e_iso_throughput_tail.
