file(REMOVE_RECURSE
  "CMakeFiles/fig05e_iso_throughput_tail.dir/fig05e_iso_throughput_tail.cc.o"
  "CMakeFiles/fig05e_iso_throughput_tail.dir/fig05e_iso_throughput_tail.cc.o.d"
  "fig05e_iso_throughput_tail"
  "fig05e_iso_throughput_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05e_iso_throughput_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
