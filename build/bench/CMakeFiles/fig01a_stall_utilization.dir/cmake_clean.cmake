file(REMOVE_RECURSE
  "CMakeFiles/fig01a_stall_utilization.dir/fig01a_stall_utilization.cc.o"
  "CMakeFiles/fig01a_stall_utilization.dir/fig01a_stall_utilization.cc.o.d"
  "fig01a_stall_utilization"
  "fig01a_stall_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_stall_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
