# Empty dependencies file for fig01a_stall_utilization.
# This may be replaced when dependencies are built.
