# Empty compiler generated dependencies file for fig05d_tail_latency.
# This may be replaced when dependencies are built.
