file(REMOVE_RECURSE
  "CMakeFiles/fig05d_tail_latency.dir/fig05d_tail_latency.cc.o"
  "CMakeFiles/fig05d_tail_latency.dir/fig05d_tail_latency.cc.o.d"
  "fig05d_tail_latency"
  "fig05d_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05d_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
