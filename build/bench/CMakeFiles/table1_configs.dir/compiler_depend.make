# Empty compiler generated dependencies file for table1_configs.
# This may be replaced when dependencies are built.
