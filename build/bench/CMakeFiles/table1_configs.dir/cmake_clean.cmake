file(REMOVE_RECURSE
  "CMakeFiles/table1_configs.dir/table1_configs.cc.o"
  "CMakeFiles/table1_configs.dir/table1_configs.cc.o.d"
  "table1_configs"
  "table1_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
