# Empty dependencies file for dpx_bench_common.
# This may be replaced when dependencies are built.
