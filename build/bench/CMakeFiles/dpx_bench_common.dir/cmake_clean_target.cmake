file(REMOVE_RECURSE
  "libdpx_bench_common.a"
)
