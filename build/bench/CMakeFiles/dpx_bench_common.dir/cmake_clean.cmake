file(REMOVE_RECURSE
  "CMakeFiles/dpx_bench_common.dir/fig5_common.cc.o"
  "CMakeFiles/dpx_bench_common.dir/fig5_common.cc.o.d"
  "libdpx_bench_common.a"
  "libdpx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
