file(REMOVE_RECURSE
  "CMakeFiles/fig05b_performance_density.dir/fig05b_performance_density.cc.o"
  "CMakeFiles/fig05b_performance_density.dir/fig05b_performance_density.cc.o.d"
  "fig05b_performance_density"
  "fig05b_performance_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_performance_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
