# Empty dependencies file for fig05b_performance_density.
# This may be replaced when dependencies are built.
