/**
 * @file
 * Replicated tail-latency engine in action: estimate the p99 sojourn
 * of a microsecond-scale M/M/1 queue at several replica counts and
 * show what replication changes — and what it provably doesn't.
 *
 * The engine splits one run's batch budget across R statistically
 * independent streams (seeds derived from the cell seed and the
 * replica index, never from scheduling order), runs them on the
 * shared thread-pool budget, and merges fixed-memory quantile
 * sketches in replica-index order. Three properties to observe in
 * the output:
 *
 *  1. R = 1 is the legacy engine bit-for-bit (exact per-sample
 *     reservoir, same stream as every release before replication).
 *  2. For R > 1 the result is a pure function of (config, R):
 *     rerunning — with any DPX_THREADS — reproduces it bitwise.
 *  3. The p99 stopping rule pools batches across replicas, so
 *     converged runs finish in fewer rounds; on a multi-core host
 *     the rounds also run concurrently.
 */

#include <chrono>
#include <cstdio>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"

using namespace duplexity;

int
main()
{
    const double service_us = 1.0; // paper-scale "killer" microsecond
    const double load = 0.85;

    QueueSimConfig base =
        makeMg1(makeExponential(service_us * 1e-6), load, 7);
    base.warmup_requests = 20'000;
    base.batch_size = 100'000;
    base.min_batches = 8;
    base.max_batches = 64;

    double analytic_p99 =
        mm1SojournQuantile(load / (service_us * 1e-6),
                           1.0 / (service_us * 1e-6), 0.99) *
        1e6;
    std::printf("M/M/1, %.1f us service, %.0f%% load; analytic p99 "
                "= %.2f us\n\n",
                service_us, load * 100.0, analytic_p99);
    std::printf("%4s %12s %12s %10s %10s %6s\n", "R", "p99 (us)",
                "mean (us)", "requests", "wall (s)", "conv");

    for (std::uint32_t r : {1u, 2u, 4u, 8u}) {
        QueueSimConfig cfg = base;
        cfg.replicas = r;
        auto t0 = std::chrono::steady_clock::now();
        QueueSimResult res = runQueueSim(cfg);
        double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::printf("%4u %12.3f %12.3f %10llu %10.3f %6s%s\n", r,
                    res.p99Sojourn() * 1e6,
                    res.meanSojourn() * 1e6,
                    static_cast<unsigned long long>(res.completed),
                    wall, res.converged ? "yes" : "no",
                    res.sojourn.exact() ? "  (exact samples)"
                                        : "  (merged sketch)");
    }

    std::printf("\nRerun under different DPX_THREADS settings: the "
                "per-R rows reproduce bitwise.\n");
    return 0;
}
