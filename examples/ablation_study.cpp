/**
 * @file
 * Ablation study over Duplexity's design choices (the knobs DESIGN.md
 * calls out):
 *
 *  1. resume penalty   — the ~50-cycle L0 register spill vs slower
 *                        microcode-style eviction (Section III-B4),
 *  2. state segregation — separate filler TLBs/predictor + remote
 *                        memory path vs MorphCore-style sharing,
 *  3. morph-in delay   — how quickly fillers may enter a hole,
 *  4. borrowing        — HSMT pool vs 8 private filler threads.
 *
 * Each variant reports master service time (the QoS side) and master-
 * core utilization (the efficiency side), so the table shows which
 * mechanism buys which property.
 */

#include <cstdio>
#include <vector>

#include "core/scenario.hh"
#include "sim/parallel_sweep.hh"

using namespace duplexity;

namespace
{

struct Variant
{
    const char *name;
    DesignConfig config;
};

} // namespace

int
main()
{
    const MicroserviceKind service = MicroserviceKind::FlannLL;
    const double load = 0.5;

    DesignConfig duplexity = makeDesign(DesignKind::Duplexity);

    std::vector<Variant> variants;
    variants.push_back({"Duplexity (as proposed)", duplexity});

    DesignConfig slow_resume = duplexity;
    slow_resume.resume_penalty = 250;
    variants.push_back({"resume 250 cycles", slow_resume});

    DesignConfig very_slow_resume = duplexity;
    very_slow_resume.resume_penalty = 1000;
    variants.push_back({"resume 1000 cycles", very_slow_resume});

    DesignConfig no_segregation = duplexity;
    no_segregation.filler_path = FillerPath::Local;
    no_segregation.separate_filler_state = false;
    variants.push_back({"no state segregation", no_segregation});

    DesignConfig lazy_morph = duplexity;
    lazy_morph.morph_in_delay = 500;
    variants.push_back({"morph-in delay 500", lazy_morph});

    DesignConfig no_borrowing = duplexity;
    no_borrowing.hsmt_borrowing = false;
    no_borrowing.private_fillers = 8;
    variants.push_back({"private fillers (no pool)", no_borrowing});

    std::printf("Duplexity ablations: %s @ %.0f%% load\n\n",
                toString(service), 100.0 * load);
    std::printf("%-28s %12s %10s %12s\n", "variant", "svc mean(us)",
                "util(%)", "filler ops");

    // Variants are independent cells; run them on the sweep engine
    // (each seeded by its variant index — a stable identity here,
    // since the list is a fixed program constant).
    std::vector<ScenarioResult> results(variants.size());
    parallelSweep(variants.size(), [&](std::size_t i) {
        ScenarioConfig cfg;
        cfg.design = DesignKind::Duplexity;
        cfg.design_override = variants[i].config;
        cfg.service = service;
        cfg.load = load;
        cfg.measure_cycles = measureCyclesFromEnv(2'000'000);
        cfg.seed = deriveCellSeed(42, {i});
        results[i] = runScenario(cfg);
    });

    const double base_svc = results.front().service_us.mean();
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const ScenarioResult &res = results[i];
        std::printf("%-28s %9.2f%s %10.1f %12llu\n",
                    variants[i].name, res.service_us.mean(),
                    res.service_us.mean() > 1.15 * base_svc ? "(!)"
                                                            : "   ",
                    100.0 * res.utilization,
                    static_cast<unsigned long long>(res.filler_ops));
    }

    std::printf(
        "\n(!) marks QoS regressions beyond 15%% of the proposed "
        "design.\nExpected reading: slow resume and lost state "
        "segregation inflate service time\n(the mechanisms of "
        "Sections III-B2/B4 are what protect the tail); a lazy\n"
        "morph-in or a small private filler set mostly costs "
        "utilization instead.\n");
    return 0;
}
