/**
 * @file
 * Quickstart: build one Duplexity dyad, run the FLANN-LL microservice
 * at 50% load with 32 graph-analytics filler threads, and print the
 * headline metrics next to the Baseline and SMT alternatives.
 *
 * This is the 60-second tour of the library: runScenario() is the
 * cycle-level stage, runQueueSim() is the BigHouse-style tail stage.
 */

#include <cstdio>
#include <vector>

#include "core/scenario.hh"
#include "queueing/queue_sim.hh"
#include "sim/parallel_sweep.hh"

using namespace duplexity;

int
main()
{
    std::printf("Duplexity quickstart: FLANN-LL @ 50%% load\n");
    std::printf("%-16s %12s %14s %12s %12s\n", "design",
                "util(%)", "svc mean(us)", "p99(us)", "batch STP");

    // The three design points are independent cells: run them on
    // the parallel sweep engine (DPX_THREADS workers), print after.
    const std::vector<DesignKind> designs{
        DesignKind::Baseline, DesignKind::Smt,
        DesignKind::Duplexity};
    std::vector<ScenarioResult> results(designs.size());
    parallelSweep(designs.size(), [&](std::size_t i) {
        ScenarioConfig cfg;
        cfg.design = designs[i];
        cfg.service = MicroserviceKind::FlannLL;
        cfg.load = 0.5;
        cfg.measure_cycles = measureCyclesFromEnv(2'000'000);
        results[i] = runScenario(cfg);
    });

    for (const ScenarioResult &res : results) {
        // Tail latency via the BigHouse-style M/G/1 stage fed with
        // the measured service-time population.
        double p99_us = 0.0;
        if (res.service_us.count() > 8) {
            QueueSimConfig qcfg;
            qcfg.interarrival =
                makeExponential(1.0 / res.offered_rps);
            qcfg.service = makeScaled(
                makeEmpirical(res.service_us.samples()),
                1e-6); // us -> seconds
            qcfg.max_batches = 50;
            QueueSimResult q = runQueueSim(qcfg);
            p99_us = toMicros(q.p99Sojourn());
        }

        std::printf("%-16s %12.1f %14.2f %12.2f %12.2f\n",
                    toString(res.design), 100.0 * res.utilization,
                    res.service_us.mean(), p99_us, res.batch_stp);
    }
    return 0;
}
