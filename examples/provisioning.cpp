/**
 * @file
 * Virtual-context provisioning: how many batch threads should the
 * OS give a dyad?
 *
 * Section IV reasons with the binomial ready-thread model and lands
 * on 32 contexts per dyad for the most pessimistic stall profile.
 * This example reproduces that reasoning analytically, then
 * validates it by sweeping the pool size in the full dyad simulation
 * and watching utilization saturate.
 */

#include <cstdio>
#include <vector>

#include "core/scenario.hh"
#include "queueing/analytic.hh"

using namespace duplexity;

int
main()
{
    std::printf("Step 1: analytic sizing (Figure 2(b) model)\n");
    std::printf("%24s %10s\n", "stall probability",
                "contexts for 90%% supply of 8 lanes");
    for (double p : {0.1, 0.3, 0.4, 0.5}) {
        std::printf("%23.0f%% %10u\n", 100.0 * p,
                    virtualContextsNeeded(p, 8, 0.90));
    }
    std::printf("\nGraph fillers stall ~1us per ~1.5us of compute "
                "(p ~ 0.4), and a dyad may\nrun up to 16 lanes "
                "(8 lender + 8 borrowed), so Section IV provisions "
                "32\ncontexts for the pessimistic case.\n\n");

    std::printf("Step 2: simulated validation (Duplexity dyad, "
                "McRouter @ 50%%)\n");
    std::printf("%10s %10s %14s %12s\n", "contexts", "util(%)",
                "batch ops/s(M)", "swaps");
    double prev_util = 0.0;
    for (std::uint32_t contexts : {8u, 12u, 16u, 24u, 32u, 48u}) {
        ScenarioConfig cfg;
        cfg.design = DesignKind::Duplexity;
        cfg.service = MicroserviceKind::McRouter;
        cfg.load = 0.5;
        cfg.pool_contexts = contexts;
        cfg.measure_cycles = measureCyclesFromEnv(1'500'000);
        ScenarioResult res = runScenario(cfg);
        std::printf("%10u %10.1f %14.1f %12llu\n", contexts,
                    100.0 * res.utilization,
                    res.batch_ops_per_sec / 1e6,
                    static_cast<unsigned long long>(
                        res.filler_swaps));
        prev_util = res.utilization;
    }
    (void)prev_util;
    std::printf("\nUtilization should saturate around the analytic "
                "sizing; beyond it, extra\ncontexts only lengthen "
                "the run queue (Section IV's over-provisioning "
                "caveat).\n");
    return 0;
}
