/**
 * @file
 * Virtual-context provisioning: how many batch threads should the
 * OS give a dyad?
 *
 * Section IV reasons with the binomial ready-thread model and lands
 * on 32 contexts per dyad for the most pessimistic stall profile.
 * This example reproduces that reasoning analytically, then
 * validates it by sweeping the pool size in the full dyad simulation
 * and watching utilization saturate.
 */

#include <cstdio>
#include <vector>

#include "core/scenario.hh"
#include "queueing/analytic.hh"
#include "sim/parallel_sweep.hh"

using namespace duplexity;

int
main()
{
    std::printf("Step 1: analytic sizing (Figure 2(b) model)\n");
    std::printf("%24s %10s\n", "stall probability",
                "contexts for 90%% supply of 8 lanes");
    for (double p : {0.1, 0.3, 0.4, 0.5}) {
        std::printf("%23.0f%% %10u\n", 100.0 * p,
                    virtualContextsNeeded(p, 8, 0.90));
    }
    std::printf("\nGraph fillers stall ~1us per ~1.5us of compute "
                "(p ~ 0.4), and a dyad may\nrun up to 16 lanes "
                "(8 lender + 8 borrowed), so Section IV provisions "
                "32\ncontexts for the pessimistic case.\n\n");

    std::printf("Step 2: simulated validation (Duplexity dyad, "
                "McRouter @ 50%%)\n");
    std::printf("%10s %10s %14s %12s\n", "contexts", "util(%)",
                "batch ops/s(M)", "swaps");
    // Pool sizes are independent cells: sweep them in parallel with
    // seeds derived from the pool size, not the submission order.
    const std::vector<std::uint32_t> pool_sizes{8, 12, 16, 24, 32,
                                                48};
    std::vector<ScenarioResult> results(pool_sizes.size());
    parallelSweep(pool_sizes.size(), [&](std::size_t i) {
        ScenarioConfig cfg;
        cfg.design = DesignKind::Duplexity;
        cfg.service = MicroserviceKind::McRouter;
        cfg.load = 0.5;
        cfg.pool_contexts = pool_sizes[i];
        cfg.measure_cycles = measureCyclesFromEnv(1'500'000);
        cfg.seed = deriveCellSeed(42, {pool_sizes[i]});
        results[i] = runScenario(cfg);
    });
    for (std::size_t i = 0; i < pool_sizes.size(); ++i) {
        const ScenarioResult &res = results[i];
        std::printf("%10u %10.1f %14.1f %12llu\n", pool_sizes[i],
                    100.0 * res.utilization,
                    res.batch_ops_per_sec / 1e6,
                    static_cast<unsigned long long>(
                        res.filler_swaps));
    }
    std::printf("\nUtilization should saturate around the analytic "
                "sizing; beyond it, extra\ncontexts only lengthen "
                "the run queue (Section IV's over-provisioning "
                "caveat).\n");
    return 0;
}
