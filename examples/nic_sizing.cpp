/**
 * @file
 * Interconnect sizing (the Section VIII case study as a tool): given
 * a workload and load, how many Duplexity dyads can share one NIC
 * port, and which constraint (IOPS or bandwidth) binds?
 */

#include <algorithm>
#include <cstdio>

#include "core/grid.hh"
#include "core/scenario.hh"
#include "net/nic_model.hh"

using namespace duplexity;

int
main()
{
    NicModel fdr; // FDR 4x: 56 Gbit/s, 90M ops/s
    const double bytes_per_op = 64.0; // single-cache-line RDMA

    std::printf("NIC sizing for Duplexity dyads on one FDR 4x "
                "port\n\n");
    std::printf("%-10s %5s %14s %12s %12s %10s\n", "workload",
                "load", "remote Mops/s", "IOPS util(%)",
                "BW util(%)", "dyads/port");

    // The (service x load) cells are a reduced evaluation grid: run
    // them through the same parallel engine as the Figure 5 family.
    GridSpec spec;
    spec.designs = {DesignKind::Duplexity};
    spec.loads = {0.3, 0.7};
    spec.measure_cycles = measureCyclesFromEnv(1'200'000);
    Grid grid = runGrid(spec);

    double worst = 0.0;
    for (const GridCell &cell : grid.cells) {
        const ScenarioResult &res = cell.result;
        double ops = res.remote_ops_per_sec;
        worst =
            std::max(worst, fdr.utilization(ops, bytes_per_op));
        std::printf("%-10s %4.0f%% %14.2f %12.2f %12.3f %10u\n",
                    toString(cell.service), 100.0 * cell.load,
                    ops / 1e6, 100.0 * fdr.iopsUtilization(ops),
                    100.0 * fdr.bandwidthUtilization(ops,
                                                     bytes_per_op),
                    fdr.dyadsPerPort(ops, bytes_per_op));
    }

    std::printf("\nWorst per-dyad port utilization %.2f%% -> at "
                "least %u dyads per port.\n",
                100.0 * worst, static_cast<unsigned>(1.0 / worst));
    std::printf("64B remote ops are IOPS-limited, as Section VIII "
                "observes; the paper's\nbound was 7.1%% per dyad "
                "(14 dyads/port).\n");
    return 0;
}
