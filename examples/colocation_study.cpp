/**
 * @file
 * Co-location study: should you co-locate batch work with a
 * latency-critical microservice via SMT, or borrow threads the
 * Duplexity way?
 *
 * For each design point this example reports the three quantities a
 * capacity planner trades off — master-core utilization, batch
 * progress (STP), and the microservice's p99 latency through the
 * queueing stage — for one chosen microservice and load.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/grid.hh"
#include "core/scenario.hh"
#include "queueing/queue_sim.hh"
#include "sim/parallel_sweep.hh"

using namespace duplexity;

namespace
{

MicroserviceKind
parseService(const char *name)
{
    for (MicroserviceKind kind : allMicroservices()) {
        if (std::strcmp(name, toString(kind)) == 0)
            return kind;
    }
    std::fprintf(stderr, "unknown service '%s', using McRouter\n",
                 name);
    return MicroserviceKind::McRouter;
}

double
p99Us(const ScenarioResult &res)
{
    if (res.service_us.count() < 16)
        return 0.0;
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1.0 / res.offered_rps);
    cfg.service = makeScaled(
        makeEmpirical(res.service_us.samples()), 1e-6);
    cfg.max_batches = 60;
    QueueSimResult queue = runQueueSim(cfg);
    return toMicros(queue.p99Sojourn());
}

} // namespace

int
main(int argc, char **argv)
{
    MicroserviceKind service =
        argc > 1 ? parseService(argv[1]) : MicroserviceKind::McRouter;
    double load = argc > 2 ? std::atof(argv[2]) : 0.5;

    std::printf("Co-location study: %s @ %.0f%% load, 32 batch "
                "virtual contexts per dyad\n\n",
                toString(service), 100.0 * load);
    std::printf("%-16s %9s %12s %12s %12s %10s\n", "design",
                "util(%)", "svc mean(us)", "p99(us)", "batch STP",
                "win frac");

    // One cell per design, fanned out on the parallel sweep engine
    // with identity-derived seeds (order- and thread-count-proof).
    const std::vector<DesignKind> designs = allDesigns();
    std::vector<ScenarioResult> results(designs.size());
    parallelSweep(designs.size(), [&](std::size_t i) {
        ScenarioConfig cfg;
        cfg.design = designs[i];
        cfg.service = service;
        cfg.load = load;
        cfg.measure_cycles = measureCyclesFromEnv(2'000'000);
        cfg.seed = gridCellSeed(42, service, load, designs[i]);
        results[i] = runScenario(cfg);
    });

    double base_p99 = 0.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const ScenarioResult &res = results[i];
        double p99 = p99Us(res);
        if (designs[i] == DesignKind::Baseline)
            base_p99 = p99;
        std::printf("%-16s %9.1f %12.2f %9.1f%s %12.2f %10.2f\n",
                    toString(designs[i]), 100.0 * res.utilization,
                    res.service_us.mean(), p99,
                    p99 > 1.5 * base_p99 ? "(!)" : "   ",
                    res.batch_stp, res.filler_window_fraction);
    }
    std::printf("\n(!) marks tail-latency blowups beyond 1.5x the "
                "baseline: the QoS violations\nthat make naive SMT "
                "co-location unattractive (Section II-B).\n");
    return 0;
}
