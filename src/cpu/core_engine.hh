/**
 * @file
 * Timestamp-based pipeline model for one core of a dyad.
 *
 * Each micro-op is processed exactly once; structural limits (fetch/
 * issue/commit bandwidth, ROB/LSQ occupancy, in-order scoreboards) are
 * enforced with slot calendars and commit-time ring buffers, in the
 * style of interval/one-pass core models. The same engine executes
 *
 *  - a single OoO master-thread (Baseline, master mode),
 *  - several OoO SMT threads (SMT/SMT+ designs, Figure 1(c) sweeps),
 *  - up to eight InO HSMT lanes (lender-core, filler mode),
 *
 * because a Lane carries its own issue mode, memory path, branch unit,
 * calendars, and occupancy caps. That is exactly the morphable-core
 * idea: mode switches rebind lanes, they do not change the engine.
 */

#ifndef DPX_CPU_CORE_ENGINE_HH
#define DPX_CPU_CORE_ENGINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/isa.hh"
#include "sim/slot_calendar.hh"
#include "mem/memory_system.hh"
#include "sim/types.hh"
#include "workload/op_block.hh"

namespace duplexity
{

/** Per-lane issue discipline. */
enum class IssueMode : std::uint8_t
{
    OutOfOrder,
    InOrder,
};

/** The branch hardware a lane predicts with. */
struct BranchUnit
{
    BranchPredictor *predictor = nullptr;
    Btb *btb = nullptr;
    ReturnAddressStack *ras = nullptr;
};

/** Shared structural parameters of one core (Table I). */
struct CoreEngineConfig
{
    std::uint32_t fetch_width = 4;
    std::uint32_t issue_width = 4;
    std::uint32_t commit_width = 4;
    std::uint32_t rob_entries = 144;
    std::uint32_t lq_entries = 48;
    std::uint32_t sq_entries = 32;
    /** Fetch-to-dispatch depth. */
    Cycle frontend_depth_ooo = 10;
    Cycle frontend_depth_ino = 4;
    /** Extra redirect cycles beyond branch resolution. */
    Cycle redirect_penalty_ooo = 4;
    Cycle redirect_penalty_ino = 2;
    /** Hit latency hidden by the pipelined front-end. */
    Cycle fetch_hidden = 3;
};

/** How a lane binds to the engine and the rest of the machine. */
struct LaneConfig
{
    IssueMode mode = IssueMode::OutOfOrder;
    MemPath path;
    BranchUnit branch;
    /** Calendars; normally the core's shared ones, or private capped
     *  calendars for de-prioritized SMT+ co-runners. */
    SlotCalendar *fetch_cal = nullptr;
    SlotCalendar *issue_cal = nullptr;
    SlotCalendar *commit_cal = nullptr;
    /** Per-lane in-flight limit (ROB share / InO scoreboard). */
    std::uint32_t inflight_cap = 144;
    /** Participate in the core's shared ROB occupancy. */
    bool use_shared_rob = true;
    /** Participate in the core's shared LQ/SQ occupancy. */
    bool use_shared_lsq = true;
    /** Fetch-ahead limit in micro-ops. Must exceed
     *  frontend_depth x width or it throttles steady-state flow. */
    std::uint32_t fetch_queue = 64;
};

/** Completion report for one processed micro-op. */
struct OpOutcome
{
    Cycle fetch_time = 0;
    Cycle issue_time = 0;
    Cycle done_time = 0;
    Cycle commit_time = 0;
    bool remote = false;
    float stall_us = 0.0f;
    bool end_of_request = false;
    bool mispredicted = false;
};

/**
 * Completion report for one processed block of micro-ops
 * (CoreEngine::processBlock).
 */
struct BlockOutcome
{
    /** Ops consumed from the block (the caller resumes at this
     *  offset). */
    std::uint32_t processed = 0;
    /** Commits with window_lo <= commit_time < window_hi. */
    std::uint64_t committed_in_window = 0;
    /** True when the block stopped early because the last processed
     *  op was remote (the caller applies the µs stall, which changes
     *  the fetch-horizon condition for every later op). */
    bool stopped_remote = false;
    /** Outcome of the last processed op (valid iff processed > 0). */
    OpOutcome last;
};

/** Running totals for one lane. */
struct LaneStats
{
    std::uint64_t ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t remote_ops = 0;
};

/**
 * One hardware thread context bound to a CoreEngine. Lanes are
 * re-bindable: the HSMT scheduler swaps virtual contexts through them
 * and the master-core rebinds them on a mode morph.
 */
class Lane
{
  public:
    Lane() = default;

    void configure(const LaneConfig &config);
    const LaneConfig &config() const { return config_; }

    /** Earliest cycle this lane could fetch its next micro-op. */
    Cycle nextFetch() const { return next_fetch_; }

    /** Delay the lane's next fetch to at least @p cycle. */
    void stallUntil(Cycle cycle);

    /**
     * Clear inter-op history (dependencies, fetch line) — required
     * when a different thread's context occupies the lane.
     */
    void resetHistory(Cycle start);

    const LaneStats &stats() const { return stats_; }
    void resetStats() { stats_ = LaneStats{}; }

  private:
    friend class CoreEngine;

    LaneConfig config_;

    Cycle next_fetch_ = 0;
    Cycle last_issue_ = 0;
    Cycle last_commit_ = 0;
    Addr last_fetch_line_ = ~Addr(0);
    std::uint64_t op_index_ = 0;
    /** Ring cursors tracking op_index_ modulo each ring's size —
     *  wrapped by compare instead of divided every op. */
    std::size_t inflight_pos_ = 0;
    std::size_t fq_pos_ = 0;

    static constexpr std::size_t dep_ring_size = 64; // power of two
    std::array<Cycle, dep_ring_size> done_ring_{};
    std::vector<Cycle> inflight_ring_; // inflight_cap
    std::vector<Cycle> dispatch_ring_; // fetch_queue

    LaneStats stats_;
};

class CoreEngine
{
  public:
    explicit CoreEngine(const CoreEngineConfig &config);

    const CoreEngineConfig &config() const { return config_; }

    SlotCalendar &fetchCal() { return fetch_cal_; }
    SlotCalendar &issueCal() { return issue_cal_; }
    SlotCalendar &commitCal() { return commit_cal_; }

    /**
     * Run @p op through the modeled pipeline on @p lane; updates the
     * lane's timestamps and the core's shared occupancy state.
     */
    OpOutcome processOp(Lane &lane, const MicroOp &op);

    /**
     * Run up to @p count pre-drawn ops through the pipeline on
     * @p lane, with exact per-op cycle semantics (bit-identical to a
     * processOp loop — proven by tests/cpu/block_step_test.cc) but
     * amortized dispatch and stat updates. Processing stops when the
     * ops run out, when the lane's next fetch reaches
     * @p fetch_horizon (checked before each op, like the scenario
     * loops), or right after a remote op (stopped_remote — the
     * caller's stall changes the horizon condition for later ops).
     * Commits in [@p window_lo, @p window_hi) are counted.
     *
     * Only legal when the lane does not interleave with other lanes
     * between ops (single-lane measurement loops): batching an HSMT
     * round-robin would reorder shared-calendar reservations.
     */
    BlockOutcome processBlock(Lane &lane, const MicroOp *ops,
                              std::uint32_t count, Cycle fetch_horizon,
                              Cycle window_lo, Cycle window_hi);

    /**
     * SoA form: process @p block's ops from @p offset onward, reading
     * the lanes directly (no AoS intermediate). Same semantics and
     * stop conditions as the pointer overload, bit-identical outcomes
     * (tests/cpu/soa_block_step_test.cc). With
     * setSoaPipelineEnabled(false) the block is materialized into a
     * MicroOp array and run through the legacy pointer overload — the
     * differential wall's forced-legacy reference, mirroring the
     * fast-path contract of DESIGN.md §4b.
     */
    BlockOutcome processBlock(Lane &lane, const OpBlock &block,
                              std::uint32_t offset, Cycle fetch_horizon,
                              Cycle window_lo, Cycle window_hi);

    void setSoaPipelineEnabled(bool enabled) { soa_enabled_ = enabled; }
    bool soaPipelineEnabled() const { return soa_enabled_; }

    /**
     * Forced-legacy switch for the split-phase block engine
     * (DESIGN.md §4b.2). Enabled (default), processBlock runs a pure
     * precompute pass over the block (fetch-line deltas, class/latency
     * partition, dep-presence hints) and a tight serial commit pass
     * with lane scalars held in registers. Disabled, both overloads
     * fall back to the per-op stepOp loop — the bit-identity
     * reference the split-phase differential tests compare against.
     * Independent of the SoA switch: soa controls how block lanes are
     * *read* (direct vs materialized), split-phase controls how the
     * pipeline walk is *executed*.
     */
    void setSplitPhaseEnabled(bool enabled)
    {
        split_phase_enabled_ = enabled;
    }
    bool splitPhaseEnabled() const { return split_phase_enabled_; }

    /** Ops retired through the split-phase commit pass (fast-path
     *  counter; bench telemetry, not simulated state). */
    std::uint64_t splitPhaseOps() const { return split_phase_ops_; }

    /** Ops that entered processBlock through the direct SoA lane
     *  view — zero when setSoaPipelineEnabled(false) forces the
     *  materializing legacy path (fast-path counter; bench
     *  telemetry, not simulated state). */
    std::uint64_t soaBlockOps() const { return soa_block_ops_; }

    /** Build a LaneConfig pre-wired to this core's shared calendars. */
    LaneConfig defaultLaneConfig(IssueMode mode);

    void reset();

  private:
    /** Shared pipeline body; branch/op stat increments go to
     *  @p stats (processBlock batches them into a local). Forced
     *  inline into its two callers (both in core_engine.cc): as an
     *  out-of-line function every op pays a call plus an sret
     *  OpOutcome round-trip, which measurably slows both loops. */
#if defined(__GNUC__)
    [[gnu::always_inline]]
#endif
    inline OpOutcome stepOp(Lane &lane, const MicroOp &op,
                            LaneStats &stats);

    /** Legacy per-op walk shared by both overloads when the
     *  split-phase engine is forced off. */
    BlockOutcome stepOpLoop(Lane &lane, const MicroOp *ops,
                            std::uint32_t count, Cycle fetch_horizon,
                            Cycle window_lo, Cycle window_hi);

    /** Split-phase engine: a pure precompute pass over the block's
     *  lanes followed by a tight serial commit pass; exact stepOp
     *  cycle semantics. @p View abstracts SoA lanes vs AoS pointers so
     *  the two public overloads share one commit pass and cannot
     *  drift. */
    template <class View>
    BlockOutcome splitPhaseBlock(Lane &lane, const View &view,
                                 std::uint32_t count,
                                 Cycle fetch_horizon, Cycle window_lo,
                                 Cycle window_hi);

    CoreEngineConfig config_;
    SlotCalendar fetch_cal_;
    SlotCalendar issue_cal_;
    SlotCalendar commit_cal_;

    std::vector<Cycle> rob_ring_;
    std::vector<Cycle> lq_ring_;
    std::vector<Cycle> sq_ring_;
    /** Wrapped cursors (the ring sizes are not powers of two). */
    std::size_t rob_pos_ = 0;
    std::size_t lq_pos_ = 0;
    std::size_t sq_pos_ = 0;

    /** Forced-legacy switch for the SoA processBlock overload. */
    bool soa_enabled_ = true;
    /** Forced-legacy switch for the split-phase block engine. */
    bool split_phase_enabled_ = true;
    /** Ops retired through the split-phase commit pass. */
    std::uint64_t split_phase_ops_ = 0;
    /** Ops stepped straight off the SoA lane view. */
    std::uint64_t soa_block_ops_ = 0;
};

} // namespace duplexity

#endif // DPX_CPU_CORE_ENGINE_HH
