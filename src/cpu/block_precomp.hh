/**
 * @file
 * Split-phase block precompute: pure per-op hints over SoA/AoS lanes.
 *
 * Phase 1 of the split-phase step engine (DESIGN.md §4b.2) derives,
 * for every op in a block, its dispatch code, fixed execution latency,
 * fetch-line transition, and dependency flag — all functions of the
 * block's lanes alone, never of simulated state.  PR 7 kept this as
 * scalar loops inside core_engine.cc; it now lives here so the
 * lane-vectorized variant, the differential tests, and the benchmark
 * can all see the same definitions.
 *
 * Two implementations share the contract:
 *  - precomputeBlockScalar: the PR 7 loops, verbatim — the forced
 *    fallback and the differential reference;
 *  - precomputeBlockSimd: 16 byte-lanes per step for code/lat/dep
 *    (the fetch-line compare stays scalar — see the in-body note),
 *    built on sim/simd.hh.  The lookup tables are replaced by gather-free
 *    branch-lane arithmetic (vector compares + masked selects) that is
 *    bit-identical to the table walk — proven by static_asserts below
 *    and field-by-field by simd_precompute_diff_test.
 *
 * Dispatch: the SoaLaneView overload of precomputeBlock() picks the
 * vector body behind simd::simdEnabled(); the AoS view has no
 * contiguous class lane to load, so it always runs the scalar loops.
 * Vector loops cover whole lane groups and fall back to a scalar tail,
 * so nothing reads or writes past `count` lanes (views may window the
 * interior of a block — see sim/simd.hh on masked tails).
 */

#ifndef DPX_CPU_BLOCK_PRECOMP_HH
#define DPX_CPU_BLOCK_PRECOMP_HH

#include <cstdint>

#include "cpu/isa.hh"
#include "sim/simd.hh"
#include "workload/op_block.hh"

namespace duplexity
{

/*
 * Split-phase dispatch codes: the commit pass switches on a
 * precomputed byte instead of re-deriving the class partition per op,
 * and simple-ALU ops carry their execution latency with them.
 */
enum : std::uint8_t
{
    kCodeSimple = 0, //!< IntAlu/IntMul/FpAlu: done = issue + lat
    kCodeLoad,
    kCodeStore,
    kCodeBranch,
    kCodeCall,
    kCodeReturn,
    kCodeRemote,
};

// The code/latency tables index by the OpClass underlying value; pin
// the enum layout and the latencies they bake in.
static_assert(static_cast<int>(OpClass::IntAlu) == 0 &&
                  static_cast<int>(OpClass::IntMul) == 1 &&
                  static_cast<int>(OpClass::FpAlu) == 2 &&
                  static_cast<int>(OpClass::Load) == 3 &&
                  static_cast<int>(OpClass::Store) == 4 &&
                  static_cast<int>(OpClass::Branch) == 5 &&
                  static_cast<int>(OpClass::Call) == 6 &&
                  static_cast<int>(OpClass::Return) == 7 &&
                  static_cast<int>(OpClass::Remote) == 8,
              "split-phase code table assumes this OpClass layout");
static_assert(execLatency(OpClass::IntAlu) == 1 &&
                  execLatency(OpClass::IntMul) == 3 &&
                  execLatency(OpClass::FpAlu) == 4,
              "split-phase latency table diverged from execLatency");

constexpr std::uint8_t kCodeOf[9] = {
    kCodeSimple, kCodeSimple, kCodeSimple, kCodeLoad,  kCodeStore,
    kCodeBranch, kCodeCall,   kCodeReturn, kCodeRemote,
};
constexpr std::uint8_t kLatOf[9] = {1, 3, 4, 0, 0, 0, 0, 0, 0};

// The vector body re-derives the tables arithmetically:
//   code(c) = (c > 2) ? c - 2 : 0      (kCodeLoad == 1, ... Remote == 6)
//   lat(c)  = [c==0]*1 | [c==1]*3 | [c==2]*4
// Pin the equivalence so a table edit cannot silently diverge.
static_assert(kCodeOf[0] == 0 && kCodeOf[1] == 0 && kCodeOf[2] == 0 &&
                  kCodeOf[3] == 1 && kCodeOf[4] == 2 && kCodeOf[5] == 3 &&
                  kCodeOf[6] == 4 && kCodeOf[7] == 5 && kCodeOf[8] == 6,
              "vector code derivation (c>2 ? c-2 : 0) no longer matches "
              "kCodeOf");
static_assert(kLatOf[0] == 1 && kLatOf[1] == 3 && kLatOf[2] == 4 &&
                  kLatOf[3] == 0 && kLatOf[4] == 0 && kLatOf[5] == 0 &&
                  kLatOf[6] == 0 && kLatOf[7] == 0 && kLatOf[8] == 0,
              "vector latency derivation no longer matches kLatOf");

/** Pure per-op hints produced by the precompute pass. Everything in
 *  here is a function of the block's lanes alone — no simulated state
 *  is read or written, so computing hints for ops the commit pass
 *  never reaches (fetch-horizon stop, remote stop) is harmless.  The
 *  arrays are vector-aligned so full-width 16-byte stores from the
 *  lane body never straddle more cache lines than they must; capacity
 *  is a whole number of the widest lane group (256 = 16 * 16). */
struct BlockPrecomp
{
    alignas(16) std::uint8_t code[kOpBlockCapacity];
    alignas(16) std::uint8_t lat[kOpBlockCapacity];
    /** pc line (pc >> 6) differs from the previous op's line. */
    alignas(16) bool new_line[kOpBlockCapacity];
    alignas(16) bool has_dep[kOpBlockCapacity];
};

static_assert(kOpBlockCapacity % 16 == 0,
              "vector precompute assumes whole byte-lane groups");
static_assert(sizeof(bool) == 1,
              "byte-lane flag stores assume 1-byte bool");

/** SoA lane reader: direct OpBlock lane pointers. */
struct SoaLaneView
{
    const OpClass *cls;
    const Addr *pc;
    const Addr *mem_addr;
    const bool *taken;
    const std::uint8_t *dep1;
    const std::uint8_t *dep2;
    const float *stall_us;
    const bool *eor;

    OpClass clsAt(std::uint32_t i) const { return cls[i]; }
    Addr pcAt(std::uint32_t i) const { return pc[i]; }
    Addr memAddrAt(std::uint32_t i) const { return mem_addr[i]; }
    bool takenAt(std::uint32_t i) const { return taken[i]; }
    std::uint8_t dep1At(std::uint32_t i) const { return dep1[i]; }
    std::uint8_t dep2At(std::uint32_t i) const { return dep2[i]; }
    float stallUsAt(std::uint32_t i) const { return stall_us[i]; }
    bool eorAt(std::uint32_t i) const { return eor[i]; }
};

/** AoS reader: the pointer overload's MicroOp array, consumed by the
 *  same commit pass so the two paths cannot drift. */
struct AosOpView
{
    const MicroOp *ops;

    OpClass clsAt(std::uint32_t i) const { return ops[i].cls; }
    Addr pcAt(std::uint32_t i) const { return ops[i].pc; }
    Addr memAddrAt(std::uint32_t i) const { return ops[i].mem_addr; }
    bool takenAt(std::uint32_t i) const { return ops[i].taken; }
    std::uint8_t dep1At(std::uint32_t i) const { return ops[i].dep1; }
    std::uint8_t dep2At(std::uint32_t i) const { return ops[i].dep2; }
    float stallUsAt(std::uint32_t i) const { return ops[i].stall_us; }
    bool eorAt(std::uint32_t i) const
    {
        return ops[i].end_of_request;
    }
};

/** Precompute pass, scalar body: branch-light and pure — it reads
 *  only block lanes, never lane/core state (DESIGN.md §4b.2).  This
 *  is the forced-scalar fallback and the differential reference. */
template <class View>
inline void
precomputeBlockScalar(const View &view, std::uint32_t count,
                      BlockPrecomp &pre)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto c = static_cast<std::uint8_t>(view.clsAt(i));
        pre.code[i] = kCodeOf[c];
        pre.lat[i] = kLatOf[c];
        pre.has_dep[i] = (view.dep1At(i) | view.dep2At(i)) != 0;
    }
    if (count > 0)
        pre.new_line[0] = true;
    for (std::uint32_t i = 1; i < count; ++i)
        pre.new_line[i] = (view.pcAt(i) >> 6) != (view.pcAt(i - 1) >> 6);
}

/** Lane-vectorized precompute over contiguous SoA lanes: 16 byte
 *  lanes per step for code/lat/dep with a scalar tail; the
 *  register-carried fetch-line loop stays scalar (see in-body note).
 *  Integer-exact, so bit-identical to the scalar body. */
inline void
precomputeBlockSimd(const SoaLaneView &view, std::uint32_t count,
                    BlockPrecomp &pre)
{
    // OpClass is a uint8_t enum and bool is one byte; byte-lane loads
    // and stores through uint8_t (a character type) alias freely.
    const std::uint8_t *cls =
        reinterpret_cast<const std::uint8_t *>(view.cls);
    std::uint8_t *has_dep = reinterpret_cast<std::uint8_t *>(pre.has_dep);
    std::uint8_t *new_line =
        reinterpret_cast<std::uint8_t *>(pre.new_line);

    const simd::U8x16 zero = simd::splat8(0);
    const simd::U8x16 one = simd::splat8(1);
    const simd::U8x16 two = simd::splat8(2);
    const simd::U8x16 three = simd::splat8(3);
    const simd::U8x16 four = simd::splat8(4);

    std::uint32_t i = 0;
    for (; i + 16 <= count; i += 16) {
        const simd::U8x16 c = simd::loadU8x16(cls + i);
        // code = (c > 2) ? c - 2 : 0 — equivalence to kCodeOf pinned
        // by the static_asserts above.
        const simd::U8x16 code = (c - two) & simd::gtMask(c, two);
        // lat = [c==0]*1 | [c==1]*3 | [c==2]*4 ≡ kLatOf[c].
        const simd::U8x16 lat = (simd::eqMask(c, zero) & one) |
                                (simd::eqMask(c, one) & three) |
                                (simd::eqMask(c, two) & four);
        const simd::U8x16 dep = simd::loadU8x16(view.dep1 + i) |
                                simd::loadU8x16(view.dep2 + i);
        simd::storeU8x16(pre.code + i, code);
        simd::storeU8x16(pre.lat + i, lat);
        simd::storeU8x16(has_dep + i, simd::neZeroMask(dep) & one);
    }
    for (; i < count; ++i) {
        const auto c = static_cast<std::uint8_t>(view.clsAt(i));
        pre.code[i] = kCodeOf[c];
        pre.lat[i] = kLatOf[c];
        pre.has_dep[i] = (view.dep1At(i) | view.dep2At(i)) != 0;
    }

    // The fetch-line compare stays scalar by measurement, not
    // oversight: 2 u64 lanes per step needs two overlapping unaligned
    // pc loads per pair (16 B/op of pure re-read traffic), while this
    // loop carries prev_line in a register and loads each pc once —
    // the vectorized variant measured ~2x slower on the same blocks.
    if (count > 0) {
        pre.new_line[0] = true;
        Addr prev_line = view.pcAt(0) >> 6;
        for (std::uint32_t j = 1; j < count; ++j) {
            const Addr line = view.pcAt(j) >> 6;
            new_line[j] = line != prev_line;
            prev_line = line;
        }
    }
}

/** Generic entry: AoS (and any future view without contiguous byte
 *  lanes) runs the scalar body. */
template <class View>
inline void
precomputeBlock(const View &view, std::uint32_t count, BlockPrecomp &pre)
{
    precomputeBlockScalar(view, count, pre);
}

/** SoA entry: lane-vectorized behind the runtime SIMD switch. */
inline void
precomputeBlock(const SoaLaneView &view, std::uint32_t count,
                BlockPrecomp &pre)
{
    if (simd::simdEnabled())
        precomputeBlockSimd(view, count, pre);
    else
        precomputeBlockScalar(view, count, pre);
}

} // namespace duplexity

#endif // DPX_CPU_BLOCK_PRECOMP_HH
