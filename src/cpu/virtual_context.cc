#include "cpu/virtual_context.hh"

#include <limits>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

void
VirtualContextPool::add(VirtualContext *ctx)
{
    DPX_CHECK(ctx != nullptr) << " — null virtual context";
    queue_.push_back(ctx);
}

VirtualContext *
VirtualContextPool::acquire(Cycle now, Cycle *available_at)
{
    Cycle earliest = std::numeric_limits<Cycle>::max();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        VirtualContext *ctx = *it;
        if (ctx->readyTime() <= now) {
            queue_.erase(it);
            ++stats_.acquires;
            return ctx;
        }
        earliest = std::min(earliest, ctx->readyTime());
    }
    ++stats_.empty_acquires;
    if (available_at)
        *available_at = earliest;
    return nullptr;
}

Cycle
VirtualContextPool::earliestReady() const
{
    Cycle earliest = std::numeric_limits<Cycle>::max();
    for (const VirtualContext *ctx : queue_)
        earliest = std::min(earliest, ctx->readyTime());
    return earliest;
}

void
VirtualContextPool::release(VirtualContext *ctx)
{
    DPX_CHECK(ctx != nullptr) << " — null virtual context";
    ++stats_.releases;
    queue_.push_back(ctx);
}

} // namespace duplexity
