/**
 * @file
 * The HSMT execution unit: N physical in-order lanes time-multiplexed
 * by virtual contexts from a (possibly shared) run queue.
 *
 * Used in two places:
 *  - the lender-core, where it runs continuously, and
 *  - the master-core's filler mode, where it runs only inside
 *    "windows" — the µs-scale holes opened by master-thread stalls
 *    and idle periods.
 *
 * Scheduling policy (Section IV): FIFO round-robin virtual contexts,
 * swap on µs-stall, 100 µs anti-starvation quantum.
 */

#ifndef DPX_CPU_HSMT_HH
#define DPX_CPU_HSMT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "cpu/core_engine.hh"
#include "cpu/virtual_context.hh"
#include "sim/types.hh"

namespace duplexity
{

struct HsmtConfig
{
    std::uint32_t num_lanes = 8;
    /** Cycles to dump/load one context's architectural state. */
    Cycle swap_cost = 64;
    /** Anti-starvation preemption quantum in cycles (100 µs). */
    Cycle quantum = 340000;
    /** Re-poll interval while waiting for a ready context. */
    Cycle poll_interval = 200;
};

/** Observer for committed filler/batch micro-ops. */
class CommitSink
{
  public:
    virtual ~CommitSink() = default;

    virtual void onCommit(const VirtualContext &ctx,
                          const OpOutcome &outcome) = 0;
};

class HsmtUnit
{
  public:
    static constexpr Cycle never = std::numeric_limits<Cycle>::max();

    HsmtUnit(CoreEngine &engine, VirtualContextPool &pool,
             const HsmtConfig &config, Frequency frequency);

    /** Bind all lanes using @p proto (mode forced to InOrder). */
    void configureLanes(const LaneConfig &proto);

    /** Bind one lane individually (e.g. a private RAS per lane). */
    void configureLane(std::uint32_t index, const LaneConfig &proto);

    /**
     * Allow lanes to run in [start, end). Contexts still held from a
     * previous window resume; opening with end == never makes the
     * unit free-running (lender-core).
     */
    void openWindow(Cycle start, Cycle end);

    /**
     * Shut the window at @p at: every running context is squashed and
     * returned, ready, to the run-queue tail (its architectural state
     * was spilled through the L0/backing store).
     */
    void closeWindow(Cycle at);

    /** Earliest cycle at which some lane can act (never if asleep). */
    Cycle nextTime() const;

    /**
     * Advance the most-behind lane by one action (context swap or one
     * micro-op). @return false when no lane can act.
     */
    bool advanceOne(CommitSink *sink);

    /**
     * Advance every action with time strictly below @p bound, then
     * return the unit's next actionable time. Equivalent to calling
     * advanceOne while nextTime() < bound, but with one merged
     * best-lane scan per action, rescan-free streaks while the same
     * lane stays strictly earliest, and — when every lane is empty
     * (all contexts parked on µs stalls or the pool drained) — an
     * event-driven fast-forward that jumps the polling lanes' wake
     * times to the earliest cycle a poll could succeed instead of
     * stepping through the dead polls one by one. Skipped polls are
     * charged to the same PoolStats::empty_acquires counter the
     * stepped schedule increments, so all counters stay
     * field-identical (tests/cpu/hsmt_fast_forward_test.cc).
     * setFastForwardEnabled(false) forces the legacy per-action loop.
     */
    Cycle advanceUntil(Cycle bound, CommitSink *sink);

    /** Drive the unit until nextTime() passes @p until. */
    void runUntil(Cycle until, CommitSink *sink);

    /** Forced-legacy switch for the event-driven fast-forward (the
     *  merged-scan/poll-skip schedule in advanceUntil). */
    void setFastForwardEnabled(bool enabled)
    {
        fast_forward_enabled_ = enabled;
    }
    bool fastForwardEnabled() const { return fast_forward_enabled_; }

    const HsmtConfig &config() const { return config_; }
    std::uint32_t numLanes() const { return config_.num_lanes; }

    /** Contexts currently occupying physical lanes. */
    std::uint32_t occupiedLanes() const;

    std::uint64_t contextSwaps() const { return context_swaps_; }

    /** Fast-path counters (bench telemetry, not simulated state). */
    std::uint64_t fastForwardedPolls() const { return ff_polls_; }
    std::uint64_t fastForwardedCycles() const { return ff_cycles_; }

  private:
    struct HsmtLane
    {
        Lane lane;
        VirtualContext *ctx = nullptr;
        Cycle ctx_start = 0;
        Cycle wake_time = 0;
    };

    /** Actionable time of one lane within the current window. */
    Cycle laneTime(const HsmtLane &hl) const;

    /** Perform @p hl's pending action at time @p t (the body shared
     *  by advanceOne and advanceUntil, so the two schedules cannot
     *  drift). */
    void act(HsmtLane &hl, Cycle t, CommitSink *sink);

    /** Bulk-skip provably-failed polls when no lane holds a context.
     *  @return true when any poll was skipped (lane wakes moved). */
    bool fastForwardPolls(Cycle bound, Cycle min_wake);

    void releaseCtx(HsmtLane &hl, Cycle ready_at, Cycle now);

    CoreEngine &engine_;
    VirtualContextPool &pool_;
    HsmtConfig config_;
    Frequency frequency_;
    std::vector<HsmtLane> lanes_;
    Cycle window_start_ = 0;
    Cycle window_end_ = 0;
    std::uint64_t context_swaps_ = 0;
    bool fast_forward_enabled_ = true;
    std::uint64_t ff_polls_ = 0;
    std::uint64_t ff_cycles_ = 0;
};

} // namespace duplexity

#endif // DPX_CPU_HSMT_HH
