/**
 * @file
 * Hierarchical SMT (HSMT) virtual contexts and the dyad-shared run
 * queue (Section III-A).
 *
 * A lender-core keeps a FIFO backlog of virtual contexts in a
 * dedicated memory region. When a physical context stalls on a
 * µs-scale event, its architectural state is dumped to the tail of the
 * run queue and the next ready context is loaded. The master-core of
 * the dyad borrows filler-threads by stealing virtual contexts from
 * the head of the same queue.
 */

#ifndef DPX_CPU_VIRTUAL_CONTEXT_HH
#define DPX_CPU_VIRTUAL_CONTEXT_HH

#include <cstdint>
#include <deque>

#include "cpu/instr_source.hh"
#include "sim/types.hh"

namespace duplexity
{

/** One latency-insensitive batch thread's schedulable state. */
class VirtualContext
{
  public:
    VirtualContext(ThreadId id, InstrSource *source)
        : id_(id), source_(source)
    {
    }

    ThreadId id() const { return id_; }
    InstrSource &source() { return *source_; }

    /** Cycle at which the context's pending stall resolves. */
    Cycle readyTime() const { return ready_time_; }
    void setReadyTime(Cycle t) { ready_time_ = t; }

    /** Committed micro-ops (batch progress, STP numerator). */
    std::uint64_t retired = 0;
    /** Remote operations issued (NIC accounting). */
    std::uint64_t remote_ops = 0;
    /** Cycles spent occupying a physical context. */
    Cycle occupancy_cycles = 0;

  private:
    ThreadId id_;
    InstrSource *source_;
    Cycle ready_time_ = 0;
};

struct PoolStats
{
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t empty_acquires = 0;
};

/**
 * FIFO run queue of virtual contexts, shared by the two cores of a
 * dyad. Not a hardware-limited structure: its length is set by the
 * OS/cluster scheduler (32 per dyad in the paper's most pessimistic
 * sizing, Section IV).
 */
class VirtualContextPool
{
  public:
    VirtualContextPool() = default;

    /** Enqueue a context at the tail. */
    void add(VirtualContext *ctx);

    /**
     * Steal the first *ready* context (FIFO order) at @p now.
     *
     * @param now          current cycle
     * @param available_at out: when nullptr is returned, the earliest
     *                     cycle at which some queued context becomes
     *                     ready (Cycle max if the queue is empty)
     * @return the context, removed from the queue, or nullptr
     */
    VirtualContext *acquire(Cycle now, Cycle *available_at);

    /** Return a context to the tail of the queue. */
    void release(VirtualContext *ctx);

    /** Earliest ready time over queued contexts (Cycle max if empty):
     *  the read-only half of the scan acquire() performs on failure.
     *  The HSMT poll fast-forward uses it to prove that every skipped
     *  poll would have come back empty. */
    Cycle earliestReady() const;

    /** Account @p n failed polls elided in bulk by the fast-forward —
     *  each would have been one empty acquire(), so the stats stay
     *  field-identical to the stepped schedule. */
    void chargeSkippedPolls(std::uint64_t n)
    {
        stats_.empty_acquires += n;
    }

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    const PoolStats &stats() const { return stats_; }

    /** Iterate all queued contexts (inspection/tests). */
    const std::deque<VirtualContext *> &queued() const { return queue_; }

  private:
    std::deque<VirtualContext *> queue_;
    PoolStats stats_;
};

} // namespace duplexity

#endif // DPX_CPU_VIRTUAL_CONTEXT_HH
