#include "cpu/hsmt.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

HsmtUnit::HsmtUnit(CoreEngine &engine, VirtualContextPool &pool,
                   const HsmtConfig &config, Frequency frequency)
    : engine_(engine), pool_(pool), config_(config),
      frequency_(frequency)
{
    DPX_CHECK_GT(config.num_lanes, 0u)
        << " — HSMT needs at least one lane";
    lanes_.resize(config.num_lanes);
    for (HsmtLane &hl : lanes_)
        hl.wake_time = never;
}

void
HsmtUnit::configureLanes(const LaneConfig &proto)
{
    for (std::uint32_t i = 0; i < lanes_.size(); ++i)
        configureLane(i, proto);
}

void
HsmtUnit::configureLane(std::uint32_t index, const LaneConfig &proto)
{
    DPX_CHECK_LT(index, lanes_.size()) << " — lane index out of range";
    LaneConfig cfg = proto;
    cfg.mode = IssueMode::InOrder;
    lanes_[index].lane.configure(cfg);
}

void
HsmtUnit::openWindow(Cycle start, Cycle end)
{
    DPX_CHECK_GT(end, start) << " — empty HSMT window";
    window_start_ = start;
    window_end_ = end;
    for (HsmtLane &hl : lanes_) {
        // Lanes never carry contexts across windows (closeWindow
        // returns them), so waking them is all that is needed.
        hl.wake_time = start;
    }
}

void
HsmtUnit::closeWindow(Cycle at)
{
    for (HsmtLane &hl : lanes_) {
        if (hl.ctx) {
            // In-flight micro-ops are squashed; the architectural
            // state was spilled, so the context is immediately ready.
            releaseCtx(hl, at, at);
        }
        hl.wake_time = never;
    }
    window_end_ = window_start_;
}

Cycle
HsmtUnit::laneTime(const HsmtLane &hl) const
{
    if (window_end_ <= window_start_)
        return never;
    if (hl.wake_time == never)
        return never;
    Cycle t = hl.wake_time;
    if (hl.ctx)
        t = std::max(t, hl.lane.nextFetch());
    if (t >= window_end_) {
        // A context-holding lane still owes a hand-back action at the
        // window edge; an empty lane simply has nothing left to do.
        return hl.ctx ? window_end_ : never;
    }
    return t;
}

Cycle
HsmtUnit::nextTime() const
{
    Cycle best = never;
    for (const HsmtLane &hl : lanes_)
        best = std::min(best, laneTime(hl));
    return best;
}

std::uint32_t
HsmtUnit::occupiedLanes() const
{
    std::uint32_t n = 0;
    for (const HsmtLane &hl : lanes_)
        n += hl.ctx != nullptr;
    return n;
}

void
HsmtUnit::releaseCtx(HsmtLane &hl, Cycle ready_at, Cycle now)
{
    hl.ctx->setReadyTime(ready_at);
    if (now > hl.ctx_start)
        hl.ctx->occupancy_cycles += now - hl.ctx_start;
    pool_.release(hl.ctx);
    hl.ctx = nullptr;
}

void
HsmtUnit::act(HsmtLane &hl, Cycle t, CommitSink *sink)
{
    // Window edge: hand the context back and sleep.
    if (hl.ctx && t >= window_end_) {
        releaseCtx(hl, window_end_, window_end_);
        hl.wake_time = never;
        return;
    }

    // Empty lane: try to steal a ready context from the queue head.
    if (!hl.ctx) {
        Cycle avail = never;
        VirtualContext *ctx = pool_.acquire(t, &avail);
        if (!ctx) {
            Cycle retry = t + config_.poll_interval;
            if (avail != never)
                retry = std::min(retry, std::max(avail, t + 1));
            hl.wake_time = retry;
            return;
        }
        ++context_swaps_;
        hl.ctx = ctx;
        hl.ctx_start = t + config_.swap_cost;
        hl.lane.resetHistory(t + config_.swap_cost);
        hl.wake_time = t + config_.swap_cost;
        return;
    }

    // Quantum expiry: round-robin to the run-queue tail.
    if (hl.lane.nextFetch() - hl.ctx_start >= config_.quantum) {
        releaseCtx(hl, t, t);
        hl.wake_time = t;
        return;
    }

    // Execute one micro-op.
    MicroOp op = hl.ctx->source().next();
    OpOutcome out = engine_.processOp(hl.lane, op);
    ++hl.ctx->retired;
    if (sink)
        sink->onCommit(*hl.ctx, out);

    if (out.remote) {
        ++hl.ctx->remote_ops;
        Cycle stall = frequency_.microsToCycles(out.stall_us);
        // Dump the stalled context to the tail; the lane may load a
        // replacement as soon as the dump completes.
        releaseCtx(hl, out.commit_time + stall, out.commit_time);
        hl.wake_time = out.commit_time + config_.swap_cost;
    }
}

bool
HsmtUnit::advanceOne(CommitSink *sink)
{
    HsmtLane *best = nullptr;
    Cycle best_time = never;
    for (HsmtLane &hl : lanes_) {
        Cycle t = laneTime(hl);
        if (t < best_time) {
            best_time = t;
            best = &hl;
        }
    }
    if (!best)
        return false;
    act(*best, best_time, sink);
    return true;
}

bool
HsmtUnit::fastForwardPolls(Cycle bound, Cycle min_wake)
{
    // Every lane is empty, so the pool cannot gain a context until
    // some poll at/after its earliest ready time succeeds, and polls
    // strictly before min(avail, bound, window_end_) are provably
    // failures: skip them in bulk. Each polling lane's wake jumps
    // along its own retry grid (w, then min(w + poll, avail) repeated
    // — exactly the sequence the stepped schedule computes), and the
    // skipped polls are charged to PoolStats::empty_acquires.
    const Cycle avail = pool_.earliestReady();
    Cycle target = std::min(std::min(avail, bound), window_end_);
    if (target == never || target <= min_wake)
        return false;
    const Cycle poll = config_.poll_interval;
    std::uint64_t skipped = 0;
    for (HsmtLane &hl : lanes_) {
        const Cycle w = hl.wake_time;
        if (w == never || w >= target)
            continue;
        const Cycle k = (target - w + poll - 1) / poll;
        const Cycle jumped = std::min(w + k * poll, avail);
        ff_cycles_ += jumped - w;
        skipped += k;
        hl.wake_time = jumped;
    }
    if (skipped == 0)
        return false;
    pool_.chargeSkippedPolls(skipped);
    ff_polls_ += skipped;
    return true;
}

Cycle
HsmtUnit::advanceUntil(Cycle bound, CommitSink *sink)
{
    if (!fast_forward_enabled_) {
        // Forced-legacy schedule: full rescan per action.
        while (true) {
            Cycle t = nextTime();
            if (t >= bound)
                return t;
            if (!advanceOne(sink))
                return nextTime();
        }
    }

    while (true) {
        // Merged scan: strict-earliest lane (index tie-break, like
        // advanceOne) plus the runner-up time/index and whether any
        // lane holds a context — one pass instead of three.
        std::size_t best_i = 0, second_i = 0;
        Cycle best_time = never, second_time = never;
        bool any_ctx = false;
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            const HsmtLane &hl = lanes_[i];
            any_ctx |= hl.ctx != nullptr;
            const Cycle t = laneTime(hl);
            if (t < best_time) {
                second_time = best_time;
                second_i = best_i;
                best_time = t;
                best_i = i;
            } else if (t < second_time) {
                second_time = t;
                second_i = i;
            }
        }
        if (best_time >= bound)
            return best_time;

        if (!any_ctx && fastForwardPolls(bound, best_time))
            continue; // wakes moved: rescan

        // Streak: keep acting on the earliest lane without rescanning
        // while it stays ahead of the (unchanged) other lanes. Acting
        // on one lane never moves another lane's time, so the cached
        // runner-up stays valid for the whole streak.
        HsmtLane &hl = lanes_[best_i];
        Cycle t = best_time;
        while (true) {
            act(hl, t, sink);
            t = laneTime(hl);
            // The lane keeps the turn while it would still win the
            // advanceOne scan (strictly earlier, or equal with the
            // lower index). The unit's next time is then t itself.
            const bool still_first =
                t < second_time ||
                (t == second_time && best_i < second_i);
            if (!still_first)
                break; // another lane's turn: rescan
            if (t >= bound)
                return t;
        }
    }
}

void
HsmtUnit::runUntil(Cycle until, CommitSink *sink)
{
    advanceUntil(until, sink);
}

} // namespace duplexity
