/**
 * @file
 * The micro-op "ISA" exchanged between workload models and the core
 * engines.
 *
 * Workloads are statistical: they emit a stream of micro-ops whose
 * classes, addresses, dependency distances, and branch outcomes follow
 * the workload's measured character (Section V). A special Remote
 * class marks the start of a µs-scale stall (RDMA read, Optane access,
 * leaf-KV fan-out wait) — the hardware can demarcate these stalls via
 * queue-pair memory models or monitoring instructions (Section IV).
 */

#ifndef DPX_CPU_ISA_HH
#define DPX_CPU_ISA_HH

#include <cstdint>

#include "sim/types.hh"

namespace duplexity
{

enum class OpClass : std::uint8_t
{
    IntAlu,  //!< 1-cycle integer op
    IntMul,  //!< 3-cycle integer multiply
    FpAlu,   //!< 4-cycle floating-point/SIMD op
    Load,    //!< memory read; latency from the cache hierarchy
    Store,   //!< memory write; retires through the store buffer
    Branch,  //!< conditional branch with a resolved direction
    Call,    //!< call (pushes the RAS)
    Return,  //!< return (pops the RAS)
    Remote,  //!< µs-scale remote/stall operation
};

/** Fixed execution latencies for non-memory classes. */
constexpr Cycle
execLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMul:
        return 3;
      case OpClass::FpAlu:
        return 4;
      default:
        return 1;
    }
}

/** One micro-op emitted by a workload model. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    /** Instruction address: drives I-cache, predictor, BTB. */
    Addr pc = 0;
    /** Effective address for Load/Store. */
    Addr mem_addr = 0;
    /** Resolved direction for Branch (Call/Return always taken). */
    bool taken = false;
    /**
     * RAW dependency distances: this op reads the results of the ops
     * issued dep1/dep2 micro-ops earlier in the same thread (0 means
     * no dependency). Small distances serialize; large distances give
     * the engines ILP/MLP to harvest.
     */
    std::uint8_t dep1 = 0;
    std::uint8_t dep2 = 0;
    /** Stall duration for Remote ops, microseconds. */
    float stall_us = 0.0f;
    /** Marks the final micro-op of a request (service boundary). */
    bool end_of_request = false;
};

} // namespace duplexity

#endif // DPX_CPU_ISA_HH
