#include "cpu/core_engine.hh"

#include <algorithm>
#include <bit>

#include "cpu/block_precomp.hh"
#include "sim/check.hh"

namespace duplexity
{

void
Lane::configure(const LaneConfig &config)
{
    static_assert(std::has_single_bit(Lane::dep_ring_size),
                  "dependency ring must stay a power of two: the "
                  "issue stage masks with (dep_ring_size - 1)");
    DPX_CHECK(config.fetch_cal && config.issue_cal && config.commit_cal)
        << " — lane needs fetch/issue/commit calendars";
    DPX_CHECK(config.path.instr && config.path.data)
        << " — lane needs a memory path";
    DPX_CHECK(config.inflight_cap > 0 && config.fetch_queue > 0)
        << " — lane needs positive occupancy caps";
    config_ = config;
    done_ring_.fill(0);
    inflight_ring_.assign(config.inflight_cap, 0);
    dispatch_ring_.assign(config.fetch_queue, 0);
    inflight_pos_ = 0;
    fq_pos_ = 0;
}

void
Lane::stallUntil(Cycle cycle)
{
    next_fetch_ = std::max(next_fetch_, cycle);
}

void
Lane::resetHistory(Cycle start)
{
    next_fetch_ = std::max(next_fetch_, start);
    last_issue_ = std::max(last_issue_, start);
    last_commit_ = std::max(last_commit_, start);
    last_fetch_line_ = ~Addr(0);
    done_ring_.fill(0);
    std::fill(inflight_ring_.begin(), inflight_ring_.end(), 0);
    std::fill(dispatch_ring_.begin(), dispatch_ring_.end(), 0);
    op_index_ = 0;
    inflight_pos_ = 0;
    fq_pos_ = 0;
}

CoreEngine::CoreEngine(const CoreEngineConfig &config)
    : config_(config),
      fetch_cal_(config.fetch_width),
      issue_cal_(config.issue_width),
      commit_cal_(config.commit_width)
{
    DPX_CHECK(config.rob_entries > 0 && config.lq_entries > 0 &&
              config.sq_entries > 0)
        << " — ROB/LQ/SQ rings need at least one entry each";
    rob_ring_.assign(config.rob_entries, 0);
    lq_ring_.assign(config.lq_entries, 0);
    sq_ring_.assign(config.sq_entries, 0);
}

LaneConfig
CoreEngine::defaultLaneConfig(IssueMode mode)
{
    LaneConfig lane;
    lane.mode = mode;
    lane.fetch_cal = &fetch_cal_;
    lane.issue_cal = &issue_cal_;
    lane.commit_cal = &commit_cal_;
    if (mode == IssueMode::InOrder) {
        // InO lanes track a small scoreboard, not the shared ROB.
        lane.inflight_cap = 8;
        lane.use_shared_rob = false;
        lane.use_shared_lsq = false;
    }
    return lane;
}

OpOutcome
CoreEngine::processOp(Lane &lane, const MicroOp &op)
{
    return stepOp(lane, op, lane.stats_);
}

// Split-phase dispatch codes, precompute hints, and the SoA/AoS lane
// views moved to cpu/block_precomp.hh so the lane-vectorized variant,
// its differential tests, and the benchmark share one definition.

BlockOutcome
CoreEngine::stepOpLoop(Lane &lane, const MicroOp *ops,
                       std::uint32_t count, Cycle fetch_horizon,
                       Cycle window_lo, Cycle window_hi)
{
    BlockOutcome blk;
    // Stat updates batch into a local accumulator and flush once per
    // block; integer adds commute, so totals are bit-identical.
    LaneStats local;
    // One reused outcome slot, copied into blk.last once after the
    // loop — not per op.
    OpOutcome out;
    // dpx-hot-loop: begin stepOpLoop
    while (blk.processed < count && lane.next_fetch_ < fetch_horizon) {
        out = stepOp(lane, ops[blk.processed], local);
        ++blk.processed;
        if (out.commit_time >= window_lo && out.commit_time < window_hi)
            ++blk.committed_in_window;
        if (out.remote) {
            blk.stopped_remote = true;
            break;
        }
    }
    // dpx-hot-loop: end
    if (blk.processed > 0)
        blk.last = out;
    lane.stats_.ops += local.ops;
    lane.stats_.branches += local.branches;
    lane.stats_.mispredicts += local.mispredicts;
    lane.stats_.remote_ops += local.remote_ops;
    return blk;
}

template <class View>
BlockOutcome
CoreEngine::splitPhaseBlock(Lane &lane, const View &view,
                            std::uint32_t count, Cycle fetch_horizon,
                            Cycle window_lo, Cycle window_hi)
{
    BlockOutcome blk;
    if (count == 0)
        return blk;
    DPX_DCHECK(!lane.inflight_ring_.empty() &&
               !lane.dispatch_ring_.empty())
        << " — processBlock on an unconfigured lane";
    DPX_DCHECK_LE(count, kOpBlockCapacity);

    // Phase 1: pure precompute over the SoA/AoS lanes.
    BlockPrecomp pre;
    precomputeBlock(view, count, pre);

    // Phase 2: tight serial commit pass. Loop-invariant config and the
    // lane/core scalars are hoisted into locals (stored back once at
    // exit); per-op work is the exact stepOp arithmetic in the exact
    // stepOp order, so outcomes are bit-identical to the legacy walk.
    const LaneConfig &cfg = lane.config_;
    const bool in_order = cfg.mode == IssueMode::InOrder;
    const Cycle frontend_depth = in_order ? config_.frontend_depth_ino
                                          : config_.frontend_depth_ooo;
    const Cycle redirect_penalty = in_order
                                       ? config_.redirect_penalty_ino
                                       : config_.redirect_penalty_ooo;
    const Cycle fetch_hidden = config_.fetch_hidden;
    SlotCalendar *const fetch_cal = cfg.fetch_cal;
    SlotCalendar *const issue_cal = cfg.issue_cal;
    SlotCalendar *const commit_cal = cfg.commit_cal;
    const MemPath path = cfg.path;
    BranchPredictor *const predictor = cfg.branch.predictor;
    Btb *const btb = cfg.branch.btb;
    ReturnAddressStack *const ras = cfg.branch.ras;
    const bool use_rob = cfg.use_shared_rob;
    const bool use_lsq = cfg.use_shared_lsq;

    Cycle next_fetch = lane.next_fetch_;
    Cycle last_issue = lane.last_issue_;
    Cycle last_commit = lane.last_commit_;
    std::uint64_t op_index = lane.op_index_;
    std::size_t inflight_pos = lane.inflight_pos_;
    std::size_t fq_pos = lane.fq_pos_;
    std::size_t rob_pos = rob_pos_;
    std::size_t lq_pos = lq_pos_;
    std::size_t sq_pos = sq_pos_;
    Cycle *const dispatch_ring = lane.dispatch_ring_.data();
    const std::size_t dispatch_size = lane.dispatch_ring_.size();
    Cycle *const inflight_ring = lane.inflight_ring_.data();
    const std::size_t inflight_size = lane.inflight_ring_.size();
    Cycle *const done_ring = lane.done_ring_.data();
    Cycle *const rob_ring = rob_ring_.data();
    const std::size_t rob_size = rob_ring_.size();
    Cycle *const lq_ring = lq_ring_.data();
    const std::size_t lq_size = lq_ring_.size();
    Cycle *const sq_ring = sq_ring_.data();
    const std::size_t sq_size = sq_ring_.size();
    constexpr std::size_t dep_mask = Lane::dep_ring_size - 1;
    DPX_DCHECK_LT(fq_pos, dispatch_size);
    DPX_DCHECK_LT(inflight_pos, inflight_size);

    // Fetch-line tracking. `synced` means the lane's last fetch line
    // is known to equal the previous op's line, so the precomputed
    // delta decides the I-cache probe; at block entry and after a
    // redirect (stepOp resets the line to the ~0 sentinel) the probe
    // condition falls back to the literal compare stepOp performs.
    Addr last_line = lane.last_fetch_line_;
    bool synced = false;

    std::uint64_t branches = 0, mispredicts = 0, remote_ops = 0;
    // blk.last fields for the most recent op, tracked in registers.
    Cycle l_fetch = 0, l_issue = 0, l_done = 0, l_commit = 0;
    bool l_redirect = false;

    std::uint32_t i = 0;
    // dpx-hot-loop: begin splitPhaseCommit
    for (; i < count; ++i) {
        if (next_fetch >= fetch_horizon)
            break;

        // Fetch: bandwidth slot, fetch-queue back-pressure, I-cache.
        Cycle &fq_slot = dispatch_ring[fq_pos];
        Cycle fetch_time =
            fetch_cal->reserve(std::max(next_fetch, fq_slot));
        const bool probe = synced
                               ? pre.new_line[i]
                               : (view.pcAt(i) >> 6) != last_line;
        if (probe) {
            Cycle fetch_lat = path.fetch(view.pcAt(i), fetch_time);
            if (fetch_lat > fetch_hidden)
                fetch_time += fetch_lat - fetch_hidden;
        }
        synced = true;

        // Dispatch: frontend depth + window occupancy.
        Cycle dispatch_time = fetch_time + frontend_depth;
        Cycle *const cap_slot = &inflight_ring[inflight_pos];
        if (++inflight_pos == inflight_size)
            inflight_pos = 0;
        dispatch_time = std::max(dispatch_time, *cap_slot);
        Cycle *rob_slot = nullptr;
        if (use_rob) {
            rob_slot = &rob_ring[rob_pos];
            if (++rob_pos == rob_size)
                rob_pos = 0;
            dispatch_time = std::max(dispatch_time, *rob_slot);
        }
        const std::uint8_t code = pre.code[i];
        Cycle *lsq_slot = nullptr;
        if (use_lsq) {
            if (code == kCodeLoad) {
                lsq_slot = &lq_ring[lq_pos];
                if (++lq_pos == lq_size)
                    lq_pos = 0;
                dispatch_time = std::max(dispatch_time, *lsq_slot);
            } else if (code == kCodeStore) {
                lsq_slot = &sq_ring[sq_pos];
                if (++sq_pos == sq_size)
                    sq_pos = 0;
                dispatch_time = std::max(dispatch_time, *lsq_slot);
            }
        }
        fq_slot = dispatch_time;
        if (++fq_pos == dispatch_size)
            fq_pos = 0;

        // Issue: operand readiness, then in-order or dynamic
        // scheduling. Dep-free ops (the precomputed common case) skip
        // the ring reads entirely.
        Cycle ready = dispatch_time + 1;
        if (pre.has_dep[i]) {
            const std::uint8_t d1 = view.dep1At(i);
            const std::uint8_t d2 = view.dep2At(i);
            if (d1) {
                ready = std::max(
                    ready, done_ring[(op_index - d1) & dep_mask]);
            }
            if (d2) {
                ready = std::max(
                    ready, done_ring[(op_index - d2) & dep_mask]);
            }
        }
        Cycle issue_time;
        if (in_order) {
            issue_time =
                issue_cal->reserve(std::max(ready, last_issue));
            last_issue = issue_time;
        } else {
            issue_time = issue_cal->reserve(ready);
        }

        // Execute + control flow, dispatched on the precomputed code.
        // Predictor/BTB/RAS updates must stay inside the serial walk:
        // their state transitions are order-dependent and ops past a
        // stop point must never touch them (DESIGN.md §4b.2).
        Cycle done_time;
        bool redirect = false;
        bool remote = false;
        switch (code) {
          case kCodeSimple:
            done_time = issue_time + pre.lat[i];
            break;
          case kCodeLoad:
            done_time = issue_time +
                        path.load(view.memAddrAt(i), issue_time);
            break;
          case kCodeStore:
            path.store(view.memAddrAt(i), issue_time);
            done_time = issue_time + 1;
            break;
          case kCodeBranch: {
            done_time = issue_time + 1;
            ++branches;
            bool correct = true;
            if (predictor) {
                // dpx-lint: allow(DPX008) serial-state contract:
                // predictor updates are order-dependent
                correct = predictor->predictAndUpdate(view.pcAt(i),
                                                      view.takenAt(i));
            }
            bool btb_ok = true;
            if (view.takenAt(i) && btb) {
                btb_ok =
                    btb->lookupUpdate(view.pcAt(i), view.pcAt(i) + 64);
            }
            if (!correct || !btb_ok) {
                redirect = true;
                ++mispredicts;
            }
            break;
          }
          case kCodeCall:
            done_time = issue_time + 1;
            if (ras)
                ras->push(view.pcAt(i) + 4);
            if (btb) {
                redirect = !btb->lookupUpdate(view.pcAt(i),
                                              view.pcAt(i) + 64);
            }
            break;
          case kCodeReturn:
            done_time = issue_time + 1;
            redirect = ras && ras->pop() == 0;
            if (redirect)
                ++mispredicts;
            break;
          default: // kCodeRemote
            done_time = issue_time + 1;
            remote = true;
            break;
        }

        // Commit (in order per lane, shared commit bandwidth).
        Cycle commit_time = commit_cal->reserve(
            std::max(done_time + 1, last_commit));
        DPX_DCHECK_GT(commit_time, done_time);
        DPX_DCHECK_GE(commit_time, last_commit);
        last_commit = commit_time;
        *cap_slot = commit_time;
        if (rob_slot)
            *rob_slot = commit_time;
        if (lsq_slot)
            *lsq_slot = commit_time;
        done_ring[op_index & dep_mask] = done_time;
        ++op_index;

        next_fetch = fetch_time;
        if (redirect) {
            next_fetch =
                std::max(next_fetch, done_time + redirect_penalty);
            synced = false;
            last_line = ~Addr(0);
        }

        if (commit_time >= window_lo && commit_time < window_hi)
            ++blk.committed_in_window;

        l_fetch = fetch_time;
        l_issue = issue_time;
        l_done = done_time;
        l_commit = commit_time;
        l_redirect = redirect;

        if (remote) {
            ++remote_ops;
            ++i;
            blk.stopped_remote = true;
            break;
        }
    }
    // dpx-hot-loop: end

    blk.processed = i;
    if (i > 0) {
        blk.last.fetch_time = l_fetch;
        blk.last.issue_time = l_issue;
        blk.last.done_time = l_done;
        blk.last.commit_time = l_commit;
        blk.last.mispredicted = l_redirect;
        blk.last.remote = blk.stopped_remote;
        if (blk.stopped_remote)
            blk.last.stall_us = view.stallUsAt(i - 1);
        blk.last.end_of_request = view.eorAt(i - 1);
        // Invariant maintained by stepOp: after an op that does not
        // redirect, the lane's last fetch line equals that op's line
        // (probed ops store it; unprobed ops matched it already).
        lane.last_fetch_line_ =
            l_redirect ? ~Addr(0) : (view.pcAt(i - 1) >> 6);
    }
    lane.next_fetch_ = next_fetch;
    lane.last_issue_ = last_issue;
    lane.last_commit_ = last_commit;
    lane.op_index_ = op_index;
    lane.inflight_pos_ = inflight_pos;
    lane.fq_pos_ = fq_pos;
    rob_pos_ = rob_pos;
    lq_pos_ = lq_pos;
    sq_pos_ = sq_pos;
    lane.stats_.ops += i;
    lane.stats_.branches += branches;
    lane.stats_.mispredicts += mispredicts;
    lane.stats_.remote_ops += remote_ops;
    split_phase_ops_ += i;
    return blk;
}

BlockOutcome
CoreEngine::processBlock(Lane &lane, const MicroOp *ops,
                         std::uint32_t count, Cycle fetch_horizon,
                         Cycle window_lo, Cycle window_hi)
{
    if (!split_phase_enabled_) {
        return stepOpLoop(lane, ops, count, fetch_horizon, window_lo,
                          window_hi);
    }
    // The precompute scratch is block-sized; larger AoS spans chunk
    // through it. The horizon/remote stop conditions compose: a chunk
    // that stops early ends the whole span exactly where the
    // single-loop walk would have stopped.
    BlockOutcome blk;
    std::uint32_t off = 0;
    while (off < count) {
        const std::uint32_t n =
            std::min<std::uint32_t>(count - off, kOpBlockCapacity);
        const AosOpView view{ops + off};
        BlockOutcome part = splitPhaseBlock(
            lane, view, n, fetch_horizon, window_lo, window_hi);
        blk.committed_in_window += part.committed_in_window;
        blk.processed += part.processed;
        if (part.processed > 0)
            blk.last = part.last;
        blk.stopped_remote = part.stopped_remote;
        off += n;
        if (part.stopped_remote || part.processed < n)
            break;
    }
    return blk;
}

BlockOutcome
CoreEngine::processBlock(Lane &lane, const OpBlock &block,
                         std::uint32_t offset, Cycle fetch_horizon,
                         Cycle window_lo, Cycle window_hi)
{
    DPX_DCHECK_LE(offset, block.size());
    const std::uint32_t count =
        static_cast<std::uint32_t>(block.size()) - offset;

    if (!soa_enabled_ || !split_phase_enabled_) {
        // Forced-legacy reference: materialize the lanes into an AoS
        // array and run the pointer overload (which itself dispatches
        // on the split-phase switch, so each switch is independently
        // forceable to its legacy path).
        MicroOp ops[kOpBlockCapacity];
        for (std::uint32_t i = 0; i < count; ++i)
            ops[i] = block.get(offset + i);
        return processBlock(lane, ops, count, fetch_horizon,
                            window_lo, window_hi);
    }

    soa_block_ops_ += count;
    const SoaLaneView view{
        block.cls() + offset,          block.pc() + offset,
        block.memAddr() + offset,      block.taken() + offset,
        block.dep1() + offset,         block.dep2() + offset,
        block.stallUs() + offset,      block.endOfRequest() + offset,
    };
    return splitPhaseBlock(lane, view, count, fetch_horizon, window_lo,
                           window_hi);
}

OpOutcome
CoreEngine::stepOp(Lane &lane, const MicroOp &op, LaneStats &stats)
{
    const LaneConfig &cfg = lane.config_;
    const bool in_order = cfg.mode == IssueMode::InOrder;
    OpOutcome out;

    // An unconfigured lane has empty rings; the cursor reads below
    // would index out of bounds.
    DPX_DCHECK(!lane.inflight_ring_.empty() &&
               !lane.dispatch_ring_.empty())
        << " — processOp on an unconfigured lane";
    DPX_DCHECK_LT(lane.fq_pos_, lane.dispatch_ring_.size());
    DPX_DCHECK_LT(lane.inflight_pos_, lane.inflight_ring_.size());

    // ------------------------------------------------------------------
    // Fetch: bandwidth slot, fetch-queue back-pressure, I-cache.
    // ------------------------------------------------------------------
    Cycle &fq_slot = lane.dispatch_ring_[lane.fq_pos_];
    Cycle fetch_earliest = std::max(lane.next_fetch_, fq_slot);
    Cycle fetch_time = cfg.fetch_cal->reserve(fetch_earliest);

    const Addr fetch_line = op.pc >> 6;
    if (fetch_line != lane.last_fetch_line_) {
        Cycle fetch_lat = cfg.path.fetch(op.pc, fetch_time);
        if (fetch_lat > config_.fetch_hidden)
            fetch_time += fetch_lat - config_.fetch_hidden;
        lane.last_fetch_line_ = fetch_line;
    }
    out.fetch_time = fetch_time;

    // ------------------------------------------------------------------
    // Dispatch: frontend depth + window occupancy (ROB / scoreboard /
    // load-store queues).
    // ------------------------------------------------------------------
    Cycle dispatch_time =
        fetch_time + (in_order ? config_.frontend_depth_ino
                               : config_.frontend_depth_ooo);

    Cycle &cap_slot = lane.inflight_ring_[lane.inflight_pos_];
    if (++lane.inflight_pos_ == lane.inflight_ring_.size())
        lane.inflight_pos_ = 0;
    dispatch_time = std::max(dispatch_time, cap_slot);

    Cycle *rob_slot = nullptr;
    if (cfg.use_shared_rob) {
        DPX_DCHECK_LT(rob_pos_, rob_ring_.size());
        rob_slot = &rob_ring_[rob_pos_];
        if (++rob_pos_ == rob_ring_.size())
            rob_pos_ = 0;
        dispatch_time = std::max(dispatch_time, *rob_slot);
    }
    Cycle *lsq_slot = nullptr;
    if (cfg.use_shared_lsq) {
        if (op.cls == OpClass::Load) {
            lsq_slot = &lq_ring_[lq_pos_];
            if (++lq_pos_ == lq_ring_.size())
                lq_pos_ = 0;
            dispatch_time = std::max(dispatch_time, *lsq_slot);
        } else if (op.cls == OpClass::Store) {
            lsq_slot = &sq_ring_[sq_pos_];
            if (++sq_pos_ == sq_ring_.size())
                sq_pos_ = 0;
            dispatch_time = std::max(dispatch_time, *lsq_slot);
        }
    }
    fq_slot = dispatch_time;
    if (++lane.fq_pos_ == lane.dispatch_ring_.size())
        lane.fq_pos_ = 0;

    // ------------------------------------------------------------------
    // Issue: operand readiness, then in-order or dynamic scheduling.
    // ------------------------------------------------------------------
    constexpr std::size_t dep_mask = Lane::dep_ring_size - 1;
    Cycle ready = dispatch_time + 1;
    if (op.dep1) {
        ready = std::max(
            ready, lane.done_ring_[(lane.op_index_ - op.dep1) &
                                   dep_mask]);
    }
    if (op.dep2) {
        ready = std::max(
            ready, lane.done_ring_[(lane.op_index_ - op.dep2) &
                                   dep_mask]);
    }

    Cycle issue_time;
    if (in_order) {
        issue_time =
            cfg.issue_cal->reserve(std::max(ready, lane.last_issue_));
        lane.last_issue_ = issue_time;
    } else {
        issue_time = cfg.issue_cal->reserve(ready);
    }
    out.issue_time = issue_time;

    // ------------------------------------------------------------------
    // Execute.
    // ------------------------------------------------------------------
    Cycle done_time;
    switch (op.cls) {
      case OpClass::Load:
        done_time = issue_time + cfg.path.load(op.mem_addr, issue_time);
        break;
      case OpClass::Store:
        // Stores retire through the store buffer; update cache state
        // but do not lengthen the dependent chain.
        cfg.path.store(op.mem_addr, issue_time);
        done_time = issue_time + 1;
        break;
      case OpClass::Remote:
        // Initiating the remote op is cheap; the µs stall that follows
        // is imposed by the caller on retirement.
        done_time = issue_time + 1;
        out.remote = true;
        out.stall_us = op.stall_us;
        break;
      default:
        done_time = issue_time + execLatency(op.cls);
        break;
    }
    out.done_time = done_time;

    // ------------------------------------------------------------------
    // Control flow: predict at fetch, resolve at done.
    // ------------------------------------------------------------------
    bool redirect = false;
    if (op.cls == OpClass::Branch) {
        ++stats.branches;
        bool correct = true;
        if (cfg.branch.predictor) {
            correct =
                cfg.branch.predictor->predictAndUpdate(op.pc, op.taken);
        }
        bool btb_ok = true;
        if (op.taken && cfg.branch.btb)
            btb_ok = cfg.branch.btb->lookupUpdate(op.pc, op.pc + 64);
        if (!correct || !btb_ok) {
            redirect = true;
            ++stats.mispredicts;
        }
    } else if (op.cls == OpClass::Call) {
        if (cfg.branch.ras)
            cfg.branch.ras->push(op.pc + 4);
        if (cfg.branch.btb)
            redirect = !cfg.branch.btb->lookupUpdate(op.pc, op.pc + 64);
    } else if (op.cls == OpClass::Return) {
        // A RAS underflow forces a redirect at resolution.
        redirect = cfg.branch.ras && cfg.branch.ras->pop() == 0;
        if (redirect)
            ++stats.mispredicts;
    }
    out.mispredicted = redirect;

    // ------------------------------------------------------------------
    // Commit (in order per lane, shared commit bandwidth).
    // ------------------------------------------------------------------
    Cycle commit_time = cfg.commit_cal->reserve(
        std::max(done_time + 1, lane.last_commit_));
    // Pipeline-order invariant: an op can only retire after it
    // finished executing, and commits stay in lane order.
    DPX_DCHECK_GT(commit_time, done_time);
    DPX_DCHECK_GE(commit_time, lane.last_commit_);
    lane.last_commit_ = commit_time;
    out.commit_time = commit_time;

    cap_slot = commit_time;
    if (rob_slot)
        *rob_slot = commit_time;
    if (lsq_slot)
        *lsq_slot = commit_time;
    lane.done_ring_[lane.op_index_ & dep_mask] = done_time;
    ++lane.op_index_;

    // Next fetch: same cycle is fine (calendar limits bandwidth);
    // redirects refetch after resolution plus the redirect penalty.
    lane.next_fetch_ = fetch_time;
    if (redirect) {
        Cycle penalty = in_order ? config_.redirect_penalty_ino
                                 : config_.redirect_penalty_ooo;
        lane.next_fetch_ =
            std::max(lane.next_fetch_, done_time + penalty);
        lane.last_fetch_line_ = ~Addr(0);
    }

    ++stats.ops;
    if (out.remote)
        ++stats.remote_ops;
    out.end_of_request = op.end_of_request;
    return out;
}

void
CoreEngine::reset()
{
    fetch_cal_.reset();
    issue_cal_.reset();
    commit_cal_.reset();
    std::fill(rob_ring_.begin(), rob_ring_.end(), 0);
    std::fill(lq_ring_.begin(), lq_ring_.end(), 0);
    std::fill(sq_ring_.begin(), sq_ring_.end(), 0);
    rob_pos_ = lq_pos_ = sq_pos_ = 0;
}

} // namespace duplexity
