#include "cpu/core_engine.hh"

#include <algorithm>
#include <bit>

#include "sim/check.hh"

namespace duplexity
{

void
Lane::configure(const LaneConfig &config)
{
    static_assert(std::has_single_bit(Lane::dep_ring_size),
                  "dependency ring must stay a power of two: the "
                  "issue stage masks with (dep_ring_size - 1)");
    DPX_CHECK(config.fetch_cal && config.issue_cal && config.commit_cal)
        << " — lane needs fetch/issue/commit calendars";
    DPX_CHECK(config.path.instr && config.path.data)
        << " — lane needs a memory path";
    DPX_CHECK(config.inflight_cap > 0 && config.fetch_queue > 0)
        << " — lane needs positive occupancy caps";
    config_ = config;
    done_ring_.fill(0);
    inflight_ring_.assign(config.inflight_cap, 0);
    dispatch_ring_.assign(config.fetch_queue, 0);
    inflight_pos_ = 0;
    fq_pos_ = 0;
}

void
Lane::stallUntil(Cycle cycle)
{
    next_fetch_ = std::max(next_fetch_, cycle);
}

void
Lane::resetHistory(Cycle start)
{
    next_fetch_ = std::max(next_fetch_, start);
    last_issue_ = std::max(last_issue_, start);
    last_commit_ = std::max(last_commit_, start);
    last_fetch_line_ = ~Addr(0);
    done_ring_.fill(0);
    std::fill(inflight_ring_.begin(), inflight_ring_.end(), 0);
    std::fill(dispatch_ring_.begin(), dispatch_ring_.end(), 0);
    op_index_ = 0;
    inflight_pos_ = 0;
    fq_pos_ = 0;
}

CoreEngine::CoreEngine(const CoreEngineConfig &config)
    : config_(config),
      fetch_cal_(config.fetch_width),
      issue_cal_(config.issue_width),
      commit_cal_(config.commit_width)
{
    DPX_CHECK(config.rob_entries > 0 && config.lq_entries > 0 &&
              config.sq_entries > 0)
        << " — ROB/LQ/SQ rings need at least one entry each";
    rob_ring_.assign(config.rob_entries, 0);
    lq_ring_.assign(config.lq_entries, 0);
    sq_ring_.assign(config.sq_entries, 0);
}

LaneConfig
CoreEngine::defaultLaneConfig(IssueMode mode)
{
    LaneConfig lane;
    lane.mode = mode;
    lane.fetch_cal = &fetch_cal_;
    lane.issue_cal = &issue_cal_;
    lane.commit_cal = &commit_cal_;
    if (mode == IssueMode::InOrder) {
        // InO lanes track a small scoreboard, not the shared ROB.
        lane.inflight_cap = 8;
        lane.use_shared_rob = false;
        lane.use_shared_lsq = false;
    }
    return lane;
}

OpOutcome
CoreEngine::processOp(Lane &lane, const MicroOp &op)
{
    return stepOp(lane, op, lane.stats_);
}

BlockOutcome
CoreEngine::processBlock(Lane &lane, const MicroOp *ops,
                         std::uint32_t count, Cycle fetch_horizon,
                         Cycle window_lo, Cycle window_hi)
{
    BlockOutcome blk;
    // Stat updates batch into a local accumulator and flush once per
    // block; integer adds commute, so totals are bit-identical.
    LaneStats local;
    // One reused outcome slot, copied into blk.last once after the
    // loop — not per op.
    OpOutcome out;
    while (blk.processed < count && lane.next_fetch_ < fetch_horizon) {
        out = stepOp(lane, ops[blk.processed], local);
        ++blk.processed;
        if (out.commit_time >= window_lo && out.commit_time < window_hi)
            ++blk.committed_in_window;
        if (out.remote) {
            blk.stopped_remote = true;
            break;
        }
    }
    if (blk.processed > 0)
        blk.last = out;
    lane.stats_.ops += local.ops;
    lane.stats_.branches += local.branches;
    lane.stats_.mispredicts += local.mispredicts;
    lane.stats_.remote_ops += local.remote_ops;
    return blk;
}

BlockOutcome
CoreEngine::processBlock(Lane &lane, const OpBlock &block,
                         std::uint32_t offset, Cycle fetch_horizon,
                         Cycle window_lo, Cycle window_hi)
{
    DPX_DCHECK_LE(offset, block.size());
    const std::uint32_t count =
        static_cast<std::uint32_t>(block.size()) - offset;

    if (!soa_enabled_) {
        // Forced-legacy reference: materialize the lanes into an AoS
        // array and run the pointer overload unchanged.
        MicroOp ops[kOpBlockCapacity];
        for (std::uint32_t i = 0; i < count; ++i)
            ops[i] = block.get(offset + i);
        return processBlock(lane, ops, count, fetch_horizon,
                            window_lo, window_hi);
    }

    const OpClass *cls = block.cls() + offset;
    const Addr *pc = block.pc() + offset;
    const Addr *mem_addr = block.memAddr() + offset;
    const bool *taken = block.taken() + offset;
    const std::uint8_t *dep1 = block.dep1() + offset;
    const std::uint8_t *dep2 = block.dep2() + offset;
    const float *stall_us = block.stallUs() + offset;
    const bool *eor = block.endOfRequest() + offset;

    BlockOutcome blk;
    LaneStats local;
    OpOutcome out;
    while (blk.processed < count && lane.next_fetch_ < fetch_horizon) {
        const std::uint32_t i = blk.processed;
        MicroOp op;
        op.cls = cls[i];
        op.pc = pc[i];
        op.mem_addr = mem_addr[i];
        op.taken = taken[i];
        op.dep1 = dep1[i];
        op.dep2 = dep2[i];
        op.stall_us = stall_us[i];
        op.end_of_request = eor[i];
        out = stepOp(lane, op, local);
        ++blk.processed;
        if (out.commit_time >= window_lo && out.commit_time < window_hi)
            ++blk.committed_in_window;
        if (out.remote) {
            blk.stopped_remote = true;
            break;
        }
    }
    if (blk.processed > 0)
        blk.last = out;
    lane.stats_.ops += local.ops;
    lane.stats_.branches += local.branches;
    lane.stats_.mispredicts += local.mispredicts;
    lane.stats_.remote_ops += local.remote_ops;
    return blk;
}

OpOutcome
CoreEngine::stepOp(Lane &lane, const MicroOp &op, LaneStats &stats)
{
    const LaneConfig &cfg = lane.config_;
    const bool in_order = cfg.mode == IssueMode::InOrder;
    OpOutcome out;

    // An unconfigured lane has empty rings; the cursor reads below
    // would index out of bounds.
    DPX_DCHECK(!lane.inflight_ring_.empty() &&
               !lane.dispatch_ring_.empty())
        << " — processOp on an unconfigured lane";
    DPX_DCHECK_LT(lane.fq_pos_, lane.dispatch_ring_.size());
    DPX_DCHECK_LT(lane.inflight_pos_, lane.inflight_ring_.size());

    // ------------------------------------------------------------------
    // Fetch: bandwidth slot, fetch-queue back-pressure, I-cache.
    // ------------------------------------------------------------------
    Cycle &fq_slot = lane.dispatch_ring_[lane.fq_pos_];
    Cycle fetch_earliest = std::max(lane.next_fetch_, fq_slot);
    Cycle fetch_time = cfg.fetch_cal->reserve(fetch_earliest);

    const Addr fetch_line = op.pc >> 6;
    if (fetch_line != lane.last_fetch_line_) {
        Cycle fetch_lat = cfg.path.fetch(op.pc, fetch_time);
        if (fetch_lat > config_.fetch_hidden)
            fetch_time += fetch_lat - config_.fetch_hidden;
        lane.last_fetch_line_ = fetch_line;
    }
    out.fetch_time = fetch_time;

    // ------------------------------------------------------------------
    // Dispatch: frontend depth + window occupancy (ROB / scoreboard /
    // load-store queues).
    // ------------------------------------------------------------------
    Cycle dispatch_time =
        fetch_time + (in_order ? config_.frontend_depth_ino
                               : config_.frontend_depth_ooo);

    Cycle &cap_slot = lane.inflight_ring_[lane.inflight_pos_];
    if (++lane.inflight_pos_ == lane.inflight_ring_.size())
        lane.inflight_pos_ = 0;
    dispatch_time = std::max(dispatch_time, cap_slot);

    Cycle *rob_slot = nullptr;
    if (cfg.use_shared_rob) {
        DPX_DCHECK_LT(rob_pos_, rob_ring_.size());
        rob_slot = &rob_ring_[rob_pos_];
        if (++rob_pos_ == rob_ring_.size())
            rob_pos_ = 0;
        dispatch_time = std::max(dispatch_time, *rob_slot);
    }
    Cycle *lsq_slot = nullptr;
    if (cfg.use_shared_lsq) {
        if (op.cls == OpClass::Load) {
            lsq_slot = &lq_ring_[lq_pos_];
            if (++lq_pos_ == lq_ring_.size())
                lq_pos_ = 0;
            dispatch_time = std::max(dispatch_time, *lsq_slot);
        } else if (op.cls == OpClass::Store) {
            lsq_slot = &sq_ring_[sq_pos_];
            if (++sq_pos_ == sq_ring_.size())
                sq_pos_ = 0;
            dispatch_time = std::max(dispatch_time, *lsq_slot);
        }
    }
    fq_slot = dispatch_time;
    if (++lane.fq_pos_ == lane.dispatch_ring_.size())
        lane.fq_pos_ = 0;

    // ------------------------------------------------------------------
    // Issue: operand readiness, then in-order or dynamic scheduling.
    // ------------------------------------------------------------------
    constexpr std::size_t dep_mask = Lane::dep_ring_size - 1;
    Cycle ready = dispatch_time + 1;
    if (op.dep1) {
        ready = std::max(
            ready, lane.done_ring_[(lane.op_index_ - op.dep1) &
                                   dep_mask]);
    }
    if (op.dep2) {
        ready = std::max(
            ready, lane.done_ring_[(lane.op_index_ - op.dep2) &
                                   dep_mask]);
    }

    Cycle issue_time;
    if (in_order) {
        issue_time =
            cfg.issue_cal->reserve(std::max(ready, lane.last_issue_));
        lane.last_issue_ = issue_time;
    } else {
        issue_time = cfg.issue_cal->reserve(ready);
    }
    out.issue_time = issue_time;

    // ------------------------------------------------------------------
    // Execute.
    // ------------------------------------------------------------------
    Cycle done_time;
    switch (op.cls) {
      case OpClass::Load:
        done_time = issue_time + cfg.path.load(op.mem_addr, issue_time);
        break;
      case OpClass::Store:
        // Stores retire through the store buffer; update cache state
        // but do not lengthen the dependent chain.
        cfg.path.store(op.mem_addr, issue_time);
        done_time = issue_time + 1;
        break;
      case OpClass::Remote:
        // Initiating the remote op is cheap; the µs stall that follows
        // is imposed by the caller on retirement.
        done_time = issue_time + 1;
        out.remote = true;
        out.stall_us = op.stall_us;
        break;
      default:
        done_time = issue_time + execLatency(op.cls);
        break;
    }
    out.done_time = done_time;

    // ------------------------------------------------------------------
    // Control flow: predict at fetch, resolve at done.
    // ------------------------------------------------------------------
    bool redirect = false;
    if (op.cls == OpClass::Branch) {
        ++stats.branches;
        bool correct = true;
        if (cfg.branch.predictor) {
            correct =
                cfg.branch.predictor->predictAndUpdate(op.pc, op.taken);
        }
        bool btb_ok = true;
        if (op.taken && cfg.branch.btb)
            btb_ok = cfg.branch.btb->lookupUpdate(op.pc, op.pc + 64);
        if (!correct || !btb_ok) {
            redirect = true;
            ++stats.mispredicts;
        }
    } else if (op.cls == OpClass::Call) {
        if (cfg.branch.ras)
            cfg.branch.ras->push(op.pc + 4);
        if (cfg.branch.btb)
            redirect = !cfg.branch.btb->lookupUpdate(op.pc, op.pc + 64);
    } else if (op.cls == OpClass::Return) {
        // A RAS underflow forces a redirect at resolution.
        redirect = cfg.branch.ras && cfg.branch.ras->pop() == 0;
        if (redirect)
            ++stats.mispredicts;
    }
    out.mispredicted = redirect;

    // ------------------------------------------------------------------
    // Commit (in order per lane, shared commit bandwidth).
    // ------------------------------------------------------------------
    Cycle commit_time = cfg.commit_cal->reserve(
        std::max(done_time + 1, lane.last_commit_));
    // Pipeline-order invariant: an op can only retire after it
    // finished executing, and commits stay in lane order.
    DPX_DCHECK_GT(commit_time, done_time);
    DPX_DCHECK_GE(commit_time, lane.last_commit_);
    lane.last_commit_ = commit_time;
    out.commit_time = commit_time;

    cap_slot = commit_time;
    if (rob_slot)
        *rob_slot = commit_time;
    if (lsq_slot)
        *lsq_slot = commit_time;
    lane.done_ring_[lane.op_index_ & dep_mask] = done_time;
    ++lane.op_index_;

    // Next fetch: same cycle is fine (calendar limits bandwidth);
    // redirects refetch after resolution plus the redirect penalty.
    lane.next_fetch_ = fetch_time;
    if (redirect) {
        Cycle penalty = in_order ? config_.redirect_penalty_ino
                                 : config_.redirect_penalty_ooo;
        lane.next_fetch_ =
            std::max(lane.next_fetch_, done_time + penalty);
        lane.last_fetch_line_ = ~Addr(0);
    }

    ++stats.ops;
    if (out.remote)
        ++stats.remote_ops;
    out.end_of_request = op.end_of_request;
    return out;
}

void
CoreEngine::reset()
{
    fetch_cal_.reset();
    issue_cal_.reset();
    commit_cal_.reset();
    std::fill(rob_ring_.begin(), rob_ring_.end(), 0);
    std::fill(lq_ring_.begin(), lq_ring_.end(), 0);
    std::fill(sq_ring_.begin(), sq_ring_.end(), 0);
    rob_pos_ = lq_pos_ = sq_pos_ = 0;
}

} // namespace duplexity
