/**
 * @file
 * The interface a workload model implements to feed a hardware thread.
 *
 * Since the SoA op pipeline (DESIGN.md §4b), a source has two supply
 * shapes over one draw stream:
 *
 *  - next(): the classic per-op form.  In SoA mode (the default) it
 *    serves from an internal OpBlock refilled kOpBlockCapacity ops at
 *    a time, so every per-op consumer (HSMT lanes, scenario event
 *    loops, benches) gets the batched fill loops without changing
 *    shape.  With setSoaPipelineEnabled(false) it calls the
 *    subclass's per-op drawNext() directly — the forced-legacy
 *    reference the differential wall compares against.
 *  - fillBlock(): the bulk form for consumers that step whole blocks
 *    (calibration, smt_sweep, CoreEngine::processBlock callers).
 *
 * Both shapes deliver the identical op sequence: a block fill makes
 * exactly the RNG calls n drawNext() calls would (the draw-order
 * contract; see workload/op_block.hh and the golden differential
 * suites).
 */

#ifndef DPX_CPU_INSTR_SOURCE_HH
#define DPX_CPU_INSTR_SOURCE_HH

#include "cpu/isa.hh"
#include "sim/check.hh"
#include "workload/op_block.hh"

namespace duplexity
{

/**
 * An endless program: each call produces the next micro-op of one
 * thread. Implementations own their randomness so that replaying a
 * source is deterministic.
 */
class InstrSource
{
  public:
    virtual ~InstrSource() = default;

    /** Produce the next micro-op in program order. */
    MicroOp
    next()
    {
        MicroOp op;
        if (soa_enabled_) {
            if (cursor_ == block_.size())
                refill();
            op = block_.get(cursor_++);
        } else {
            op = drawNext();
        }
        if (op.end_of_request && delivered_requests_)
            ++*delivered_requests_;
        return op;
    }

    /**
     * Append up to @p count ops to @p block (fewer only if the block
     * lacks room).  Bulk hand-off: request completions count as
     * delivered here, not when the consumer reads the lanes.
     */
    void
    fillBlock(OpBlock &block, std::size_t count)
    {
        DPX_DCHECK_LE(count, kOpBlockCapacity - block.size());
        // A source that has buffered ops for next() cannot also serve
        // bulk fills: the buffered ops would be skipped. Consumers use
        // one shape per source.
        DPX_DCHECK_EQ(cursor_, block_.size());
        if (!soa_enabled_) {
            for (std::size_t i = 0; i < count; ++i)
                block.push(drawNext());
        } else {
            const std::size_t before = block.size();
            fillBlockImpl(block, count);
            DPX_DCHECK_EQ(block.size(), before + count);
            ++soa_fills_;
        }
        if (delivered_requests_) {
            const bool *eor = block.endOfRequest();
            std::uint64_t n = 0;
            for (std::size_t i = block.size() - count;
                 i < block.size(); ++i)
                n += eor[i];
            *delivered_requests_ += n;
        }
    }

    /**
     * Force the legacy per-op draw path (differential-wall reference).
     * Only legal while no ops are buffered — in practice, right after
     * construction or at an exact block boundary.
     */
    void
    setSoaPipelineEnabled(bool enabled)
    {
        DPX_CHECK_EQ(cursor_, block_.size())
            << " — cannot switch draw paths with ops buffered";
        if (soa_enabled_ != enabled) {
            soa_enabled_ = enabled;
            onSoaPipelineToggled(enabled);
        }
    }

    bool soaPipelineEnabled() const { return soa_enabled_; }

    /** Bulk fills served by fillBlockImpl — zero when
     *  setSoaPipelineEnabled(false) forces the per-op draw loop
     *  (fast-path counter; bench telemetry, not simulated state). */
    std::uint64_t soaFills() const { return soa_fills_; }

  protected:
    /** Legacy per-op draw; must consume RNG exactly like the fill. */
    virtual MicroOp drawNext() = 0;

    /**
     * Bulk draw: append exactly @p count ops, making the same RNG
     * calls in the same order as @p count drawNext() calls.  Called
     * only in SoA mode.  Default: the per-op loop (correct for any
     * source; subclasses override with hoisted fill loops).
     */
    virtual void
    fillBlockImpl(OpBlock &block, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            block.push(drawNext());
    }

    /** Subclass hook: propagate the switch to internal streams. */
    virtual void onSoaPipelineToggled(bool /*enabled*/) {}

    /**
     * Subclasses with a delivered-request counter register it here;
     * the base increments it as end-of-request ops are handed out
     * (per op via next(), per block via fillBlock) so buffering never
     * runs the counter ahead of the consumer.
     */
    void
    setDeliveredRequestCounter(std::uint64_t *counter)
    {
        delivered_requests_ = counter;
    }

  private:
    void
    refill()
    {
        // fillBlockImpl (not fillBlock) on purpose: buffered requests
        // count as delivered op by op in next(), as the consumer
        // actually sees them, never at pre-draw time.
        block_.clear();
        cursor_ = 0;
        fillBlockImpl(block_, kOpBlockCapacity);
        DPX_DCHECK_EQ(block_.size(), kOpBlockCapacity);
        ++soa_fills_;
    }

    OpBlock block_;
    std::size_t cursor_ = 0;
    std::uint64_t *delivered_requests_ = nullptr;
    bool soa_enabled_ = true;
    /** Bulk fills served (bench telemetry; see soaFills()). */
    std::uint64_t soa_fills_ = 0;
};

} // namespace duplexity

#endif // DPX_CPU_INSTR_SOURCE_HH
