/**
 * @file
 * The interface a workload model implements to feed a hardware thread.
 */

#ifndef DPX_CPU_INSTR_SOURCE_HH
#define DPX_CPU_INSTR_SOURCE_HH

#include "cpu/isa.hh"

namespace duplexity
{

/**
 * An endless program: each call produces the next micro-op of one
 * thread. Implementations own their randomness so that replaying a
 * source is deterministic.
 */
class InstrSource
{
  public:
    virtual ~InstrSource() = default;

    /** Produce the next micro-op in program order. */
    virtual MicroOp next() = 0;
};

} // namespace duplexity

#endif // DPX_CPU_INSTR_SOURCE_HH
