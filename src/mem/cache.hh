/**
 * @file
 * Set-associative cache model with LRU replacement, optional
 * write-through/no-write-allocate behaviour (for the Duplexity L0
 * filter caches), port-contention accounting, and eviction callbacks
 * (used to maintain L1-D inclusion over the master-core's L0-D and to
 * forward invalidations, per Section III-B3).
 *
 * Threads are disambiguated by address: every synthetic thread draws
 * addresses from its own region of the 64-bit space (shared text
 * segments deliberately overlap), so tags need no explicit ASID.
 */

#ifndef DPX_MEM_CACHE_HH
#define DPX_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/slot_calendar.hh"
#include "sim/types.hh"

namespace duplexity
{

/** Static geometry and policy of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 2;
    Cycle hit_latency = 2;
    /** Accesses the array accepts per cycle (port contention). */
    std::uint32_t ports = 2;
    /** Write-through (true) vs write-back (false). */
    bool write_through = false;
    /** Allocate lines on write misses. */
    bool write_allocate = true;
    /** Attach a stream prefetcher at this level. */
    bool prefetch = false;
    /** Residual exposure of a prefetch-covered miss (cycles). */
    Cycle prefetch_latency = 4;

    std::uint64_t numSets() const;
};

/** Aggregate counters for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double missRate() const;
};

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Cycles from issue to data, including port contention. */
    Cycle latency = 0;
    /** True when a dirty victim was written back. */
    bool writeback = false;
};

class Cache
{
  public:
    /** Called with the line address of every evicted/replaced line. */
    using EvictionListener = std::function<void(Addr line_addr)>;

    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Perform an access. On a miss the line is allocated (subject to
     * policy) and the latency *excludes* the lower-level fill — the
     * caller (a MemPort chain) adds it.
     */
    CacheAccessResult access(Addr addr, bool is_write, Cycle now);

    /** State-preserving lookup. */
    bool probe(Addr addr) const;

    /** Drop a line if present (coherence invalidation). */
    void invalidate(Addr addr);

    /** Drop every line. */
    void invalidateAll();

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    void setEvictionListener(EvictionListener fn);

    void resetStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; // larger == more recent
    };

    Addr lineAddr(Addr addr) const { return addr >> line_shift_; }
    std::uint64_t setIndex(Addr line) const;
    Addr tagOf(Addr line) const;

    /** Port-contention delay for an access starting at @p now. */
    Cycle contentionDelay(Cycle now);

    CacheConfig config_;
    CacheStats stats_;
    std::uint32_t line_shift_;
    std::uint64_t num_sets_;
    std::vector<Line> lines_; // num_sets * assoc
    std::uint64_t lru_clock_ = 0;
    /** Port bandwidth tracker; tolerates out-of-order access times
     *  from the one-pass pipeline model. */
    SlotCalendar ports_;
    EvictionListener eviction_listener_;
};

} // namespace duplexity

#endif // DPX_MEM_CACHE_HH
