/**
 * @file
 * Set-associative cache model with LRU replacement, optional
 * write-through/no-write-allocate behaviour (for the Duplexity L0
 * filter caches), port-contention accounting, and eviction callbacks
 * (used to maintain L1-D inclusion over the master-core's L0-D and to
 * forward invalidations, per Section III-B3).
 *
 * Threads are disambiguated by address: every synthetic thread draws
 * addresses from its own region of the 64-bit space (shared text
 * segments deliberately overlap), so tags need no explicit ASID.
 *
 * Hot-path structure (bit-identical to the plain set scan, proven by
 * tests/mem/fastpath_diff_test.cc): access() first consults a small
 * per-requestor MRU line filter — the last-hit line address and its
 * way index, slotted by the address-region bits that distinguish
 * threads — and only falls back to the full set scan (out-of-line,
 * accessSlow) on a filter miss. A filter entry is self-validating:
 * it hits only when the recorded way still holds the recorded line
 * (valid + tag match), so evictions, fills, and invalidations can
 * never make it lie; they also eagerly clear matching entries so the
 * filter never wastes its one compare on a dead line.
 */

#ifndef DPX_MEM_CACHE_HH
#define DPX_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/slot_calendar.hh"
#include "sim/types.hh"

namespace duplexity
{

/** Static geometry and policy of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 2;
    Cycle hit_latency = 2;
    /** Accesses the array accepts per cycle (port contention). */
    std::uint32_t ports = 2;
    /** Write-through (true) vs write-back (false). */
    bool write_through = false;
    /** Allocate lines on write misses. */
    bool write_allocate = true;
    /** Attach a stream prefetcher at this level. */
    bool prefetch = false;
    /** Residual exposure of a prefetch-covered miss (cycles). */
    Cycle prefetch_latency = 4;

    std::uint64_t numSets() const;
};

/** Aggregate counters for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double missRate() const;
};

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Cycles from issue to data, including port contention. */
    Cycle latency = 0;
    /** True when a dirty victim was written back. */
    bool writeback = false;
};

class Cache
{
  public:
    /** Called with the line address of every evicted/replaced line. */
    using EvictionListener = std::function<void(Addr line_addr)>;

    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Perform an access. On a miss the line is allocated (subject to
     * policy) and the latency *excludes* the lower-level fill — the
     * caller (a MemPort chain) adds it.
     */
    CacheAccessResult
    access(Addr addr, bool is_write, Cycle now)
    {
        if (fast_path_enabled_) {
            CacheAccessResult result;
            if (tryFastHit(addr, is_write, now, result.latency)) {
                result.hit = true;
                return result;
            }
        }
        return accessSlow(addr, is_write, now);
    }

    /**
     * MRU-filter hit attempt: on success performs the full hit-path
     * bookkeeping (LRU stamp, dirty bit, stats, port contention) and
     * writes the access latency to @p latency. On failure it has NO
     * side effects — accessSlow() repeats nothing.
     */
    bool
    tryFastHit(Addr addr, bool is_write, Cycle now, Cycle &latency)
    {
        const Addr line = addr >> line_shift_;
        MruEntry &mru = mru_[mruSlot(line)];
        if (mru.line != line)
            return false;
        Line &entry = lines_[mru.index];
        // Self-validation: the recorded way must still hold this
        // exact line (the index pins the set, the tag pins the line).
        if (!entry.valid || entry.tag != (line >> tag_shift_))
            return false;
        latency = hit_latency_ + contentionDelay(now);
        entry.lru = ++lru_clock_;
        ++stats_.hits;
        ++fast_hits_;
        if (is_write) {
            if (write_through_)
                ++stats_.writebacks; // write propagated downstream
            else
                entry.dirty = true;
        }
        return true;
    }

    /** Full set-scan path (also the miss path). Exercised directly by
     *  the differential tests; access() falls back here. */
    CacheAccessResult accessSlow(Addr addr, bool is_write, Cycle now);

    /**
     * Gate the MRU filter (default on). The slow path never consults
     * the filter, so disabling it reproduces the legacy scan-only
     * behaviour — the differential tests' reference configuration.
     */
    void
    setFastPathEnabled(bool on)
    {
        fast_path_enabled_ = on;
        if (!on)
            clearMru();
    }

    bool fastPathEnabled() const { return fast_path_enabled_; }

    /** Hits served by the MRU filter — deliberately NOT part of
     *  CacheStats: the differential tests require fast and forced-
     *  slow stats to be identical, and this counter measures the
     *  fast path itself (bench telemetry, not simulated state). */
    std::uint64_t fastHits() const { return fast_hits_; }

    /** State-preserving lookup. */
    bool probe(Addr addr) const;

    /** Drop a line if present (coherence invalidation). */
    void invalidate(Addr addr);

    /** Drop every line. */
    void invalidateAll();

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    void setEvictionListener(EvictionListener fn);

    void resetStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; // larger == more recent
    };

    /** One MRU filter entry: a line address and the index of the way
     *  (within lines_) that held it when it last hit. */
    struct MruEntry
    {
        Addr line = ~Addr(0); // sentinel: matches no real line
        std::uint64_t index = 0;
    };

    /** Filter entries, slotted per requestor (see mruSlot). Sized to
     *  keep the 32-context dyad pool plus fillers and the master from
     *  aliasing (a 4-slot filter thrashed under 32 batch threads —
     *  each slot juggled 8 requestors and missed almost always). The
     *  slot choice only affects the filter's hit rate, never an
     *  access outcome: entries stay self-validating. */
    static constexpr std::size_t kMruSlots = 64;

    Addr lineAddr(Addr addr) const { return addr >> line_shift_; }
    std::uint64_t setIndex(Addr line) const { return line & set_mask_; }
    /** Tag extraction; num_sets_ is a power of two, so the ctor
     *  precomputes the shift and the hot path never divides. */
    Addr tagOf(Addr line) const { return line >> tag_shift_; }

    /**
     * Filter slot for a line: synthetic threads own disjoint 4 GiB
     * address regions (bits 32+ carry the thread id — see
     * workload/catalog.cc dataRegion), so the high bits separate
     * requestors sharing one cache. The low line bits are folded in
     * because a single thread alternates between access streams
     * (sequential walk, hot set, random) — with one slot per thread
     * every alternation evicted the entry and the filter almost never
     * hit. Folding spreads concurrent streams of one thread over
     * different slots; entries stay self-validating, so the slot
     * choice only moves the filter's hit rate, never an outcome.
     */
    std::size_t
    mruSlot(Addr line) const
    {
        return ((line >> mru_shift_) ^ line) & (kMruSlots - 1);
    }

    void clearMru();

    /** Drop any filter entry recording @p line (eviction/invalidate
     *  coherence; self-validation would also catch it, this keeps the
     *  filter from wasting its compare on a dead line). */
    void
    forgetMru(Addr line)
    {
        MruEntry &mru = mru_[mruSlot(line)];
        if (mru.line == line)
            mru.line = ~Addr(0);
    }

    /** Port-contention delay for an access starting at @p now. */
    Cycle
    contentionDelay(Cycle now)
    {
        Cycle granted = ports_.reserve(now);
        return granted - now;
    }

    CacheConfig config_;
    CacheStats stats_;
    std::uint32_t line_shift_;
    std::uint32_t tag_shift_;
    std::uint32_t mru_shift_;
    std::uint64_t num_sets_;
    std::uint64_t set_mask_;
    /** Hot scalar copies of config_ fields (the config struct drags a
     *  std::string through the cache line otherwise). */
    Cycle hit_latency_;
    bool write_through_;
    bool fast_path_enabled_ = true;
    bool has_listener_ = false;
    std::vector<Line> lines_; // num_sets * assoc
    std::array<MruEntry, kMruSlots> mru_{};
    std::uint64_t lru_clock_ = 0;
    /** MRU-filter hit count (bench telemetry; see fastHits()). */
    std::uint64_t fast_hits_ = 0;
    /** Port bandwidth tracker; tolerates out-of-order access times
     *  from the one-pass pipeline model. */
    SlotCalendar ports_;
    EvictionListener eviction_listener_;
};

} // namespace duplexity

#endif // DPX_MEM_CACHE_HH
