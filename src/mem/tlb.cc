#include "mem/tlb.hh"

#include <bit>

#include "sim/check.hh"

namespace duplexity
{

namespace
{

// Internal organization: both levels are 4-way set associative (the
// timing behaviour of interest is reach, not associativity detail).
constexpr std::uint32_t tlb_ways = 4;

} // namespace

double
TlbStats::missRate() const
{
    std::uint64_t n = accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(misses) / static_cast<double>(n);
}

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    DPX_CHECK_GE(config.entries, tlb_ways) << " — TLB too small";
    DPX_CHECK(std::has_single_bit(config.page_bytes))
        << " — page size must be a power of two";
    DPX_CHECK(std::has_single_bit(config.entries / tlb_ways))
        << " — TLB sets must be a power of two";
    if (config.l2_entries > 0) {
        DPX_CHECK(std::has_single_bit(config.l2_entries / tlb_ways))
            << " — L2 TLB sets must be a power of two";
    }
    page_shift_ = std::countr_zero(config.page_bytes);
    // Requestor bits: synthetic threads are separated at address
    // bit 32 (workload/catalog.cc regions), which is VPN bit
    // (32 - page_shift_) after dropping the page offset.
    filter_shift_ = page_shift_ < 32 ? 32 - page_shift_ : 0;
    entries_.assign(config.entries, Entry{});
    l2_entries_.assign(config.l2_entries, Entry{});
}

void
Tlb::clearFilter()
{
    filter_.fill(VpnSlot{});
}

Addr
Tlb::vpnOf(Addr addr) const
{
    return addr >> page_shift_;
}

Tlb::Entry *
Tlb::lookupLevel(std::vector<Entry> &level, Addr vpn,
                 std::uint64_t &clock)
{
    const std::size_t sets = level.size() / tlb_ways;
    // The set mask below relies on the ctor's power-of-two checks.
    DPX_DCHECK(std::has_single_bit(sets));
    Entry *base = &level[(vpn & (sets - 1)) * tlb_ways];
    for (std::uint32_t w = 0; w < tlb_ways; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lru = ++clock;
            return &base[w];
        }
    }
    return nullptr;
}

Tlb::Entry *
Tlb::fillLevel(std::vector<Entry> &level, Addr vpn,
               std::uint64_t &clock)
{
    if (level.empty())
        return nullptr;
    const std::size_t sets = level.size() / tlb_ways;
    Entry *base = &level[(vpn & (sets - 1)) * tlb_ways];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < tlb_ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->vpn = vpn;
    victim->valid = true;
    victim->lru = ++clock;
    return victim;
}

Cycle
Tlb::accessSlow(Addr addr)
{
    const Addr vpn = vpnOf(addr);
    if (Entry *hit = lookupLevel(entries_, vpn, lru_clock_)) {
        ++stats_.hits;
        rememberL1(vpn, hit);
        return 0;
    }
    if (!l2_entries_.empty()) {
        if (lookupLevel(l2_entries_, vpn, lru_clock_)) {
            ++stats_.l2_hits;
            rememberL1(vpn, fillLevel(entries_, vpn, lru_clock_));
            return config_.l2_latency;
        }
    }
    ++stats_.misses;
    rememberL1(vpn, fillLevel(entries_, vpn, lru_clock_));
    fillLevel(l2_entries_, vpn, lru_clock_);
    return config_.walk_latency;
}

bool
Tlb::probe(Addr addr) const
{
    const Addr vpn = vpnOf(addr);
    const std::size_t sets = entries_.size() / tlb_ways;
    const Entry *base = &entries_[(vpn & (sets - 1)) * tlb_ways];
    for (std::uint32_t w = 0; w < tlb_ways; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::flush()
{
    for (Entry &entry : entries_)
        entry.valid = false;
    for (Entry &entry : l2_entries_)
        entry.valid = false;
    // Shootdown: every filter entry's slot is now invalid, so the
    // self-validation check would reject them anyway; clear the
    // filter so the next accesses do not probe dead slots.
    clearFilter();
}

} // namespace duplexity
