#include "mem/cache.hh"

#include <bit>

#include "sim/check.hh"

namespace duplexity
{

std::uint64_t
CacheConfig::numSets() const
{
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * assoc);
}

double
CacheStats::missRate() const
{
    std::uint64_t n = accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(misses) / static_cast<double>(n);
}

Cache::Cache(const CacheConfig &config)
    : config_(config), ports_(config.ports)
{
    DPX_CHECK(std::has_single_bit(config.line_bytes))
        << " — cache line size must be a power of two: " << config.name;
    DPX_CHECK(config.assoc > 0 && config.ports > 0)
        << " — cache needs assoc > 0 and ports > 0: " << config.name;
    num_sets_ = config.numSets();
    DPX_CHECK(num_sets_ > 0 && std::has_single_bit(num_sets_))
        << " — cache set count must be a power of two: " << config.name;
    line_shift_ = std::countr_zero(config.line_bytes);
    lines_.assign(num_sets_ * config.assoc, Line{});
}

std::uint64_t
Cache::setIndex(Addr line) const
{
    return line & (num_sets_ - 1);
}

Addr
Cache::tagOf(Addr line) const
{
    return line / num_sets_;
}

Cycle
Cache::contentionDelay(Cycle now)
{
    Cycle granted = ports_.reserve(now);
    return granted - now;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write, Cycle now)
{
    CacheAccessResult result;
    result.latency = config_.hit_latency + contentionDelay(now);

    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    DPX_DCHECK_LT(set, num_sets_);
    const Addr tag = tagOf(line);
    Line *base = &lines_[set * config_.assoc];

    // Hit path.
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.lru = ++lru_clock_;
            if (is_write && !config_.write_through)
                entry.dirty = true;
            ++stats_.hits;
            result.hit = true;
            if (is_write && config_.write_through)
                ++stats_.writebacks; // write propagated downstream
            return result;
        }
    }

    ++stats_.misses;
    if (is_write && !config_.write_allocate) {
        // No-allocate write miss: data goes straight downstream.
        if (config_.write_through)
            ++stats_.writebacks;
        return result;
    }

    // Victim selection: invalid way first, else LRU.
    Line *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) {
            ++stats_.writebacks;
            result.writeback = true;
        }
        if (eviction_listener_) {
            Addr victim_line =
                victim->tag * num_sets_ + set;
            eviction_listener_(victim_line << line_shift_);
        }
    }

    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write && !config_.write_through;
    victim->lru = ++lru_clock_;
    if (is_write && config_.write_through)
        ++stats_.writebacks;
    return result;
}

bool
Cache::probe(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    const Addr tag = tagOf(line);
    const Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    const Addr tag = tagOf(line);
    Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.valid = false;
            entry.dirty = false;
            ++stats_.invalidations;
            // Invalidations forward to inclusion dependents just
            // like evictions (Section III-B3).
            if (eviction_listener_)
                eviction_listener_(line << line_shift_);
            return;
        }
    }
}

void
Cache::invalidateAll()
{
    for (Line &entry : lines_) {
        if (entry.valid) {
            entry.valid = false;
            entry.dirty = false;
            ++stats_.invalidations;
        }
    }
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &entry : lines_)
        n += entry.valid ? 1 : 0;
    return n;
}

void
Cache::setEvictionListener(EvictionListener fn)
{
    eviction_listener_ = std::move(fn);
}

} // namespace duplexity
