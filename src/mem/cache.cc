#include "mem/cache.hh"

#include <bit>

#include "sim/check.hh"

namespace duplexity
{

std::uint64_t
CacheConfig::numSets() const
{
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * assoc);
}

double
CacheStats::missRate() const
{
    std::uint64_t n = accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(misses) / static_cast<double>(n);
}

Cache::Cache(const CacheConfig &config)
    : config_(config), ports_(config.ports)
{
    DPX_CHECK(std::has_single_bit(config.line_bytes))
        << " — cache line size must be a power of two: " << config.name;
    DPX_CHECK(config.assoc > 0 && config.ports > 0)
        << " — cache needs assoc > 0 and ports > 0: " << config.name;
    num_sets_ = config.numSets();
    DPX_CHECK(num_sets_ > 0 && std::has_single_bit(num_sets_))
        << " — cache set count must be a power of two: " << config.name;
    line_shift_ = std::countr_zero(config.line_bytes);
    tag_shift_ = std::countr_zero(num_sets_);
    set_mask_ = num_sets_ - 1;
    // Requestor bits: synthetic threads are separated at address
    // bit 32 (workload/catalog.cc regions), which is line bit
    // (32 - line_shift_) after dropping the offset.
    mru_shift_ = line_shift_ < 32 ? 32 - line_shift_ : 0;
    hit_latency_ = config.hit_latency;
    write_through_ = config.write_through;
    lines_.assign(num_sets_ * config.assoc, Line{});
}

void
Cache::clearMru()
{
    mru_.fill(MruEntry{});
}

CacheAccessResult
Cache::accessSlow(Addr addr, bool is_write, Cycle now)
{
    CacheAccessResult result;
    result.latency = hit_latency_ + contentionDelay(now);

    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    DPX_DCHECK_LT(set, num_sets_);
    const Addr tag = tagOf(line);
    Line *base = &lines_[set * config_.assoc];

    // Hit path (MRU-filter miss, or filter disabled).
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.lru = ++lru_clock_;
            if (is_write && !write_through_)
                entry.dirty = true;
            ++stats_.hits;
            result.hit = true;
            if (is_write && write_through_)
                ++stats_.writebacks; // write propagated downstream
            if (fast_path_enabled_) {
                mru_[mruSlot(line)] =
                    MruEntry{line,
                             static_cast<std::uint64_t>(&entry -
                                                        lines_.data())};
            }
            return result;
        }
    }

    ++stats_.misses;
    if (is_write && !config_.write_allocate) {
        // No-allocate write miss: data goes straight downstream.
        if (write_through_)
            ++stats_.writebacks;
        return result;
    }

    // Victim selection: invalid way first, else LRU.
    Line *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) {
            ++stats_.writebacks;
            result.writeback = true;
        }
        const Addr victim_line = (victim->tag << tag_shift_) | set;
        forgetMru(victim_line);
        if (has_listener_)
            eviction_listener_(victim_line << line_shift_);
    }

    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write && !write_through_;
    victim->lru = ++lru_clock_;
    if (is_write && write_through_)
        ++stats_.writebacks;
    if (fast_path_enabled_) {
        mru_[mruSlot(line)] =
            MruEntry{line,
                     static_cast<std::uint64_t>(victim - lines_.data())};
    }
    return result;
}

bool
Cache::probe(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    const Addr tag = tagOf(line);
    const Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const std::uint64_t set = setIndex(line);
    const Addr tag = tagOf(line);
    Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.valid = false;
            entry.dirty = false;
            ++stats_.invalidations;
            forgetMru(line);
            // Invalidations forward to inclusion dependents just
            // like evictions (Section III-B3).
            if (has_listener_)
                eviction_listener_(line << line_shift_);
            return;
        }
    }
}

void
Cache::invalidateAll()
{
    for (Line &entry : lines_) {
        if (entry.valid) {
            entry.valid = false;
            entry.dirty = false;
            ++stats_.invalidations;
        }
    }
    clearMru();
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &entry : lines_)
        n += entry.valid ? 1 : 0;
    return n;
}

void
Cache::setEvictionListener(EvictionListener fn)
{
    eviction_listener_ = std::move(fn);
    has_listener_ = static_cast<bool>(eviction_listener_);
}

} // namespace duplexity
