/**
 * @file
 * Translation lookaside buffer model. Table I provisions 64-entry I/D
 * TLBs; the master-core replicates them per mode so filler-threads
 * cannot thrash the master-thread's translations.
 *
 * Hot-path structure (bit-identical, proven by
 * tests/mem/fastpath_diff_test.cc): access() first checks a small
 * per-requestor VPN filter — the last-hit page and the L1 slot that
 * held it, slotted by the address-region bits that distinguish
 * threads — and only on a filter miss takes the out-of-line two-level
 * walk (accessSlow). A filter entry is self-validating (it hits only
 * when the recorded slot still holds the recorded page), so fills and
 * shootdowns cannot make it lie; flush() clears the filter as well.
 */

#ifndef DPX_MEM_TLB_HH
#define DPX_MEM_TLB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace duplexity
{

struct TlbConfig
{
    std::uint32_t entries = 64;
    /** Unified second-level TLB entries (0 disables the L2). */
    std::uint32_t l2_entries = 1024;
    std::uint32_t page_bytes = 4096;
    /** L1-miss/L2-hit refill latency (cycles). */
    Cycle l2_latency = 8;
    /** Full page-table-walk penalty on an L2 miss (cycles). */
    Cycle walk_latency = 40;
};

struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t misses = 0; // full walks

    std::uint64_t accesses() const { return hits + l2_hits + misses; }
    double missRate() const;
};

/** Two-level set-associative, LRU-replaced TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    const TlbConfig &config() const { return config_; }
    const TlbStats &stats() const { return stats_; }

    /** @return added latency: 0 on an L1 hit, l2_latency on an L2
     *  hit, walk_latency on a full walk. */
    Cycle
    access(Addr addr)
    {
        if (fast_path_enabled_) {
            const Addr vpn = addr >> page_shift_;
            const VpnSlot &slot = filter_[filterSlot(vpn)];
            if (vpn == slot.vpn) {
                Entry &entry = entries_[slot.index];
                // Self-validation: the recorded L1 slot must still
                // hold this page (fills may have displaced it).
                if (entry.valid && entry.vpn == vpn) {
                    entry.lru = ++lru_clock_;
                    ++stats_.hits;
                    ++fast_hits_;
                    return 0;
                }
            }
        }
        return accessSlow(addr);
    }

    /** Two-level walk (the filter-miss path); exercised directly by
     *  the differential tests. */
    Cycle accessSlow(Addr addr);

    /** Gate the VPN filter (default on); disabling reproduces the
     *  legacy walk-only behaviour for differential testing. */
    void
    setFastPathEnabled(bool on)
    {
        fast_path_enabled_ = on;
        if (!on)
            clearFilter();
    }

    bool fastPathEnabled() const { return fast_path_enabled_; }

    /** Lookups served by the VPN filter — NOT part of TlbStats (the
     *  differential tests require fast/slow stats identity; this
     *  counter measures the fast path itself). */
    std::uint64_t fastHits() const { return fast_hits_; }

    bool probe(Addr addr) const;

    void flush();

    void resetStats() { stats_ = TlbStats{}; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    /** One VPN filter entry: a page and the L1 slot that last held
     *  it (~0 sentinel matches no real page). */
    struct VpnSlot
    {
        Addr vpn = ~Addr(0);
        std::uint64_t index = 0;
    };

    /** Filter entries, slotted per requestor like Cache::kMruSlots:
     *  synthetic threads own disjoint 4 GiB regions (bits 32+ carry
     *  the thread id), so slotting by the first VPN bits above bit 31
     *  keeps the dyad's 32-context pool from thrashing one entry. The
     *  low VPN bits are folded in so one thread's concurrent page
     *  streams (sequential data walk, hot pages, code) occupy
     *  different slots instead of evicting each other; entries are
     *  self-validating, so slotting only affects the hit rate. */
    static constexpr std::size_t kVpnSlots = 64;

    std::size_t
    filterSlot(Addr vpn) const
    {
        return ((vpn >> filter_shift_) ^ vpn) & (kVpnSlots - 1);
    }

    void clearFilter();

    Addr vpnOf(Addr addr) const;

    /** Look up one level; @return the hit entry or nullptr. */
    static Entry *lookupLevel(std::vector<Entry> &level, Addr vpn,
                              std::uint64_t &clock);
    /** Fill one level; @return the filled entry (nullptr if the
     *  level is absent). */
    static Entry *fillLevel(std::vector<Entry> &level, Addr vpn,
                            std::uint64_t &clock);

    void
    rememberL1(Addr vpn, const Entry *entry)
    {
        VpnSlot &slot = filter_[filterSlot(vpn)];
        slot.vpn = vpn;
        slot.index = static_cast<std::uint64_t>(entry - entries_.data());
    }

    TlbConfig config_;
    TlbStats stats_;
    std::uint32_t page_shift_;
    std::uint32_t filter_shift_;
    bool fast_path_enabled_ = true;
    /** Per-requestor VPN filter (see filterSlot). */
    std::array<VpnSlot, kVpnSlots> filter_{};
    std::vector<Entry> entries_;
    std::vector<Entry> l2_entries_;
    std::uint64_t lru_clock_ = 0;
    /** VPN-filter hit count (bench telemetry; see fastHits()). */
    std::uint64_t fast_hits_ = 0;
};

} // namespace duplexity

#endif // DPX_MEM_TLB_HH
