/**
 * @file
 * Translation lookaside buffer model. Table I provisions 64-entry I/D
 * TLBs; the master-core replicates them per mode so filler-threads
 * cannot thrash the master-thread's translations.
 */

#ifndef DPX_MEM_TLB_HH
#define DPX_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace duplexity
{

struct TlbConfig
{
    std::uint32_t entries = 64;
    /** Unified second-level TLB entries (0 disables the L2). */
    std::uint32_t l2_entries = 1024;
    std::uint32_t page_bytes = 4096;
    /** L1-miss/L2-hit refill latency (cycles). */
    Cycle l2_latency = 8;
    /** Full page-table-walk penalty on an L2 miss (cycles). */
    Cycle walk_latency = 40;
};

struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t misses = 0; // full walks

    std::uint64_t accesses() const { return hits + l2_hits + misses; }
    double missRate() const;
};

/** Fully associative, LRU-replaced TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    const TlbConfig &config() const { return config_; }
    const TlbStats &stats() const { return stats_; }

    /** @return added latency: 0 on an L1 hit, l2_latency on an L2
     *  hit, walk_latency on a full walk. */
    Cycle access(Addr addr);

    bool probe(Addr addr) const;

    void flush();

    void resetStats() { stats_ = TlbStats{}; }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    Addr vpnOf(Addr addr) const;

    /** Look up / fill one level; @return true on hit. */
    static bool lookupLevel(std::vector<Entry> &level, Addr vpn,
                            std::uint64_t &clock);
    static void fillLevel(std::vector<Entry> &level, Addr vpn,
                          std::uint64_t &clock);

    TlbConfig config_;
    TlbStats stats_;
    std::uint32_t page_shift_;
    std::vector<Entry> entries_;
    std::vector<Entry> l2_entries_;
    std::uint64_t lru_clock_ = 0;
};

} // namespace duplexity

#endif // DPX_MEM_TLB_HH
