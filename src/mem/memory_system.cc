#include "mem/memory_system.hh"

#include "sim/logging.hh"

namespace duplexity
{

CachePort::CachePort(const CacheConfig &config, MemPort *below)
    : cache_(config), below_(below),
      write_through_(config.write_through),
      write_allocate_(config.write_allocate),
      prefetch_(config.prefetch),
      prefetch_latency_(config.prefetch_latency)
{
}

Cycle
CachePort::accessFill(AccessType type, Addr addr, Cycle now)
{
    const bool is_store = type == AccessType::Store;
    // The inline fast path already failed (with no side effects), so
    // go straight to the full scan/miss path.
    CacheAccessResult res = cache_.accessSlow(addr, is_store, now);
    Cycle latency = res.latency;

    if (!res.hit) {
        // Fill from below unless this is a no-allocate write miss.
        bool fills = !is_store || write_allocate_;
        if (fills && below_) {
            bool covered =
                prefetch_ &&
                prefetcher_.access(addr >>
                                   6 /* line, 64B (Table I) */);
            Cycle below_latency =
                below_->access(AccessType::Load, addr, now + latency);
            // A prefetch-covered miss still consumes downstream
            // bandwidth (the access above) but exposes only a small
            // residual latency.
            latency += covered ? prefetch_latency_ : below_latency;
        }
    }
    if (is_store && write_through_ && below_) {
        // Posted write: downstream state is updated but the store does
        // not lengthen the producer's critical path.
        below_->access(AccessType::Store, addr, now + latency);
    }
    return latency;
}

MemSystemConfig
MemSystemConfig::makeDefault()
{
    MemSystemConfig cfg;
    cfg.l1i = CacheConfig{"l1i", 64 * 1024, 64, 2, /*hit*/ 2,
                          /*ports*/ 2, false, true, /*prefetch*/ true};
    cfg.l1d = CacheConfig{"l1d", 64 * 1024, 64, 2, /*hit*/ 2,
                          /*ports*/ 2, false, true, /*prefetch*/ true};
    cfg.llc = CacheConfig{"llc", 2 * 1024 * 1024, 64, 8, /*hit*/ 14,
                          /*ports*/ 2, false, true};
    // 2KB L0-I / 4KB L0-D write-through filters (Section III-B3);
    // they are bandwidth filters, not prefetching caches.
    cfg.l0i = CacheConfig{"l0i", 2 * 1024, 64, 2, /*hit*/ 1,
                          /*ports*/ 2, true, true};
    cfg.l0d = CacheConfig{"l0d", 4 * 1024, 64, 2, /*hit*/ 1,
                          /*ports*/ 2, true, true};
    cfg.itlb = TlbConfig{}; // 64-entry L1, 1K-entry L2 (Table I)
    cfg.dtlb = TlbConfig{};
    cfg.dram_ns = 50.0;
    cfg.frequency = Frequency(3.4e9);
    cfg.dyad_link_cycles = 3;
    return cfg;
}

DyadMemorySystem::DyadMemorySystem(const MemSystemConfig &config)
    : config_(config)
{
    const Cycle dram_cycles = config.frequency.microsToCycles(
        config.dram_ns / 1000.0);
    dram_ = std::make_unique<DramPort>(dram_cycles);
    llc_ = std::make_unique<CachePort>(config.llc, dram_.get());

    master_l1i_ = std::make_unique<CachePort>(config.l1i, llc_.get());
    master_l1d_ = std::make_unique<CachePort>(config.l1d, llc_.get());
    lender_l1i_ = std::make_unique<CachePort>(config.l1i, llc_.get());
    lender_l1d_ = std::make_unique<CachePort>(config.l1d, llc_.get());
    repl_l1i_ = std::make_unique<CachePort>(config.l1i, llc_.get());
    repl_l1d_ = std::make_unique<CachePort>(config.l1d, llc_.get());

    link_i_ = std::make_unique<LinkPort>(config.dyad_link_cycles,
                                         lender_l1i_.get());
    link_d_ = std::make_unique<LinkPort>(config.dyad_link_cycles,
                                         lender_l1d_.get());
    l0i_ = std::make_unique<CachePort>(config.l0i, link_i_.get());
    l0d_ = std::make_unique<CachePort>(config.l0d, link_d_.get());

    // The lender L1s maintain inclusion over the master-core's L0
    // filters and forward invalidations (Section III-B3).
    lender_l1i_->cache().setEvictionListener(
        [this](Addr line) { l0i_->cache().invalidate(line); });
    lender_l1d_->cache().setEvictionListener(
        [this](Addr line) { l0d_->cache().invalidate(line); });

    master_itlb_ = std::make_unique<Tlb>(config.itlb);
    master_dtlb_ = std::make_unique<Tlb>(config.dtlb);
    filler_itlb_ = std::make_unique<Tlb>(config.itlb);
    filler_dtlb_ = std::make_unique<Tlb>(config.dtlb);
    lender_itlb_ = std::make_unique<Tlb>(config.itlb);
    lender_dtlb_ = std::make_unique<Tlb>(config.dtlb);
}

MemPath
DyadMemorySystem::masterPath()
{
    return MemPath{master_l1i_.get(), master_l1d_.get(),
                   master_itlb_.get(), master_dtlb_.get()};
}

MemPath
DyadMemorySystem::fillerRemotePath()
{
    return MemPath{l0i_.get(), l0d_.get(), filler_itlb_.get(),
                   filler_dtlb_.get()};
}

MemPath
DyadMemorySystem::fillerLocalPath()
{
    return MemPath{master_l1i_.get(), master_l1d_.get(),
                   master_itlb_.get(), master_dtlb_.get()};
}

MemPath
DyadMemorySystem::fillerReplicatedPath()
{
    return MemPath{repl_l1i_.get(), repl_l1d_.get(), filler_itlb_.get(),
                   filler_dtlb_.get()};
}

MemPath
DyadMemorySystem::lenderPath()
{
    return MemPath{lender_l1i_.get(), lender_l1d_.get(),
                   lender_itlb_.get(), lender_dtlb_.get()};
}

void
DyadMemorySystem::setFastPathsEnabled(bool on)
{
    llc_->cache().setFastPathEnabled(on);
    master_l1i_->cache().setFastPathEnabled(on);
    master_l1d_->cache().setFastPathEnabled(on);
    lender_l1i_->cache().setFastPathEnabled(on);
    lender_l1d_->cache().setFastPathEnabled(on);
    repl_l1i_->cache().setFastPathEnabled(on);
    repl_l1d_->cache().setFastPathEnabled(on);
    l0i_->cache().setFastPathEnabled(on);
    l0d_->cache().setFastPathEnabled(on);
    master_itlb_->setFastPathEnabled(on);
    master_dtlb_->setFastPathEnabled(on);
    filler_itlb_->setFastPathEnabled(on);
    filler_dtlb_->setFastPathEnabled(on);
    lender_itlb_->setFastPathEnabled(on);
    lender_dtlb_->setFastPathEnabled(on);
}

void
DyadMemorySystem::resetStats()
{
    llc_->cache().resetStats();
    master_l1i_->cache().resetStats();
    master_l1d_->cache().resetStats();
    lender_l1i_->cache().resetStats();
    lender_l1d_->cache().resetStats();
    repl_l1i_->cache().resetStats();
    repl_l1d_->cache().resetStats();
    l0i_->cache().resetStats();
    l0d_->cache().resetStats();
    master_itlb_->resetStats();
    master_dtlb_->resetStats();
    filler_itlb_->resetStats();
    filler_dtlb_->resetStats();
    lender_itlb_->resetStats();
    lender_dtlb_->resetStats();
}

} // namespace duplexity
