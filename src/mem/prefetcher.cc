#include "mem/prefetcher.hh"

namespace duplexity
{

bool
StreamPrefetcher::access(Addr line)
{
    for (Stream &stream : streams_) {
        if (stream.valid && line == stream.next_line) {
            stream.next_line = line + 1;
            ++covered_;
            return true;
        }
    }
    // Train a new ascending stream on this (miss) line.
    Stream &victim = streams_[next_victim_];
    next_victim_ = (next_victim_ + 1) % num_streams;
    victim.valid = true;
    victim.next_line = line + 1;
    ++trained_;
    return false;
}

} // namespace duplexity
