/**
 * @file
 * Memory-path composition for a Duplexity dyad.
 *
 * A MemPort chain models one path through the hierarchy. The dyad
 * builds every path used by the seven evaluated designs:
 *
 *  - master path:        master L1I/L1D -> shared LLC -> DRAM
 *  - lender path:        lender L1I/L1D -> shared LLC -> DRAM
 *  - filler-on-master (Duplexity): L0I/L0D (write-through filters) ->
 *        +3-cycle dyad link -> lender L1I/L1D -> LLC -> DRAM,
 *        with lender L1D maintaining inclusion over the L0D
 *  - filler-local (MorphCore): filler threads thrash the master's own
 *        L1s and TLBs (no state protection)
 *  - replicated (Duplexity+replication): private full-size filler L1s
 *
 * Hot-path structure: the top level of every path is a CachePort (the
 * class is final and MemPath stores the concrete type, so the per-op
 * fetch/load/store calls devirtualize), and CachePort::access first
 * tries the cache's inline MRU fast hit before taking the out-of-line
 * miss walk (accessFill). Only the rare descent through lower levels
 * pays virtual dispatch.
 */

#ifndef DPX_MEM_MEMORY_SYSTEM_HH
#define DPX_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "mem/cache.hh"
#include "mem/prefetcher.hh"
#include "mem/tlb.hh"
#include "sim/types.hh"

namespace duplexity
{

/** Kinds of memory access a core issues. */
enum class AccessType
{
    IFetch,
    Load,
    Store,
};

/** One level (or link) in a memory path. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** @return total latency in cycles from @p now to completion. */
    virtual Cycle access(AccessType type, Addr addr, Cycle now) = 0;
};

/** Terminal DRAM port with a fixed access latency. */
class DramPort final : public MemPort
{
  public:
    explicit DramPort(Cycle latency) : latency_(latency) {}

    Cycle
    access(AccessType, Addr, Cycle) override
    {
        ++accesses_;
        return latency_;
    }

    std::uint64_t accesses() const { return accesses_; }

  private:
    Cycle latency_;
    std::uint64_t accesses_ = 0;
};

/** A cache backed by a lower-level port. */
class CachePort final : public MemPort
{
  public:
    CachePort(const CacheConfig &config, MemPort *below);

    /**
     * Inline fast path: an MRU-filter hit needs no downstream fill,
     * so only write-through stores touch the level below (the posted
     * write existed on the legacy hit path too). Everything else —
     * filter miss, scan hit, miss walk — is out of line.
     */
    Cycle
    access(AccessType type, Addr addr, Cycle now) override
    {
        const bool is_store = type == AccessType::Store;
        Cycle latency;
        if (cache_.tryFastHit(addr, is_store, now, latency)) {
            if (is_store && write_through_ && below_ != nullptr)
                below_->access(AccessType::Store, addr, now + latency);
            return latency;
        }
        return accessFill(type, addr, now);
    }

    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }
    const StreamPrefetcher &prefetcher() const { return prefetcher_; }

  private:
    /** Scan-hit / miss path: full cache scan plus the fill walk
     *  through the level below. */
    Cycle accessFill(AccessType type, Addr addr, Cycle now);

    Cache cache_;
    MemPort *below_;
    /** Hot scalar copies of cache policy (see Cache). */
    bool write_through_;
    bool write_allocate_;
    bool prefetch_;
    Cycle prefetch_latency_;
    StreamPrefetcher prefetcher_;
};

/** Fixed-latency link (the +3-cycle dyad interconnect). */
class LinkPort final : public MemPort
{
  public:
    LinkPort(Cycle extra, MemPort *below) : extra_(extra), below_(below) {}

    Cycle
    access(AccessType type, Addr addr, Cycle now) override
    {
        ++traversals_;
        return extra_ + below_->access(type, addr, now + extra_);
    }

    std::uint64_t traversals() const { return traversals_; }

  private:
    Cycle extra_;
    MemPort *below_;
    std::uint64_t traversals_ = 0;
};

/**
 * A complete fetch+data path with its TLBs; what a CPU engine binds a
 * thread to. The top-level ports are always CachePorts — storing the
 * final type devirtualizes (and inlines) the per-op access calls.
 */
struct MemPath
{
    CachePort *instr = nullptr;
    CachePort *data = nullptr;
    Tlb *itlb = nullptr;
    Tlb *dtlb = nullptr;

    /** Instruction fetch latency (ITLB + instruction path). */
    Cycle
    fetch(Addr addr, Cycle now) const
    {
        Cycle latency = itlb ? itlb->access(addr) : 0;
        latency += instr->access(AccessType::IFetch, addr, now + latency);
        return latency;
    }

    /** Load-to-use latency (DTLB + data path). */
    Cycle
    load(Addr addr, Cycle now) const
    {
        Cycle latency = dtlb ? dtlb->access(addr) : 0;
        latency += data->access(AccessType::Load, addr, now + latency);
        return latency;
    }

    /**
     * Store latency for state/statistics purposes (pipelines retire
     * stores through store buffers; callers typically charge 1 cycle).
     */
    Cycle
    store(Addr addr, Cycle now) const
    {
        Cycle latency = dtlb ? dtlb->access(addr) : 0;
        latency += data->access(AccessType::Store, addr, now + latency);
        return latency;
    }
};

/** Geometry of every structure in a dyad's memory system (Table I). */
struct MemSystemConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig llc;
    CacheConfig l0i;
    CacheConfig l0d;
    TlbConfig itlb;
    TlbConfig dtlb;
    /** DRAM access latency (paper: 50 ns). */
    double dram_ns = 50.0;
    Frequency frequency{3.4e9};
    /** Extra cycles for filler access to the lender's L1s. */
    Cycle dyad_link_cycles = 3;

    /** Table I values. */
    static MemSystemConfig makeDefault();
};

/**
 * All caches, TLBs, and ports of one dyad, pre-wired for every design
 * variant; designs pick which paths they drive.
 */
class DyadMemorySystem
{
  public:
    explicit DyadMemorySystem(const MemSystemConfig &config);

    const MemSystemConfig &config() const { return config_; }

    /** Master-thread path (also the SMT co-runner's path). */
    MemPath masterPath();

    /** Duplexity filler path: L0 filters -> link -> lender L1s. */
    MemPath fillerRemotePath();

    /** MorphCore filler path: master L1s and master TLBs (thrash). */
    MemPath fillerLocalPath();

    /** Duplexity+replication filler path: private full-size L1s. */
    MemPath fillerReplicatedPath();

    /** Lender-core path. */
    MemPath lenderPath();

    Cache &masterL1i() { return master_l1i_->cache(); }
    Cache &masterL1d() { return master_l1d_->cache(); }
    Cache &lenderL1i() { return lender_l1i_->cache(); }
    Cache &lenderL1d() { return lender_l1d_->cache(); }
    Cache &replL1i() { return repl_l1i_->cache(); }
    Cache &replL1d() { return repl_l1d_->cache(); }
    Cache &l0i() { return l0i_->cache(); }
    Cache &l0d() { return l0d_->cache(); }
    Cache &llc() { return llc_->cache(); }
    DramPort &dram() { return *dram_; }
    LinkPort &dyadLinkI() { return *link_i_; }
    LinkPort &dyadLinkD() { return *link_d_; }

    Tlb &masterItlb() { return *master_itlb_; }
    Tlb &masterDtlb() { return *master_dtlb_; }
    Tlb &fillerItlb() { return *filler_itlb_; }
    Tlb &fillerDtlb() { return *filler_dtlb_; }

    /** Gate every cache and TLB fast path at once (differential
     *  testing: a disabled system reproduces legacy behaviour). */
    void setFastPathsEnabled(bool on);

    void resetStats();

  private:
    MemSystemConfig config_;

    std::unique_ptr<DramPort> dram_;
    std::unique_ptr<CachePort> llc_;
    std::unique_ptr<CachePort> master_l1i_;
    std::unique_ptr<CachePort> master_l1d_;
    std::unique_ptr<CachePort> lender_l1i_;
    std::unique_ptr<CachePort> lender_l1d_;
    std::unique_ptr<CachePort> repl_l1i_;
    std::unique_ptr<CachePort> repl_l1d_;
    std::unique_ptr<LinkPort> link_i_;
    std::unique_ptr<LinkPort> link_d_;
    std::unique_ptr<CachePort> l0i_;
    std::unique_ptr<CachePort> l0d_;

    std::unique_ptr<Tlb> master_itlb_;
    std::unique_ptr<Tlb> master_dtlb_;
    std::unique_ptr<Tlb> filler_itlb_;
    std::unique_ptr<Tlb> filler_dtlb_;
    std::unique_ptr<Tlb> lender_itlb_;
    std::unique_ptr<Tlb> lender_dtlb_;
};

} // namespace duplexity

#endif // DPX_MEM_MEMORY_SYSTEM_HH
