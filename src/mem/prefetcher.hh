/**
 * @file
 * Stream prefetcher model.
 *
 * The evaluated cores (gem5 O3/InO with modern L1s) rely on stride/
 * stream prefetching to keep streaming workloads (PageRank's vertex
 * scans, RSC's memcpy) off the DRAM critical path. This model tracks
 * a small table of ascending line streams; an access that continues a
 * tracked stream is considered covered by an in-flight prefetch and
 * pays only a small exposure latency, while the fill still consumes
 * downstream bandwidth.
 */

#ifndef DPX_MEM_PREFETCHER_HH
#define DPX_MEM_PREFETCHER_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace duplexity
{

class StreamPrefetcher
{
  public:
    /**
     * Observe an access to @p line (line address, not byte address).
     * @return true when the line was covered by a tracked stream
     * (the stream advances); false otherwise (a new stream may be
     * trained).
     */
    bool access(Addr line);

    std::uint64_t coveredCount() const { return covered_; }
    std::uint64_t trainedCount() const { return trained_; }

  private:
    struct Stream
    {
        Addr next_line = 0;
        bool valid = false;
    };

    static constexpr std::size_t num_streams = 16;
    std::array<Stream, num_streams> streams_{};
    std::size_t next_victim_ = 0;
    std::uint64_t covered_ = 0;
    std::uint64_t trained_ = 0;
};

} // namespace duplexity

#endif // DPX_MEM_PREFETCHER_HH
