/**
 * @file
 * Statistical compute-stream generator.
 *
 * Real microservice binaries cannot ship with this reproduction, so
 * every workload is modeled by the statistics that actually drive the
 * core and memory models: instruction mix, data working-set size and
 * spatial locality, code footprint, static-branch population and
 * predictability, and dependency distances (ILP). Section V's
 * workloads are expressed as parameter sets over this generator (see
 * workload/catalog.hh).
 */

#ifndef DPX_WORKLOAD_SYNTHETIC_HH
#define DPX_WORKLOAD_SYNTHETIC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/isa.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "workload/op_block.hh"

namespace duplexity
{

/** Fractions of each op class; the remainder is plain integer ALU. */
struct InstrMix
{
    double load = 0.25;
    double store = 0.10;
    double branch = 0.15;
    double call = 0.01;
    double int_mul = 0.03;
    double fp = 0.05;
};

/** Microarchitectural character of a compute region. */
struct WorkloadParams
{
    /** Base of this thread's private address region. */
    Addr data_base = 0;
    /** Data working-set size in bytes. */
    std::uint64_t data_ws_bytes = 1 << 20;
    /** Probability a memory access continues the current stream
     *  (8-byte stride, so ~8 accesses share a cache line). */
    double spatial_locality = 0.45;
    /** Probability of touching the small hot region (locals, stack,
     *  hot dictionary entries) instead of the cold working set. */
    double hot_prob = 0.30;
    /** Size of the hot region. */
    std::uint64_t hot_bytes = 16 * 1024;

    /** Base of the code region (sharable between threads). */
    Addr code_base = 0;
    /** Code footprint in bytes. */
    std::uint64_t code_bytes = 64 * 1024;

    /** Number of distinct static branch sites. */
    std::uint32_t static_branches = 256;
    /** Probability a taken branch lands near the current pc (short
     *  loops/ifs); the rest jump "far". */
    double near_jump_prob = 0.88;
    /** Reach of a near jump in bytes. */
    std::uint64_t near_jump_range = 1024;
    /** Far jumps mostly re-enter the hot code path; the rest touch
     *  cold code anywhere in the region. */
    double far_to_hot_prob = 0.85;
    /** Size of the hot code path. */
    std::uint64_t hot_code_bytes = 8 * 1024;
    /**
     * Fraction of branch sites that behave like loop back-edges with
     * a fixed period (learnable by history predictors); the rest are
     * biased-random with taken probability @ref branch_taken_bias.
     */
    double periodic_branch_frac = 0.5;
    double branch_taken_bias = 0.92;

    /** Probability an op carries a RAW dependency. */
    double dep_prob = 0.5;
    /** Mean dependency distance in micro-ops (geometric). */
    double mean_dep_dist = 4.0;

    InstrMix mix;
};

/**
 * Emits an endless stream of compute micro-ops with the configured
 * character. Control flow walks the code region sequentially with
 * jumps at taken branches; data accesses mix streaming with uniform
 * working-set references.
 *
 * Draw paths: in SoA mode (default) every RNG draw is served from a
 * raw 64-bit block pre-filled by Rng::fillBlock and mapped through
 * the shared Rng::toUniform/toBelow helpers, so the value sequence is
 * bit-identical to the legacy per-call path; fillOpsInto() is the
 * batched fill loop with the per-op parameter reloads hoisted out.
 * setSoaDrawEnabled(false) forces the legacy path (the differential
 * wall's reference).  The two paths may not be mixed once raw words
 * are buffered: switching off then would skip buffered draws.
 */
class SyntheticStream
{
  public:
    SyntheticStream(const WorkloadParams &params, Rng rng);

    const WorkloadParams &params() const { return params_; }

    /** Generate the next compute micro-op. */
    MicroOp next();

    /**
     * Append @p n compute micro-ops to @p block, drawing exactly as
     * n next() calls would (the SoA draw-order contract).
     */
    void fillOpsInto(OpBlock &block, std::size_t n);

    /** Force the legacy per-call draw path (see class comment). */
    void
    setSoaDrawEnabled(bool enabled)
    {
        DPX_CHECK(enabled || raw_pos_ == kRawBlock)
            << " — cannot leave SoA mode with raw draws buffered";
        soa_ = enabled;
    }

    bool soaDrawEnabled() const { return soa_; }

    /** Raw-buffer refills served by refillRaw — zero when
     *  setSoaDrawEnabled(false) forces per-call draws (fast-path
     *  counter; bench telemetry, not simulated state). */
    std::uint64_t soaRefills() const { return soa_refills_; }

  private:
    struct BranchSite
    {
        bool periodic;
        std::uint32_t period;  // for periodic sites
        std::uint32_t counter;
        double taken_bias;     // for biased sites
    };

    /** Raw words per refill of the draw buffer. */
    static constexpr std::size_t kRawBlock = 256;

    Addr nextDataAddr();
    Addr advancePc();
    std::uint8_t sampleDep();

    /**
     * Refill the raw buffer and precompute the uniform lane: uni_[i]
     * is exactly Rng::toUniform(raw_[i]) (vector map behind
     * simd::simdEnabled(), scalar loop otherwise — same bits either
     * way), so uniform consumers read a lane instead of re-mapping
     * per draw.  Defined in the .cc to keep sim/simd.hh out of this
     * header's include set.
     */
    void refillRaw();

    /** One raw draw — buffer in SoA mode, rng_ directly otherwise. */
    std::uint64_t
    drawRaw()
    {
        if (!soa_)
            return rng_.next();
        if (raw_pos_ == kRawBlock)
            refillRaw();
        return raw_[raw_pos_++];
    }

    double
    drawUniform()
    {
        if (!soa_)
            return Rng::toUniform(rng_.next());
        if (raw_pos_ == kRawBlock)
            refillRaw();
        return uni_[raw_pos_++];
    }
    bool drawChance(double p) { return drawUniform() < p; }

    std::uint64_t
    drawBelow(std::uint64_t n)
    {
        return Rng::toBelow(drawRaw(), n);
    }

    WorkloadParams params_;
    Rng rng_;
    std::vector<BranchSite> branches_;
    Addr pc_;
    Addr stream_addr_;
    std::uint64_t raw_[kRawBlock];
    /** uni_[i] == Rng::toUniform(raw_[i]), filled by refillRaw(). */
    double uni_[kRawBlock];
    std::size_t raw_pos_ = kRawBlock;  // == kRawBlock: buffer empty
    bool soa_ = true;
    /** Refill count (bench telemetry; see soaRefills()). */
    std::uint64_t soa_refills_ = 0;
};

} // namespace duplexity

#endif // DPX_WORKLOAD_SYNTHETIC_HH
