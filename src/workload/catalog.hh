/**
 * @file
 * The workload catalog: parameterizations of every workload in the
 * paper's evaluation (Section V), the Figure 1(c) FLANN-X-Y variants,
 * and the SPEC-like profiles of Figure 2(a).
 */

#ifndef DPX_WORKLOAD_CATALOG_HH
#define DPX_WORKLOAD_CATALOG_HH

#include <string>
#include <vector>

#include "workload/microservice.hh"
#include "workload/synthetic.hh"

namespace duplexity
{

/** The four latency-critical microservices of Section V. */
enum class MicroserviceKind
{
    FlannHA,  //!< FLANN high-accuracy: 10 µs LSH lookup + 1 µs RDMA
    FlannLL,  //!< FLANN low-latency: 1 µs lookup + 1 µs RDMA
    Rsc,      //!< remote storage cache: 3 µs cuckoo + 8 µs Optane +
              //!< 4 µs memcpy
    McRouter, //!< consistent-hash router: 3 µs route + 3-5 µs leaf KV
    WordStem, //!< Porter stemmer: 4 µs compute, no µs stalls
};

/** Batch graph analytics run by filler threads. */
enum class BatchKind
{
    PageRank,
    Sssp,
};

/** SPEC-like profiles for the Figure 2(a) thread-scaling study. */
enum class SpecProfile
{
    Cpu, //!< compute-bound, cache-resident, high ILP
    Mem, //!< memory-bound, large working set
    Mix, //!< balanced
};

const char *toString(MicroserviceKind kind);
const char *toString(BatchKind kind);
const char *toString(SpecProfile profile);

std::vector<MicroserviceKind> allMicroservices();

/** Build the spec for one of the paper's microservices. */
MicroserviceSpec makeMicroservice(MicroserviceKind kind);

/**
 * The FLANN-X-Y variants of Section II-B: @p compute_us of LSH work
 * per @p stall_us (exponential) remote access; stall_us == 0 yields
 * the stall-free baseline. Used saturated (100 % load) in Fig 1(c).
 */
BatchSpec makeFlannXY(double compute_us, double stall_us,
                      ThreadId uid);

/** Graph-analytics filler thread (Section V: 1 µs RDMA stall per
 *  1–2 µs of compute, ~half the vertices remote). */
BatchSpec makeBatch(BatchKind kind, ThreadId uid);

/** A continuous SPEC-like stream (no µs stalls). */
BatchSpec makeSpecBatch(SpecProfile profile, ThreadId uid);

} // namespace duplexity

#endif // DPX_WORKLOAD_CATALOG_HH
