#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

SyntheticStream::SyntheticStream(const WorkloadParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    DPX_CHECK(params.data_ws_bytes >= 64 && params.code_bytes >= 64) << " — working sets must cover at least one line";
    DPX_CHECK(params.static_branches > 0) << " — need at least one branch";

    branches_.reserve(params.static_branches);
    for (std::uint32_t i = 0; i < params.static_branches; ++i) {
        BranchSite site;
        site.periodic = rng_.chance(params.periodic_branch_frac);
        // Loop periods between 4 and 8 iterations (within reach of
        // the gshare history even under history noise).
        site.period = 4 + static_cast<std::uint32_t>(rng_.below(5));
        site.counter = 0;
        site.taken_bias = params.branch_taken_bias;
        branches_.push_back(site);
    }

    pc_ = params.code_base;
    stream_addr_ = params.data_base;
}

Addr
SyntheticStream::nextDataAddr()
{
    double pick = rng_.uniform();
    if (pick < params_.spatial_locality) {
        // Streaming: 8-byte stride, so consecutive accesses share a
        // cache line and a hardware-friendly access pattern emerges.
        stream_addr_ += 8;
        if (stream_addr_ >= params_.data_base + params_.data_ws_bytes)
            stream_addr_ = params_.data_base;
        return stream_addr_;
    }
    if (pick < params_.spatial_locality + params_.hot_prob) {
        Addr offset =
            rng_.below(std::max<std::uint64_t>(
                params_.hot_bytes / 8, 1)) * 8;
        return params_.data_base + offset;
    }
    Addr offset = rng_.below(params_.data_ws_bytes / 8) * 8;
    return params_.data_base + offset;
}

Addr
SyntheticStream::advancePc()
{
    pc_ += 4;
    if (pc_ >= params_.code_base + params_.code_bytes)
        pc_ = params_.code_base;
    return pc_;
}

std::uint8_t
SyntheticStream::sampleDep()
{
    if (!rng_.chance(params_.dep_prob))
        return 0;
    // Geometric with the configured mean, clipped to the dep window.
    double d = 1.0 + rng_.exponential(params_.mean_dep_dist - 1.0);
    return static_cast<std::uint8_t>(std::min(d, 63.0));
}

MicroOp
SyntheticStream::next()
{
    MicroOp op;
    op.pc = advancePc();

    double pick = rng_.uniform();
    const InstrMix &mix = params_.mix;

    if (pick < mix.load) {
        op.cls = OpClass::Load;
        op.mem_addr = nextDataAddr();
        op.dep1 = sampleDep();
    } else if (pick < mix.load + mix.store) {
        op.cls = OpClass::Store;
        op.mem_addr = nextDataAddr();
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else if (pick < mix.load + mix.store + mix.branch) {
        op.cls = OpClass::Branch;
        // One branch site per code line: the PC follows the fetch
        // walk (no teleporting fetches), the static-branch population
        // stays bounded (BTB-sized), and each location keeps
        // consistent behaviour.
        op.pc &= ~Addr(63);
        BranchSite &site =
            branches_[(op.pc >> 6) % branches_.size()];
        if (site.periodic) {
            // Not-taken once per period (loop exit), taken otherwise.
            op.taken = ++site.counter % site.period != 0;
        } else {
            op.taken = rng_.chance(site.taken_bias);
        }
        op.dep1 = sampleDep();
        if (op.taken) {
            // Redirect the fetch stream: mostly short loop/if jumps;
            // far jumps usually re-enter the hot path, occasionally
            // calling into cold code.
            if (rng_.chance(params_.near_jump_prob)) {
                std::uint64_t reach = params_.near_jump_range;
                Addr lo = pc_ > params_.code_base + reach
                              ? pc_ - reach
                              : params_.code_base;
                Addr span = std::min<Addr>(
                    2 * reach,
                    params_.code_base + params_.code_bytes - lo);
                pc_ = lo + rng_.below(std::max<Addr>(span / 4, 1)) * 4;
            } else if (rng_.chance(params_.far_to_hot_prob)) {
                pc_ = params_.code_base +
                      rng_.below(std::max<std::uint64_t>(
                          params_.hot_code_bytes / 4, 1)) * 4;
            } else {
                pc_ = params_.code_base +
                      rng_.below(params_.code_bytes / 4) * 4;
            }
        }
    } else if (pick < mix.load + mix.store + mix.branch + mix.call) {
        // Calls and returns alternate to keep the RAS balanced.
        op.cls = rng_.chance(0.5) ? OpClass::Call : OpClass::Return;
        op.taken = true;
    } else if (pick <
               mix.load + mix.store + mix.branch + mix.call +
                   mix.int_mul) {
        op.cls = OpClass::IntMul;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else if (pick < mix.load + mix.store + mix.branch + mix.call +
                          mix.int_mul + mix.fp) {
        op.cls = OpClass::FpAlu;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else {
        op.cls = OpClass::IntAlu;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    }
    return op;
}

} // namespace duplexity
