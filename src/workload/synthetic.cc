#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/simd.hh"
#include "sim/vmath.hh"

namespace duplexity
{

SyntheticStream::SyntheticStream(const WorkloadParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    DPX_CHECK(params.data_ws_bytes >= 64 && params.code_bytes >= 64) << " — working sets must cover at least one line";
    DPX_CHECK(params.static_branches > 0) << " — need at least one branch";

    branches_.reserve(params.static_branches);
    for (std::uint32_t i = 0; i < params.static_branches; ++i) {
        BranchSite site;
        site.periodic = rng_.chance(params.periodic_branch_frac);
        // Loop periods between 4 and 8 iterations (within reach of
        // the gshare history even under history noise).
        site.period = 4 + static_cast<std::uint32_t>(rng_.below(5));
        site.counter = 0;
        site.taken_bias = params.branch_taken_bias;
        branches_.push_back(site);
    }

    pc_ = params.code_base;
    stream_addr_ = params.data_base;
}

void
SyntheticStream::refillRaw()
{
    rng_.fillBlock(raw_, kRawBlock);
    // Precompute the whole uniform lane in one pass: uni_[i] must be
    // bit-identical to Rng::toUniform(raw_[i]) (draw-order contract,
    // DESIGN.md §4b.1) — the vector map is exact (sim/simd.hh), and
    // the forced-scalar loop applies the same arithmetic.
    if (simd::simdEnabled()) {
        simd::toUniformBlock(raw_, uni_, kRawBlock);
    } else {
        for (std::size_t i = 0; i < kRawBlock; ++i)
            uni_[i] = Rng::toUniform(raw_[i]);
    }
    raw_pos_ = 0;
    ++soa_refills_;
}

Addr
SyntheticStream::nextDataAddr()
{
    double pick = drawUniform();
    if (pick < params_.spatial_locality) {
        // Streaming: 8-byte stride, so consecutive accesses share a
        // cache line and a hardware-friendly access pattern emerges.
        stream_addr_ += 8;
        if (stream_addr_ >= params_.data_base + params_.data_ws_bytes)
            stream_addr_ = params_.data_base;
        return stream_addr_;
    }
    if (pick < params_.spatial_locality + params_.hot_prob) {
        Addr offset =
            drawBelow(std::max<std::uint64_t>(
                params_.hot_bytes / 8, 1)) * 8;
        return params_.data_base + offset;
    }
    Addr offset = drawBelow(params_.data_ws_bytes / 8) * 8;
    return params_.data_base + offset;
}

Addr
SyntheticStream::advancePc()
{
    pc_ += 4;
    if (pc_ >= params_.code_base + params_.code_bytes)
        pc_ = params_.code_base;
    return pc_;
}

std::uint8_t
SyntheticStream::sampleDep()
{
    if (!drawChance(params_.dep_prob))
        return 0;
    // Geometric with the configured mean, clipped to the dep window.
    // Same arithmetic as Rng::exponential over the buffered draw;
    // log1pNeg is bit-identical to std::log1p(-u) in every mode.
    double d = 1.0 - (params_.mean_dep_dist - 1.0) *
                         vmath::log1pNeg(drawUniform());
    return static_cast<std::uint8_t>(std::min(d, 63.0));
}

MicroOp
SyntheticStream::next()
{
    MicroOp op;
    op.pc = advancePc();

    double pick = drawUniform();
    const InstrMix &mix = params_.mix;

    if (pick < mix.load) {
        op.cls = OpClass::Load;
        op.mem_addr = nextDataAddr();
        op.dep1 = sampleDep();
    } else if (pick < mix.load + mix.store) {
        op.cls = OpClass::Store;
        op.mem_addr = nextDataAddr();
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else if (pick < mix.load + mix.store + mix.branch) {
        op.cls = OpClass::Branch;
        // One branch site per code line: the PC follows the fetch
        // walk (no teleporting fetches), the static-branch population
        // stays bounded (BTB-sized), and each location keeps
        // consistent behaviour.
        op.pc &= ~Addr(63);
        BranchSite &site =
            branches_[(op.pc >> 6) % branches_.size()];
        if (site.periodic) {
            // Not-taken once per period (loop exit), taken otherwise.
            op.taken = ++site.counter % site.period != 0;
        } else {
            op.taken = drawChance(site.taken_bias);
        }
        op.dep1 = sampleDep();
        if (op.taken) {
            // Redirect the fetch stream: mostly short loop/if jumps;
            // far jumps usually re-enter the hot path, occasionally
            // calling into cold code.
            if (drawChance(params_.near_jump_prob)) {
                std::uint64_t reach = params_.near_jump_range;
                Addr lo = pc_ > params_.code_base + reach
                              ? pc_ - reach
                              : params_.code_base;
                Addr span = std::min<Addr>(
                    2 * reach,
                    params_.code_base + params_.code_bytes - lo);
                pc_ = lo + drawBelow(std::max<Addr>(span / 4, 1)) * 4;
            } else if (drawChance(params_.far_to_hot_prob)) {
                pc_ = params_.code_base +
                      drawBelow(std::max<std::uint64_t>(
                          params_.hot_code_bytes / 4, 1)) * 4;
            } else {
                pc_ = params_.code_base +
                      drawBelow(params_.code_bytes / 4) * 4;
            }
        }
    } else if (pick < mix.load + mix.store + mix.branch + mix.call) {
        // Calls and returns alternate to keep the RAS balanced.
        op.cls = drawChance(0.5) ? OpClass::Call : OpClass::Return;
        op.taken = true;
    } else if (pick <
               mix.load + mix.store + mix.branch + mix.call +
                   mix.int_mul) {
        op.cls = OpClass::IntMul;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else if (pick < mix.load + mix.store + mix.branch + mix.call +
                          mix.int_mul + mix.fp) {
        op.cls = OpClass::FpAlu;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    } else {
        op.cls = OpClass::IntAlu;
        op.dep1 = sampleDep();
        op.dep2 = sampleDep();
    }
    return op;
}

// dpx-analyze: hot-entry — per-op generation loop feeding the block
// engine; DPX106 walks the callees for stray libm logs.
void
SyntheticStream::fillOpsInto(OpBlock &block, std::size_t n)
{
    if (!soa_) {
        for (std::size_t i = 0; i < n; ++i)
            block.push(next());
        return;
    }

    const std::size_t base = block.size();
    DPX_DCHECK_LE(n, kOpBlockCapacity - base);

    OpClass *out_cls = block.cls() + base;
    Addr *out_pc = block.pc() + base;
    Addr *out_mem = block.memAddr() + base;
    bool *out_taken = block.taken() + base;
    std::uint8_t *out_dep1 = block.dep1() + base;
    std::uint8_t *out_dep2 = block.dep2() + base;

    // Lanes most ops leave at their MicroOp defaults are bulk-zeroed
    // once; the per-op body writes only what its class produces.
    std::fill_n(out_mem, n, Addr(0));
    std::fill_n(out_taken, n, false);
    std::fill_n(out_dep1, n, std::uint8_t(0));
    std::fill_n(out_dep2, n, std::uint8_t(0));
    std::fill_n(block.stallUs() + base, n, 0.0f);
    std::fill_n(block.endOfRequest() + base, n, false);

    // Hoist every per-op parameter reload: cumulative mix thresholds
    // (the legacy if-chain re-sums them per op), region geometry, and
    // the mutable walk state (pc, stream address, raw-buffer cursor).
    const WorkloadParams &P = params_;
    const double c_load = P.mix.load;
    const double c_store = c_load + P.mix.store;
    const double c_branch = c_store + P.mix.branch;
    const double c_call = c_branch + P.mix.call;
    const double c_mul = c_call + P.mix.int_mul;
    const double c_fp = c_mul + P.mix.fp;
    const Addr data_base = P.data_base;
    const Addr data_end = P.data_base + P.data_ws_bytes;
    const std::uint64_t hot_slots =
        std::max<std::uint64_t>(P.hot_bytes / 8, 1);
    const std::uint64_t ws_slots = P.data_ws_bytes / 8;
    const Addr code_base = P.code_base;
    const Addr code_end = P.code_base + P.code_bytes;
    const std::uint64_t hot_code_slots =
        std::max<std::uint64_t>(P.hot_code_bytes / 4, 1);
    const std::uint64_t code_slots = P.code_bytes / 4;
    const double spatial = P.spatial_locality;
    const double spatial_or_hot = P.spatial_locality + P.hot_prob;
    const double dep_prob = P.dep_prob;
    const double dep_mean = P.mean_dep_dist - 1.0;
    BranchSite *const sites = branches_.data();
    const std::size_t n_sites = branches_.size();

    Addr pc = pc_;
    Addr stream_addr = stream_addr_;
    std::size_t rpos = raw_pos_;

    // Exactly drawRaw()/drawUniform()/... with the cursor in a local.
    // uni() reads the uniform lane refillRaw() precomputed (vector
    // map) instead of re-mapping the raw word per draw; the two
    // cursors stay fused, so the consumed raw sequence is unchanged.
    auto raw = [&]() -> std::uint64_t {
        if (rpos == kRawBlock) {
            refillRaw();
            rpos = 0;
        }
        return raw_[rpos++];
    };
    auto uni = [&]() -> double {
        if (rpos == kRawBlock) {
            refillRaw();
            rpos = 0;
        }
        return uni_[rpos++];
    };
    auto below = [&](std::uint64_t m) -> std::uint64_t {
        return Rng::toBelow(raw(), m);
    };
    auto dep = [&]() -> std::uint8_t {
        if (!(uni() < dep_prob))
            return 0;
        double d = 1.0 - dep_mean * vmath::log1pNeg(uni());
        return static_cast<std::uint8_t>(std::min(d, 63.0));
    };
    auto data_addr = [&]() -> Addr {
        double pick = uni();
        if (pick < spatial) {
            stream_addr += 8;
            if (stream_addr >= data_end)
                stream_addr = data_base;
            return stream_addr;
        }
        if (pick < spatial_or_hot)
            return data_base + below(hot_slots) * 8;
        return data_base + below(ws_slots) * 8;
    };

    for (std::size_t i = 0; i < n; ++i) {
        pc += 4;
        if (pc >= code_end)
            pc = code_base;
        out_pc[i] = pc;

        const double pick = uni();
        if (pick < c_load) {
            out_cls[i] = OpClass::Load;
            out_mem[i] = data_addr();
            out_dep1[i] = dep();
        } else if (pick < c_store) {
            out_cls[i] = OpClass::Store;
            out_mem[i] = data_addr();
            out_dep1[i] = dep();
            out_dep2[i] = dep();
        } else if (pick < c_branch) {
            out_cls[i] = OpClass::Branch;
            const Addr line_pc = pc & ~Addr(63);
            out_pc[i] = line_pc;
            BranchSite &site = sites[(line_pc >> 6) % n_sites];
            bool taken;
            if (site.periodic)
                taken = ++site.counter % site.period != 0;
            else
                taken = uni() < site.taken_bias;
            out_taken[i] = taken;
            out_dep1[i] = dep();
            if (taken) {
                if (uni() < P.near_jump_prob) {
                    const std::uint64_t reach = P.near_jump_range;
                    const Addr lo = pc > code_base + reach
                                        ? pc - reach
                                        : code_base;
                    const Addr span =
                        std::min<Addr>(2 * reach, code_end - lo);
                    pc = lo + below(std::max<Addr>(span / 4, 1)) * 4;
                } else if (uni() < P.far_to_hot_prob) {
                    pc = code_base + below(hot_code_slots) * 4;
                } else {
                    pc = code_base + below(code_slots) * 4;
                }
            }
        } else if (pick < c_call) {
            out_cls[i] = uni() < 0.5 ? OpClass::Call
                                     : OpClass::Return;
            out_taken[i] = true;
        } else if (pick < c_mul) {
            out_cls[i] = OpClass::IntMul;
            out_dep1[i] = dep();
            out_dep2[i] = dep();
        } else if (pick < c_fp) {
            out_cls[i] = OpClass::FpAlu;
            out_dep1[i] = dep();
            out_dep2[i] = dep();
        } else {
            out_cls[i] = OpClass::IntAlu;
            out_dep1[i] = dep();
            out_dep2[i] = dep();
        }
    }

    pc_ = pc;
    stream_addr_ = stream_addr;
    raw_pos_ = rpos;
    block.setSize(base + n);
}

} // namespace duplexity
