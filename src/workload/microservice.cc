#include "workload/microservice.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

std::uint64_t
instrsForMicros(double us, double freq_ghz, double nominal_ipc)
{
    return static_cast<std::uint64_t>(
        std::max(1.0, us * freq_ghz * 1000.0 * nominal_ipc));
}

double
MicroserviceSpec::meanStallUs() const
{
    double total = 0.0;
    for (const PhaseSpec &phase : phases) {
        if (phase.kind == PhaseSpec::Kind::Remote)
            total += phase.stall_us->mean();
    }
    return total;
}

double
MicroserviceSpec::meanComputeInstrs() const
{
    double total = 0.0;
    for (const PhaseSpec &phase : phases) {
        if (phase.kind == PhaseSpec::Kind::Compute)
            total += phase.instr_count->mean();
    }
    return total;
}

double
MicroserviceSpec::nominalServiceUs(double freq_ghz, double ipc) const
{
    return meanComputeInstrs() / (freq_ghz * 1000.0 * ipc) +
           meanStallUs();
}

MicroserviceSource::MicroserviceSource(const MicroserviceSpec &spec,
                                       Rng rng)
    : spec_(spec), rng_(rng)
{
    DPX_CHECK(!spec_.phases.empty()) << " — microservice needs phases";
    for (const PhaseSpec &phase : spec_.phases) {
        if (phase.kind == PhaseSpec::Kind::Compute)
            DPX_CHECK(phase.instr_count != nullptr) << " — compute phase needs an instruction count";
        else
            DPX_CHECK(phase.stall_us != nullptr) << " — remote phase needs a stall distribution";
    }

    // Build one synthetic stream per distinct character: the default
    // character plus any per-phase overrides.
    streams_.emplace_back(spec_.character, rng_.fork(1000));
    phase_stream_.resize(spec_.phases.size(), 0);
    for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
        const PhaseSpec &phase = spec_.phases[i];
        if (phase.kind == PhaseSpec::Kind::Compute &&
            phase.character) {
            streams_.emplace_back(*phase.character,
                                  rng_.fork(2000 + i));
            phase_stream_[i] = streams_.size() - 1;
        }
    }
    setDeliveredRequestCounter(&requests_);
    enterPhase(0);
}

void
MicroserviceSource::enterPhase(std::size_t idx)
{
    phase_idx_ = idx;
    const PhaseSpec &phase = spec_.phases[idx];
    if (phase.kind == PhaseSpec::Kind::Compute) {
        remaining_ = static_cast<std::uint64_t>(
            std::max(1.0, phase.instr_count->sample(rng_)));
    } else {
        remaining_ = 1;
    }
}

MicroOp
MicroserviceSource::drawNext()
{
    const PhaseSpec &phase = spec_.phases[phase_idx_];
    MicroOp op;
    if (phase.kind == PhaseSpec::Kind::Compute) {
        op = streams_[phase_stream_[phase_idx_]].next();
    } else {
        op.cls = OpClass::Remote;
        op.stall_us =
            static_cast<float>(phase.stall_us->sample(rng_));
    }
    --remaining_;
    if (remaining_ == 0) {
        if (phase_idx_ + 1 == spec_.phases.size()) {
            // requests_ is counted by the InstrSource base as this op
            // is delivered, not here at draw time.
            op.end_of_request = true;
            enterPhase(0);
        } else {
            enterPhase(phase_idx_ + 1);
        }
    }
    return op;
}

void
MicroserviceSource::fillBlockImpl(OpBlock &block, std::size_t count)
{
    // Phase-chunked fill.  Per-RNG draw order matches drawNext()
    // exactly: a phase's op draws all come from that phase's stream
    // in op order, and the source rng_ sees only the phase-boundary
    // samples, in phase order — the boundary sample lands after the
    // phase's last op draw and before the next phase's first, just
    // like the per-op path.
    while (count > 0) {
        const PhaseSpec &phase = spec_.phases[phase_idx_];
        std::size_t produced;
        if (phase.kind == PhaseSpec::Kind::Compute) {
            produced = static_cast<std::size_t>(
                std::min<std::uint64_t>(count, remaining_));
            streams_[phase_stream_[phase_idx_]].fillOpsInto(block,
                                                            produced);
            remaining_ -= produced;
        } else {
            MicroOp op;
            op.cls = OpClass::Remote;
            op.stall_us =
                static_cast<float>(phase.stall_us->sample(rng_));
            block.push(op);
            produced = 1;
            remaining_ = 0;
        }
        count -= produced;
        if (remaining_ == 0) {
            if (phase_idx_ + 1 == spec_.phases.size()) {
                block.endOfRequest()[block.size() - 1] = true;
                enterPhase(0);
            } else {
                enterPhase(phase_idx_ + 1);
            }
        }
    }
}

void
MicroserviceSource::onSoaPipelineToggled(bool enabled)
{
    for (SyntheticStream &stream : streams_)
        stream.setSoaDrawEnabled(enabled);
}

BatchSource::BatchSource(const BatchSpec &spec, Rng rng)
    : spec_(spec), rng_(rng),
      stream_(spec.character, rng_.fork(3000)),
      segment_instrs_(spec_.segment_instrs), stall_us_(spec_.stall_us)
{
    DPX_CHECK(spec_.segment_instrs != nullptr) << " — batch workload needs a segment length distribution";
    remaining_ = static_cast<std::uint64_t>(
        std::max(1.0, segment_instrs_.sample(rng_)));
}

MicroOp
BatchSource::drawNext()
{
    if (remaining_ == 0 && stall_us_) {
        MicroOp op;
        op.cls = OpClass::Remote;
        op.stall_us = static_cast<float>(stall_us_.sample(rng_));
        remaining_ = static_cast<std::uint64_t>(
            std::max(1.0, segment_instrs_.sample(rng_)));
        return op;
    }
    if (remaining_ == 0) {
        remaining_ = static_cast<std::uint64_t>(
            std::max(1.0, segment_instrs_.sample(rng_)));
    }
    --remaining_;
    return stream_.next();
}

void
BatchSource::fillBlockImpl(OpBlock &block, std::size_t count)
{
    // Segment-chunked fill; same per-RNG draw order as drawNext()
    // (stall then segment resample on rng_, op draws on the stream).
    while (count > 0) {
        if (remaining_ == 0 && stall_us_) {
            MicroOp op;
            op.cls = OpClass::Remote;
            op.stall_us = static_cast<float>(stall_us_.sample(rng_));
            remaining_ = static_cast<std::uint64_t>(
                std::max(1.0, segment_instrs_.sample(rng_)));
            block.push(op);
            --count;
            continue;
        }
        if (remaining_ == 0) {
            remaining_ = static_cast<std::uint64_t>(
                std::max(1.0, segment_instrs_.sample(rng_)));
        }
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(count, remaining_));
        stream_.fillOpsInto(block, take);
        remaining_ -= take;
        count -= take;
    }
}

void
BatchSource::onSoaPipelineToggled(bool enabled)
{
    stream_.setSoaDrawEnabled(enabled);
}

} // namespace duplexity
