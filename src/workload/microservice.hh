/**
 * @file
 * Request-structured microservice sources and continuous batch
 * sources.
 *
 * A microservice request is a sequence of phases: compute regions
 * (instruction counts drawn from a distribution) separated by µs-scale
 * remote operations (stall durations drawn from a distribution) —
 * exactly the structure of Section V's workloads (e.g. RSC = 3 µs
 * cuckoo lookup, 8 µs Optane stall, 4 µs memcpy). Batch sources emit
 * an endless alternation of compute segments and remote stalls (the
 * PageRank/SSSP filler threads: ~1 µs RDMA stall per 1–2 µs compute).
 */

#ifndef DPX_WORKLOAD_MICROSERVICE_HH
#define DPX_WORKLOAD_MICROSERVICE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cpu/instr_source.hh"
#include "sim/distributions.hh"
#include "sim/rng.hh"
#include "workload/synthetic.hh"

namespace duplexity
{

/** Nominal instruction count equivalent to @p us of compute. */
std::uint64_t
instrsForMicros(double us, double freq_ghz = 3.4,
                double nominal_ipc = 2.0);

/** One phase of a request. */
struct PhaseSpec
{
    enum class Kind
    {
        Compute,
        Remote,
    };

    Kind kind = Kind::Compute;
    /** Compute: micro-op count distribution. */
    DistributionPtr instr_count;
    /** Remote: stall duration distribution (microseconds). */
    DistributionPtr stall_us;
    /**
     * Compute phases may override the service's base character (e.g.
     * RSC's streaming memcpy phase vs its random-probe lookup phase).
     */
    std::optional<WorkloadParams> character;
};

/** A complete latency-critical microservice description. */
struct MicroserviceSpec
{
    std::string name;
    /** Default compute character (phases may override). */
    WorkloadParams character;
    std::vector<PhaseSpec> phases;

    /** Mean µs-stall time per request. */
    double meanStallUs() const;
    /** Mean compute micro-ops per request. */
    double meanComputeInstrs() const;
    /** Nominal service time (µs) at @p ipc on a @p freq_ghz core. */
    double nominalServiceUs(double freq_ghz = 3.4,
                            double ipc = 2.0) const;
};

/**
 * Instruction source that plays requests back-to-back; the scenario
 * runner decides when the next request may start (open/closed loop).
 */
class MicroserviceSource : public InstrSource
{
  public:
    MicroserviceSource(const MicroserviceSpec &spec, Rng rng);

    const MicroserviceSpec &spec() const { return spec_; }

    /** Requests whose final op has been handed to the consumer (the
     *  SoA buffer may hold drawn-but-undelivered ops beyond this). */
    std::uint64_t requestsCompleted() const { return requests_; }

  protected:
    MicroOp drawNext() override;
    void fillBlockImpl(OpBlock &block, std::size_t count) override;
    void onSoaPipelineToggled(bool enabled) override;

  private:
    void enterPhase(std::size_t idx);

    MicroserviceSpec spec_;
    Rng rng_;
    /** One stream per phase (shared when no override). */
    std::vector<SyntheticStream> streams_;
    std::vector<std::size_t> phase_stream_;
    std::size_t phase_idx_ = 0;
    std::uint64_t remaining_ = 0;
    std::uint64_t requests_ = 0;
};

/** Continuous batch workload (filler threads / Fig 1(c) streams). */
struct BatchSpec
{
    std::string name;
    WorkloadParams character;
    /** Compute micro-ops between remote ops. */
    DistributionPtr segment_instrs;
    /** Stall duration (µs); nullptr => never stalls. */
    DistributionPtr stall_us;
};

class BatchSource : public InstrSource
{
  public:
    BatchSource(const BatchSpec &spec, Rng rng);

    const BatchSpec &spec() const { return spec_; }

    /** Raw-draw buffer refills in the underlying stream (bench
     *  telemetry; see SyntheticStream::soaRefills()). */
    std::uint64_t soaDrawRefills() const { return stream_.soaRefills(); }

  protected:
    MicroOp drawNext() override;
    void fillBlockImpl(OpBlock &block, std::size_t count) override;
    void onSoaPipelineToggled(bool enabled) override;

  private:
    BatchSpec spec_;
    Rng rng_;
    SyntheticStream stream_;
    /** Devirtualized views of spec_'s distributions (hot path). */
    FastSampler segment_instrs_;
    FastSampler stall_us_;
    std::uint64_t remaining_;
};

} // namespace duplexity

#endif // DPX_WORKLOAD_MICROSERVICE_HH
