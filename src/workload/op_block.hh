/**
 * @file
 * Structure-of-arrays micro-op block: the batched counterpart of
 * MicroOp (cpu/isa.hh), filled by workload sources in bulk and
 * consumed lane-by-lane by CoreEngine::processBlock.
 *
 * Each MicroOp field lives in its own contiguous array so the fill
 * loops touch only the lanes an op class actually produces (an IntAlu
 * writes cls/pc/dep lanes and never the address or stall lanes) and
 * the consume loop streams each lane linearly.  Capacity is fixed at
 * kOpBlockCapacity — one block is a refill unit, not a container; a
 * source that needs more ops refills.
 *
 * Draw-order contract (DESIGN.md §4b "SoA op pipeline"): filling a
 * block with n ops makes *exactly* the same RNG calls in the same
 * order as n legacy next() calls on the same source, so op i of the
 * block is bit-identical to the i-th op the legacy path would have
 * returned.  The differential wall (tests/workload/op_block_diff_test,
 * tests/cpu/soa_block_step_test, label golden) holds both paths to
 * that contract field-by-field.
 */

#ifndef DPX_WORKLOAD_OP_BLOCK_HH
#define DPX_WORKLOAD_OP_BLOCK_HH

#include <cstddef>
#include <cstdint>

#include "cpu/isa.hh"
#include "sim/check.hh"
#include "sim/types.hh"

namespace duplexity
{

/** Ops per block refill: big enough to amortize the fill loop's
 *  parameter hoisting, small enough to stay L1-resident (~5 KiB of
 *  lanes at 256). */
constexpr std::size_t kOpBlockCapacity = 256;

/** SoA micro-op block; see file comment for the layout rationale. */
class OpBlock
{
  public:
    /** Number of valid ops (prefix of every lane). */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear() { size_ = 0; }

    /** Append one op, AoS-style; fill paths may instead write lanes
     *  directly through the mutable accessors and commit with
     *  setSize(). */
    void
    push(const MicroOp &op)
    {
        DPX_DCHECK_LT(size_, kOpBlockCapacity);
        const std::size_t i = size_++;
        cls_[i] = op.cls;
        pc_[i] = op.pc;
        mem_addr_[i] = op.mem_addr;
        taken_[i] = op.taken;
        dep1_[i] = op.dep1;
        dep2_[i] = op.dep2;
        stall_us_[i] = op.stall_us;
        end_of_request_[i] = op.end_of_request;
    }

    /** Materialize op @p i as an AoS MicroOp (forced-legacy path and
     *  tests; the hot consumer reads lanes directly). */
    MicroOp
    get(std::size_t i) const
    {
        DPX_DCHECK_LT(i, size_);
        MicroOp op;
        op.cls = cls_[i];
        op.pc = pc_[i];
        op.mem_addr = mem_addr_[i];
        op.taken = taken_[i];
        op.dep1 = dep1_[i];
        op.dep2 = dep2_[i];
        op.stall_us = stall_us_[i];
        op.end_of_request = end_of_request_[i];
        return op;
    }

    /** Declare the first @p n lane slots valid (bulk-fill commit). */
    void
    setSize(std::size_t n)
    {
        DPX_DCHECK_LE(n, kOpBlockCapacity);
        size_ = n;
    }

    // Lane accessors (const for consumers, mutable for fill paths).
    const OpClass *cls() const { return cls_; }
    const Addr *pc() const { return pc_; }
    const Addr *memAddr() const { return mem_addr_; }
    const bool *taken() const { return taken_; }
    const std::uint8_t *dep1() const { return dep1_; }
    const std::uint8_t *dep2() const { return dep2_; }
    const float *stallUs() const { return stall_us_; }
    const bool *endOfRequest() const { return end_of_request_; }

    OpClass *cls() { return cls_; }
    Addr *pc() { return pc_; }
    Addr *memAddr() { return mem_addr_; }
    bool *taken() { return taken_; }
    std::uint8_t *dep1() { return dep1_; }
    std::uint8_t *dep2() { return dep2_; }
    float *stallUs() { return stall_us_; }
    bool *endOfRequest() { return end_of_request_; }

  private:
    std::size_t size_ = 0;
    OpClass cls_[kOpBlockCapacity] = {};
    Addr pc_[kOpBlockCapacity] = {};
    Addr mem_addr_[kOpBlockCapacity] = {};
    bool taken_[kOpBlockCapacity] = {};
    std::uint8_t dep1_[kOpBlockCapacity] = {};
    std::uint8_t dep2_[kOpBlockCapacity] = {};
    float stall_us_[kOpBlockCapacity] = {};
    bool end_of_request_[kOpBlockCapacity] = {};
};

} // namespace duplexity

#endif // DPX_WORKLOAD_OP_BLOCK_HH
