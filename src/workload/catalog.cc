#include "workload/catalog.hh"

#include "sim/logging.hh"

namespace duplexity
{

namespace
{

/** Private data region for a thread (4 GB spacing). */
Addr
dataRegion(ThreadId uid)
{
    return (Addr(0x100) + uid) << 32;
}

/** Shared code region per workload family. */
Addr
codeRegion(unsigned family)
{
    return (Addr(0x10) + family) << 24;
}

/** Compute instruction-count distribution: lognormal around the
 *  nominal count for @p us of work (service-time variability). */
DistributionPtr
computeInstrs(double us, double sigma = 0.25)
{
    return makeLogNormal(
        static_cast<double>(instrsForMicros(us)), sigma);
}

WorkloadParams
flannCharacter(ThreadId uid)
{
    WorkloadParams p;
    p.data_base = dataRegion(uid);
    // LSH tables + candidate vectors: mostly LLC-resident per
    // thread; FLANN's low utilization comes from poor ILP and
    // frontend pressure, not raw DRAM misses (Section II-B).
    p.data_ws_bytes = 2ull << 20;
    p.spatial_locality = 0.55;
    p.hot_prob = 0.30;
    p.hot_bytes = 8 * 1024;
    p.code_base = codeRegion(0);
    p.code_bytes = 128 * 1024;
    p.static_branches = 512;
    p.periodic_branch_frac = 0.3;
    p.branch_taken_bias = 0.97;
    p.dep_prob = 0.55;
    p.mean_dep_dist = 3.5;
    p.mix = InstrMix{0.30, 0.08, 0.14, 0.01, 0.03, 0.08};
    return p;
}

} // namespace

const char *
toString(MicroserviceKind kind)
{
    switch (kind) {
      case MicroserviceKind::FlannHA:
        return "FLANN-HA";
      case MicroserviceKind::FlannLL:
        return "FLANN-LL";
      case MicroserviceKind::Rsc:
        return "RSC";
      case MicroserviceKind::McRouter:
        return "McRouter";
      case MicroserviceKind::WordStem:
        return "WordStem";
    }
    return "?";
}

const char *
toString(BatchKind kind)
{
    switch (kind) {
      case BatchKind::PageRank:
        return "PageRank";
      case BatchKind::Sssp:
        return "SSSP";
    }
    return "?";
}

const char *
toString(SpecProfile profile)
{
    switch (profile) {
      case SpecProfile::Cpu:
        return "spec-cpu";
      case SpecProfile::Mem:
        return "spec-mem";
      case SpecProfile::Mix:
        return "spec-mix";
    }
    return "?";
}

std::vector<MicroserviceKind>
allMicroservices()
{
    return {MicroserviceKind::FlannHA, MicroserviceKind::FlannLL,
            MicroserviceKind::Rsc, MicroserviceKind::McRouter,
            MicroserviceKind::WordStem};
}

MicroserviceSpec
makeMicroservice(MicroserviceKind kind)
{
    MicroserviceSpec spec;
    spec.name = toString(kind);
    // The master-thread owns region 0.
    const ThreadId master_uid = 0;

    switch (kind) {
      case MicroserviceKind::FlannHA: {
        spec.character = flannCharacter(master_uid);
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(10.0), nullptr,
             std::nullopt});
        // Single-cache-line RDMA read, exponential with 1 µs mean.
        spec.phases.push_back({PhaseSpec::Kind::Remote, nullptr,
                               makeExponential(1.0), std::nullopt});
        // Brief result-forwarding epilogue.
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(0.2), nullptr,
             std::nullopt});
        break;
      }
      case MicroserviceKind::FlannLL: {
        spec.character = flannCharacter(master_uid);
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(1.0), nullptr,
             std::nullopt});
        spec.phases.push_back({PhaseSpec::Kind::Remote, nullptr,
                               makeExponential(1.0), std::nullopt});
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(0.2), nullptr,
             std::nullopt});
        break;
      }
      case MicroserviceKind::Rsc: {
        // Cuckoo-hash lookup over a large mapping table.
        WorkloadParams lookup;
        lookup.data_base = dataRegion(master_uid);
        lookup.data_ws_bytes = 4ull << 20;
        lookup.spatial_locality = 0.2;
        lookup.code_base = codeRegion(1);
        lookup.code_bytes = 64 * 1024;
        lookup.static_branches = 256;
        lookup.periodic_branch_frac = 0.4;
        lookup.branch_taken_bias = 0.96;
        lookup.dep_prob = 0.55;
        lookup.mean_dep_dist = 3.5;
        lookup.mix = InstrMix{0.30, 0.05, 0.15, 0.01, 0.05, 0.02};

        // 4 KB memcpy: streaming loads/stores, near-perfect locality.
        WorkloadParams memcpy_char = lookup;
        memcpy_char.data_ws_bytes = 256 * 1024;
        memcpy_char.spatial_locality = 0.95;
        memcpy_char.static_branches = 32;
        memcpy_char.periodic_branch_frac = 0.95;
        memcpy_char.dep_prob = 0.3;
        memcpy_char.mix = InstrMix{0.35, 0.30, 0.06, 0.0, 0.01, 0.02};

        spec.character = lookup;
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(3.0), nullptr,
             std::nullopt});
        // Optane SSD random block read via user-level polling.
        spec.phases.push_back({PhaseSpec::Kind::Remote, nullptr,
                               makeExponential(8.0), std::nullopt});
        spec.phases.push_back({PhaseSpec::Kind::Compute,
                               computeInstrs(4.0), nullptr,
                               memcpy_char});
        break;
      }
      case MicroserviceKind::McRouter: {
        WorkloadParams p;
        p.data_base = dataRegion(master_uid);
        p.data_ws_bytes = 512 * 1024; // routing/config tables
        p.spatial_locality = 0.5;
        p.code_base = codeRegion(2);
        p.code_bytes = 96 * 1024;
        p.static_branches = 384;
        p.periodic_branch_frac = 0.3;
        p.branch_taken_bias = 0.96;
        p.dep_prob = 0.5;
        p.mean_dep_dist = 4.0;
        p.mix = InstrMix{0.24, 0.08, 0.16, 0.02, 0.06, 0.02};
        spec.character = p;
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(3.0), nullptr,
             std::nullopt});
        // Synchronous wait for the RDMA-based leaf KV store (3-5 µs).
        spec.phases.push_back({PhaseSpec::Kind::Remote, nullptr,
                               makeUniform(3.0, 5.0), std::nullopt});
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(0.3), nullptr,
             std::nullopt});
        break;
      }
      case MicroserviceKind::WordStem: {
        // Stateless; stemming paths hard-coded into control flow:
        // large code footprint, branchy, tiny data.
        WorkloadParams p;
        p.data_base = dataRegion(master_uid);
        p.data_ws_bytes = 64 * 1024;
        p.spatial_locality = 0.7;
        p.code_base = codeRegion(3);
        p.code_bytes = 256 * 1024;
        // The hard-coded stemming paths make the hot path itself
        // large: WordStem lives or dies by the I-cache (Section VII).
        p.hot_code_bytes = 32 * 1024;
        p.far_to_hot_prob = 0.97;
        p.near_jump_prob = 0.8; // frequent re-entries to hot paths
        p.near_jump_range = 256; // dense if/else ladders
        p.static_branches = 1024;
        p.periodic_branch_frac = 0.3;
        p.branch_taken_bias = 0.97;
        p.dep_prob = 0.55;
        p.mean_dep_dist = 3.0;
        p.mix = InstrMix{0.20, 0.08, 0.18, 0.02, 0.01, 0.0};
        spec.character = p;
        spec.phases.push_back(
            {PhaseSpec::Kind::Compute, computeInstrs(4.0), nullptr,
             std::nullopt});
        break;
      }
    }
    return spec;
}

BatchSpec
makeFlannXY(double compute_us, double stall_us, ThreadId uid)
{
    BatchSpec spec;
    spec.name = "FLANN-" + std::to_string(compute_us) + "-" +
                std::to_string(stall_us);
    spec.character = flannCharacter(uid);
    spec.segment_instrs = makeLogNormal(
        static_cast<double>(instrsForMicros(compute_us)), 0.2);
    spec.stall_us =
        stall_us > 0.0 ? makeExponential(stall_us) : nullptr;
    return spec;
}

BatchSpec
makeBatch(BatchKind kind, ThreadId uid)
{
    BatchSpec spec;
    spec.name = toString(kind);
    WorkloadParams p;
    p.data_base = dataRegion(uid);
    // Local shard of the Twitter graph. BSP PageRank streams over
    // its vertex/edge arrays; SSSP's frontier is less regular. Both
    // are partitioned fine enough that the hot shard stays modest
    // (Section IV, "Throughput threads").
    p.data_ws_bytes = 512 * 1024;
    p.spatial_locality = kind == BatchKind::PageRank ? 0.92 : 0.88;
    p.hot_prob = 0.05;
    p.hot_bytes = 4 * 1024;
    p.code_base = codeRegion(kind == BatchKind::PageRank ? 4 : 5);
    p.code_bytes = 48 * 1024;
    p.static_branches = 192;
    p.periodic_branch_frac = 0.35;
    p.branch_taken_bias = 0.97;
    p.dep_prob = 0.30;
    p.mean_dep_dist = 8.0;
    p.mix = kind == BatchKind::PageRank
                ? InstrMix{0.28, 0.10, 0.10, 0.01, 0.02, 0.10}
                : InstrMix{0.26, 0.08, 0.14, 0.01, 0.04, 0.02};
    spec.character = p;
    // ~1 µs RDMA vertex read per 1-2 µs of compute: roughly half of
    // vertex accesses land on remote shards (Section V).
    spec.segment_instrs = makeUniform(
        static_cast<double>(instrsForMicros(1.0, 3.4, 1.0)),
        static_cast<double>(instrsForMicros(2.0, 3.4, 1.0)));
    spec.stall_us = makeExponential(1.0);
    return spec;
}

BatchSpec
makeSpecBatch(SpecProfile profile, ThreadId uid)
{
    BatchSpec spec;
    spec.name = toString(profile);
    WorkloadParams p;
    p.data_base = dataRegion(uid);
    p.code_base = codeRegion(6 + static_cast<unsigned>(profile));
    switch (profile) {
      case SpecProfile::Cpu:
        p.data_ws_bytes = 256 * 1024;
        p.spatial_locality = 0.8;
        p.code_bytes = 64 * 1024;
        p.static_branches = 256;
        p.periodic_branch_frac = 0.4;
        p.branch_taken_bias = 0.97;
        p.dep_prob = 0.5;
        p.mean_dep_dist = 4.5;
        p.mix = InstrMix{0.20, 0.08, 0.12, 0.01, 0.04, 0.15};
        break;
      case SpecProfile::Mem:
        p.data_ws_bytes = 16ull << 20;
        p.spatial_locality = 0.25;
        p.code_bytes = 32 * 1024;
        p.static_branches = 128;
        p.periodic_branch_frac = 0.35;
        p.branch_taken_bias = 0.97;
        p.dep_prob = 0.5;
        p.mean_dep_dist = 3.0;
        p.mix = InstrMix{0.35, 0.10, 0.10, 0.01, 0.02, 0.05};
        break;
      case SpecProfile::Mix:
        p.data_ws_bytes = 2ull << 20;
        p.spatial_locality = 0.5;
        p.code_bytes = 64 * 1024;
        p.static_branches = 256;
        p.periodic_branch_frac = 0.35;
        p.branch_taken_bias = 0.97;
        p.dep_prob = 0.5;
        p.mean_dep_dist = 4.0;
        p.mix = InstrMix{0.26, 0.10, 0.14, 0.01, 0.03, 0.08};
        break;
    }
    spec.character = p;
    spec.segment_instrs =
        makeDeterministic(1e9); // effectively stall-free
    spec.stall_us = nullptr;
    return spec;
}

} // namespace duplexity
