/**
 * @file
 * Closed-form models used throughout the paper's motivation section:
 *
 *  - Figure 1(a): closed-loop utilization when computation alternates
 *    with µs-scale stalls,
 *  - Figure 1(b): the idle-period law of M/G/1 queues — idle periods
 *    are exponential with the arrival rate, independent of the
 *    service distribution (memoryless arrivals),
 *  - Figure 2(b): the binomial model for the number of ready virtual
 *    contexts needed to keep 8 physical contexts busy,
 *  - M/M/1 closed forms used to validate the queueing simulator.
 */

#ifndef DPX_QUEUEING_ANALYTIC_HH
#define DPX_QUEUEING_ANALYTIC_HH

#include <cstdint>

namespace duplexity
{

/**
 * Utilization of a single-job closed-loop system alternating between
 * @p compute_us of work and @p stall_us of stall (Figure 1(a)).
 */
double closedLoopUtilization(double compute_us, double stall_us);

/** Mean idle-period duration (µs) of an M/G/1 server with capacity
 *  @p service_rate_qps running at fractional @p load. */
double meanIdlePeriodUs(double service_rate_qps, double load);

/** CDF of the M/G/1 idle-period duration at @p t_us microseconds. */
double idlePeriodCdf(double service_rate_qps, double load,
                     double t_us);

/**
 * P(at least @p k of @p n virtual contexts are ready) when each is
 * independently stalled with probability @p p_stall (Figure 2(b)).
 */
double readyThreadsProbability(std::uint32_t n, double p_stall,
                               std::uint32_t k);

/** Smallest n with readyThreadsProbability(n, p, k) >= target. */
std::uint32_t virtualContextsNeeded(double p_stall, std::uint32_t k,
                                    double target);

/** M/M/1 mean sojourn time (seconds). */
double mm1MeanSojourn(double lambda, double mu);

/** M/M/1 p-quantile of the sojourn time (seconds). */
double mm1SojournQuantile(double lambda, double mu, double p);

/** M/M/1 mean number in system. */
double mm1MeanInSystem(double lambda, double mu);

} // namespace duplexity

#endif // DPX_QUEUEING_ANALYTIC_HH
