#include "queueing/analytic.hh"

#include <cmath>

#include "sim/check.hh"

namespace duplexity
{

double
closedLoopUtilization(double compute_us, double stall_us)
{
    DPX_CHECK(compute_us >= 0.0 && stall_us >= 0.0)
        << " — negative durations: compute=" << compute_us
        << " stall=" << stall_us;
    if (compute_us == 0.0)
        return 0.0;
    return compute_us / (compute_us + stall_us);
}

double
meanIdlePeriodUs(double service_rate_qps, double load)
{
    DPX_CHECK(service_rate_qps > 0.0 && load > 0.0 && load < 1.0)
        << " — bad M/G/1 parameters: rate=" << service_rate_qps
        << " load=" << load;
    // Poisson arrivals at rate lambda = load * mu are memoryless, so
    // an idle period is the residual interarrival time: Exp(lambda).
    double lambda_per_us = service_rate_qps * load / 1e6;
    return 1.0 / lambda_per_us;
}

double
idlePeriodCdf(double service_rate_qps, double load, double t_us)
{
    if (t_us <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-t_us / meanIdlePeriodUs(service_rate_qps,
                                                   load));
}

double
readyThreadsProbability(std::uint32_t n, double p_stall,
                        std::uint32_t k)
{
    DPX_CHECK(p_stall >= 0.0 && p_stall <= 1.0)
        << " — bad stall prob " << p_stall;
    if (k == 0)
        return 1.0;
    if (n < k)
        return 0.0;
    // P(ready >= k), ready ~ Binomial(n, 1 - p_stall); evaluated via
    // a numerically stable recurrence over the pmf.
    const double q = 1.0 - p_stall;
    // pmf(0) = p_stall^n computed in log space.
    double log_pmf = static_cast<double>(n) *
                     std::log(std::max(p_stall, 1e-300));
    double cdf_below_k = 0.0;
    double pmf = std::exp(log_pmf);
    for (std::uint32_t i = 0; i < k; ++i) {
        cdf_below_k += pmf;
        // pmf(i+1) = pmf(i) * (n-i)/(i+1) * q/p.
        if (p_stall <= 0.0) {
            pmf = 0.0;
        } else {
            pmf *= static_cast<double>(n - i) /
                   static_cast<double>(i + 1) * (q / p_stall);
        }
    }
    if (p_stall <= 0.0)
        return 1.0; // every context always ready
    double prob = 1.0 - cdf_below_k;
    return prob < 0.0 ? 0.0 : (prob > 1.0 ? 1.0 : prob);
}

std::uint32_t
virtualContextsNeeded(double p_stall, std::uint32_t k, double target)
{
    DPX_CHECK(target > 0.0 && target < 1.0)
        << " — bad target probability " << target;
    for (std::uint32_t n = k; n < 4096; ++n) {
        if (readyThreadsProbability(n, p_stall, k) >= target)
            return n;
    }
    return 4096;
}

double
mm1MeanSojourn(double lambda, double mu)
{
    DPX_CHECK(lambda > 0.0 && mu > lambda)
        << " — unstable M/M/1: lambda=" << lambda << " mu=" << mu;
    return 1.0 / (mu - lambda);
}

double
mm1SojournQuantile(double lambda, double mu, double p)
{
    DPX_CHECK(p > 0.0 && p < 1.0) << " — bad quantile " << p;
    // Sojourn time is exponential with rate (mu - lambda).
    return -std::log(1.0 - p) / (mu - lambda);
}

double
mm1MeanInSystem(double lambda, double mu)
{
    double rho = lambda / mu;
    DPX_CHECK_LT(rho, 1.0) << " — unstable M/M/1";
    return rho / (1.0 - rho);
}

} // namespace duplexity
