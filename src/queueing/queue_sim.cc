#include "queueing/queue_sim.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

namespace duplexity
{

ServerSchedule::ServerSchedule(std::uint32_t servers,
                               std::uint32_t scan_threshold)
    : servers_(servers), use_scan_(servers <= scan_threshold)
{
    DPX_CHECK_GE(servers, 1u) << " — need at least one server";
    ring_.resize(servers); // stretch records + fast-forward slots
    seen_stamp_.assign(servers, 0);
    if (use_scan_) {
        free_at_.assign(servers, 0.0);
        return;
    }
    heap_.reserve(servers + 1);
    for (std::uint32_t i = 0; i < servers; ++i)
        heap_.push_back(pack(0.0, i));
    heap_.push_back(~Key{0}); // sentinel right-sibling for the leaves
}

void
ServerSchedule::enterIdleFastForward()
{
    // Tie-pathology fallback for activateRecordedRing: snapshot the
    // live mode's (free_at, index) pairs and sort them into
    // std::min_element order.  Too expensive for the common entry
    // path (most drained stretches are 1-2 arrivals — see the class
    // comment), but always correct.
    if (use_scan_) {
        for (std::uint32_t i = 0; i < servers_; ++i)
            ring_[i] = {free_at_[i], i};
    } else {
        for (std::uint32_t i = 0; i < servers_; ++i) {
            ring_[i] = {unpackTime(heap_[i]),
                        static_cast<std::uint32_t>(heap_[i])};
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const FreeSlot &a, const FreeSlot &b) {
                  return a.free_at != b.free_at ? a.free_at < b.free_at
                                                : a.index < b.index;
              });
    head_ = 0;
    ff_active_ = true;
}

void
ServerSchedule::activateRecordedRing()
{
    // k consecutive drained seats were recorded in seating order,
    // which is the ascending (free_at, index) order the ring needs —
    // unless exact ties made the legacy policy reseat some server
    // twice (leaving another server's slot stale) or record equal
    // keys out of index order.  Validate both properties in O(k) and
    // take the sort fallback when the record is not a strictly
    // ascending permutation.
    ++stamp_gen_;
    bool valid = true;
    for (std::uint32_t i = 0; i < servers_ && valid; ++i) {
        const FreeSlot &slot = ring_[i];
        if (seen_stamp_[slot.index] == stamp_gen_)
            valid = false; // duplicate seat: some server is stale
        seen_stamp_[slot.index] = stamp_gen_;
        if (i > 0) {
            const FreeSlot &prev = ring_[i - 1];
            if (prev.free_at > slot.free_at ||
                (prev.free_at == slot.free_at &&
                 prev.index > slot.index))
                valid = false;
        }
    }
    stretch_ = 0;
    if (valid) {
        head_ = 0;
        ff_active_ = true;
    } else {
        enterIdleFastForward();
    }
}

void
ServerSchedule::exitIdleFastForward()
{
    ff_active_ = false;
    // Scan mode stayed in sync assignment-by-assignment (assignIdle
    // writes free_at_ too); it picks up exactly where the legacy
    // array would be.  Heap mode repacks the ring in logical order:
    // sorted ascending by key is a valid binary min-heap, and heap
    // outcomes depend only on the key multiset, so the rebuilt heap
    // assigns identically to the never-fast-forwarded one.  The
    // sentinel past the last element is never touched in fast mode.
    if (use_scan_)
        return;
    for (std::uint32_t i = 0; i < servers_; ++i) {
        const FreeSlot &slot = ring_[(head_ + i) % ring_.size()];
        heap_[i] = pack(slot.free_at, slot.index);
    }
}

namespace
{

/** Outcome of one simulated request. */
struct RequestOutcome
{
    double wait = 0.0;
    double service = 0.0;
    double idle_before = -1.0; // server idle gap ending here, if any
};

/** Per-run mutable state shared by the two engine variants. */
struct SimState
{
    Rng arrival_rng;
    Rng service_rng;
    Rng reservoir_rng;
    FastSampler interarrival;
    FastSampler service;
    double now = 0.0; // last arrival time

    /**
     * Variates are drawn a block at a time through sampleN so the
     * kind dispatch is paid once per block, not once per request.
     * The arrival and service streams are independent Rngs, so
     * blocking changes neither stream's draw order: request i still
     * consumes arrival draw i and service draw i.
     */
    static constexpr std::size_t block = 256;
    double inter_buf[block];
    double service_buf[block];
    std::size_t buf_pos = block; // starts empty

    void
    drawArrivalAndService(double &inter, double &service)
    {
        DPX_DCHECK_LE(buf_pos, block);
        if (buf_pos == block) {
            interarrival.sampleN(arrival_rng, inter_buf, block);
            this->service.sampleN(service_rng, service_buf, block);
            buf_pos = 0;
        }
        inter = inter_buf[buf_pos];
        service = service_buf[buf_pos];
        ++buf_pos;
    }
};

/** Single-server FCFS via the Lindley recursion. */
struct Lindley
{
    double last_departure = 0.0;
    double busy_time = 0.0;

    RequestOutcome
    step(SimState &st)
    {
        RequestOutcome out;
        double inter;
        st.drawArrivalAndService(inter, out.service);
        st.now += inter;
        if (st.now > last_departure)
            out.idle_before = st.now - last_departure;
        double start = std::max(st.now, last_departure);
        out.wait = start - st.now;
        last_departure = start + out.service;
        busy_time += out.service;
        return out;
    }
};

/** FCFS multi-server: each arrival takes the earliest-free server. */
struct MultiServer
{
    ServerSchedule schedule;
    double busy_time = 0.0;

    MultiServer(std::uint32_t k, bool idle_ff) : schedule(k)
    {
        schedule.setIdleFastForwardEnabled(idle_ff);
    }

    RequestOutcome
    step(SimState &st)
    {
        RequestOutcome out;
        double inter;
        st.drawArrivalAndService(inter, out.service);
        st.now += inter;
        ServerSchedule::Assignment a =
            schedule.assign(st.now, out.service);
        out.idle_before = a.idle_before;
        out.wait = a.start - st.now;
        busy_time += out.service;
        return out;
    }
};

/**
 * One simulation stream: the RNG chain, samplers, and queue engine.
 * Every replica owns exactly one StreamCore whose randomness derives
 * purely from its seed — never from scheduling order — so replicated
 * runs are deterministic for any worker count.
 */
struct StreamCore
{
    SimState st;
    Lindley single;
    MultiServer multi;
    bool use_lindley;

    StreamCore(const QueueSimConfig &config, std::uint64_t seed)
        : multi(config.servers, config.idle_fast_forward),
          use_lindley(config.servers == 1)
    {
        Rng root(seed);
        st.arrival_rng = root.fork(1);
        st.service_rng = root.fork(2);
        st.reservoir_rng = root.fork(3);
        st.interarrival = FastSampler(config.interarrival);
        st.service = FastSampler(config.service);
    }

    RequestOutcome
    step()
    {
        return use_lindley ? single.step(st) : multi.step(st);
    }

    double
    lastDeparture() const
    {
        return use_lindley ? single.last_departure
                           : multi.schedule.lastDeparture();
    }

    double
    busy() const
    {
        return use_lindley ? single.busy_time : multi.busy_time;
    }

    std::uint64_t
    idleFastForwards() const
    {
        return use_lindley ? 0 : multi.schedule.idleFastForwards();
    }

    /** Work runs until the later of last arrival and last departure;
     *  using now alone biases utilization upward under overload. */
    double horizon() const { return std::max(st.now, lastDeparture()); }
};

/** Stream-id tag separating replica seeds from other fork users. */
constexpr std::uint64_t kReplicaStreamTag = 0x7265706c69636173ull;

/** Seed of replica @p r: replica 0 IS the legacy stream (so R = 1
 *  reproduces the single-stream run bit-for-bit); the rest chain the
 *  replica index through the fork tree. */
std::uint64_t
replicaSeed(std::uint64_t base_seed, std::uint32_t r)
{
    if (r == 0)
        return base_seed;
    return Rng::deriveStreamSeed(base_seed, {kReplicaStreamTag, r});
}

/**
 * The legacy exact single-stream engine, preserved bit-for-bit: full
 * sample retention (reservoir-bounded) with the per-request
 * reservoir RNG draws, the per-batch p99 stopping rule, and the
 * end-of-run finalize that makes the published stats safe for
 * concurrent readers.
 */
QueueSimResult
runSingleStream(const QueueSimConfig &config)
{
    QueueSimResult result;
    StreamCore core(config, config.seed);

    BatchMeans convergence(config.relative_error, config.z_score,
                           config.min_batches);

    SampleStats sojourn, wait, idle_periods;
    // Pre-size the retained-sample stores for the worst-case run so
    // long runs do not pay vector-growth reallocation churn.
    const std::uint64_t expected =
        config.max_batches * config.batch_size;
    sojourn.reserveHint(expected);
    wait.reserveHint(expected);
    idle_periods.reserveHint(expected);

    for (std::uint64_t i = 0; i < config.warmup_requests; ++i)
        core.step();

    // BigHouse-style stopping rule: independent per-batch p99
    // estimates must agree to within the relative-error target.
    SampleStats batch(config.batch_size);
    for (std::uint64_t b = 0; b < config.max_batches; ++b) {
        batch.reset();
        for (std::uint64_t i = 0; i < config.batch_size; ++i) {
            RequestOutcome out = core.step();
            double sojourn_s = out.wait + out.service;
            batch.add(sojourn_s);
            sojourn.add(sojourn_s, core.st.reservoir_rng.next());
            wait.add(out.wait, core.st.reservoir_rng.next());
            if (out.idle_before >= 0.0) {
                idle_periods.add(out.idle_before,
                                 core.st.reservoir_rng.next());
            }
            ++result.completed;
        }
        // Selection-based p99: identical value to percentile(0.99)
        // without the O(n log n) per-batch sort; `batch` is reset at
        // the top of the loop, so the reordering is unobservable.
        convergence.addBatch(batch.percentileSelect(0.99));
        if (convergence.converged())
            break;
    }
    result.converged = convergence.converged();

    result.sojourn = TailSummary::fromExact(std::move(sojourn));
    result.wait = TailSummary::fromExact(std::move(wait));
    result.idle_periods =
        TailSummary::fromExact(std::move(idle_periods));
    result.utilization =
        core.horizon() > 0.0
            ? core.busy() / (core.horizon() *
                             static_cast<double>(config.servers))
            : 0.0;
    result.replicas = 1;
    result.idle_fast_forwards = core.idleFastForwards();
    return result;
}

/** One replica: an independent stream plus fixed-memory collectors
 *  (moments + extrema + quantile sketch per metric). */
struct Replica
{
    StreamCore core;
    SketchStats sojourn;
    SketchStats wait;
    SketchStats idle_periods;
    SampleStats batch;
    double last_batch_p99 = 0.0;
    std::uint64_t completed = 0;

    Replica(const QueueSimConfig &config, std::uint64_t seed)
        : core(config, seed),
          sojourn(config.sketch_capacity),
          wait(config.sketch_capacity),
          idle_periods(config.sketch_capacity),
          batch(config.batch_size)
    {
    }

    void
    warmup(std::uint64_t requests)
    {
        for (std::uint64_t i = 0; i < requests; ++i)
            core.step();
    }

    void
    runBatch(std::uint64_t batch_size)
    {
        batch.reset();
        for (std::uint64_t i = 0; i < batch_size; ++i) {
            RequestOutcome out = core.step();
            double sojourn_s = out.wait + out.service;
            batch.add(sojourn_s);
            sojourn.add(sojourn_s);
            wait.add(out.wait);
            if (out.idle_before >= 0.0)
                idle_periods.add(out.idle_before);
            ++completed;
        }
        // Runs inside one pool task; only the last_batch_p99 double
        // crosses threads (published by the round barrier), so the
        // sort-free selection path is safe here too and `batch` is
        // reset at the top of the next round.
        last_batch_p99 = batch.percentileSelect(0.99);
    }
};

/**
 * The replicated engine: R independent streams advance in lockstep
 * rounds of one batch each; after every round the per-replica batch
 * p99 estimates are pooled — in replica-index order — into one
 * BatchMeans, so the stopping decision is a pure function of the
 * streams and the run terminates early the moment the pooled
 * confidence interval tightens below the target. The batch budget is
 * split across replicas (ceil(max_batches / R) rounds), which is
 * where the wall-clock win comes from: a p99-converged run finishes
 * after ~min_batches/R rounds of parallel work instead of
 * min_batches serial batches.
 */
QueueSimResult
runReplicated(const QueueSimConfig &config, std::uint32_t replicas)
{
    std::vector<std::unique_ptr<Replica>> reps;
    reps.reserve(replicas);
    for (std::uint32_t r = 0; r < replicas; ++r) {
        reps.push_back(std::make_unique<Replica>(
            config, replicaSeed(config.seed, r)));
    }

    // Share the enclosing sweep pool's budget when running inside a
    // cell; otherwise bring up a transient pool sized so caller +
    // workers match the DPX_THREADS budget. Worker count cannot
    // affect results — replicas are identity-seeded and merged in
    // index order — it only affects wall clock.
    ThreadPool *shared = ThreadPool::current();
    std::unique_ptr<ThreadPool> local;
    if (shared == nullptr) {
        unsigned budget = ThreadPool::threadsFromEnv();
        DPX_CHECK_GE(budget, 1u); // threadsFromEnv clamps to >= 1
        unsigned workers = std::min<unsigned>(budget - 1, replicas - 1);
        if (workers > 0)
            local = std::make_unique<ThreadPool>(workers);
    }
    ThreadPool *pool = shared != nullptr ? shared : local.get();

    auto forEachReplica = [&](auto &&body) {
        std::vector<ThreadPool::Task> tasks;
        tasks.reserve(replicas);
        for (std::uint32_t r = 0; r < replicas; ++r)
            tasks.push_back([&, r] { body(*reps[r]); });
        runTaskBatch(pool, std::move(tasks));
    };

    forEachReplica(
        [&](Replica &rep) { rep.warmup(config.warmup_requests); });

    BatchMeans convergence(config.relative_error, config.z_score,
                           config.min_batches);
    const std::uint64_t max_rounds =
        (config.max_batches + replicas - 1) / replicas;
    for (std::uint64_t round = 0; round < max_rounds; ++round) {
        forEachReplica(
            [&](Replica &rep) { rep.runBatch(config.batch_size); });
        for (std::uint32_t r = 0; r < replicas; ++r)
            convergence.addBatch(reps[r]->last_batch_p99);
        // Lockstep invariant: every replica contributed exactly one
        // batch estimate per round, in replica-index order.
        DPX_CHECK_EQ(convergence.batches(), (round + 1) * replicas)
            << " — replicas fell out of lockstep";
        if (convergence.converged())
            break;
    }

    // Deterministic merge: strictly ascending replica index.
    QueueSimResult result;
    SketchStats sojourn(config.sketch_capacity);
    SketchStats wait(config.sketch_capacity);
    SketchStats idle_periods(config.sketch_capacity);
    double busy = 0.0;
    double horizon = 0.0;
    for (std::uint32_t r = 0; r < replicas; ++r) {
        // Lockstep also means equal work: every replica ran the same
        // number of rounds of the same batch size.
        DPX_CHECK_EQ(reps[r]->completed, reps[0]->completed)
            << " — replica " << r << " ran a different request count";
        sojourn.merge(reps[r]->sojourn);
        wait.merge(reps[r]->wait);
        idle_periods.merge(reps[r]->idle_periods);
        busy += reps[r]->core.busy();
        horizon += reps[r]->core.horizon();
        result.completed += reps[r]->completed;
        result.idle_fast_forwards += reps[r]->core.idleFastForwards();
    }
    result.sojourn = TailSummary::fromSketch(std::move(sojourn));
    result.wait = TailSummary::fromSketch(std::move(wait));
    result.idle_periods =
        TailSummary::fromSketch(std::move(idle_periods));
    // Replica timelines are independent; utilization is busy time
    // over the summed horizons (a horizon-weighted mean of the
    // per-replica utilizations).
    result.utilization =
        horizon > 0.0
            ? busy / (horizon * static_cast<double>(config.servers))
            : 0.0;
    result.converged = convergence.converged();
    result.replicas = replicas;
    return result;
}

} // namespace

std::uint32_t
resolveReplicas(const QueueSimConfig &config)
{
    if (config.replicas != 0)
        return config.replicas;
    const char *env = std::getenv("DPX_REPLICAS");
    if (env == nullptr)
        return 1;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || v == 0 || v > 1024) {
        warn("ignoring invalid DPX_REPLICAS value");
        return 1;
    }
    return static_cast<std::uint32_t>(v);
}

QueueSimResult
runQueueSim(const QueueSimConfig &config)
{
    DPX_CHECK(config.interarrival && config.service)
        << " — queue sim needs interarrival and service dists";
    DPX_CHECK_GE(config.servers, 1u) << " — need at least one server";

    const std::uint32_t replicas = resolveReplicas(config);
    if (replicas == 1)
        return runSingleStream(config);
    return runReplicated(config, replicas);
}

QueueSimConfig
makeMg1(DistributionPtr service, double load, std::uint64_t seed)
{
    DPX_CHECK(service != nullptr) << " — null service distribution";
    DPX_CHECK(load > 0.0 && load < 1.0)
        << " — load must be in (0,1), got " << load;
    QueueSimConfig cfg;
    double mu = 1.0 / service->mean();
    cfg.interarrival = makeExponential(1.0 / (load * mu));
    cfg.service = std::move(service);
    cfg.servers = 1;
    cfg.seed = seed;
    return cfg;
}

} // namespace duplexity
