#include "queueing/queue_sim.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace duplexity
{

ServerSchedule::ServerSchedule(std::uint32_t servers)
    : servers_(servers)
{
    panicIfNot(servers >= 1, "need at least one server");
    heap_.reserve(servers + 1);
    for (std::uint32_t i = 0; i < servers; ++i)
        heap_.push_back(pack(0.0, i));
    heap_.push_back(~Key{0}); // sentinel right-sibling for the leaves
}

namespace
{

/** Outcome of one simulated request. */
struct RequestOutcome
{
    double wait = 0.0;
    double service = 0.0;
    double idle_before = -1.0; // server idle gap ending here, if any
};

/** Per-run mutable state shared by the two engine variants. */
struct SimState
{
    Rng arrival_rng;
    Rng service_rng;
    Rng reservoir_rng;
    FastSampler interarrival;
    FastSampler service;
    double now = 0.0; // last arrival time

    /**
     * Variates are drawn a block at a time through sampleN so the
     * kind dispatch is paid once per block, not once per request.
     * The arrival and service streams are independent Rngs, so
     * blocking changes neither stream's draw order: request i still
     * consumes arrival draw i and service draw i.
     */
    static constexpr std::size_t block = 256;
    double inter_buf[block];
    double service_buf[block];
    std::size_t buf_pos = block; // starts empty

    void
    drawArrivalAndService(double &inter, double &service)
    {
        if (buf_pos == block) {
            interarrival.sampleN(arrival_rng, inter_buf, block);
            this->service.sampleN(service_rng, service_buf, block);
            buf_pos = 0;
        }
        inter = inter_buf[buf_pos];
        service = service_buf[buf_pos];
        ++buf_pos;
    }
};

/** Single-server FCFS via the Lindley recursion. */
struct Lindley
{
    double last_departure = 0.0;
    double busy_time = 0.0;

    RequestOutcome
    step(SimState &st)
    {
        RequestOutcome out;
        double inter;
        st.drawArrivalAndService(inter, out.service);
        st.now += inter;
        if (st.now > last_departure)
            out.idle_before = st.now - last_departure;
        double start = std::max(st.now, last_departure);
        out.wait = start - st.now;
        last_departure = start + out.service;
        busy_time += out.service;
        return out;
    }
};

/** FCFS multi-server: each arrival takes the earliest-free server. */
struct MultiServer
{
    ServerSchedule schedule;
    double busy_time = 0.0;

    explicit MultiServer(std::uint32_t k) : schedule(k) {}

    RequestOutcome
    step(SimState &st)
    {
        RequestOutcome out;
        double inter;
        st.drawArrivalAndService(inter, out.service);
        st.now += inter;
        ServerSchedule::Assignment a =
            schedule.assign(st.now, out.service);
        out.idle_before = a.idle_before;
        out.wait = a.start - st.now;
        busy_time += out.service;
        return out;
    }
};

} // namespace

QueueSimResult
runQueueSim(const QueueSimConfig &config)
{
    panicIfNot(config.interarrival && config.service,
               "queue sim needs interarrival and service dists");
    panicIfNot(config.servers >= 1, "need at least one server");

    QueueSimResult result;
    SimState st;
    Rng root(config.seed);
    st.arrival_rng = root.fork(1);
    st.service_rng = root.fork(2);
    st.reservoir_rng = root.fork(3);
    st.interarrival = FastSampler(config.interarrival);
    st.service = FastSampler(config.service);

    BatchMeans convergence(config.relative_error, config.z_score,
                           config.min_batches);

    Lindley single;
    MultiServer multi(config.servers);
    const bool use_lindley = config.servers == 1;

    auto step = [&]() {
        return use_lindley ? single.step(st) : multi.step(st);
    };

    for (std::uint64_t i = 0; i < config.warmup_requests; ++i)
        step();

    // BigHouse-style stopping rule: independent per-batch p99
    // estimates must agree to within the relative-error target.
    SampleStats batch(config.batch_size);
    for (std::uint64_t b = 0; b < config.max_batches; ++b) {
        batch.reset();
        for (std::uint64_t i = 0; i < config.batch_size; ++i) {
            RequestOutcome out = step();
            double sojourn = out.wait + out.service;
            batch.add(sojourn);
            result.sojourn.add(sojourn, st.reservoir_rng.next());
            result.wait.add(out.wait, st.reservoir_rng.next());
            if (out.idle_before >= 0.0) {
                result.idle_periods.add(out.idle_before,
                                        st.reservoir_rng.next());
            }
            ++result.completed;
        }
        convergence.addBatch(batch.percentile(0.99));
        if (convergence.converged())
            break;
    }
    result.converged = convergence.converged();

    // Utilization horizon: work runs until the last departure, which
    // can trail the last arrival — using st.now alone biases
    // utilization upward (past 1.0 under overload).
    double last_departure =
        use_lindley ? single.last_departure : multi.schedule.lastDeparture();
    double horizon = std::max(st.now, last_departure);
    double busy = use_lindley ? single.busy_time : multi.busy_time;
    result.utilization =
        horizon > 0.0
            ? busy / (horizon * static_cast<double>(config.servers))
            : 0.0;
    return result;
}

QueueSimConfig
makeMg1(DistributionPtr service, double load, std::uint64_t seed)
{
    panicIfNot(service != nullptr, "null service distribution");
    panicIfNot(load > 0.0 && load < 1.0, "load must be in (0,1)");
    QueueSimConfig cfg;
    double mu = 1.0 / service->mean();
    cfg.interarrival = makeExponential(1.0 / (load * mu));
    cfg.service = std::move(service);
    cfg.servers = 1;
    cfg.seed = seed;
    return cfg;
}

} // namespace duplexity
