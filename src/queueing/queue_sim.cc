#include "queueing/queue_sim.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace duplexity
{

namespace
{

/** Outcome of one simulated request. */
struct RequestOutcome
{
    double wait = 0.0;
    double service = 0.0;
    double idle_before = -1.0; // server idle gap ending here, if any
};

/** Per-run mutable state shared by the two engine variants. */
struct SimState
{
    Rng arrival_rng;
    Rng service_rng;
    Rng reservoir_rng;
    double now = 0.0; // last arrival time
};

/** Single-server FCFS via the Lindley recursion. */
struct Lindley
{
    double last_departure = 0.0;
    double busy_time = 0.0;

    RequestOutcome
    step(const QueueSimConfig &cfg, SimState &st)
    {
        RequestOutcome out;
        double inter = cfg.interarrival->sample(st.arrival_rng);
        out.service = cfg.service->sample(st.service_rng);
        st.now += inter;
        if (st.now > last_departure)
            out.idle_before = st.now - last_departure;
        double start = std::max(st.now, last_departure);
        out.wait = start - st.now;
        last_departure = start + out.service;
        busy_time += out.service;
        return out;
    }
};

/** FCFS multi-server: each arrival takes the earliest-free server. */
struct MultiServer
{
    std::vector<double> free_at;
    double busy_time = 0.0;

    explicit MultiServer(std::uint32_t k) : free_at(k, 0.0) {}

    RequestOutcome
    step(const QueueSimConfig &cfg, SimState &st)
    {
        RequestOutcome out;
        double inter = cfg.interarrival->sample(st.arrival_rng);
        out.service = cfg.service->sample(st.service_rng);
        st.now += inter;
        auto it = std::min_element(free_at.begin(), free_at.end());
        if (st.now > *it)
            out.idle_before = st.now - *it;
        double start = std::max(st.now, *it);
        out.wait = start - st.now;
        *it = start + out.service;
        busy_time += out.service;
        return out;
    }
};

} // namespace

QueueSimResult
runQueueSim(const QueueSimConfig &config)
{
    panicIfNot(config.interarrival && config.service,
               "queue sim needs interarrival and service dists");
    panicIfNot(config.servers >= 1, "need at least one server");

    QueueSimResult result;
    SimState st;
    Rng root(config.seed);
    st.arrival_rng = root.fork(1);
    st.service_rng = root.fork(2);
    st.reservoir_rng = root.fork(3);

    BatchMeans convergence(config.relative_error, config.z_score,
                           config.min_batches);

    Lindley single;
    MultiServer multi(config.servers);
    const bool use_lindley = config.servers == 1;

    auto step = [&]() {
        return use_lindley ? single.step(config, st)
                           : multi.step(config, st);
    };

    for (std::uint64_t i = 0; i < config.warmup_requests; ++i)
        step();

    // BigHouse-style stopping rule: independent per-batch p99
    // estimates must agree to within the relative-error target.
    SampleStats batch(config.batch_size);
    for (std::uint64_t b = 0; b < config.max_batches; ++b) {
        batch.reset();
        for (std::uint64_t i = 0; i < config.batch_size; ++i) {
            RequestOutcome out = step();
            double sojourn = out.wait + out.service;
            batch.add(sojourn);
            result.sojourn.add(sojourn, st.reservoir_rng.next());
            result.wait.add(out.wait, st.reservoir_rng.next());
            if (out.idle_before >= 0.0) {
                result.idle_periods.add(out.idle_before,
                                        st.reservoir_rng.next());
            }
            ++result.completed;
        }
        convergence.addBatch(batch.percentile(0.99));
        if (convergence.converged())
            break;
    }
    result.converged = convergence.converged();

    double horizon = st.now;
    double busy = use_lindley ? single.busy_time : multi.busy_time;
    result.utilization =
        horizon > 0.0
            ? busy / (horizon * static_cast<double>(config.servers))
            : 0.0;
    return result;
}

QueueSimConfig
makeMg1(DistributionPtr service, double load, std::uint64_t seed)
{
    panicIfNot(service != nullptr, "null service distribution");
    panicIfNot(load > 0.0 && load < 1.0, "load must be in (0,1)");
    QueueSimConfig cfg;
    double mu = 1.0 / service->mean();
    cfg.interarrival = makeExponential(1.0 / (load * mu));
    cfg.service = std::move(service);
    cfg.servers = 1;
    cfg.seed = seed;
    return cfg;
}

} // namespace duplexity
