/**
 * @file
 * BigHouse-lite: a request-granularity queueing simulator.
 *
 * The paper's tail-latency methodology (Section V): measure IPC (and
 * hence per-request service times) in the cycle-level simulator, then
 * simulate an FCFS M/G/1 queue at request granularity until the 95 %
 * confidence interval of the reported statistic is within 5 % error.
 * This module implements that queue (G/G/k generally; a fast Lindley
 * recursion for the k = 1 FCFS case) plus the convergence machinery.
 */

#ifndef DPX_QUEUEING_QUEUE_SIM_HH
#define DPX_QUEUEING_QUEUE_SIM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/distributions.hh"
#include "sim/stats.hh"

namespace duplexity
{

/**
 * Earliest-free-server assignment for the FCFS G/G/k engine.
 *
 * A binary min-heap over (free_at, server index) replaces the old
 * O(k) linear scan with an O(log k) root replacement. The index
 * tie-break makes the heap minimum *exactly* the server
 * std::min_element used to return (earliest free time, lowest index
 * among ties), so the k-server simulation is bit-identical to the
 * scan-based one — tests/queueing/queue_sim_test.cc runs the two
 * against each other request-for-request.
 *
 * Layout and comparisons are tuned for the sift-down's worst enemy,
 * the data-dependent left/right child choice: each (free_at, index)
 * pair is packed into one integer key whose order matches the
 * lexicographic pair order, so the child select is a single wide
 * compare folded into an index add (no jump), and a sentinel after
 * the last element lets the right-sibling probe skip its bounds
 * check.
 */
class ServerSchedule
{
  public:
    explicit ServerSchedule(std::uint32_t servers);

    struct Assignment
    {
        double start = 0.0;
        /** Idle gap on the chosen server ending at this arrival;
         *  negative when the server was still busy. */
        double idle_before = -1.0;
    };

    /** Seat an arrival at time @p arrival for @p service seconds on
     *  the earliest-free server. */
    Assignment
    assign(double arrival, double service)
    {
        Assignment out;
        double free_at = unpackTime(heap_[0]);
        if (arrival > free_at)
            out.idle_before = arrival - free_at;
        out.start = std::max(arrival, free_at);
        double departure = out.start + service;
        if (departure > last_departure_)
            last_departure_ = departure;

        // Root replacement: the server's key only grows, so one
        // sift-down restores heap order — cheaper than pop + push.
        // The storage carries a +inf sentinel after the last element
        // so the right-sibling read needs no bounds branch: the
        // child select compiles to a flag-setting wide compare plus
        // an add, with no data-dependent jump.
        Key item = pack(departure,
                        static_cast<std::uint32_t>(heap_[0]));
        std::size_t pos = 0;
        const std::size_t n = servers_;
        for (;;) {
            std::size_t child = 2 * pos + 1;
            if (child >= n)
                break;
            child += static_cast<std::size_t>(heap_[child + 1] <
                                              heap_[child]);
            if (heap_[child] >= item)
                break;
            heap_[pos] = heap_[child];
            pos = child;
        }
        heap_[pos] = item;
        return out;
    }

    /** Latest departure ever scheduled (utilization horizon). */
    double lastDeparture() const { return last_departure_; }

    std::uint32_t servers() const { return servers_; }

  private:
    /**
     * (free_at, index) packed into one integer key so the heap's
     * lexicographic compare is a single wide integer compare. Free
     * times are non-negative finite doubles, whose IEEE-754 bit
     * patterns order the same as their values, so placing the raw
     * time bits above the 32-bit server index makes integer key
     * order exactly the (free_at, then lowest index) order the
     * linear scan minimized.
     */
    using Key = unsigned __int128;

    static Key
    pack(double free_at, std::uint32_t index)
    {
        return (static_cast<Key>(std::bit_cast<std::uint64_t>(free_at))
                << 32) |
               index;
    }

    static double
    unpackTime(Key key)
    {
        return std::bit_cast<double>(
            static_cast<std::uint64_t>(key >> 32));
    }

    /** Packed keys in binary-heap order, followed by one all-ones
     *  sentinel (compares greater than any key). */
    std::vector<Key> heap_;
    std::uint32_t servers_ = 0;
    double last_departure_ = 0.0;
};

struct QueueSimConfig
{
    /** Interarrival-time distribution (seconds). */
    DistributionPtr interarrival;
    /** Service-time distribution (seconds). */
    DistributionPtr service;
    std::uint32_t servers = 1;

    std::uint64_t warmup_requests = 2000;
    std::uint64_t batch_size = 20000;
    std::uint64_t min_batches = 8;
    std::uint64_t max_batches = 200;
    /** Convergence target: CI half-width / mean of per-batch p99. */
    double relative_error = 0.05;
    double z_score = 1.96;

    std::uint64_t seed = 1;
};

struct QueueSimResult
{
    /** End-to-end (queueing + service) latencies, seconds. */
    SampleStats sojourn;
    /** Queueing delay only, seconds. */
    SampleStats wait;
    /** Server idle-period durations, seconds. */
    SampleStats idle_periods;
    /** Fraction of time servers were busy. */
    double utilization = 0.0;
    std::uint64_t completed = 0;
    bool converged = false;

    double p99Sojourn() const { return sojourn.percentile(0.99); }
    double meanSojourn() const { return sojourn.mean(); }
};

/** Run the queueing simulation to convergence (or max_batches). */
QueueSimResult runQueueSim(const QueueSimConfig &config);

/**
 * Convenience: Poisson arrivals at @p load fraction of the capacity
 * implied by @p service (single server).
 */
QueueSimConfig makeMg1(DistributionPtr service, double load,
                       std::uint64_t seed = 1);

} // namespace duplexity

#endif // DPX_QUEUEING_QUEUE_SIM_HH
