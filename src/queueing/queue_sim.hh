/**
 * @file
 * BigHouse-lite: a request-granularity queueing simulator.
 *
 * The paper's tail-latency methodology (Section V): measure IPC (and
 * hence per-request service times) in the cycle-level simulator, then
 * simulate an FCFS M/G/1 queue at request granularity until the 95 %
 * confidence interval of the reported statistic is within 5 % error.
 * This module implements that queue (G/G/k generally; a fast Lindley
 * recursion for the k = 1 FCFS case) plus the convergence machinery,
 * and a replication layer that splits one run into R statistically
 * independent streams to cut the tail-estimation wall clock without
 * perturbing the measured latency distribution (see
 * QueueSimConfig::replicas and DESIGN.md "Replicated tail engine").
 */

#ifndef DPX_QUEUEING_QUEUE_SIM_HH
#define DPX_QUEUEING_QUEUE_SIM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/distributions.hh"
#include "sim/stats.hh"

namespace duplexity
{

/**
 * Earliest-free-server assignment for the FCFS G/G/k engine.
 *
 * Hybrid policy store. Small server counts (k <= scan_threshold,
 * default 16) keep the free-time array and take std::min_element
 * directly: at that size the branch-free vectorizable scan beats the
 * heap's pointer-chasing sift-down (measured ~13 vs ~20 ns at k = 8).
 * Larger k switches to a binary min-heap over (free_at, server
 * index) whose O(log k) root replacement wins decisively (~3.8x at
 * k = 64).
 *
 * Both modes implement the *identical* policy — earliest free time,
 * lowest index among exact ties, the std::min_element semantics —
 * so simulation outcomes are bit-identical across the cutoff;
 * tests/queueing/queue_sim_test.cc runs both modes against the scan
 * reference request-for-request on either side of the threshold.
 *
 * Heap layout and comparisons are tuned for the sift-down's worst
 * enemy, the data-dependent left/right child choice: each (free_at,
 * index) pair is packed into one integer key whose order matches the
 * lexicographic pair order, so the child select is a single wide
 * compare folded into an index add (no jump), and a sentinel after
 * the last element lets the right-sibling probe skip its bounds
 * check.
 *
 * Idle fast-forward (the queueing-layer port of the step-side stall
 * fast-forward, DESIGN.md §4d): free times only grow and
 * last_departure_ tracks their maximum, so `arrival >=
 * last_departure_` proves every server is idle until this arrival —
 * the whole idle gap can be skipped in one event.  While that holds,
 * assignments run from a ring of (free_at, index) slots kept sorted
 * in std::min_element order: seat the head, reseat it at the back
 * (its new departure is >= every other free time), O(1) per arrival
 * instead of the O(k) scan or O(log k) sift.
 *
 * The ring is built for free, never sorted on the hot path: at
 * moderate load most drained stretches are 1-2 arrivals (measured
 * 1.13 at rho = 0.3, k = 8), so an O(k log k) sort on entry costs
 * ~8x what the O(1) seats it unlocks would save and the first cut of
 * this path measured a net 12 % regression.  Instead, the first k
 * consecutive drained arrivals seat through the live legacy mode
 * (identical policy, structures stay in sync) while their seating
 * order is recorded — drained seats visit servers in ascending
 * (free_at, index) order, so after k of them the record IS the
 * sorted ring, validated in O(k) and activated; exact-tie
 * pathologies (e.g. zero-length services reseating one server) fail
 * validation and fall back to a snapshot-and-sort.  Short stretches
 * therefore pay only a record write, and only provably long
 * stretches run the ring.  The skipped gap is still charged to the
 * same Assignment::idle_before the callers feed into the idle-period
 * stats, so SampleStats/sketch outputs are bit-identical; on the
 * first arrival that finds the system busy the schedule falls back
 * to the scan/heap, whose state is resynced on exit (the scan array
 * is kept in sync per assignment; the sorted ring IS a valid
 * min-heap, so heap mode repacks it directly).
 * setIdleFastForwardEnabled(false) forces the legacy modes
 * throughout — the differential reference.
 */
class ServerSchedule
{
  public:
    /** Largest k served by the linear scan (heap above). */
    static constexpr std::uint32_t kDefaultScanThreshold = 16;

    explicit ServerSchedule(
        std::uint32_t servers,
        std::uint32_t scan_threshold = kDefaultScanThreshold);

    struct Assignment
    {
        double start = 0.0;
        /** Idle gap on the chosen server ending at this arrival;
         *  negative when the server was still busy. */
        double idle_before = -1.0;
    };

    /** Seat an arrival at time @p arrival for @p service seconds on
     *  the earliest-free server. */
    Assignment
    assign(double arrival, double service)
    {
        if (ff_enabled_) {
            if (arrival >= last_departure_) {
                if (ff_active_)
                    return assignIdle(arrival, service);
                return assignDrainedRecording(arrival, service);
            }
            if (ff_active_)
                exitIdleFastForward();
            stretch_ = 0;
        }
        return use_scan_ ? assignScan(arrival, service)
                         : assignHeap(arrival, service);
    }

    /** Latest departure ever scheduled (utilization horizon). */
    double lastDeparture() const { return last_departure_; }

    std::uint32_t servers() const { return servers_; }

    /** True when the linear-scan mode is active (k <= threshold). */
    bool usesScan() const { return use_scan_; }

    /** Force the legacy scan/heap assignment throughout (see class
     *  comment) — the differential wall's reference. */
    void
    setIdleFastForwardEnabled(bool enabled)
    {
        if (!enabled && ff_active_)
            exitIdleFastForward();
        // A recorded stretch prefix goes stale the moment legacy
        // assignments can run unrecorded, so toggling either way
        // restarts the proving period.
        stretch_ = 0;
        ff_enabled_ = enabled;
    }

    bool idleFastForwardEnabled() const { return ff_enabled_; }

    /** Arrivals seated through the O(1) idle fast path (activation
     *  counter for the bench's fast_path subtree). */
    std::uint64_t idleFastForwards() const { return ff_assigns_; }

  private:
    /** One ring slot: a server and the time it frees up. */
    struct FreeSlot
    {
        double free_at;
        std::uint32_t index;
    };

    /** Seat an arrival while the system is provably empty: the ring
     *  head is the std::min_element choice, and the reseated server
     *  moves to the back (modulo exact-tie bubbling). */
    Assignment
    assignIdle(double arrival, double service)
    {
        Assignment out;
        FreeSlot &slot = ring_[head_];
        // arrival >= last_departure_ >= every free time, so the
        // server starts immediately; strict > keeps idle_before
        // unset on exact ties, like the legacy modes.
        if (arrival > slot.free_at)
            out.idle_before = arrival - slot.free_at;
        out.start = arrival;
        const double departure = arrival + service;
        if (departure > last_departure_)
            last_departure_ = departure;
        if (use_scan_)
            free_at_[slot.index] = departure;
        slot.free_at = departure;
        const std::size_t back = head_;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        restoreRingTies(back);
        ++ff_assigns_;
        return out;
    }

    /** Bubble the just-reseated back slot past exact-time ties with
     *  larger indices so the ring keeps (free_at, index) order. */
    void
    restoreRingTies(std::size_t pos)
    {
        while (pos != head_) {
            const std::size_t prev =
                pos == 0 ? ring_.size() - 1 : pos - 1;
            if (ring_[prev].free_at < ring_[pos].free_at ||
                (ring_[prev].free_at == ring_[pos].free_at &&
                 ring_[prev].index < ring_[pos].index))
                break;
            std::swap(ring_[prev], ring_[pos]);
            pos = prev;
        }
    }

    void enterIdleFastForward();
    void exitIdleFastForward();
    void activateRecordedRing();

    /** Drained arrival before the ring is trusted: seat through the
     *  live legacy mode and record (departure, server) in stretch
     *  order.  The k-th consecutive recorded seat activates the ring
     *  (see the class comment for why the record is already sorted). */
    Assignment
    assignDrainedRecording(double arrival, double service)
    {
        std::uint32_t seated = 0;
        Assignment out = use_scan_
                             ? assignScan(arrival, service, &seated)
                             : assignHeap(arrival, service, &seated);
        // Drained means the server starts at the arrival, so its new
        // free time is out.start + service.
        ring_[stretch_] = {out.start + service, seated};
        if (++stretch_ == servers_)
            activateRecordedRing();
        return out;
    }

    Assignment
    assignScan(double arrival, double service,
               std::uint32_t *seated = nullptr)
    {
        Assignment out;
        // One tracked-index pass beats a value-only reduction plus a
        // first-match rescan here: k is a runtime value, so the
        // compiler emits a scalar reduction either way and the
        // second pass is pure overhead (measured ~2x at k = 8).
        auto it = std::min_element(free_at_.begin(), free_at_.end());
        double free_at = *it;
        if (arrival > free_at)
            out.idle_before = arrival - free_at;
        out.start = std::max(arrival, free_at);
        double departure = out.start + service;
        if (departure > last_departure_)
            last_departure_ = departure;
        *it = departure;
        if (seated)
            *seated = static_cast<std::uint32_t>(it - free_at_.begin());
        return out;
    }

    Assignment
    assignHeap(double arrival, double service,
               std::uint32_t *seated = nullptr)
    {
        Assignment out;
        double free_at = unpackTime(heap_[0]);
        if (seated)
            *seated = static_cast<std::uint32_t>(heap_[0]);
        if (arrival > free_at)
            out.idle_before = arrival - free_at;
        out.start = std::max(arrival, free_at);
        double departure = out.start + service;
        if (departure > last_departure_)
            last_departure_ = departure;

        // Root replacement: the server's key only grows, so one
        // sift-down restores heap order — cheaper than pop + push.
        // The storage carries a +inf sentinel after the last element
        // so the right-sibling read needs no bounds branch: the
        // child select compiles to a flag-setting wide compare plus
        // an add, with no data-dependent jump.
        Key item = pack(departure,
                        static_cast<std::uint32_t>(heap_[0]));
        std::size_t pos = 0;
        const std::size_t n = servers_;
        for (;;) {
            std::size_t child = 2 * pos + 1;
            if (child >= n)
                break;
            child += static_cast<std::size_t>(heap_[child + 1] <
                                              heap_[child]);
            if (heap_[child] >= item)
                break;
            heap_[pos] = heap_[child];
            pos = child;
        }
        DPX_DCHECK_LT(pos, n);
        heap_[pos] = item;
        return out;
    }
    /**
     * (free_at, index) packed into one integer key so the heap's
     * lexicographic compare is a single wide integer compare. Free
     * times are non-negative finite doubles, whose IEEE-754 bit
     * patterns order the same as their values, so placing the raw
     * time bits above the 32-bit server index makes integer key
     * order exactly the (free_at, then lowest index) order the
     * linear scan minimized.
     */
    using Key = unsigned __int128;

    static Key
    pack(double free_at, std::uint32_t index)
    {
        // The packed order matches the (free_at, index) pair order
        // only for non-negative finite times: a negative double's
        // sign bit would sort it ABOVE every positive key, and a NaN
        // payload sorts arbitrarily. Departure times in the G/G/k
        // engine are sums of non-negative arrivals and services, so
        // the range invariant is checked, not clamped.
        DPX_DCHECK(free_at >= 0.0 && free_at <= 1e300)
            << " — heap key time out of packable range";
        return (static_cast<Key>(std::bit_cast<std::uint64_t>(free_at))
                << 32) |
               index;
    }

    static double
    unpackTime(Key key)
    {
        return std::bit_cast<double>(
            static_cast<std::uint64_t>(key >> 32));
    }

    /** Scan mode: per-server free times, index = server id. */
    std::vector<double> free_at_;
    /** Heap mode: packed keys in binary-heap order, followed by one
     *  all-ones sentinel (compares greater than any key). */
    std::vector<Key> heap_;
    /** Idle fast-forward mode: all k slots sorted ascending by
     *  (free_at, index) starting at head_.  While inactive, the
     *  first stretch_ slots hold the current stretch's recorded
     *  (departure, server) seats instead. */
    std::vector<FreeSlot> ring_;
    /** Permutation check for ring activation: slot i was recorded
     *  this generation iff seen_stamp_[i] == stamp_gen_. */
    std::vector<std::uint64_t> seen_stamp_;
    std::uint64_t stamp_gen_ = 0;
    std::size_t head_ = 0;
    std::uint32_t servers_ = 0;
    /** Consecutive drained seats recorded since the last busy
     *  arrival (or toggle); meaningful only while !ff_active_. */
    std::uint32_t stretch_ = 0;
    bool use_scan_ = true;
    bool ff_enabled_ = true;
    bool ff_active_ = false;
    double last_departure_ = 0.0;
    std::uint64_t ff_assigns_ = 0;
};

struct QueueSimConfig
{
    /** Interarrival-time distribution (seconds). */
    DistributionPtr interarrival;
    /** Service-time distribution (seconds). */
    DistributionPtr service;
    std::uint32_t servers = 1;

    std::uint64_t warmup_requests = 2000;
    std::uint64_t batch_size = 20000;
    std::uint64_t min_batches = 8;
    std::uint64_t max_batches = 200;
    /** Convergence target: CI half-width / mean of per-batch p99. */
    double relative_error = 0.05;
    double z_score = 1.96;

    std::uint64_t seed = 1;

    /**
     * Statistically independent replicas merged into one result.
     * 0 = resolve from the DPX_REPLICAS environment variable
     * (default 1). R = 1 runs the legacy exact single-stream engine
     * bit-for-bit; R > 1 splits the batch budget across R streams
     * whose seeds derive from (seed, replica index) through the Rng
     * fork chain, runs them on the shared thread-pool budget, and
     * merges fixed-memory sketches in replica-index order — the
     * merged result is bit-identical for every worker count.
     */
    std::uint32_t replicas = 0;

    /** Per-level capacity of the replica-merge quantile sketch
     *  (rank error certificate: see QuantileSketch). */
    std::size_t sketch_capacity = QuantileSketch::kDefaultCapacity;

    /** Skip provably-idle stretches in one event (see ServerSchedule;
     *  outcome- and stat-bit-identical).  false forces the legacy
     *  scan/heap assignment on every arrival — the differential
     *  wall's reference. */
    bool idle_fast_forward = true;
};

struct QueueSimResult
{
    /** End-to-end (queueing + service) latencies, seconds. */
    TailSummary sojourn;
    /** Queueing delay only, seconds. */
    TailSummary wait;
    /** Server idle-period durations, seconds. */
    TailSummary idle_periods;
    /** Fraction of time servers were busy. */
    double utilization = 0.0;
    std::uint64_t completed = 0;
    bool converged = false;
    /** Replica count the run actually used. */
    std::uint32_t replicas = 1;
    /** Arrivals seated through the O(1) idle fast path, summed over
     *  replicas (0 for k = 1, whose Lindley recursion needs none). */
    std::uint64_t idle_fast_forwards = 0;

    double p99Sojourn() const { return sojourn.percentile(0.99); }
    double meanSojourn() const { return sojourn.mean(); }
};

/** Run the queueing simulation to convergence (or max_batches). */
QueueSimResult runQueueSim(const QueueSimConfig &config);

/** Replica count a config resolves to: the explicit field, else the
 *  DPX_REPLICAS environment variable, else 1. */
std::uint32_t resolveReplicas(const QueueSimConfig &config);

/**
 * Convenience: Poisson arrivals at @p load fraction of the capacity
 * implied by @p service (single server).
 */
QueueSimConfig makeMg1(DistributionPtr service, double load,
                       std::uint64_t seed = 1);

} // namespace duplexity

#endif // DPX_QUEUEING_QUEUE_SIM_HH
