/**
 * @file
 * BigHouse-lite: a request-granularity queueing simulator.
 *
 * The paper's tail-latency methodology (Section V): measure IPC (and
 * hence per-request service times) in the cycle-level simulator, then
 * simulate an FCFS M/G/1 queue at request granularity until the 95 %
 * confidence interval of the reported statistic is within 5 % error.
 * This module implements that queue (G/G/k generally; a fast Lindley
 * recursion for the k = 1 FCFS case) plus the convergence machinery.
 */

#ifndef DPX_QUEUEING_QUEUE_SIM_HH
#define DPX_QUEUEING_QUEUE_SIM_HH

#include <cstdint>

#include "sim/distributions.hh"
#include "sim/stats.hh"

namespace duplexity
{

struct QueueSimConfig
{
    /** Interarrival-time distribution (seconds). */
    DistributionPtr interarrival;
    /** Service-time distribution (seconds). */
    DistributionPtr service;
    std::uint32_t servers = 1;

    std::uint64_t warmup_requests = 2000;
    std::uint64_t batch_size = 20000;
    std::uint64_t min_batches = 8;
    std::uint64_t max_batches = 200;
    /** Convergence target: CI half-width / mean of per-batch p99. */
    double relative_error = 0.05;
    double z_score = 1.96;

    std::uint64_t seed = 1;
};

struct QueueSimResult
{
    /** End-to-end (queueing + service) latencies, seconds. */
    SampleStats sojourn;
    /** Queueing delay only, seconds. */
    SampleStats wait;
    /** Server idle-period durations, seconds. */
    SampleStats idle_periods;
    /** Fraction of time servers were busy. */
    double utilization = 0.0;
    std::uint64_t completed = 0;
    bool converged = false;

    double p99Sojourn() const { return sojourn.percentile(0.99); }
    double meanSojourn() const { return sojourn.mean(); }
};

/** Run the queueing simulation to convergence (or max_batches). */
QueueSimResult runQueueSim(const QueueSimConfig &config);

/**
 * Convenience: Poisson arrivals at @p load fraction of the capacity
 * implied by @p service (single server).
 */
QueueSimConfig makeMg1(DistributionPtr service, double load,
                       std::uint64_t seed = 1);

} // namespace duplexity

#endif // DPX_QUEUEING_QUEUE_SIM_HH
