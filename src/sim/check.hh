/**
 * @file
 * Contract macros: the machine-checked half of the determinism and
 * invariant story (DESIGN.md "Analysis layer").
 *
 *   DPX_CHECK(cond)            always on; panics (aborts) on failure
 *   DPX_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
 *                              as above, printing both operand values
 *   DPX_DCHECK / DPX_DCHECK_*  debug-only twins, compiled out when
 *                              DPX_ENABLE_DCHECKS is 0 (the default
 *                              in NDEBUG builds) but still
 *                              type-checked, so they cannot rot
 *
 * Every macro streams extra context:
 *
 *     DPX_CHECK_LE(pos, ring.size()) << " ring=" << name;
 *
 * Failure routes through panicAt() (sim/logging.hh), a [[noreturn]]
 * path that prints "panic: file:line: DPX_CHECK(cond) failed ..."
 * and aborts — the same semantics as panic(), because a failed check
 * IS a simulator bug, never a user error (user errors call fatal()).
 *
 * When to use what (full table in DESIGN.md):
 *  - DPX_CHECK: cheap invariants on cold or per-call paths
 *    (configuration, merges, finalization).
 *  - DPX_DCHECK: invariants inside per-op / per-request hot loops;
 *    free in Release, verified in Debug and in the dedicated
 *    DPX_ENABLE_DCHECKS=1 test target.
 *  - panic()/fatal() directly: failures that are not a boolean
 *    expression over local state (lookup misses, mode mismatches).
 *
 * Operands may be re-evaluated on the failure path (to print their
 * values); keep them side-effect free.
 */

#ifndef DPX_SIM_CHECK_HH
#define DPX_SIM_CHECK_HH

#include <sstream>

#include "sim/logging.hh"

namespace duplexity
{
namespace detail
{

/**
 * Collects the streamed failure message; the destructor fires the
 * panic path at the end of the full expression, after every
 * operator<< has appended its context. noexcept(false) keeps a
 * throwing test hook (setFailureHookForTest) legal.
 */
class CheckFailure
{
  public:
    CheckFailure(const char *file, int line, const char *macro,
                 const char *cond)
        : file_(file), line_(line)
    {
        stream_ << macro << "(" << cond << ") failed";
    }

    CheckFailure(const CheckFailure &) = delete;
    CheckFailure &operator=(const CheckFailure &) = delete;

    ~CheckFailure() noexcept(false)
    {
        panicAt(file_, line_, stream_.str());
    }

    template <typename T>
    CheckFailure &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    const char *file_;
    int line_;
    std::ostringstream stream_;
};

/** Gives the failure arm of the DPX_CHECK ternary type void.
 *  operator& binds looser than operator<<, so it swallows the whole
 *  streamed chain. */
struct CheckVoidify
{
    void operator&(const CheckFailure &) const {}
};

} // namespace detail
} // namespace duplexity

/** Panic (abort) with file:line and the failed condition text unless
 *  @p cond holds. Streamable: DPX_CHECK(x) << "context". */
#define DPX_CHECK(cond)                                                \
    (cond) ? (void)0                                                   \
           : ::duplexity::detail::CheckVoidify() &                     \
                 ::duplexity::detail::CheckFailure(                    \
                     __FILE__, __LINE__, "DPX_CHECK", #cond)

/* Binary comparisons; print both operand values on failure
 * ("... failed (3 vs. 5)"). Operands are evaluated once on the
 * success path and again for printing on the (dying) failure path. */
#define DPX_CHECK_OP_(op, a, b)                                        \
    ((a)op(b)) ? (void)0                                               \
               : ::duplexity::detail::CheckVoidify() &                 \
                     ::duplexity::detail::CheckFailure(                \
                         __FILE__, __LINE__, "DPX_CHECK",              \
                         #a " " #op " " #b)                            \
                         << " (" << (a) << " vs. " << (b) << ")"

#define DPX_CHECK_EQ(a, b) DPX_CHECK_OP_(==, a, b)
#define DPX_CHECK_NE(a, b) DPX_CHECK_OP_(!=, a, b)
#define DPX_CHECK_LT(a, b) DPX_CHECK_OP_(<, a, b)
#define DPX_CHECK_LE(a, b) DPX_CHECK_OP_(<=, a, b)
#define DPX_CHECK_GT(a, b) DPX_CHECK_OP_(>, a, b)
#define DPX_CHECK_GE(a, b) DPX_CHECK_OP_(>=, a, b)

/**
 * Debug-check gate. Defaults to on only when NDEBUG is not defined
 * (CMake's Debug configuration); define DPX_ENABLE_DCHECKS=0/1 on
 * the compile line to force either way (the check_test build
 * compiles both flavors explicitly so CI exercises both paths
 * regardless of build type).
 */
#ifndef DPX_ENABLE_DCHECKS
#ifdef NDEBUG
#define DPX_ENABLE_DCHECKS 0
#else
#define DPX_ENABLE_DCHECKS 1
#endif
#endif

#if DPX_ENABLE_DCHECKS
#define DPX_DCHECK(cond) DPX_CHECK(cond)
#define DPX_DCHECK_EQ(a, b) DPX_CHECK_EQ(a, b)
#define DPX_DCHECK_NE(a, b) DPX_CHECK_NE(a, b)
#define DPX_DCHECK_LT(a, b) DPX_CHECK_LT(a, b)
#define DPX_DCHECK_LE(a, b) DPX_CHECK_LE(a, b)
#define DPX_DCHECK_GT(a, b) DPX_CHECK_GT(a, b)
#define DPX_DCHECK_GE(a, b) DPX_CHECK_GE(a, b)
#else
/* Disabled flavor: `true ||` short-circuits, so the condition (and
 * any streamed context) is never evaluated at run time, but it still
 * compiles — dead code the optimizer deletes entirely (the perf-smoke
 * job pins the Release cost of the DCHECK sweep at zero). */
#define DPX_DCHECK(cond) DPX_CHECK(true || (cond))
#define DPX_DCHECK_EQ(a, b) DPX_CHECK(true || ((a) == (b)))
#define DPX_DCHECK_NE(a, b) DPX_CHECK(true || ((a) != (b)))
#define DPX_DCHECK_LT(a, b) DPX_CHECK(true || ((a) < (b)))
#define DPX_DCHECK_LE(a, b) DPX_CHECK(true || ((a) <= (b)))
#define DPX_DCHECK_GT(a, b) DPX_CHECK(true || ((a) > (b)))
#define DPX_DCHECK_GE(a, b) DPX_CHECK(true || ((a) >= (b)))
#endif

#endif // DPX_SIM_CHECK_HH
