/**
 * @file
 * Replica log1p kernels behind the vmath fast path (DESIGN.md §4b.4).
 *
 * Two kernels, one algorithm: a branch-reduced scalar twin and a
 * 2-lane vector form of glibc 2.36's *resolved* log1p — the FMA IFUNC
 * variant (`__log1p_fma`), i.e. the fdlibm kernel with fused
 * multiply-adds at exactly the sites that variant fuses.  Both were
 * derived from the disassembly, not the C source: the generic fdlibm
 * build rounds differently at the fused sites, so matching the
 * *symbol the dynamic loader actually picks* is the only way to get
 * bit-identity with `std::log1p` on FMA hosts.
 *
 * Exactness domain: the variate maps only ever pass
 * x = -(raw >> 11) * 2^-53, so -(1 - 2^-53) <= x <= -0.  Within it:
 *  - |x| < 2^-29 (and -0.0) is a rare tail the replica routes to
 *    `std::log1p` outright, as the original does;
 *  - the k != 0 rebias leg can land on |f| == 0 (hu20f == 0), another
 *    routed-out rare case;
 *  - everything else runs the polynomial pipeline, branchless in the
 *    scalar twin (mask selects between the k == 0 and k != 0 operand
 *    sets) and lane-masked in the vector form.
 * Bit-identity of both kernels over this domain was established by
 * exhaustive boundary sweeps (every threshold in the algorithm ±
 * thousands of ulps at the raw level) plus 30M+ random draws, and is
 * re-established on every host at runtime by probe() below — never
 * assumed.  The probe fails closed: any mismatch, a missing FMA unit,
 * or a different libm routes every call to `std::log1p`, keeping the
 * golden walls green with the fast path simply inactive.
 *
 * This TU must build with -ffp-contract=off (set in
 * src/sim/CMakeLists.txt): the kernel's unfused multiplies and adds
 * are exactly as rounding-significant as its fused ones, and letting
 * the compiler contract them would silently change bits.  Fused ops
 * appear only as explicit __builtin_fma / simd::fmaF64x2.
 *
 * Lint/analyze posture: rule DPX106 bans direct `std::log`-family
 * calls reachable from hot entries everywhere *except* this file and
 * vmath.hh — the libm references here are the fallback half of the
 * fast-path contract, not stray slow paths.  Vector code uses only
 * the simd:: typedefs and helpers (rule DPX009).
 */

#include "sim/vmath.hh"

#include <cmath>
#include <cstring>

#include "sim/simd.hh"

namespace duplexity
{
namespace vmath
{

namespace
{

/// Probe verdict.  Lazily established on first use; idempotent, so
/// the benign unsynchronized race (two threads both probing) settles
/// on the same value.
enum Mode : int
{
    kUnprobed = 0,
    kActive = 1,
    kFallback = 2,
};

// dpx-lint: allow(DPX105): probe memo — written once with a value
// that is a pure function of the host (libm + CPU), so determinism
// across runs and threads is preserved by construction.
std::atomic<int> g_mode{kUnprobed};

// dpx-lint: allow(DPX105): monotone fast-path activation counter for
// bench attribution only; never read back into simulated state.
std::atomic<std::uint64_t> g_block_lanes{0};

#if defined(__x86_64__) && !defined(DPX_NO_VMATH)
#define DPX_VMATH_KERNELS 1

inline std::uint64_t
bitsF64(double d)
{
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

inline double
fromBitsF64(std::uint64_t u)
{
    double d;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

/// Kernel constants, verbatim from the resolved glibc variant (same
/// values as fdlibm's s_log1p.c).
constexpr double kLn2Hi = 0x1.62e42feep-1;
constexpr double kLn2Lo = 0x1.a39ef35793c76p-33;
constexpr double kLp1 = 0x1.5555555555593p-1;
constexpr double kLp2 = 0x1.999999997fa04p-2;
constexpr double kLp3 = 0x1.2492494229359p-2;
constexpr double kLp4 = 0x1.c71c51d8e78afp-3;
constexpr double kLp5 = 0x1.7466496cb03dep-3;
constexpr double kLp6 = 0x1.39a09d078c69fp-3;
constexpr double kLp7 = 0x1.2f112df3e5244p-3;

/**
 * Branch-reduced scalar twin: log1p(-u0) for u0 in [0, 1).
 *
 * The two data-dependent branches of the original (k == 0 vs k != 0,
 * rebias vs not) become uint64 mask selects over both precomputed
 * operand sets; only the rare routed-out cases stay as (essentially
 * never taken) branches.  On the ~70/30 k-split the uniform domain
 * produces, the mispredicts this removes are worth more than the
 * extra always-computed leg.  target("fma") is required: without the
 * ISA enabled on the function, __builtin_fma lowers to a libm call.
 */
__attribute__((target("fma"))) double
log1pNegScalar(double u0)
{
    const double x = -u0;
    const std::uint64_t bx = bitsF64(x);
    const std::uint64_t hx = bx >> 32;
    if ((hx & 0x7fffffff) < 0x3e200000)  // |x| < 2^-29, incl. -0.0
        return std::log1p(x);
    const std::uint64_t knz = -(std::uint64_t)(hx >= 0xbfd2bec4);
    const double u1 = 1.0 + x;
    const std::uint64_t bu = bitsF64(u1);
    const std::uint64_t huw = bu >> 32;
    std::int64_t k = (std::int64_t)(huw >> 20) - 1023;
    const double c_knz = (x - (u1 - 1.0)) / u1;
    const std::uint64_t hu20 = huw & 0xfffff;
    const std::uint64_t rebias = -(std::uint64_t)(hu20 > 0x6a09d);
    k -= (std::int64_t)rebias;  // mask is -1: k += 1 where rebias
    const std::uint64_t newhi =
        hu20 | ((0x3fe00000ull & rebias) | (0x3ff00000ull & ~rebias));
    const std::uint64_t hu20f =
        (((0x100000 - hu20) >> 2) & rebias) | (hu20 & ~rebias);
    if (knz & -(std::uint64_t)(hu20f == 0))  // |f| == 0 after rebias
        return std::log1p(x);
    const std::uint64_t bup = (newhi << 32) | (bu & 0xffffffff);
    const double f_knz = fromBitsF64(bup) - 1.0;
    const double f = fromBitsF64((bitsF64(f_knz) & knz) | (bx & ~knz));
    const double c = fromBitsF64(bitsF64(c_knz) & knz);
    const double dk = (double)(k & (std::int64_t)knz);
    const double hf = 0.5 * f;
    const double hfsq = hf * f;
    const double s = f / (2.0 + f);
    const double z = s * s;
    const double pA = __builtin_fma(kLp3, z, kLp2);
    const double pB = __builtin_fma(kLp5, z, kLp4);
    const double pD = __builtin_fma(kLp7, z, kLp6);
    const double z2 = z * z;
    const double z4 = z2 * z2;
    const double z6 = z2 * z4;
    const double t = z2 * pA;
    const double poly = __builtin_fma(
        z6, pD, __builtin_fma(z4, pB, __builtin_fma(z, kLp1, t)));
    const double sR = (poly + hfsq) * s;
    const double t1 = __builtin_fma(dk, kLn2Lo, c);
    const double t2 = t1 + sR;
    const double t3 = hfsq - t2;
    const double t4 = t3 - f;
    return __builtin_fma(dk, kLn2Hi, -t4);
}

/**
 * 2-lane vector body: res = log1p(-uin) per lane.  Returns the
 * rare-lane mask; the caller OR-accumulates it across the block and
 * redoes flagged lanes via libm afterwards, so the loop itself has no
 * per-pair vector-to-GPR crossing (the v1 form that extracted k and
 * the rare mask per pair was no faster than libm).
 */
__attribute__((target("fma"))) inline simd::U64x2
log1pNeg2(simd::F64x2 uin, simd::F64x2 *res)
{
    using simd::F64x2;
    using simd::I64x2;
    using simd::U64x2;
    const F64x2 x = -uin;
    const U64x2 bx = simd::bitsF64x2(x);
    const I64x2 hx = (I64x2)(bx >> 32);
    U64x2 rare = (U64x2)((hx & 0x7fffffff) < 0x3e200000);
    const U64x2 knz = (U64x2)(hx >= (std::int64_t)0xbfd2bec4);

    // k != 0 leg, computed on all lanes and mask-selected below.
    const F64x2 one = {1.0, 1.0};
    const F64x2 u1 = one + x;
    const U64x2 bu = simd::bitsF64x2(u1);
    const U64x2 huw = bu >> 32;
    I64x2 kl = (I64x2)(huw >> 20) - 1023;
    const F64x2 c_knz = (x - (u1 - one)) / u1;
    const I64x2 hu20 = (I64x2)(huw & 0xfffff);
    const U64x2 rebias = (U64x2)(hu20 > 0x6a09d);
    kl -= (I64x2)rebias;
    const U64x2 newhi = (U64x2)hu20 |
        ((0x3fe00000ull & rebias) | (0x3ff00000ull & ~rebias));
    const U64x2 hu20f = (((0x100000 - (U64x2)hu20) >> 2) & rebias) |
                        ((U64x2)hu20 & ~rebias);
    rare |= knz & (U64x2)(hu20f == 0);
    const U64x2 bup = (newhi << 32) | (bu & 0xffffffff);
    const F64x2 f_knz = simd::fromBitsF64x2(bup) - one;

    const F64x2 f = simd::fromBitsF64x2(
        (simd::bitsF64x2(f_knz) & knz) | (bx & ~knz));
    const F64x2 c = simd::fromBitsF64x2(simd::bitsF64x2(c_knz) & knz);
    const I64x2 kmask = kl & (I64x2)knz;
    // int64 -> double without lane extraction: add 2^52 + 2^51 to the
    // bit pattern as an integer, reinterpret, subtract the magic.
    // Exact for |k| < 2^51; here |k| <= 1024.
    const F64x2 vmagic = {0x1.8p52, 0x1.8p52};
    const F64x2 dk =
        simd::fromBitsF64x2(
            (U64x2)(kmask + (I64x2)simd::bitsF64x2(vmagic))) -
        vmagic;

    const F64x2 half = {0.5, 0.5};
    const F64x2 two = {2.0, 2.0};
    const F64x2 hf = half * f;
    const F64x2 hfsq = hf * f;
    const F64x2 s = f / (two + f);
    const F64x2 z = s * s;
    const F64x2 vLp1 = {kLp1, kLp1}, vLp2 = {kLp2, kLp2};
    const F64x2 vLp3 = {kLp3, kLp3}, vLp4 = {kLp4, kLp4};
    const F64x2 vLp5 = {kLp5, kLp5}, vLp6 = {kLp6, kLp6};
    const F64x2 vLp7 = {kLp7, kLp7};
    const F64x2 pA = simd::fmaF64x2(vLp3, z, vLp2);
    const F64x2 pB = simd::fmaF64x2(vLp5, z, vLp4);
    const F64x2 pD = simd::fmaF64x2(vLp7, z, vLp6);
    const F64x2 z2 = z * z;
    const F64x2 z4 = z2 * z2;
    const F64x2 z6 = z2 * z4;
    const F64x2 t = z2 * pA;
    const F64x2 poly = simd::fmaF64x2(
        z6, pD, simd::fmaF64x2(z4, pB, simd::fmaF64x2(z, vLp1, t)));
    const F64x2 sR = (poly + hfsq) * s;
    const F64x2 vlo = {kLn2Lo, kLn2Lo}, vhi = {kLn2Hi, kLn2Hi};
    const F64x2 t1 = simd::fmaF64x2(dk, vlo, c);
    const F64x2 t2 = t1 + sR;
    const F64x2 t3 = hfsq - t2;
    const F64x2 t4 = t3 - f;
    *res = simd::fmaF64x2(dk, vhi, -t4);
    return rare;
}

__attribute__((target("fma"))) void
kernelBlock(const double *u, double *out, std::size_t n)
{
    std::size_t i = 0;
    simd::U64x2 anyrare = {0, 0};
    for (; i + 2 <= n; i += 2) {
        simd::F64x2 res;
        anyrare |= log1pNeg2(simd::loadF64x2(u + i), &res);
        simd::storeF64x2(out + i, res);
    }
    for (; i < n; ++i)
        out[i] = log1pNegScalar(u[i]);
    if (anyrare[0] | anyrare[1]) {
        // Some lane hit a routed-out case (probability ~2^-20 per
        // draw): rescan the vector-covered prefix recomputing the
        // rare predicate, and redo flagged entries via libm.
        const std::size_t vend = n & ~(std::size_t)1;
        for (std::size_t j = 0; j < vend; ++j) {
            const std::uint64_t bxj = bitsF64(-u[j]);
            const std::uint32_t hxj = (std::uint32_t)(bxj >> 32);
            if ((hxj & 0x7fffffff) < 0x3e200000) {
                out[j] = std::log1p(-u[j]);
            } else if (hxj >= 0xbfd2bec4) {
                const double u1 = 1.0 + -u[j];
                const std::uint32_t hw =
                    (std::uint32_t)(bitsF64(u1) >> 32) & 0xfffff;
                const std::uint32_t hf20 =
                    hw > 0x6a09d ? (0x100000 - hw) >> 2 : hw;
                if (hf20 == 0)
                    out[j] = std::log1p(-u[j]);
            }
        }
    }
}

/**
 * One-time host check: both kernels against this process's
 * `std::log1p` over a deterministic boundary + spread set.  Every
 * threshold the algorithm branches or masks on is swept at the raw
 * (53-bit) level, and a splitmix stream adds coverage of the k-split
 * mix; any mismatch anywhere fails the whole probe.
 */
bool
probe()
{
    if (!__builtin_cpu_supports("fma"))
        return false;
    constexpr std::uint64_t kFull = (1ull << 53) - 1;
    auto check = [](std::uint64_t raw) {
        const double u = (double)(raw >> 11) * 0x1.0p-53;
        const std::uint64_t ref = bitsF64(std::log1p(-u));
        if (bitsF64(log1pNegScalar(u)) != ref)
            return false;
        double uu[2] = {u, u};
        double got[2];
        kernelBlock(uu, got, 2);
        return bitsF64(got[0]) == ref && bitsF64(got[1]) == ref;
    };
    // Ends of the domain: u near 0 (rare-tail threshold region lives
    // here) and u near 1 - 2^-53 (largest-magnitude x).
    for (std::uint64_t k = 0; k < 512; ++k)
        if (!check(k << 11) || !check((kFull - k) << 11))
            return false;
    // Every boundary constant in the kernel, swept at the raw level:
    // 2^24 (|x| = 2^-29 rare threshold), 2^33 (hx granularity step),
    // the k != 0 threshold 0xbfd2bec4 == x ~ -0.2928932…, the rebias
    // threshold hu20 = 0x6a09d (u1 crossing sqrt(2)/2), and 2^52
    // (top exponent step).
    const double kKnzEdge = 0.2928932188134525;
    const double kRebiasLo = 0.292893218813452475;
    const double kRebiasHi = 0.292893218813452586;
    const double kSqrtHalfLo = 0.7071067811865475;
    const double kSqrtHalfHi = 0.7071067811865476;
    const double kCenters[] = {0.25,      0.5,         0.75,
                               kKnzEdge,  kRebiasLo,   kRebiasHi,
                               kSqrtHalfLo, kSqrtHalfHi, 0.999999999};
    const std::uint64_t kBases[] = {1ull << 24, 1ull << 29,
                                    1ull << 33, 1ull << 52};
    for (std::uint64_t base : kBases)
        for (std::int64_t d = -64; d <= 64; ++d)
            if (!check((base + (std::uint64_t)d) << 11))
                return false;
    for (double center : kCenters) {
        const std::uint64_t kc =
            (std::uint64_t)(center * 9007199254740992.0);
        for (std::int64_t d = -128; d <= 128; ++d)
            if (!check((kc + (std::uint64_t)d) << 11))
                return false;
    }
    // Deterministic spread across the whole domain.
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 2048; ++i) {
        s += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        if (!check(z ^ (z >> 31)))
            return false;
    }
    return true;
}

#endif  // x86-64 && !DPX_NO_VMATH

/// Lazy probe memo.  Both orderings of the benign race write the same
/// verdict, so plain exchange-free stores are fine.
bool
modeActive()
{
#ifdef DPX_VMATH_KERNELS
    int m = g_mode.load(std::memory_order_relaxed);
    if (m == kUnprobed) {
        m = probe() ? kActive : kFallback;
        g_mode.store(m, std::memory_order_relaxed);
    }
    return m == kActive;
#else
    g_mode.store(kFallback, std::memory_order_relaxed);
    return false;
#endif
}

}  // namespace

double
log1pNeg(double u)
{
#ifdef DPX_VMATH_KERNELS
    if (vmathEnabled() && modeActive())
        return log1pNegScalar(u);
#endif
    return std::log1p(-u);
}

void
log1pNegBlock(const double *u, double *out, std::size_t n)
{
#ifdef DPX_VMATH_KERNELS
    if (vmathEnabled() && modeActive()) {
        kernelBlock(u, out, n);
        g_block_lanes.fetch_add(n, std::memory_order_relaxed);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::log1p(-u[i]);
}

bool
vmathActive()
{
    return vmathEnabled() && modeActive();
}

std::uint64_t
vmathBlockLanes()
{
    return g_block_lanes.load(std::memory_order_relaxed);
}

}  // namespace vmath
}  // namespace duplexity
