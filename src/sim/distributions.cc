#include "sim/distributions.hh"

#include <cmath>
#include <numeric>

#include "sim/check.hh"

namespace duplexity
{

DeterministicDist::DeterministicDist(double value) : value_(value)
{
    DPX_CHECK_GE(value, 0.0) << " — deterministic value must be >= 0";
}

double
DeterministicDist::sample(Rng &) const
{
    return value_;
}

double
DeterministicDist::mean() const
{
    return value_;
}

ExponentialDist::ExponentialDist(double mean) : mean_(mean)
{
    DPX_CHECK_GT(mean, 0.0) << " — exponential mean must be > 0";
}

double
ExponentialDist::sample(Rng &rng) const
{
    return rng.exponential(mean_);
}

double
ExponentialDist::mean() const
{
    return mean_;
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi)
{
    DPX_CHECK(lo >= 0.0 && hi >= lo)
        << " — bad uniform bounds [" << lo << ", " << hi << "]";
}

double
UniformDist::sample(Rng &rng) const
{
    return rng.uniform(lo_, hi_);
}

double
UniformDist::mean() const
{
    return 0.5 * (lo_ + hi_);
}

LogNormalDist::LogNormalDist(double mean, double sigma)
    : sigma_(sigma), mean_(mean)
{
    DPX_CHECK(mean > 0.0 && sigma >= 0.0)
        << " — bad lognormal parameters mean=" << mean
        << " sigma=" << sigma;
    // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    mu_ = std::log(mean) - 0.5 * sigma * sigma;
}

double
LogNormalDist::sample(Rng &rng) const
{
    return std::exp(rng.normal(mu_, sigma_));
}

double
LogNormalDist::mean() const
{
    return mean_;
}

BoundedParetoDist::BoundedParetoDist(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha)
{
    DPX_CHECK(lo > 0.0 && hi > lo && alpha > 0.0)
        << " — bad bounded-pareto parameters lo=" << lo << " hi=" << hi
        << " alpha=" << alpha;
}

double
BoundedParetoDist::sample(Rng &rng) const
{
    // Inverse-CDF of the bounded Pareto.
    double u = rng.uniform();
    double la = std::pow(lo_, alpha_);
    double ha = std::pow(hi_, alpha_);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

double
BoundedParetoDist::mean() const
{
    if (alpha_ == 1.0) {
        return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
    }
    double la = std::pow(lo_, alpha_);
    double ha = std::pow(hi_, alpha_);
    return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
           (1.0 / std::pow(lo_, alpha_ - 1.0) -
            1.0 / std::pow(hi_, alpha_ - 1.0));
}

EmpiricalDist::EmpiricalDist(std::vector<double> samples)
    : samples_(std::move(samples))
{
    DPX_CHECK(!samples_.empty())
        << " — empirical distribution needs samples";
    mean_ = std::accumulate(samples_.begin(), samples_.end(), 0.0) /
            static_cast<double>(samples_.size());
}

double
EmpiricalDist::sample(Rng &rng) const
{
    return samples_[rng.below(samples_.size())];
}

double
EmpiricalDist::mean() const
{
    return mean_;
}

MixtureDist::MixtureDist(
    std::vector<std::pair<double, DistributionPtr>> parts)
    : parts_(std::move(parts)), total_weight_(0.0)
{
    DPX_CHECK(!parts_.empty()) << " — mixture needs components";
    for (const auto &[w, dist] : parts_) {
        DPX_CHECK(w > 0.0 && dist != nullptr)
            << " — bad mixture component (weight " << w << ")";
        total_weight_ += w;
    }
}

double
MixtureDist::sample(Rng &rng) const
{
    double pick = rng.uniform(0.0, total_weight_);
    for (const auto &[w, dist] : parts_) {
        if (pick < w)
            return dist->sample(rng);
        pick -= w;
    }
    return parts_.back().second->sample(rng);
}

double
MixtureDist::mean() const
{
    double m = 0.0;
    for (const auto &[w, dist] : parts_)
        m += w * dist->mean();
    return m / total_weight_;
}

ScaledDist::ScaledDist(DistributionPtr base, double factor)
    : base_(std::move(base)), factor_(factor)
{
    DPX_CHECK(base_ != nullptr && factor >= 0.0)
        << " — bad scaled dist (factor " << factor << ")";
}

double
ScaledDist::sample(Rng &rng) const
{
    return factor_ * base_->sample(rng);
}

double
ScaledDist::mean() const
{
    return factor_ * base_->mean();
}

SumDist::SumDist(DistributionPtr a, DistributionPtr b)
    : a_(std::move(a)), b_(std::move(b))
{
    DPX_CHECK(a_ != nullptr && b_ != nullptr) << " — bad sum dist";
}

double
SumDist::sample(Rng &rng) const
{
    return a_->sample(rng) + b_->sample(rng);
}

double
SumDist::mean() const
{
    return a_->mean() + b_->mean();
}

FastSampler::FastSampler(DistributionPtr dist)
    : dist_(std::move(dist))
{
    if (!dist_)
        return;
    const Distribution *leaf = dist_.get();
    if (auto *sc = dynamic_cast<const ScaledDist *>(leaf)) {
        // Peel exactly one scale level: ScaledDist::sample is
        // factor * base->sample, which we reproduce verbatim. A
        // nested ScaledDist base stays on the virtual path so the
        // multiplication order (and hence rounding) is unchanged.
        scaled_ = true;
        factor_ = sc->factor();
        leaf = sc->base().get();
        if (dynamic_cast<const ScaledDist *>(leaf)) {
            inner_ = leaf;
            return;
        }
    }
    if (auto *det = dynamic_cast<const DeterministicDist *>(leaf)) {
        kind_ = Kind::Deterministic;
        a_ = det->mean();
    } else if (auto *ex = dynamic_cast<const ExponentialDist *>(leaf)) {
        kind_ = Kind::Exponential;
        a_ = ex->mean();
    } else if (auto *un = dynamic_cast<const UniformDist *>(leaf)) {
        kind_ = Kind::Uniform;
        a_ = un->lo();
        b_ = un->hi();
    } else if (auto *ln = dynamic_cast<const LogNormalDist *>(leaf)) {
        kind_ = Kind::LogNormal;
        a_ = ln->mu();
        b_ = ln->sigma();
    } else if (auto *bp =
                   dynamic_cast<const BoundedParetoDist *>(leaf)) {
        kind_ = Kind::BoundedPareto;
        // Hoist the loop invariants of the inverse CDF; each is the
        // same deterministic subexpression BoundedParetoDist::sample
        // evaluates per draw, so the variates stay bit-identical.
        a_ = std::pow(bp->lo(), bp->alpha());    // la
        b_ = std::pow(bp->hi(), bp->alpha());    // ha
        c_ = b_ * a_;                            // ha * la
        d_ = -1.0 / bp->alpha();
    } else if (auto *em = dynamic_cast<const EmpiricalDist *>(leaf)) {
        kind_ = Kind::Empirical;
        emp_ = em->values().data();
        emp_size_ = em->values().size();
    } else {
        inner_ = leaf;
    }
}

DistributionPtr
makeDeterministic(double value)
{
    return std::make_shared<DeterministicDist>(value);
}

DistributionPtr
makeExponential(double mean)
{
    return std::make_shared<ExponentialDist>(mean);
}

DistributionPtr
makeUniform(double lo, double hi)
{
    return std::make_shared<UniformDist>(lo, hi);
}

DistributionPtr
makeLogNormal(double mean, double sigma)
{
    return std::make_shared<LogNormalDist>(mean, sigma);
}

DistributionPtr
makeBoundedPareto(double lo, double hi, double alpha)
{
    return std::make_shared<BoundedParetoDist>(lo, hi, alpha);
}

DistributionPtr
makeEmpirical(std::vector<double> samples)
{
    return std::make_shared<EmpiricalDist>(std::move(samples));
}

DistributionPtr
makeScaled(DistributionPtr base, double factor)
{
    return std::make_shared<ScaledDist>(std::move(base), factor);
}

DistributionPtr
makeSum(DistributionPtr a, DistributionPtr b)
{
    return std::make_shared<SumDist>(std::move(a), std::move(b));
}

} // namespace duplexity
