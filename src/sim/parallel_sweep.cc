#include "sim/parallel_sweep.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

namespace duplexity
{

std::uint64_t
deriveCellSeed(std::uint64_t base_seed,
               std::initializer_list<std::uint64_t> coords)
{
    // Chain the coordinates through the Rng fork tree (see
    // Rng::deriveStreamSeed): every prefix of the chain is itself a
    // decorrelated stream, so sweeps that share leading coordinates
    // (same service, different design) still get independent cell
    // streams — and layers below a cell (e.g. queue-sim replicas)
    // can fork further without colliding.
    return Rng::deriveStreamSeed(base_seed, coords);
}

std::uint64_t
coordKey(double value)
{
    return static_cast<std::uint64_t>(std::llround(value * 1e6));
}

double
SweepReport::totalCellSeconds() const
{
    return cell_seconds.mean() *
           static_cast<double>(cell_seconds.count());
}

double
SweepReport::parallelSpeedup() const
{
    return wall_seconds > 0.0 ? totalCellSeconds() / wall_seconds
                              : 0.0;
}

SweepReport
parallelSweep(std::size_t num_cells,
              const std::function<void(std::size_t)> &cell,
              const SweepOptions &options)
{
    // Wall-clock time feeds only the SweepReport speedup numbers,
    // never any simulated result.
    using Clock = std::chrono::steady_clock; // dpx-lint: allow(DPX002)

    SweepReport report;
    report.cells = num_cells;
    report.per_cell_seconds.assign(num_cells, 0.0);

    unsigned threads = options.threads != 0
                           ? options.threads
                           : ThreadPool::threadsFromEnv();
    if (num_cells > 0 &&
        threads > static_cast<unsigned>(num_cells)) {
        threads = static_cast<unsigned>(num_cells);
    }
    report.threads = threads == 0 ? 1 : threads;
    if (num_cells == 0)
        return report;

    const bool progress = std::getenv("DPX_PROGRESS") != nullptr;
    const std::string label =
        options.label.empty() ? "sweep" : options.label;
    std::atomic<std::size_t> completed{0};

    const Clock::time_point sweep_start = Clock::now();
    {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < num_cells; ++i) {
            pool.submit([&, i] {
                const Clock::time_point start = Clock::now();
                cell(i);
                report.per_cell_seconds[i] =
                    std::chrono::duration<double>(Clock::now() -
                                                  start)
                        .count();
                std::size_t done =
                    completed.fetch_add(1,
                                        std::memory_order_relaxed) +
                    1;
                if (progress) {
                    inform(label + ": cell " + std::to_string(i) +
                           " done (" + std::to_string(done) + "/" +
                           std::to_string(num_cells) + ")");
                }
            });
        }
        pool.wait();
    }
    report.wall_seconds =
        std::chrono::duration<double>(Clock::now() - sweep_start)
            .count();
    // The destructor drained the pool: every cell body ran.
    DPX_CHECK_EQ(completed.load(std::memory_order_relaxed), num_cells)
        << " — sweep lost cells";

    // Accumulate in index order so the report itself is
    // deterministic, not completion-ordered.
    for (double seconds : report.per_cell_seconds)
        report.cell_seconds.add(seconds);
    return report;
}

} // namespace duplexity
