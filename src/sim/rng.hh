/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator needs fast, reproducible, splittable randomness: every
 * thread/workload/queueing stream owns its own Rng seeded from a master
 * seed plus a stream id, so results are independent of evaluation order.
 * The generator is xoshiro256** (public-domain algorithm by Blackman &
 * Vigna) seeded through splitmix64.
 */

#ifndef DPX_SIM_RNG_HH
#define DPX_SIM_RNG_HH

#include <cstdint>
#include <initializer_list>

namespace duplexity
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive an independent stream for substream @p stream_id. */
    Rng fork(std::uint64_t stream_id) const;

    /**
     * Seed for a stream identified by chaining @p ids through the
     * fork tree: every prefix of the chain is itself a decorrelated
     * stream, so identities that share leading coordinates (same
     * sweep cell, different replica index) still get independent
     * streams. This is THE way simulation layers (sweep cells,
     * queue-sim replicas) derive randomness from identity — never
     * from submission order or worker placement.
     */
    static std::uint64_t
    deriveStreamSeed(std::uint64_t base,
                     std::initializer_list<std::uint64_t> ids);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) for n > 0 (unbiased enough for sim). */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

    /** Standard exponential variate with the given mean. */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, no caching). */
    double normal(double mean = 0.0, double stddev = 1.0);

  private:
    std::uint64_t state_[4];
    std::uint64_t seed_;
};

} // namespace duplexity

#endif // DPX_SIM_RNG_HH
