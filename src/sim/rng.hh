/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator needs fast, reproducible, splittable randomness: every
 * thread/workload/queueing stream owns its own Rng seeded from a master
 * seed plus a stream id, so results are independent of evaluation order.
 * The generator is xoshiro256** (public-domain algorithm by Blackman &
 * Vigna) seeded through splitmix64.
 *
 * The per-draw methods (next/uniform/below/chance/exponential) are
 * defined inline here: they sit on the innermost op-draw loop of the
 * whole simulator, and an out-of-line call per draw was a measurable
 * share of the ~50 ns op-draw floor (EXPERIMENTS.md).  fillBlock() is
 * the bulk form used by the SoA op pipeline (DESIGN.md §4b): it emits
 * exactly the sequence N calls to next() would, with the generator
 * state hoisted into locals across the block.
 *
 * The raw->value maps are exposed as static helpers (toUniform,
 * toBelow) so that consumers draining a pre-filled raw block apply the
 * *same* arithmetic as the scalar methods — bit-identity between the
 * block and scalar paths reduces to "same raw words in, same map".
 */

#ifndef DPX_SIM_RNG_HH
#define DPX_SIM_RNG_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "sim/check.hh"
#include "sim/vmath.hh"

namespace duplexity
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive an independent stream for substream @p stream_id. */
    Rng fork(std::uint64_t stream_id) const;

    /**
     * Seed for a stream identified by chaining @p ids through the
     * fork tree: every prefix of the chain is itself a decorrelated
     * stream, so identities that share leading coordinates (same
     * sweep cell, different replica index) still get independent
     * streams. This is THE way simulation layers (sweep cells,
     * queue-sim replicas) derive randomness from identity — never
     * from submission order or worker placement.
     */
    static std::uint64_t
    deriveStreamSeed(std::uint64_t base,
                     std::initializer_list<std::uint64_t> ids);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /**
     * Fill @p out with the next @p n raw values — bit-identical to n
     * sequential next() calls, with the state kept in registers for
     * the whole block instead of re-loaded per draw.
     */
    void fillBlock(std::uint64_t *out, std::size_t n);

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /**
     * Raw word -> uniform double in [0, 1).  The single definition of
     * this map: uniform() and block consumers both call it.
     */
    static double
    toUniform(std::uint64_t raw)
    {
        // 53 high bits -> double in [0, 1).
        return (raw >> 11) * 0x1.0p-53;
    }

    /** Raw word -> uniform integer in [0, n); the map below() uses. */
    static std::uint64_t
    toBelow(std::uint64_t raw, std::uint64_t n)
    {
        // Multiply-shift reduction; bias negligible for simulation use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(raw) * n) >> 64);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toUniform(next()); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n) for n > 0 (unbiased enough for sim). */
    std::uint64_t
    below(std::uint64_t n)
    {
        DPX_DCHECK_GT(n, 0u) << " — below(0) has no valid range";
        return toBelow(next(), n);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard exponential variate with the given mean. */
    double
    exponential(double mean)
    {
        // 1 - u avoids log(0); vmath routes to the replica log1p
        // kernel when active, std::log1p otherwise — same bits.
        return -mean * vmath::log1pNeg(uniform());
    }

    /** Standard normal variate (Box-Muller, no caching). */
    double normal(double mean = 0.0, double stddev = 1.0);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    std::uint64_t seed_;
};

} // namespace duplexity

#endif // DPX_SIM_RNG_HH
