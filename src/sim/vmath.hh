/**
 * @file
 * Lane-exact vector log for the variate maps (DESIGN.md §4b.4).
 *
 * The exponential (and geometric-dep) variate maps end in
 * `std::log1p(-u)` with u a 53-bit uniform in [0, 1) — the one
 * draw-side stage the SIMD layer could not batch, because the golden
 * walls pin every variate to the scalar libm bit pattern.  This layer
 * clears that floor without relaxing the pin: sim/vmath.cc carries a
 * table-free replica of glibc's *resolved* log1p kernel (the FMA IFUNC
 * variant on hosts that select it) as a branch-reduced scalar twin and
 * a 2-lane vector form over the simd.hh lane types, both proven
 * bit-identical to `std::log1p` on the exact domain the variate maps
 * hit: x = -(raw >> 11) * 2^-53, i.e. -(1 - 2^-53) <= x <= -0.
 *
 * Exactness is a host property, so it is never assumed: the first call
 * through either entry point runs a one-time probe of both kernels
 * against `std::log1p` over a deterministic boundary+spread point set.
 * If the host resolves log1p differently (no FMA unit, another libm),
 * the probe fails closed and every call transparently routes to
 * `std::log1p` — same bits, no fast path, and `vmathActive()` reports
 * it.  Golden tests therefore assert bit-identity unconditionally;
 * bench fast-path counters (vmath_block_lanes) prove the vector kernel
 * actually ran where a speedup is claimed.
 *
 * Switch contract (same shape as simd.hh): `setVmathEnabled(false)`
 * forces the libm route at runtime, `-DDPX_VMATH=OFF` pins it at
 * compile time; the golden wall runs the full SIMD×VMATH matrix, so
 * both modes of every composition are pinned separately.  Unlike the
 * simd.hh helpers, the libm fallback lives *inside* these entry points
 * rather than at call sites: the forced-slow split stays meaningful,
 * and the only direct `std::log1p` uses on hot paths sit in
 * sim/vmath.cc where rule DPX106 exempts them.
 */

#ifndef DPX_SIM_VMATH_HH
#define DPX_SIM_VMATH_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace duplexity
{
namespace vmath
{

#ifdef DPX_NO_VMATH
inline constexpr bool kVmathCompiled = false;
#else
inline constexpr bool kVmathCompiled = true;
#endif

namespace detail
{
/// Runtime switch; relaxed loads are fine — tests flip it only while
/// single-threaded, and sweep workers inherit the pre-spawn value.
// dpx-lint: allow(DPX105): process-wide forced-slow switch, flipped
// only outside timed/simulated regions; both settings produce
// bit-identical results by the fast-path contract.
inline std::atomic<bool> g_vmath_enabled{true};
}  // namespace detail

/** True when the vector-log fast path should run (before probing). */
inline bool
vmathEnabled()
{
    return kVmathCompiled &&
           detail::g_vmath_enabled.load(std::memory_order_relaxed);
}

/** Force (or re-allow) the libm route; returns the old setting. */
inline bool
setVmathEnabled(bool enabled)
{
    return detail::g_vmath_enabled.exchange(enabled,
                                            std::memory_order_relaxed);
}

/**
 * log1p(-u) for u in [0, 1) — the exponential variate map's inner
 * call, bit-identical to `std::log1p(-u)` in every mode (replica
 * kernel when active, libm otherwise).
 */
double log1pNeg(double u);

/**
 * Bulk form: out[i] = log1p(-u[i]) for i < n, through the 2-lane
 * vector kernel when active (rare lanes redone via libm), a scalar
 * libm loop otherwise.  `u` and `out` must not alias: the rare-lane
 * fixup pass re-reads the inputs after the vector results landed.
 */
void log1pNegBlock(const double *u, double *out, std::size_t n);

/**
 * True when the replica kernels are compiled in, enabled, and the
 * host probe confirmed bit-identity with this process's libm.  Forces
 * the probe on first call.
 */
bool vmathActive();

/** Lanes mapped through the vector kernel (fast-path activation
 *  counter; incremented once per block, not per draw). */
std::uint64_t vmathBlockLanes();

}  // namespace vmath
}  // namespace duplexity

#endif  // DPX_SIM_VMATH_HH
