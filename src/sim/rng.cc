#include "sim/rng.hh"

#include <cmath>

#include "sim/check.hh"

namespace duplexity
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the stream id into the original seed through splitmix so
    // sibling streams are decorrelated even for adjacent ids.
    std::uint64_t s = seed_ ^ (stream_id * 0xd2b74407b1ce6e93ull + 1);
    return Rng(splitmix64(s));
}

std::uint64_t
Rng::deriveStreamSeed(std::uint64_t base,
                      std::initializer_list<std::uint64_t> ids)
{
    Rng rng(base);
    for (std::uint64_t id : ids)
        rng = rng.fork(id);
    return rng.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    DPX_DCHECK_GT(n, 0u) << " — below(0) has no valid range";
    // Multiply-shift reduction; bias is negligible for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    // 1 - u avoids log(0).
    return -mean * std::log1p(-uniform());
}

double
Rng::normal(double mean, double stddev)
{
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

} // namespace duplexity
