#include "sim/rng.hh"

#include <cmath>

namespace duplexity
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the stream id into the original seed through splitmix so
    // sibling streams are decorrelated even for adjacent ids.
    std::uint64_t s = seed_ ^ (stream_id * 0xd2b74407b1ce6e93ull + 1);
    return Rng(splitmix64(s));
}

std::uint64_t
Rng::deriveStreamSeed(std::uint64_t base,
                      std::initializer_list<std::uint64_t> ids)
{
    Rng rng(base);
    for (std::uint64_t id : ids)
        rng = rng.fork(id);
    return rng.next();
}

void
Rng::fillBlock(std::uint64_t *out, std::size_t n)
{
    // Same recurrence as next(), with the state in locals for the
    // whole block.  The emitted sequence is bit-identical to n
    // sequential next() calls — the SoA draw-order contract
    // (DESIGN.md §4b) rests on this.
    std::uint64_t s0 = state_[0], s1 = state_[1];
    std::uint64_t s2 = state_[2], s3 = state_[3];
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = rotl(s1 * 5, 7) * 9;
        const std::uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

double
Rng::normal(double mean, double stddev)
{
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

} // namespace duplexity
