#include "sim/event_queue.hh"

#include <utility>

#include "sim/check.hh"

namespace duplexity
{

void
EventQueue::scheduleAt(Seconds when, Handler fn)
{
    DPX_CHECK_GE(when, now_)
        << " — scheduling an event in the past";
    events_.push(Event{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Seconds delay, Handler fn)
{
    DPX_CHECK_GE(delay, 0.0) << " — negative event delay";
    scheduleAt(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // Copy out before pop: the handler may schedule new events.
    Event ev = events_.top();
    events_.pop();
    // Time is monotone: the heap can never surface an event earlier
    // than one it already fired.
    DPX_DCHECK_GE(ev.when, now_);
    now_ = ev.when;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::run(Seconds until, std::uint64_t max_events)
{
    std::uint64_t executed = 0;
    while (executed < max_events && !events_.empty() &&
           events_.top().when <= until) {
        step();
        ++executed;
    }
    return executed;
}

void
EventQueue::clear()
{
    while (!events_.empty())
        events_.pop();
}

} // namespace duplexity
