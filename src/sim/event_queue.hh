/**
 * @file
 * Discrete-event simulation kernel used by the queueing (BigHouse-lite)
 * layer and available to any time-driven model.
 *
 * Events at equal timestamps fire in scheduling order (a stable tie
 * break), which keeps runs deterministic.
 */

#ifndef DPX_SIM_EVENT_QUEUE_HH
#define DPX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace duplexity
{

/** A calendar of timestamped callbacks. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    EventQueue() = default;

    /** Current simulation time (seconds). */
    Seconds now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    void scheduleAt(Seconds when, Handler fn);

    /** Schedule @p fn @p delay seconds from now. */
    void scheduleAfter(Seconds delay, Handler fn);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    std::size_t size() const { return events_.size(); }

    /** Pop and run the single earliest event. @return false if empty. */
    bool step();

    /**
     * Run until the queue drains, @p until passes, or @p max_events
     * fire; returns the number of events executed.
     */
    std::uint64_t run(Seconds until = 1e30,
                      std::uint64_t max_events = ~std::uint64_t(0));

    /** Drop all pending events (time is preserved). */
    void clear();

  private:
    struct Event
    {
        Seconds when;
        std::uint64_t seq;
        Handler fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Seconds now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

} // namespace duplexity

#endif // DPX_SIM_EVENT_QUEUE_HH
