/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic() flags simulator bugs (aborts); fatal() flags user/config
 * errors (clean exit); warn()/inform() report status without stopping.
 */

#ifndef DPX_SIM_LOGGING_HH
#define DPX_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace duplexity
{

namespace detail
{

[[noreturn]] inline void
reportAndDie(const char *kind, const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail

/** Abort on an internal simulator invariant violation. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::reportAndDie("panic", msg, true);
}

/** Exit on an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::reportAndDie("fatal", msg, false);
}

/** Report suspicious-but-survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace duplexity

#endif // DPX_SIM_LOGGING_HH
