/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic() flags simulator bugs (aborts); fatal() flags user/config
 * errors (clean exit); warn()/inform() report status without stopping.
 * The *At variants carry file:line context — the contract macros in
 * sim/check.hh route through panicAt() so every failed check names
 * its source location.
 *
 * Death tests assert on the exact text printed here; a test-visible
 * failure hook (setFailureHookForTest) additionally observes the
 * formatted message right before the process dies, and may throw to
 * turn the failure into a catchable event — the printed text and the
 * abort-vs-exit split stay exactly as documented in DESIGN.md.
 */

#ifndef DPX_SIM_LOGGING_HH
#define DPX_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace duplexity
{

/**
 * Observer for panic/fatal, installed by tests only. Called with the
 * kind ("panic"/"fatal") and the fully formatted message after it is
 * printed to stderr and before the process dies. A hook may throw;
 * the exception then propagates out of panic()/fatal() instead of
 * the process dying, which lets non-death tests assert on the text.
 */
using FailureHook = void (*)(const char *kind, const std::string &msg);

namespace detail
{

inline FailureHook &
failureHookSlot()
{
    // dpx-lint: allow(DPX105): test-only failure hook — installed by
    // death-message tests before triggering a check, never consulted
    // by simulation code on a passing run.
    static FailureHook hook = nullptr;
    return hook;
}

[[noreturn]] inline void
reportAndDie(const char *kind, const char *file, int line,
             const std::string &msg, bool abort_process)
{
    std::string full;
    if (file != nullptr) {
        full.append(file);
        full.push_back(':');
        full.append(std::to_string(line));
        full.append(": ");
    }
    full.append(msg);
    std::fprintf(stderr, "%s: %s\n", kind, full.c_str());
    if (FailureHook hook = failureHookSlot())
        hook(kind, full); // may throw (test escape hatch)
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace detail

/** Install @p hook (nullptr to clear); returns the previous hook. */
inline FailureHook
setFailureHookForTest(FailureHook hook)
{
    FailureHook previous = detail::failureHookSlot();
    detail::failureHookSlot() = hook;
    return previous;
}

/** Abort on an internal simulator invariant violation. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::reportAndDie("panic", nullptr, 0, msg, true);
}

/** panic() with file:line context (what sim/check.hh emits). */
[[noreturn]] inline void
panicAt(const char *file, int line, const std::string &msg)
{
    detail::reportAndDie("panic", file, line, msg, true);
}

/** Exit on an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::reportAndDie("fatal", nullptr, 0, msg, false);
}

/** fatal() with file:line context. */
[[noreturn]] inline void
fatalAt(const char *file, int line, const std::string &msg)
{
    detail::reportAndDie("fatal", file, line, msg, false);
}

/** Report suspicious-but-survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. Prefer DPX_CHECK (sim/check.hh),
 *  which adds file:line context and streamed operand values. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace duplexity

#endif // DPX_SIM_LOGGING_HH
