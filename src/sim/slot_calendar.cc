#include "sim/slot_calendar.hh"

#include <algorithm>
#include <bit>

#include "sim/check.hh"

namespace duplexity
{

SlotCalendar::SlotCalendar(std::uint32_t slots_per_cycle,
                           std::size_t window)
    : slots_per_cycle_(slots_per_cycle),
      window_(std::bit_ceil(window)), mask_(window_ - 1)
{
    DPX_CHECK(slots_per_cycle > 0 && window > 16)
        << " — bad SlotCalendar parameters: slots=" << slots_per_cycle
        << " window=" << window;
    DPX_CHECK_LE(slots_per_cycle, 255)
        << " — occupancy counts are bytes";
    // The ring mask only works because bit_ceil made the window a
    // power of two.
    DPX_CHECK(std::has_single_bit(window_));
    counts_.assign(window_, 0);
}

bool
SlotCalendar::tryReserveAt(Cycle cycle)
{
    if (cycle < base_)
        return false;
    if (cycle >= base_ + window_)
        retireBefore(cycle > window_ / 2 ? cycle - window_ / 2 : 0);
    std::uint8_t &count = counts_[slot(cycle)];
    if (count < slots_per_cycle_) {
        ++count;
        return true;
    }
    return false;
}

std::uint32_t
SlotCalendar::occupancy(Cycle cycle) const
{
    if (cycle < base_ || cycle >= base_ + window_)
        return 0;
    return counts_[slot(cycle)];
}

void
SlotCalendar::retireBefore(Cycle cycle)
{
    if (cycle <= base_)
        return;
    if (cycle - base_ >= window_) {
        std::fill(counts_.begin(), counts_.end(), 0);
    } else {
        for (Cycle c = base_; c < cycle; ++c)
            counts_[slot(c)] = 0;
    }
    base_ = cycle;
}

void
SlotCalendar::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    base_ = 0;
    cursor_request_ = ~Cycle(0);
    cursor_granted_ = 0;
}

} // namespace duplexity
