/**
 * @file
 * Fundamental scalar types shared by every Duplexity module.
 *
 * The cycle-level core simulator counts time in core cycles; the
 * request-level queueing simulator counts time in seconds. Frequency
 * objects convert between the two domains.
 */

#ifndef DPX_SIM_TYPES_HH
#define DPX_SIM_TYPES_HH

#include <cstdint>

namespace duplexity
{

/** Core clock cycles (cycle-level simulation time base). */
using Cycle = std::uint64_t;

/** Byte address in a thread's (synthetic) address space. */
using Addr = std::uint64_t;

/** Hardware/virtual thread identifier within a dyad. */
using ThreadId = std::uint32_t;

/** Distinguished id meaning "no thread". */
inline constexpr ThreadId invalid_thread_id = ~ThreadId(0);

/** Seconds (queueing/request-level simulation time base). */
using Seconds = double;

inline constexpr double us_per_second = 1e6;

/** Convert microseconds to seconds. */
constexpr Seconds
fromMicros(double us)
{
    return us * 1e-6;
}

/** Convert seconds to microseconds. */
constexpr double
toMicros(Seconds s)
{
    return s * 1e6;
}

/**
 * A clock frequency; converts between cycles and wall-clock seconds.
 */
class Frequency
{
  public:
    constexpr explicit Frequency(double hertz = 1e9) : _hertz(hertz) {}

    constexpr double hertz() const { return _hertz; }
    constexpr double gigahertz() const { return _hertz / 1e9; }

    /** Seconds spanned by @p cycles at this frequency. */
    constexpr Seconds
    cyclesToSeconds(Cycle cycles) const
    {
        return static_cast<double>(cycles) / _hertz;
    }

    /** Cycles (rounded down) elapsing in @p s seconds. */
    constexpr Cycle
    secondsToCycles(Seconds s) const
    {
        return static_cast<Cycle>(s * _hertz);
    }

    /** Cycles elapsing in @p us microseconds. */
    constexpr Cycle
    microsToCycles(double us) const
    {
        return secondsToCycles(fromMicros(us));
    }

  private:
    double _hertz;
};

} // namespace duplexity

#endif // DPX_SIM_TYPES_HH
