/**
 * @file
 * Portable fixed-width SIMD lane vectors.
 *
 * The step-side precompute phase (DESIGN.md §4d) and the uniform->lane
 * maps are data-parallel by construction: pure integer/IEEE arithmetic
 * over contiguous lane arrays, no serial state.  This header gives them
 * explicit lane vectors built on the GCC/Clang vector extensions
 * (`__attribute__((vector_size)))`) so the vector shape is guaranteed
 * rather than left to the autovectorizer.  Nothing here is
 * target-specific: the compiler lowers the fixed widths to whatever the
 * build target has (SSE2 pairs, AVX2, NEON) or to scalar code.
 *
 * Contract (enforced by lint rule DPX009): raw vector types, builtins
 * and intrinsic headers appear ONLY in this file.  Call sites use the
 * typedefs and helpers below, so the forced-scalar switch stays
 * meaningful — `setSimdEnabled(false)` (the established fast/slow-path
 * idiom, DESIGN.md §4b) forces every SIMD consumer onto its scalar
 * fallback at runtime, and building with `-DDPX_SIMD=OFF` pins
 * `simdEnabled()` to false at compile time so a whole CI leg runs the
 * scalar paths.
 *
 * Bit-identity rules the helpers rely on:
 *  - all integer lane ops are exact, trivially identical to scalar;
 *  - u64 -> f64 conversion of values < 2^53 is exact, and a multiply
 *    by a power of two is exact, so the vector uniform map
 *    `(raw >> 11) * 0x1.0p-53` produces the same bits as
 *    `Rng::toUniform` lane by lane.
 *
 * Masked-tail handling: there is none by design.  Vector loops cover
 *   full lane groups only and leave the remainder (< one vector) to the
 *   caller's scalar tail, so no load or store ever touches bytes past
 *   `count` — lane arrays handed to these helpers are often interior
 *   windows (`lanes + offset`) of a 256-slot block, and an overreaching
 *   masked load would trip ASan on the sanitizer wall.
 */

#ifndef DPX_SIM_SIMD_HH
#define DPX_SIM_SIMD_HH

#include <atomic>
#include <cstdint>
#include <cstring>

namespace duplexity
{
namespace simd
{

/** 16 unsigned byte lanes (one SSE register). */
typedef std::uint8_t U8x16 __attribute__((vector_size(16)));
/** 2 u64 lanes.  The layer stays at 128 bits throughout: that is the
 *  baseline vector ABI on x86-64 (no -Wpsabi ABI change, no ISA flags
 *  needed) and wider types would be split into 128-bit ops anyway on
 *  the default target. */
typedef std::uint64_t U64x2 __attribute__((vector_size(16)));
/** 2 s64 lanes — exponent/k arithmetic in the vector log kernel. */
typedef std::int64_t I64x2 __attribute__((vector_size(16)));
/** 2 double lanes. */
typedef double F64x2 __attribute__((vector_size(16)));

#ifdef DPX_NO_SIMD
inline constexpr bool kSimdCompiled = false;
#else
inline constexpr bool kSimdCompiled = true;
#endif

namespace detail
{
/// Runtime switch; relaxed loads are fine — tests flip it only while
/// single-threaded, and sweep workers inherit the pre-spawn value.
// dpx-lint: allow(DPX105): process-wide forced-slow switch, flipped
// only outside timed/simulated regions; both settings produce
// bit-identical results by the fast-path contract.
inline std::atomic<bool> g_simd_enabled{true};
}  // namespace detail

/** True when the lane-vectorized fast paths should run. */
inline bool
simdEnabled()
{
    return kSimdCompiled &&
           detail::g_simd_enabled.load(std::memory_order_relaxed);
}

/** Force (or re-allow) the scalar fallbacks; returns the old setting. */
inline bool
setSimdEnabled(bool enabled)
{
    return detail::g_simd_enabled.exchange(enabled,
                                           std::memory_order_relaxed);
}

/// Unaligned loads/stores: lane arrays are not vector-aligned in
/// general (interior block windows), so go through memcpy, which the
/// compiler folds to single unaligned vector moves.

inline U8x16
loadU8x16(const std::uint8_t *p)
{
    U8x16 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeU8x16(std::uint8_t *p, U8x16 v)
{
    std::memcpy(p, &v, sizeof(v));
}

inline U64x2
loadU64x2(const std::uint64_t *p)
{
    U64x2 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline F64x2
loadF64x2(const double *p)
{
    F64x2 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storeF64x2(double *p, F64x2 v)
{
    std::memcpy(p, &v, sizeof(v));
}

/** Splat a byte across 16 lanes. */
inline U8x16
splat8(std::uint8_t x)
{
    return U8x16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}

/// Comparison masks as unsigned lanes (0xff.. where true, 0 where
/// false) so they compose with & | over unsigned data without
/// signedness casts at call sites.

inline U8x16
gtMask(U8x16 a, U8x16 b)
{
    return (U8x16)(a > b);
}

inline U8x16
eqMask(U8x16 a, U8x16 b)
{
    return (U8x16)(a == b);
}

inline U8x16
neZeroMask(U8x16 a)
{
    return (U8x16)(a != splat8(0));
}

/// Lane bitcasts: IEEE bit patterns <-> doubles, 2 lanes at a time.
/// The vector log kernel (sim/vmath.cc) does its exponent split and
/// mask selection on the U64 view of F64 lanes.

inline U64x2
bitsF64x2(F64x2 v)
{
    U64x2 r;
    std::memcpy(&r, &v, sizeof(r));
    return r;
}

inline F64x2
fromBitsF64x2(U64x2 v)
{
    F64x2 r;
    std::memcpy(&r, &v, sizeof(r));
    return r;
}

/**
 * Packed fused multiply-add, a*b + c per lane with a single rounding.
 * Compiled for the FMA ISA regardless of the build baseline; callers
 * (sim/vmath.cc) must gate on __builtin_cpu_supports("fma") before
 * entering a code path that executes it.  The vector log kernel's
 * bit-identity to glibc's resolved log1p depends on real fused ops at
 * exactly the sites the libm FMA variant fuses, so this cannot fall
 * back to mul+add silently — hence no non-x86 emulation here; the
 * helper simply does not exist off x86-64 and sim/vmath.cc compiles
 * its libm-only fallback instead.
 */
#if defined(__x86_64__)
__attribute__((target("fma"))) inline F64x2
fmaF64x2(F64x2 a, F64x2 b, F64x2 c)
{
    return __builtin_ia32_vfmaddpd(a, b, c);
}
#endif

/**
 * Map 2 raw xoshiro words to uniform doubles in [0,1) — the vector
 * form of Rng::toUniform, bit-identical lane by lane (see file
 * comment for the exactness argument).
 */
inline F64x2
toUniform2(U64x2 raw)
{
    const F64x2 scale = {0x1.0p-53, 0x1.0p-53};
    return __builtin_convertvector(raw >> 11, F64x2) * scale;
}

/**
 * Bulk uniform map: out[i] = Rng::toUniform(raw[i]) for i < n, with a
 * 2-lane vector body and a scalar tail.  Callers gate on simdEnabled()
 * themselves and run their own scalar loop when it is off, keeping the
 * fast/slow split visible at the call site.
 */
inline void
toUniformBlock(const std::uint64_t *raw, double *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        storeF64x2(out + i, toUniform2(loadU64x2(raw + i)));
    for (; i < n; ++i)
        out[i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
}

}  // namespace simd
}  // namespace duplexity

#endif  // DPX_SIM_SIMD_HH
