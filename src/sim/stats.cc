#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace duplexity
{

void
MeanAccumulator::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
MeanAccumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
MeanAccumulator::stddev() const
{
    return std::sqrt(variance());
}

double
MeanAccumulator::ciHalfWidth(double z) const
{
    if (count_ < 2)
        return std::numeric_limits<double>::infinity();
    return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void
MeanAccumulator::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

SampleStats::SampleStats(std::size_t capacity) : capacity_(capacity)
{
    panicIfNot(capacity > 0, "SampleStats capacity must be > 0");
}

void
SampleStats::add(double x, std::uint64_t rng_word)
{
    if (total_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++total_;
    moments_.add(x);

    if (samples_.size() < capacity_) {
        samples_.push_back(x);
        sorted_ = false;
        return;
    }
    // Reservoir sampling: keep each of the `total_` values with equal
    // probability capacity_/total_.
    std::uint64_t slot = rng_word % total_;
    if (slot < capacity_) {
        samples_[slot] = x;
        sorted_ = false;
    }
}

double
SampleStats::percentile(double p) const
{
    panicIfNot(p >= 0.0 && p <= 1.0, "percentile p out of range");
    panicIfNot(!samples_.empty(), "percentile of empty population");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (samples_.size() == 1)
        return samples_[0];
    // Linear interpolation between closest ranks.
    double rank = p * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

void
SampleStats::reset()
{
    total_ = 0;
    min_ = max_ = 0.0;
    moments_.reset();
    samples_.clear();
    sorted_ = true;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t num_bins)
    : num_bins_(num_bins)
{
    panicIfNot(lo > 0.0 && hi > lo && num_bins > 0,
               "bad LogHistogram parameters");
    log_lo_ = std::log(lo);
    log_hi_ = std::log(hi);
    counts_.assign(num_bins + 2, 0);
}

std::size_t
LogHistogram::indexFor(double x) const
{
    if (x <= 0.0 || std::log(x) < log_lo_)
        return 0; // underflow
    double lx = std::log(x);
    if (lx >= log_hi_)
        return num_bins_ + 1; // overflow
    double frac = (lx - log_lo_) / (log_hi_ - log_lo_);
    return 1 + static_cast<std::size_t>(
                   frac * static_cast<double>(num_bins_));
}

void
LogHistogram::add(double x, std::uint64_t weight)
{
    counts_[indexFor(x)] += weight;
    total_ += weight;
}

double
LogHistogram::binUpperEdge(std::size_t i) const
{
    if (i == 0)
        return std::exp(log_lo_);
    if (i >= num_bins_ + 1)
        return std::numeric_limits<double>::infinity();
    double frac = static_cast<double>(i) /
                  static_cast<double>(num_bins_);
    return std::exp(log_lo_ + frac * (log_hi_ - log_lo_));
}

std::vector<std::pair<double, double>>
LogHistogram::cdf() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(counts_.size());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        double frac = total_ == 0
                          ? 0.0
                          : static_cast<double>(running) /
                                static_cast<double>(total_);
        out.emplace_back(binUpperEdge(i), frac);
    }
    return out;
}

double
LogHistogram::percentile(double p) const
{
    panicIfNot(total_ > 0, "percentile of empty histogram");
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= target)
            return binUpperEdge(i);
    }
    return binUpperEdge(counts_.size() - 1);
}

BatchMeans::BatchMeans(double relative_error, double z,
                       std::uint64_t min_batches)
    : relative_error_(relative_error), z_(z), min_batches_(min_batches)
{
    panicIfNot(relative_error > 0.0 && z > 0.0 && min_batches >= 2,
               "bad BatchMeans parameters");
}

void
BatchMeans::addBatch(double batch_metric)
{
    acc_.add(batch_metric);
}

double
BatchMeans::relativeHalfWidth() const
{
    if (acc_.count() < 2 || acc_.mean() == 0.0)
        return std::numeric_limits<double>::infinity();
    return acc_.ciHalfWidth(z_) / std::abs(acc_.mean());
}

bool
BatchMeans::converged() const
{
    return acc_.count() >= min_batches_ &&
           relativeHalfWidth() <= relative_error_;
}

} // namespace duplexity
