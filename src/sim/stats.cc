#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

void
MeanAccumulator::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
MeanAccumulator::merge(const MeanAccumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    count_ += other.count_;
    const double total = static_cast<double>(count_);
    mean_ += delta * (nb / total);
    m2_ += other.m2_ + delta * delta * (na * nb / total);
}

double
MeanAccumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
MeanAccumulator::stddev() const
{
    return std::sqrt(variance());
}

double
MeanAccumulator::ciHalfWidth(double z) const
{
    if (count_ < 2)
        return std::numeric_limits<double>::infinity();
    return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void
MeanAccumulator::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

SampleStats::SampleStats(std::size_t capacity) : capacity_(capacity)
{
    DPX_CHECK_GT(capacity, 0u) << " — SampleStats capacity must be > 0";
}

void
SampleStats::add(double x, std::uint64_t rng_word)
{
    if (total_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++total_;
    moments_.add(x);

    if (samples_.size() < capacity_) {
        samples_.push_back(x);
        sorted_ = false;
        return;
    }
    // Reservoir sampling: keep each of the `total_` values with equal
    // probability capacity_/total_.
    DPX_DCHECK_EQ(samples_.size(), capacity_);
    std::uint64_t slot = rng_word % total_;
    if (slot < capacity_) {
        samples_[slot] = x;
        sorted_ = false;
    }
}

double
SampleStats::percentile(double p) const
{
    DPX_CHECK(p >= 0.0 && p <= 1.0)
        << " — percentile p out of range: " << p;
    DPX_CHECK(!samples_.empty()) << " — percentile of empty population";
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (samples_.size() == 1)
        return samples_[0];
    // Linear interpolation between closest ranks.
    double rank = p * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    DPX_DCHECK_LT(lo, samples_.size());
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double
SampleStats::percentileSelect(double p) const
{
    DPX_CHECK(p >= 0.0 && p <= 1.0)
        << " — percentile p out of range: " << p;
    DPX_CHECK(!samples_.empty()) << " — percentile of empty population";
    const std::size_t n = samples_.size();
    if (n == 1)
        return samples_[0];
    double rank = p * static_cast<double>(n - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, n - 1);
    double frac = rank - static_cast<double>(lo);
    if (sorted_)
        return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
    // Selection: after nth_element the element at `lo` is exactly the
    // lo-th order statistic, and the (lo+1)-th is the minimum of the
    // right partition — the same two values a full sort would read.
    std::nth_element(samples_.begin(),
                     samples_.begin() + static_cast<std::ptrdiff_t>(lo),
                     samples_.end());
    const double v_lo = samples_[lo];
    double v_hi = v_lo;
    if (hi != lo) {
        v_hi = *std::min_element(
            samples_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
            samples_.end());
    }
    return v_lo + frac * (v_hi - v_lo);
}

void
SampleStats::finalize()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

void
SampleStats::reserveHint(std::uint64_t expected_total)
{
    samples_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(expected_total, capacity_)));
}

void
SampleStats::reset()
{
    total_ = 0;
    min_ = max_ = 0.0;
    moments_.reset();
    samples_.clear();
    sorted_ = true;
}

QuantileSketch::QuantileSketch(std::size_t capacity)
    : capacity_(capacity)
{
    DPX_CHECK(capacity >= 8 && capacity % 2 == 0)
        << " — QuantileSketch capacity must be even and >= 8, got "
        << capacity;
    levels_.emplace_back();
    levels_.front().reserve(capacity_);
    keep_odd_.push_back(0);
}

void
QuantileSketch::add(double x)
{
    levels_.front().push_back(x);
    ++count_;
    if (levels_.front().size() >= capacity_)
        compactLevel(0);
}

void
QuantileSketch::compactLevel(std::size_t level)
{
    DPX_DCHECK_EQ(levels_.size(), keep_odd_.size());
    // May cascade: promoting into a full level compacts it in turn.
    for (; level < levels_.size() &&
           levels_[level].size() >= capacity_;
         ++level) {
        if (level + 1 == levels_.size()) {
            levels_.emplace_back();
            levels_.back().reserve(capacity_);
            keep_odd_.push_back(0);
        }
        // Taken only after the emplace_back above: growing levels_
        // reallocates the outer vector.
        std::vector<double> &buf = levels_[level];
        std::sort(buf.begin(), buf.end());
        const std::size_t pairs = buf.size() / 2;
        const std::size_t offset = keep_odd_[level] ? 1 : 0;
        keep_odd_[level] ^= 1;
        std::vector<double> &up = levels_[level + 1];
        for (std::size_t i = 0; i < pairs; ++i)
            up.push_back(buf[2 * i + offset]);
        // An odd straggler keeps its weight and stays at this level.
        const bool straggler = buf.size() % 2 != 0;
        double leftover = straggler ? buf.back() : 0.0;
        buf.clear();
        if (straggler)
            buf.push_back(leftover);
        // Compactor lemma: collapsing weight-w pairs perturbs any
        // rank by at most w. Accumulate the certificate; it can
        // never exceed the stream length or the certificate (and
        // hence every percentile guarantee) is meaningless.
        error_bound_ += std::uint64_t{1} << level;
        DPX_DCHECK_LE(error_bound_, count_);
    }
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    DPX_CHECK_EQ(capacity_, other.capacity_)
        << " — QuantileSketch merge needs equal capacities";
    while (levels_.size() < other.levels_.size()) {
        levels_.emplace_back();
        levels_.back().reserve(capacity_);
        keep_odd_.push_back(0);
    }
    for (std::size_t l = 0; l < other.levels_.size(); ++l) {
        levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                          other.levels_[l].end());
    }
    count_ += other.count_;
    error_bound_ += other.error_bound_;
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (levels_[l].size() >= capacity_)
            compactLevel(l);
    }
}

double
QuantileSketch::percentile(double p) const
{
    DPX_CHECK(p >= 0.0 && p <= 1.0)
        << " — percentile p out of range: " << p;
    DPX_CHECK(count_ > 0) << " — percentile of empty sketch";
    std::vector<std::pair<double, std::uint64_t>> weighted;
    weighted.reserve(retained());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        const std::uint64_t w = std::uint64_t{1} << l;
        for (double v : levels_[l])
            weighted.emplace_back(v, w);
    }
    std::sort(weighted.begin(), weighted.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t running = 0;
    for (const auto &[value, weight] : weighted) {
        running += weight;
        if (running >= target)
            return value;
    }
    // Retained weights always sum back to the stream length, so the
    // scan above must have hit the target rank.
    DPX_CHECK_EQ(running, count_)
        << " — sketch weights lost track of the stream length";
    return weighted.back().first;
}

std::size_t
QuantileSketch::retained() const
{
    std::size_t n = 0;
    for (const std::vector<double> &level : levels_)
        n += level.size();
    return n;
}

void
QuantileSketch::reset()
{
    levels_.assign(1, {});
    levels_.front().reserve(capacity_);
    keep_odd_.assign(1, 0);
    count_ = 0;
    error_bound_ = 0;
}

void
SketchStats::merge(const SketchStats &other)
{
    if (other.empty())
        return;
    if (empty()) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    moments_.merge(other.moments_);
    sketch_.merge(other.sketch_);
}

TailSummary
TailSummary::fromExact(SampleStats stats)
{
    TailSummary out;
    out.exact_mode_ = true;
    stats.finalize();
    out.stats_ = std::move(stats);
    return out;
}

TailSummary
TailSummary::fromSketch(SketchStats merged)
{
    TailSummary out;
    out.exact_mode_ = false;
    out.merged_ = std::move(merged);
    return out;
}

double
TailSummary::percentile(double p) const
{
    return exact_mode_ ? stats_.percentile(p)
                       : merged_.percentile(p);
}

const std::vector<double> &
TailSummary::samples() const
{
    if (!exact_mode_)
        fatal("samples() on a sketch-backed TailSummary — per-sample "
              "retention exists only for single-stream runs; rerun "
              "with replicas = 1 (unset DPX_REPLICAS)");
    return stats_.samples();
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t num_bins)
    : num_bins_(num_bins)
{
    DPX_CHECK(lo > 0.0 && hi > lo && num_bins > 0) << " — bad LogHistogram parameters";
    log_lo_ = std::log(lo);
    log_hi_ = std::log(hi);
    counts_.assign(num_bins + 2, 0);
}

std::size_t
LogHistogram::indexFor(double x) const
{
    if (x <= 0.0 || std::log(x) < log_lo_)
        return 0; // underflow
    double lx = std::log(x);
    if (lx >= log_hi_)
        return num_bins_ + 1; // overflow
    double frac = (lx - log_lo_) / (log_hi_ - log_lo_);
    return 1 + static_cast<std::size_t>(
                   frac * static_cast<double>(num_bins_));
}

void
LogHistogram::add(double x, std::uint64_t weight)
{
    counts_[indexFor(x)] += weight;
    total_ += weight;
}

double
LogHistogram::binUpperEdge(std::size_t i) const
{
    if (i == 0)
        return std::exp(log_lo_);
    if (i >= num_bins_ + 1)
        return std::numeric_limits<double>::infinity();
    double frac = static_cast<double>(i) /
                  static_cast<double>(num_bins_);
    return std::exp(log_lo_ + frac * (log_hi_ - log_lo_));
}

std::vector<std::pair<double, double>>
LogHistogram::cdf() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(counts_.size());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        double frac = total_ == 0
                          ? 0.0
                          : static_cast<double>(running) /
                                static_cast<double>(total_);
        out.emplace_back(binUpperEdge(i), frac);
    }
    return out;
}

double
LogHistogram::percentile(double p) const
{
    DPX_CHECK(total_ > 0) << " — percentile of empty histogram";
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += counts_[i];
        if (running >= target)
            return binUpperEdge(i);
    }
    return binUpperEdge(counts_.size() - 1);
}

BatchMeans::BatchMeans(double relative_error, double z,
                       std::uint64_t min_batches)
    : relative_error_(relative_error), z_(z), min_batches_(min_batches)
{
    DPX_CHECK(relative_error > 0.0 && z > 0.0 && min_batches >= 2) << " — bad BatchMeans parameters";
}

void
BatchMeans::addBatch(double batch_metric)
{
    acc_.add(batch_metric);
}

double
BatchMeans::relativeHalfWidth() const
{
    if (acc_.count() < 2 || acc_.mean() == 0.0)
        return std::numeric_limits<double>::infinity();
    return acc_.ciHalfWidth(z_) / std::abs(acc_.mean());
}

bool
BatchMeans::converged() const
{
    return acc_.count() >= min_batches_ &&
           relativeHalfWidth() <= relative_error_;
}

} // namespace duplexity
