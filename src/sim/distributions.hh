/**
 * @file
 * Random-variate distributions for service times, stall durations, and
 * interarrival processes.
 *
 * The paper's methodology (Section V) draws µs-scale stall durations
 * from exponential distributions, measures empirical service-time
 * distributions, and scales them by simulated IPC slowdowns; cloud
 * service times are heavy-tailed. All of those shapes live here behind
 * one polymorphic interface so the queueing simulator and the workload
 * models can mix them freely.
 */

#ifndef DPX_SIM_DISTRIBUTIONS_HH
#define DPX_SIM_DISTRIBUTIONS_HH

#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.hh"

namespace duplexity
{

/** A sampleable non-negative real-valued distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one variate using @p rng. */
    virtual double sample(Rng &rng) const = 0;

    /** Analytic (or configured) mean of the distribution. */
    virtual double mean() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/** Point mass at a constant value. */
class DeterministicDist : public Distribution
{
  public:
    explicit DeterministicDist(double value);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double value_;
};

/** Exponential distribution with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double mean_;
};

/** Uniform distribution on [lo, hi]. */
class UniformDist : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double lo_;
    double hi_;
};

/** Log-normal distribution parameterized by its mean and sigma. */
class LogNormalDist : public Distribution
{
  public:
    /**
     * @param mean   desired arithmetic mean of the variates
     * @param sigma  shape (stddev of the underlying normal)
     */
    LogNormalDist(double mean, double sigma);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double mu_;
    double sigma_;
    double mean_;
};

/**
 * Bounded Pareto distribution: the canonical heavy-tailed service-time
 * model for cloud workloads [Harchol-Balter].
 */
class BoundedParetoDist : public Distribution
{
  public:
    BoundedParetoDist(double lo, double hi, double alpha);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double lo_;
    double hi_;
    double alpha_;
};

/**
 * Empirical distribution sampling uniformly from recorded values —
 * the BigHouse way of replaying a measured service-time population.
 */
class EmpiricalDist : public Distribution
{
  public:
    explicit EmpiricalDist(std::vector<double> samples);
    double sample(Rng &rng) const override;
    double mean() const override;

    std::size_t size() const { return samples_.size(); }

  private:
    std::vector<double> samples_;
    double mean_;
};

/** Mixture of distributions with given weights. */
class MixtureDist : public Distribution
{
  public:
    MixtureDist(std::vector<std::pair<double, DistributionPtr>> parts);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    std::vector<std::pair<double, DistributionPtr>> parts_;
    double total_weight_;
};

/**
 * An existing distribution with every variate multiplied by a constant
 * factor — used to apply IPC-slowdown scaling to measured service
 * distributions, per the paper's methodology.
 */
class ScaledDist : public Distribution
{
  public:
    ScaledDist(DistributionPtr base, double factor);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    DistributionPtr base_;
    double factor_;
};

/** Sum of two independent distributions. */
class SumDist : public Distribution
{
  public:
    SumDist(DistributionPtr a, DistributionPtr b);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    DistributionPtr a_;
    DistributionPtr b_;
};

/** Convenience factories. */
DistributionPtr makeDeterministic(double value);
DistributionPtr makeExponential(double mean);
DistributionPtr makeUniform(double lo, double hi);
DistributionPtr makeLogNormal(double mean, double sigma);
DistributionPtr makeBoundedPareto(double lo, double hi, double alpha);
DistributionPtr makeEmpirical(std::vector<double> samples);
DistributionPtr makeScaled(DistributionPtr base, double factor);
DistributionPtr makeSum(DistributionPtr a, DistributionPtr b);

} // namespace duplexity

#endif // DPX_SIM_DISTRIBUTIONS_HH
