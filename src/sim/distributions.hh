/**
 * @file
 * Random-variate distributions for service times, stall durations, and
 * interarrival processes.
 *
 * The paper's methodology (Section V) draws µs-scale stall durations
 * from exponential distributions, measures empirical service-time
 * distributions, and scales them by simulated IPC slowdowns; cloud
 * service times are heavy-tailed. All of those shapes live here behind
 * one polymorphic interface so the queueing simulator and the workload
 * models can mix them freely.
 */

#ifndef DPX_SIM_DISTRIBUTIONS_HH
#define DPX_SIM_DISTRIBUTIONS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.hh"
#include "sim/simd.hh"
#include "sim/vmath.hh"

namespace duplexity
{

/** A sampleable non-negative real-valued distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one variate using @p rng. */
    virtual double sample(Rng &rng) const = 0;

    /** Analytic (or configured) mean of the distribution. */
    virtual double mean() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/** Point mass at a constant value. */
class DeterministicDist : public Distribution
{
  public:
    explicit DeterministicDist(double value);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double value_;
};

/** Exponential distribution with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double mean_;
};

/** Uniform distribution on [lo, hi]. */
class UniformDist : public Distribution
{
  public:
    UniformDist(double lo, double hi);
    double sample(Rng &rng) const override;
    double mean() const override;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double lo_;
    double hi_;
};

/** Log-normal distribution parameterized by its mean and sigma. */
class LogNormalDist : public Distribution
{
  public:
    /**
     * @param mean   desired arithmetic mean of the variates
     * @param sigma  shape (stddev of the underlying normal)
     */
    LogNormalDist(double mean, double sigma);
    double sample(Rng &rng) const override;
    double mean() const override;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

  private:
    double mu_;
    double sigma_;
    double mean_;
};

/**
 * Bounded Pareto distribution: the canonical heavy-tailed service-time
 * model for cloud workloads [Harchol-Balter].
 */
class BoundedParetoDist : public Distribution
{
  public:
    BoundedParetoDist(double lo, double hi, double alpha);
    double sample(Rng &rng) const override;
    double mean() const override;

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double alpha() const { return alpha_; }

  private:
    double lo_;
    double hi_;
    double alpha_;
};

/**
 * Empirical distribution sampling uniformly from recorded values —
 * the BigHouse way of replaying a measured service-time population.
 */
class EmpiricalDist : public Distribution
{
  public:
    explicit EmpiricalDist(std::vector<double> samples);
    double sample(Rng &rng) const override;
    double mean() const override;

    std::size_t size() const { return samples_.size(); }
    const std::vector<double> &values() const { return samples_; }

  private:
    std::vector<double> samples_;
    double mean_;
};

/** Mixture of distributions with given weights. */
class MixtureDist : public Distribution
{
  public:
    MixtureDist(std::vector<std::pair<double, DistributionPtr>> parts);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    std::vector<std::pair<double, DistributionPtr>> parts_;
    double total_weight_;
};

/**
 * An existing distribution with every variate multiplied by a constant
 * factor — used to apply IPC-slowdown scaling to measured service
 * distributions, per the paper's methodology.
 */
class ScaledDist : public Distribution
{
  public:
    ScaledDist(DistributionPtr base, double factor);
    double sample(Rng &rng) const override;
    double mean() const override;

    const DistributionPtr &base() const { return base_; }
    double factor() const { return factor_; }

  private:
    DistributionPtr base_;
    double factor_;
};

/** Sum of two independent distributions. */
class SumDist : public Distribution
{
  public:
    SumDist(DistributionPtr a, DistributionPtr b);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    DistributionPtr a_;
    DistributionPtr b_;
};

/**
 * Devirtualized sampling fast path for the simulator's innermost
 * loops (queue steps, batch segment draws).
 *
 * A FastSampler inspects a Distribution once at construction and
 * seals it into a flat variant: the known leaf shapes (deterministic,
 * exponential, uniform, lognormal, bounded Pareto, empirical) sample
 * through a switch on a local enum instead of a virtual call, and a
 * single ScaledDist wrapper is peeled into an inline factor.
 * Anything else (mixtures, sums, nested scales) falls back to the
 * virtual interface, so every distribution is accepted.
 *
 * The per-kind sampling code replicates the Distribution subclasses'
 * arithmetic operation-for-operation: a FastSampler consumes exactly
 * the same Rng draws and returns bit-identical variates, which is
 * what lets runQueueSim and BatchSource use it without perturbing a
 * single golden number (tests/sim/distributions_test.cc pins this).
 */
class FastSampler
{
  public:
    /** Empty sampler; sample() must not be called. */
    FastSampler() = default;

    /** Seal @p dist (nullptr yields an empty sampler). */
    explicit FastSampler(DistributionPtr dist);

    explicit operator bool() const { return dist_ != nullptr; }

    /** Draw one variate; bit-identical to dist->sample(rng).
     *  Defined inline below so hot loops see through the dispatch. */
    double sample(Rng &rng) const;

    /**
     * Fill @p out with @p n consecutive variates — the batch form
     * hoists the kind dispatch out of the loop. Draw order matches n
     * calls to sample().
     */
    void sampleN(Rng &rng, double *out, std::size_t n) const;

    double mean() const { return dist_->mean(); }

    /** True when sampling avoids the virtual interface. */
    bool devirtualized() const { return kind_ != Kind::Virtual; }

  private:
    enum class Kind : std::uint8_t
    {
        Deterministic,
        Exponential,
        Uniform,
        LogNormal,
        BoundedPareto,
        Empirical,
        Virtual,
    };

    double sampleRaw(Rng &rng) const;

    Kind kind_ = Kind::Virtual;
    bool scaled_ = false;
    double factor_ = 1.0;
    /** Kind-specific parameters (see the constructor). */
    double a_ = 0.0;
    double b_ = 0.0;
    double c_ = 0.0;
    double d_ = 0.0;
    const double *emp_ = nullptr;
    std::size_t emp_size_ = 0;
    /** Virtual fallback target (the unpeeled distribution). */
    const Distribution *inner_ = nullptr;
    /** Owns everything emp_/inner_ point into. */
    DistributionPtr dist_;
};

inline double
FastSampler::sampleRaw(Rng &rng) const
{
    switch (kind_) {
      case Kind::Deterministic:
        return a_;
      case Kind::Exponential:
        // Rng::exponential(mean), inlined; log1pNeg routes to the
        // replica kernel when active, std::log1p otherwise.
        return -a_ * vmath::log1pNeg(rng.uniform());
      case Kind::Uniform:
        // Rng::uniform(lo, hi), inlined.
        return a_ + (b_ - a_) * rng.uniform();
      case Kind::LogNormal: {
        // exp(Rng::normal(mu, sigma)), inlined.
        double u1 = 1.0 - rng.uniform();
        double u2 = rng.uniform();
        // dpx-lint: allow(DPX106): Box-Muller needs log(1-u), which
        // is not bitwise log1p(-u) (the 1-u subtraction rounds
        // first); no replica route preserves the golden variates.
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
        // dpx-lint: allow(DPX106): exp has no replica kernel
        // (DESIGN.md §4b.4 covers log1p only); LogNormal draws are
        // cold relative to the exponential stall path.
        return std::exp(a_ + b_ * z);
      }
      case Kind::BoundedPareto: {
        double u = rng.uniform();
        return std::pow(-(u * b_ - u * a_ - b_) / c_, d_);
      }
      case Kind::Empirical:
        return emp_[rng.below(emp_size_)];
      case Kind::Virtual:
        return inner_->sample(rng);
    }
    return 0.0; // unreachable
}

inline double
FastSampler::sample(Rng &rng) const
{
    double v = sampleRaw(rng);
    return scaled_ ? factor_ * v : v;
}

// dpx-analyze: hot-entry — innermost draw loop of runQueueSim and the
// batch segment sources; DPX106 walks the callees for stray libm logs.
inline void
FastSampler::sampleN(Rng &rng, double *out, std::size_t n) const
{
    switch (kind_) {
      case Kind::Deterministic:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a_;
        break;
      case Kind::Exponential: {
        // Full batched pipeline: bulk-draw the raw words (fillBlock
        // emits exactly the sequence m next() calls would), map them
        // to uniforms lane-wise, push the whole chunk through the
        // vector log, then apply the -mean scale.  Every stage is
        // bit-identical to the per-element form (toUniformBlock and
        // log1pNegBlock both carry that contract), so the variates
        // match n calls to sample() exactly; the scale multiply is a
        // single rounding either way.
        std::uint64_t raws[256];
        double unis[256];
        for (std::size_t off = 0; off < n;) {
            const std::size_t m = std::min(n - off, std::size_t(256));
            rng.fillBlock(raws, m);
            if (simd::simdEnabled()) {
                simd::toUniformBlock(raws, unis, m);
            } else {
                for (std::size_t i = 0; i < m; ++i)
                    unis[i] = Rng::toUniform(raws[i]);
            }
            vmath::log1pNegBlock(unis, out + off, m);
            for (std::size_t i = 0; i < m; ++i)
                out[off + i] = -a_ * out[off + i];
            off += m;
        }
        break;
      }
      case Kind::Uniform:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a_ + (b_ - a_) * rng.uniform();
        break;
      case Kind::Empirical:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = emp_[rng.below(emp_size_)];
        break;
      case Kind::BoundedPareto: {
        // Batch the generator half of the pipeline (fillBlock + lane
        // uniform map); the pow itself stays scalar — glibc's pow is
        // table-driven and has no replica kernel (DESIGN.md §4b.4's
        // "pow wall"), so only the draw side vectorizes.
        std::uint64_t raws[256];
        double unis[256];
        for (std::size_t off = 0; off < n;) {
            const std::size_t m = std::min(n - off, std::size_t(256));
            rng.fillBlock(raws, m);
            if (simd::simdEnabled()) {
                simd::toUniformBlock(raws, unis, m);
            } else {
                for (std::size_t i = 0; i < m; ++i)
                    unis[i] = Rng::toUniform(raws[i]);
            }
            for (std::size_t i = 0; i < m; ++i) {
                const double u = unis[i];
                out[off + i] =
                    std::pow(-(u * b_ - u * a_ - b_) / c_, d_);
            }
            off += m;
        }
        break;
      }
      default:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = sampleRaw(rng);
        break;
    }
    if (scaled_) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = factor_ * out[i];
    }
}

/** Convenience factories. */
DistributionPtr makeDeterministic(double value);
DistributionPtr makeExponential(double mean);
DistributionPtr makeUniform(double lo, double hi);
DistributionPtr makeLogNormal(double mean, double sigma);
DistributionPtr makeBoundedPareto(double lo, double hi, double alpha);
DistributionPtr makeEmpirical(std::vector<double> samples);
DistributionPtr makeScaled(DistributionPtr base, double factor);
DistributionPtr makeSum(DistributionPtr a, DistributionPtr b);

} // namespace duplexity

#endif // DPX_SIM_DISTRIBUTIONS_HH
