/**
 * @file
 * Statistics collection: streaming moments, percentile estimation over
 * sample populations, log-scale histograms, and the batch-means
 * confidence-interval machinery used for the BigHouse-style stopping
 * rule ("simulate until 95% confidence of 5% error", Section V).
 */

#ifndef DPX_SIM_STATS_HH
#define DPX_SIM_STATS_HH

#include <cstdint>
#include <vector>

namespace duplexity
{

/** Streaming mean/variance accumulator (Welford's algorithm). */
class MeanAccumulator
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;
    double stddev() const;

    /** Half-width of the (normal-approximation) CI at @p z sigmas. */
    double ciHalfWidth(double z = 1.96) const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Sample store with exact order statistics. When the population exceeds
 * the capacity, it degrades to uniform reservoir sampling so memory is
 * bounded while percentiles stay approximately correct.
 */
class SampleStats
{
  public:
    explicit SampleStats(std::size_t capacity = 1u << 20);

    void add(double x, std::uint64_t rng_word = 0);

    std::uint64_t count() const { return total_; }
    bool empty() const { return total_ == 0; }

    double mean() const { return moments_.mean(); }
    double stddev() const { return moments_.stddev(); }
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * p-quantile (p in [0, 1]) over the retained samples. Sorts
     * lazily; O(n log n) on first call after inserts.
     */
    double percentile(double p) const;

    /** Shorthand for the paper's headline metric. */
    double p99() const { return percentile(0.99); }

    const std::vector<double> &samples() const { return samples_; }

    void reset();

  private:
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    MeanAccumulator moments_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-range histogram with logarithmically spaced bins. */
class LogHistogram
{
  public:
    /**
     * @param lo       left edge of the first finite bin (> 0)
     * @param hi       right edge of the last finite bin
     * @param num_bins bins between lo and hi (under/overflow extra)
     */
    LogHistogram(double lo, double hi, std::size_t num_bins);

    void add(double x, std::uint64_t weight = 1);

    std::uint64_t count() const { return total_; }

    /** Inclusive-right edge of bin @p i. */
    double binUpperEdge(std::size_t i) const;

    /** Empirical CDF evaluated at bin upper edges. */
    std::vector<std::pair<double, double>> cdf() const;

    /** Approximate quantile by CDF inversion. */
    double percentile(double p) const;

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

  private:
    std::size_t indexFor(double x) const;

    double log_lo_;
    double log_hi_;
    std::size_t num_bins_;
    std::vector<std::uint64_t> counts_; // [under, bins..., over]
    std::uint64_t total_ = 0;
};

/**
 * Batch-means stopping rule: feed per-batch estimates of a metric and
 * ask whether the relative confidence-interval half-width has shrunk
 * below the target (the BigHouse convergence criterion).
 */
class BatchMeans
{
  public:
    /**
     * @param relative_error target half-width / mean (e.g. 0.05)
     * @param z              confidence z-score (1.96 ~ 95%)
     * @param min_batches    batches required before convergence claims
     */
    explicit BatchMeans(double relative_error = 0.05, double z = 1.96,
                        std::uint64_t min_batches = 8);

    void addBatch(double batch_metric);

    bool converged() const;
    double mean() const { return acc_.mean(); }
    std::uint64_t batches() const { return acc_.count(); }
    double relativeHalfWidth() const;

  private:
    MeanAccumulator acc_;
    double relative_error_;
    double z_;
    std::uint64_t min_batches_;
};

} // namespace duplexity

#endif // DPX_SIM_STATS_HH
