/**
 * @file
 * Statistics collection: streaming moments, percentile estimation over
 * sample populations, mergeable fixed-memory quantile sketches,
 * log-scale histograms, and the batch-means confidence-interval
 * machinery used for the BigHouse-style stopping rule ("simulate until
 * 95% confidence of 5% error", Section V).
 */

#ifndef DPX_SIM_STATS_HH
#define DPX_SIM_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace duplexity
{

/** Streaming mean/variance accumulator (Welford's algorithm). */
class MeanAccumulator
{
  public:
    void add(double x);

    /**
     * Absorb @p other as if its samples had been added here (Chan's
     * parallel-Welford combination). The result depends on the merge
     * order, so deterministic pipelines must merge shards in a fixed
     * order (the replica engine merges by replica index).
     */
    void merge(const MeanAccumulator &other);

    std::uint64_t count() const { return count_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;
    double stddev() const;

    /** Half-width of the (normal-approximation) CI at @p z sigmas. */
    double ciHalfWidth(double z = 1.96) const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Sample store with exact order statistics. When the population exceeds
 * the capacity, it degrades to uniform reservoir sampling so memory is
 * bounded while percentiles stay approximately correct.
 */
class SampleStats
{
  public:
    explicit SampleStats(std::size_t capacity = 1u << 20);

    void add(double x, std::uint64_t rng_word = 0);

    std::uint64_t count() const { return total_; }
    bool empty() const { return total_ == 0; }

    double mean() const { return moments_.mean(); }
    double stddev() const { return moments_.stddev(); }
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * p-quantile (p in [0, 1]) over the retained samples. Sorts
     * lazily; O(n log n) on first call after inserts.
     *
     * Thread-safety contract: the lazy sort mutates the sample store,
     * so percentile() on a *non-finalized* object is single-threaded
     * only. Call finalize() once at end-of-run to sort eagerly; after
     * that every query is a pure read and the object may be shared
     * across reader threads (tests/sim/stats_concurrency_test.cc
     * pins this under TSan).
     */
    double percentile(double p) const;

    /**
     * Same value as percentile(p) — the identical closest-rank
     * interpolation over the identical retained samples — computed by
     * rank selection (nth_element) instead of a full sort: O(n)
     * instead of O(n log n) on an unsorted store. The batch-means
     * stopping rule reads one p99 per batch and then resets, which
     * makes the sort pure overhead (the run_queue_sim regression in
     * BENCH_hotpath.json was exactly this).
     *
     * Caveats: single-threaded only (reorders the sample store
     * without marking it sorted), and must not be interleaved with
     * reservoir-phase add() — a later add() indexes the store, so
     * reordering would replace a different value than the
     * sorted-store path. Both call sites reset() right after.
     */
    double percentileSelect(double p) const;

    /** Shorthand for the paper's headline metric. */
    double p99() const { return percentile(0.99); }

    /**
     * Sort the retained samples now and freeze the object for
     * concurrent reads. Percentile/mean/min/max queries after
     * finalize() never mutate; add() after finalize() re-enters the
     * single-threaded regime until the next finalize().
     */
    void finalize();

    /** True once finalize() (or a lazy sort) has run and no add()
     *  followed: queries are concurrency-safe pure reads. */
    bool finalized() const { return sorted_; }

    /**
     * Pre-size the sample store for an expected population of
     * @p expected_total values (clamped to the reservoir capacity) so
     * long runs do not pay vector-growth reallocation churn.
     */
    void reserveHint(std::uint64_t expected_total);

    const std::vector<double> &samples() const { return samples_; }

    void reset();

  private:
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    MeanAccumulator moments_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Mergeable, fixed-memory quantile sketch with a deterministic,
 * per-instance rank-error certificate.
 *
 * Structure: a hierarchy of levels; level l holds at most `capacity`
 * values, each standing for 2^l original samples. When a level fills
 * it is *compacted*: sorted, then every other element (the survivor
 * parity alternates per level between compactions) is promoted to
 * level l+1 with doubled weight. Memory is O(capacity * log2(n /
 * capacity)) regardless of the stream length n.
 *
 * Error guarantee (deterministic, not probabilistic): compacting a
 * buffer whose elements carry weight w perturbs the rank of any
 * value by at most w [the standard compactor lemma, cf. the KLL /
 * Manku-Rajagopalan-Lindsay family]. The sketch sums those w's as it
 * goes, so at any moment
 *
 *     | estimatedRank(x) - trueRank(x) | <= errorBound()
 *
 * for every x, and percentile(p) returns a retained sample whose
 * true rank is within errorBound() of ceil(p * count()). For the
 * default capacity 4096 and n = 4M samples that is at most
 * ceil(log2(n/k)) * n/k ~ 0.25 % of n in the worst case (the
 * alternating parity makes typical error far smaller).
 *
 * merge() concatenates per-level buffers and recompacts; the result
 * depends on merge order, so deterministic pipelines must merge
 * shards in a fixed order (the replica engine merges by replica
 * index). Error certificates add across merges.
 */
class QuantileSketch
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    /** @param capacity per-level buffer size; even, >= 8. */
    explicit QuantileSketch(std::size_t capacity = kDefaultCapacity);

    void add(double x);

    /** Absorb @p other (deterministic given merge order). */
    void merge(const QuantileSketch &other);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /**
     * Smallest retained value whose estimated rank reaches
     * ceil(p * count()); p in [0, 1]. Pure read (concurrency-safe).
     */
    double percentile(double p) const;

    double p99() const { return percentile(0.99); }

    /**
     * Certified worst-case |estimated - true| rank error for any
     * query on this sketch, in units of samples (0 while no
     * compaction has happened, i.e. the sketch is still exact).
     */
    std::uint64_t errorBound() const { return error_bound_; }

    /** Values currently held across all levels. */
    std::size_t retained() const;

    std::size_t capacity() const { return capacity_; }

    void reset();

  private:
    void compactLevel(std::size_t level);

    std::size_t capacity_;
    /** levels_[l] holds weight-2^l values, unsorted between adds. */
    std::vector<std::vector<double>> levels_;
    /** Survivor parity per level; flipped after each compaction. */
    std::vector<std::uint8_t> keep_odd_;
    std::uint64_t count_ = 0;
    std::uint64_t error_bound_ = 0;
};

/**
 * Fixed-memory per-shard tail collector: exact streaming moments and
 * extrema plus a QuantileSketch for the tail. This is what each
 * queue-sim replica records into instead of retaining its full sample
 * population; shards merge deterministically in replica-index order.
 */
class SketchStats
{
  public:
    explicit SketchStats(
        std::size_t sketch_capacity = QuantileSketch::kDefaultCapacity)
        : sketch_(sketch_capacity)
    {
    }

    void
    add(double x)
    {
        if (moments_.count() == 0) {
            min_ = max_ = x;
        } else {
            min_ = x < min_ ? x : min_;
            max_ = x > max_ ? x : max_;
        }
        moments_.add(x);
        sketch_.add(x);
    }

    /** Absorb @p other; call in a fixed shard order. */
    void merge(const SketchStats &other);

    std::uint64_t count() const { return moments_.count(); }
    bool empty() const { return moments_.count() == 0; }
    double mean() const { return moments_.mean(); }
    double stddev() const { return moments_.stddev(); }
    double min() const { return min_; }
    double max() const { return max_; }
    const MeanAccumulator &moments() const { return moments_; }
    const QuantileSketch &sketch() const { return sketch_; }

    double percentile(double p) const { return sketch_.percentile(p); }

  private:
    MeanAccumulator moments_;
    double min_ = 0.0;
    double max_ = 0.0;
    QuantileSketch sketch_;
};

/**
 * Read-only latency summary handed out by the queueing engine: either
 * an exact, finalized SampleStats (single-stream runs, R = 1 — the
 * bit-for-bit legacy representation) or a sketch-backed merge of
 * replica shards (R > 1). Both variants answer the same queries;
 * every query is a pure read, safe for concurrent readers.
 */
class TailSummary
{
  public:
    /** Empty exact summary (matches a default SampleStats). */
    TailSummary() = default;

    /** Wrap an exact population; finalizes it for concurrent reads. */
    static TailSummary fromExact(SampleStats stats);

    /** Wrap a merged shard summary. */
    static TailSummary fromSketch(SketchStats merged);

    /** True when backed by the exact per-sample representation. */
    bool exact() const { return exact_mode_; }

    bool
    empty() const
    {
        return exact_mode_ ? stats_.empty() : merged_.empty();
    }

    std::uint64_t
    count() const
    {
        return exact_mode_ ? stats_.count() : merged_.count();
    }

    double
    mean() const
    {
        return exact_mode_ ? stats_.mean() : merged_.mean();
    }

    double
    stddev() const
    {
        return exact_mode_ ? stats_.stddev() : merged_.stddev();
    }

    double min() const
    {
        return exact_mode_ ? stats_.min() : merged_.min();
    }

    double max() const
    {
        return exact_mode_ ? stats_.max() : merged_.max();
    }

    double percentile(double p) const;

    double p99() const { return percentile(0.99); }

    /**
     * Retained per-sample population. Only the exact representation
     * has one; calling this on a sketch-backed summary is a usage
     * error (panics) — check exact() first.
     */
    const std::vector<double> &samples() const;

    /** Sketch behind a merged summary (nullptr when exact). */
    const QuantileSketch *sketch() const
    {
        return exact_mode_ ? nullptr : &merged_.sketch();
    }

  private:
    bool exact_mode_ = true;
    SampleStats stats_{1}; // minimal footprint for sketch mode
    SketchStats merged_{8};
};

/** Fixed-range histogram with logarithmically spaced bins. */
class LogHistogram
{
  public:
    /**
     * @param lo       left edge of the first finite bin (> 0)
     * @param hi       right edge of the last finite bin
     * @param num_bins bins between lo and hi (under/overflow extra)
     */
    LogHistogram(double lo, double hi, std::size_t num_bins);

    void add(double x, std::uint64_t weight = 1);

    std::uint64_t count() const { return total_; }

    /** Inclusive-right edge of bin @p i. */
    double binUpperEdge(std::size_t i) const;

    /** Empirical CDF evaluated at bin upper edges. */
    std::vector<std::pair<double, double>> cdf() const;

    /** Approximate quantile by CDF inversion. */
    double percentile(double p) const;

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

  private:
    std::size_t indexFor(double x) const;

    double log_lo_;
    double log_hi_;
    std::size_t num_bins_;
    std::vector<std::uint64_t> counts_; // [under, bins..., over]
    std::uint64_t total_ = 0;
};

/**
 * Batch-means stopping rule: feed per-batch estimates of a metric and
 * ask whether the relative confidence-interval half-width has shrunk
 * below the target (the BigHouse convergence criterion).
 */
class BatchMeans
{
  public:
    /**
     * @param relative_error target half-width / mean (e.g. 0.05)
     * @param z              confidence z-score (1.96 ~ 95%)
     * @param min_batches    batches required before convergence claims
     */
    explicit BatchMeans(double relative_error = 0.05, double z = 1.96,
                        std::uint64_t min_batches = 8);

    void addBatch(double batch_metric);

    bool converged() const;
    double mean() const { return acc_.mean(); }
    std::uint64_t batches() const { return acc_.count(); }
    double relativeHalfWidth() const;

  private:
    MeanAccumulator acc_;
    double relative_error_;
    double z_;
    std::uint64_t min_batches_;
};

} // namespace duplexity

#endif // DPX_SIM_STATS_HH
