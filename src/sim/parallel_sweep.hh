/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * A "sweep" is a set of independent simulation cells (scenario runs,
 * SMT sweep points, ablation variants). parallelSweep() fans the
 * cells out over a work-stealing pool and reports per-cell timing
 * through the sim/stats accumulators. Determinism is a contract, not
 * an accident: every cell must derive ALL of its randomness from its
 * own identity — deriveCellSeed() maps (base seed, coordinate ids)
 * to a seed through the Rng fork chain — so results are bit-identical
 * for any worker count, including 1, and independent of submission
 * or completion order.
 */

#ifndef DPX_SIM_PARALLEL_SWEEP_HH
#define DPX_SIM_PARALLEL_SWEEP_HH

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace duplexity
{

/**
 * Seed for one sweep cell: a pure function of @p base_seed and the
 * cell's identity coordinates (enum values, thread counts, load keys
 * from coordKey()...). Never feed it submission indices or anything
 * scheduling-dependent.
 */
std::uint64_t
deriveCellSeed(std::uint64_t base_seed,
               std::initializer_list<std::uint64_t> coords);

/** Stable integer key for a floating-point sweep coordinate
 *  (micro-unit fixed point, exact for the usual 0.3/0.5/0.7 grid). */
std::uint64_t coordKey(double value);

struct SweepOptions
{
    /** Worker threads; 0 = DPX_THREADS env, else one per core. */
    unsigned threads = 0;
    /** Progress label (used when DPX_PROGRESS is set). */
    std::string label;
};

/** Timing/progress statistics of one sweep, surfaced via sim/stats. */
struct SweepReport
{
    unsigned threads = 1;
    std::size_t cells = 0;
    double wall_seconds = 0.0;
    /** Streaming moments over per-cell wall times. */
    MeanAccumulator cell_seconds;
    /** Per-cell wall time, indexed like the cell grid. */
    std::vector<double> per_cell_seconds;

    /** Sum of per-cell times = the serial-equivalent wall clock. */
    double totalCellSeconds() const;
    /** Serial-equivalent time / actual wall clock. */
    double parallelSpeedup() const;
};

/**
 * Run cells 0..num_cells-1 through @p cell on a work-stealing pool
 * and block until all finish. @p cell must write its result to a
 * caller-preallocated slot for its index (distinct indices never
 * alias) and take every random decision from an identity-derived
 * seed. Rethrows the first exception a cell raised, after all cells
 * have drained.
 */
SweepReport
parallelSweep(std::size_t num_cells,
              const std::function<void(std::size_t)> &cell,
              const SweepOptions &options = {});

} // namespace duplexity

#endif // DPX_SIM_PARALLEL_SWEEP_HH
