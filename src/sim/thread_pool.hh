/**
 * @file
 * Work-stealing thread pool for fanning independent simulation cells
 * across host cores.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm)
 * and steals FIFO from siblings when it runs dry, so a straggler cell
 * never idles the rest of the machine. The pool makes NO ordering or
 * placement promises — callers that need reproducible results must
 * make every task self-contained and deterministically seeded (see
 * sim/parallel_sweep.hh), never derive state from which worker or in
 * which order a task ran.
 *
 * Shutdown drains: destroying the pool runs every queued task to
 * completion before joining the workers.
 */

#ifndef DPX_SIM_THREAD_POOL_HH
#define DPX_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace duplexity
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads worker count; 0 = one per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Enqueue @p task. Safe from any thread, including from inside a
     * running task (nested submissions are seen by an in-progress
     * wait()).
     */
    void submit(Task task);

    /**
     * Block until every submitted task (including nested ones) has
     * finished. Rethrows the first exception any task raised since
     * the last wait(); remaining tasks still run to completion. Must
     * be called from outside the pool's own workers.
     */
    void wait();

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

    /**
     * Worker count from the DPX_THREADS environment variable, or
     * @p fallback (0 = hardwareThreads()) when unset/invalid.
     */
    static unsigned threadsFromEnv(unsigned fallback = 0);

    /**
     * The pool whose worker is executing the calling thread, or
     * nullptr when called from outside any pool. Lets nested
     * parallel layers (queue-sim replicas inside a sweep cell)
     * share the enclosing pool's concurrency budget instead of
     * spawning a second, oversubscribing pool.
     */
    static ThreadPool *current();

  private:
    struct Queue
    {
        std::deque<Task> tasks;
    };

    /** Pop own back, else steal a sibling's front. Lock held. */
    bool takeTaskLocked(unsigned self, Task &task);
    void workerLoop(unsigned self);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> threads_;

    /**
     * One mutex guards all queues and counters. Sweep tasks are
     * whole scenario runs (milliseconds to seconds), so queue
     * operations are not remotely contended; simplicity and
     * obviously-correct sleeping beat lock-free deques here.
     */
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::size_t queued_ = 0;    // submitted, not yet started
    std::size_t in_flight_ = 0; // submitted, not yet finished
    std::size_t next_queue_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

/**
 * Run @p tasks to completion with the calling thread participating:
 * tasks are claimed in index order by whichever thread is free — the
 * caller plus, when @p pool is non-null, that pool's workers (the
 * pool receives lightweight claim "tickets"; surplus tickets no-op).
 *
 * Unlike ThreadPool::wait() this is safe to call from INSIDE a pool
 * worker: the caller never blocks while any task is unclaimed, so a
 * saturated pool cannot deadlock nested fan-outs — at worst the
 * caller runs every task itself. That property is what lets
 * cells x replicas share one concurrency budget.
 *
 * @p pool may be nullptr (or the batch a single task): everything
 * then runs serially on the caller, in index order. Rethrows the
 * first exception any task raised, after all tasks have finished.
 * Callers needing determinism must make each task self-contained and
 * identity-seeded; claim order is NOT deterministic.
 */
void runTaskBatch(ThreadPool *pool,
                  std::vector<ThreadPool::Task> tasks);

} // namespace duplexity

#endif // DPX_SIM_THREAD_POOL_HH
