/**
 * @file
 * Bandwidth calendar: tracks how many of a per-cycle resource's slots
 * (fetch/issue/commit bandwidth) are taken in each future cycle, and
 * hands out the earliest free slot at or after a requested cycle.
 *
 * This is the core trick of the timestamp-based pipeline model: each
 * micro-op is processed exactly once, and structural bandwidth limits
 * are enforced by reserving calendar slots instead of iterating
 * cycle-by-cycle.
 */

#ifndef DPX_SIM_SLOT_CALENDAR_HH
#define DPX_SIM_SLOT_CALENDAR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace duplexity
{

class SlotCalendar
{
  public:
    /**
     * @param slots_per_cycle resource bandwidth (e.g. issue width)
     * @param window          cycles of look-ahead tracked; requests
     *                        beyond the window succeed untracked
     *                        (they are far enough ahead that the
     *                        resource cannot be saturated there yet).
     *                        Rounded up to a power of two so slot
     *                        lookup is a mask, not a division.
     */
    explicit SlotCalendar(std::uint32_t slots_per_cycle,
                          std::size_t window = 16384);

    /** Reserve one slot at the earliest cycle >= @p earliest. */
    Cycle reserve(Cycle earliest);

    /**
     * Reserve only if a slot is free exactly at @p cycle; returns
     * true on success. Used for strict-priority policies (SMT+).
     */
    bool tryReserveAt(Cycle cycle);

    /** Slots already taken at @p cycle. */
    std::uint32_t occupancy(Cycle cycle) const;

    std::uint32_t slotsPerCycle() const { return slots_per_cycle_; }

    /**
     * Declare that no reservation before @p cycle will ever be made
     * again; frees ring space.
     */
    void retireBefore(Cycle cycle);

    void reset();

  private:
    std::size_t slot(Cycle c) const { return c & mask_; }

    std::uint32_t slots_per_cycle_;
    std::size_t window_; // power of two
    std::size_t mask_;   // window_ - 1
    std::vector<std::uint16_t> counts_;
    Cycle base_ = 0; // counts_[slot(c)] valid for c in [base, base+window)
};

} // namespace duplexity

#endif // DPX_SIM_SLOT_CALENDAR_HH
