/**
 * @file
 * Bandwidth calendar: tracks how many of a per-cycle resource's slots
 * (fetch/issue/commit bandwidth) are taken in each future cycle, and
 * hands out the earliest free slot at or after a requested cycle.
 *
 * This is the core trick of the timestamp-based pipeline model: each
 * micro-op is processed exactly once, and structural bandwidth limits
 * are enforced by reserving calendar slots instead of iterating
 * cycle-by-cycle.
 *
 * reserve() is defined inline with a cached current-slot cursor: the
 * common pattern on the pipeline hot path is a burst of reservations
 * at the same earliest cycle (a width-w resource grants w same-cycle
 * slots before spilling), and the cursor lets every reservation after
 * the first skip straight to the frontier the previous search already
 * proved full. Occupancy counts never decrease for cycles >= base_
 * (retireBefore only clears cycles that fall below the new base, and
 * no future request can land there), so a once-full prefix stays
 * full and the skip is exact — granted slots are bit-identical to an
 * uncached search.
 */

#ifndef DPX_SIM_SLOT_CALENDAR_HH
#define DPX_SIM_SLOT_CALENDAR_HH

#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/types.hh"

namespace duplexity
{

class SlotCalendar
{
  public:
    /**
     * @param slots_per_cycle resource bandwidth (e.g. issue width)
     * @param window          cycles of look-ahead tracked; requests
     *                        beyond the window succeed untracked
     *                        (they are far enough ahead that the
     *                        resource cannot be saturated there yet).
     *                        Rounded up to a power of two so slot
     *                        lookup is a mask, not a division.
     */
    explicit SlotCalendar(std::uint32_t slots_per_cycle,
                          std::size_t window = 16384);

    /** Reserve one slot at the earliest cycle >= @p earliest. */
    Cycle
    reserve(Cycle earliest)
    {
        Cycle c = earliest > base_ ? earliest : base_;
        const Cycle requested = c;
        // Same-cycle burst fast path: the previous search proved
        // every cycle in [requested, cursor_granted_) full, and
        // counts only grow, so restart the scan at the frontier.
        if (requested == cursor_request_ && cursor_granted_ > c)
            c = cursor_granted_;
        for (;;) {
            if (c >= base_ + window_)
                retireBefore(c > window_ / 2 ? c - window_ / 2 : 0);
            DPX_DCHECK(c >= base_ && c < base_ + window_);
            std::uint8_t &count = counts_[slot(c)];
            DPX_DCHECK_LE(count, slots_per_cycle_);
            if (count < slots_per_cycle_) {
                ++count;
                cursor_request_ = requested;
                cursor_granted_ = c;
                return c;
            }
            ++c;
        }
    }

    /**
     * Reserve only if a slot is free exactly at @p cycle; returns
     * true on success. Used for strict-priority policies (SMT+).
     */
    bool tryReserveAt(Cycle cycle);

    /** Slots already taken at @p cycle. */
    std::uint32_t occupancy(Cycle cycle) const;

    std::uint32_t slotsPerCycle() const { return slots_per_cycle_; }

    /**
     * Declare that no reservation before @p cycle will ever be made
     * again; frees ring space.
     */
    void retireBefore(Cycle cycle);

    void reset();

  private:
    std::size_t slot(Cycle c) const { return c & mask_; }

    std::uint32_t slots_per_cycle_;
    std::size_t window_; // power of two
    std::size_t mask_;   // window_ - 1
    /** Per-cycle occupancy, bounded by slots_per_cycle_ (checked
     *  <= 255 in the ctor): a byte per cycle keeps the whole window
     *  ring cache-resident next to the pipeline's other hot state. */
    std::vector<std::uint8_t> counts_;
    Cycle base_ = 0; // counts_[slot(c)] valid for c in [base, base+window)
    /** Cursor cache: the last reserve()'s effective request cycle and
     *  the slot it was granted. Cleared by reset() (a stale cursor is
     *  never *wrong* — only the matching request can use it, and its
     *  proven-full prefix cannot un-fill — but reset() empties the
     *  calendar, so the proof no longer holds). */
    Cycle cursor_request_ = ~Cycle(0);
    Cycle cursor_granted_ = 0;
};

} // namespace duplexity

#endif // DPX_SIM_SLOT_CALENDAR_HH
