#include "sim/thread_pool.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace duplexity
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Queue>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    panicIfNot(static_cast<bool>(task), "null task submitted");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIfNot(!stopping_, "submit on a stopping pool");
        queues_[next_queue_]->tasks.push_back(std::move(task));
        next_queue_ = (next_queue_ + 1) % queues_.size();
        ++queued_;
        ++in_flight_;
    }
    work_cv_.notify_one();
}

bool
ThreadPool::takeTaskLocked(unsigned self, Task &task)
{
    Queue &own = *queues_[self];
    if (!own.tasks.empty()) {
        task = std::move(own.tasks.back());
        own.tasks.pop_back();
        --queued_;
        return true;
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        Queue &victim = *queues_[(self + i) % queues_.size()];
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            --queued_;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        Task task;
        if (takeTaskLocked(self, task)) {
            lock.unlock();
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> error_lock(mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            lock.lock();
            --in_flight_;
            if (in_flight_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        if (stopping_)
            return; // queues drained; in-flight siblings finish alone
        work_cv_.wait(lock,
                      [this] { return queued_ > 0 || stopping_; });
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned
ThreadPool::threadsFromEnv(unsigned fallback)
{
    if (fallback == 0)
        fallback = hardwareThreads();
    const char *env = std::getenv("DPX_THREADS");
    if (!env)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || v == 0 || v > 4096) {
        warn("ignoring invalid DPX_THREADS value");
        return fallback;
    }
    return static_cast<unsigned>(v);
}

} // namespace duplexity
