#include "sim/thread_pool.hh"

#include <cstdlib>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

namespace
{

/** Pool owning the calling thread (set once per worker thread). */
thread_local ThreadPool *tls_current_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Queue>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    DPX_CHECK(static_cast<bool>(task)) << " — null task submitted";
    {
        std::lock_guard<std::mutex> lock(mutex_);
        DPX_CHECK(!stopping_) << " — submit on a stopping pool";
        queues_[next_queue_]->tasks.push_back(std::move(task));
        next_queue_ = (next_queue_ + 1) % queues_.size();
        ++queued_;
        ++in_flight_;
    }
    work_cv_.notify_one();
}

bool
ThreadPool::takeTaskLocked(unsigned self, Task &task)
{
    Queue &own = *queues_[self];
    if (!own.tasks.empty()) {
        task = std::move(own.tasks.back());
        own.tasks.pop_back();
        --queued_;
        return true;
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        Queue &victim = *queues_[(self + i) % queues_.size()];
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            --queued_;
            return true;
        }
    }
    return false;
}

ThreadPool *
ThreadPool::current()
{
    return tls_current_pool;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tls_current_pool = this;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        Task task;
        if (takeTaskLocked(self, task)) {
            lock.unlock();
            try {
                task();
            } catch (...) {
                std::lock_guard<std::mutex> error_lock(mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            lock.lock();
            --in_flight_;
            if (in_flight_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        if (stopping_)
            return; // queues drained; in-flight siblings finish alone
        work_cv_.wait(lock,
                      [this] { return queued_ > 0 || stopping_; });
    }
}

void
ThreadPool::wait()
{
    // A worker waiting on its own pool deadlocks: it occupies the
    // thread that would have to finish the work it waits for. Nested
    // fan-outs must use runTaskBatch (helping wait) instead.
    DPX_CHECK(tls_current_pool != this)
        << " — ThreadPool::wait() called from inside one of the "
           "pool's own workers";
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace
{

/** Shared claim state of one runTaskBatch call. Tickets hold a
 *  shared_ptr so a batch finishing early never dangles them. */
struct BatchState
{
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<ThreadPool::Task> tasks;
    std::size_t next = 0;
    std::size_t done = 0;
    std::exception_ptr first_error;
};

/** Claim tasks in index order and run them until none are left. */
void
claimAndRun(const std::shared_ptr<BatchState> &state)
{
    for (;;) {
        std::size_t index;
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (state->next >= state->tasks.size())
                return;
            index = state->next++;
        }
        try {
            state->tasks[index]();
        } catch (...) {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (!state->first_error)
                state->first_error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        if (++state->done == state->tasks.size())
            state->done_cv.notify_all();
    }
}

} // namespace

void
runTaskBatch(ThreadPool *pool, std::vector<ThreadPool::Task> tasks)
{
    if (tasks.empty())
        return;
    auto state = std::make_shared<BatchState>();
    state->tasks = std::move(tasks);
    const std::size_t total = state->tasks.size();
    if (pool != nullptr && total > 1) {
        const std::size_t tickets =
            std::min<std::size_t>(pool->size(), total - 1);
        for (std::size_t i = 0; i < tickets; ++i)
            pool->submit([state] { claimAndRun(state); });
    }
    claimAndRun(state);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->done == total; });
    // Every task was claimed exactly once and ran to completion.
    DPX_CHECK_EQ(state->next, total);
    if (state->first_error)
        std::rethrow_exception(state->first_error);
}

unsigned
ThreadPool::threadsFromEnv(unsigned fallback)
{
    if (fallback == 0)
        fallback = hardwareThreads();
    const char *env = std::getenv("DPX_THREADS");
    if (!env)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || v == 0 || v > 4096) {
        warn("ignoring invalid DPX_THREADS value");
        return fallback;
    }
    return static_cast<unsigned>(v);
}

} // namespace duplexity
