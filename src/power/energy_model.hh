/**
 * @file
 * McPAT-lite energy model: static power proportional to area plus
 * per-event dynamic energies. Figure 5(c) divides design power by
 * retired instructions per cycle, so only relative per-design energy
 * matters; constants are representative 32 nm values.
 */

#ifndef DPX_POWER_ENERGY_MODEL_HH
#define DPX_POWER_ENERGY_MODEL_HH

#include <cstdint>

#include "power/area_model.hh"

namespace duplexity
{

/** Event counts accumulated over one simulated interval. */
struct ActivityCounters
{
    /** Wall-clock duration of the interval (seconds). */
    double seconds = 0.0;
    /** Micro-ops retired through the OoO datapath. */
    std::uint64_t ooo_ops = 0;
    /** Micro-ops retired through the InO/HSMT datapath. */
    std::uint64_t ino_ops = 0;
    std::uint64_t l1_accesses = 0;
    std::uint64_t llc_accesses = 0;
    std::uint64_t dram_accesses = 0;
    std::uint64_t l0_accesses = 0;
    std::uint64_t link_traversals = 0;

    std::uint64_t totalOps() const { return ooo_ops + ino_ops; }
};

struct EnergyModelConfig
{
    double static_w_per_mm2 = 0.30;
    double ooo_op_nj = 0.65;
    double ino_op_nj = 0.28;
    double l1_access_nj = 0.10;
    double llc_access_nj = 0.55;
    double dram_access_nj = 18.0;
    double l0_access_nj = 0.03;
    double link_nj = 0.05;
};

class EnergyModel
{
  public:
    explicit EnergyModel(
        const EnergyModelConfig &config = EnergyModelConfig{});

    /** Total energy (joules) for @p area_mm2 of silicon doing
     *  @p counters worth of work. */
    double totalJoules(double area_mm2,
                       const ActivityCounters &counters) const;

    /** Average power in watts. */
    double averageWatts(double area_mm2,
                        const ActivityCounters &counters) const;

    /** Energy per retired micro-op in nanojoules (Figure 5(c)). */
    double energyPerOpNj(double area_mm2,
                         const ActivityCounters &counters) const;

    const EnergyModelConfig &config() const { return config_; }

  private:
    EnergyModelConfig config_;
};

} // namespace duplexity

#endif // DPX_POWER_ENERGY_MODEL_HH
