/**
 * @file
 * CACTI/McPAT-lite area and frequency model at 32 nm.
 *
 * The paper evaluates area, frequency, and power with McPAT (with the
 * fixes of Xi et al.) and CACTI 6.0; neither tool can ship here, so
 * this module provides an analytic component model calibrated to
 * reproduce Table II:
 *
 *   Baseline OoO            12.1 mm^2   3.40 GHz
 *   SMT                     12.2 mm^2   3.35 GHz
 *   MorphCore               12.4 mm^2   3.30 GHz
 *   Master-core             12.7 mm^2   3.25 GHz
 *   Master-core+replication 16.7 mm^2   3.25 GHz
 *   Lender-core              5.5 mm^2   3.40 GHz
 *   LLC                      3.9 mm^2/MB
 *
 * and the Section V overhead statements (master-core ~5 % area over
 * baseline, ~4 % cycle-time penalty from mode muxes, replicated
 * variant ~38 % area overhead).
 */

#ifndef DPX_POWER_AREA_MODEL_HH
#define DPX_POWER_AREA_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace duplexity
{

/** The core variants of Table II. */
enum class CoreKind
{
    BaselineOoO,
    Smt2,
    MorphCore,
    MasterCore,
    MasterCoreReplicated,
    LenderCore,
};

const char *toString(CoreKind kind);

/** CACTI-lite: area of an SRAM array in mm^2 at 32 nm. */
double sramAreaMm2(std::uint64_t bytes, std::uint32_t assoc,
                   std::uint32_t ports);

/** CAM-heavy scheduling structure (IQ/ROB/LSQ) area. */
double camAreaMm2(std::uint32_t entries, std::uint32_t entry_bits,
                  std::uint32_t ports);

struct ComponentArea
{
    std::string name;
    double mm2;
};

struct AreaBreakdown
{
    std::vector<ComponentArea> parts;

    double total() const;
    double part(const std::string &name) const;
};

/** Component-level area of one core variant. */
AreaBreakdown coreArea(CoreKind kind);

/** Clock frequency of one core variant (GHz). */
double coreFrequencyGhz(CoreKind kind);

/** LLC area per megabyte (mm^2/MB). */
double llcAreaPerMb();

/**
 * Chip-level area for the paper's pairing rule (Section VI-B): each
 * master-core alternative is paired with a lender-style HSMT
 * throughput core and @p llc_mb of LLC.
 */
double pairedChipAreaMm2(CoreKind kind, double llc_mb = 2.0);

} // namespace duplexity

#endif // DPX_POWER_AREA_MODEL_HH
