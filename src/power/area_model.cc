#include "power/area_model.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

namespace
{

// Calibration constants (32 nm, speed-optimized core arrays). The
// LLC constant is taken directly from Table II; core-array density
// and the logic-block constants below are calibrated so that the
// component sums reproduce Table II's core areas.
constexpr double core_sram_mm2_per_mb = 17.6;
constexpr double sram_assoc_factor = 0.015; // per extra way
constexpr double sram_port_factor = 0.30;   // per extra port
constexpr double cam_mm2_per_bit_port = 5e-6;
constexpr double llc_mm2_per_mb = 3.9;

// Logic-block areas (mm^2), McPAT-style constants.
constexpr double frontend_logic = 1.20;       // fetch/decode, 4-wide
constexpr double ooo_window = 2.45;           // rename + ROB + IQ
constexpr double prf_area = 1.05;             // 144-entry INT + FP PRF
constexpr double filler_arf_area = 0.68;      // replicated filler regs
constexpr double fu_area_ooo = 2.70;          // 4-wide INT/FP/AGU
constexpr double fu_area_ino = 1.90;          // simpler InO datapath
constexpr double lsu_area_ooo = 1.00;         // LQ48/SQ32 + ports
constexpr double lsu_area_ino = 0.20;
constexpr double misc_area = 0.38;            // bypass/clock/control
constexpr double ino_frontend_logic = 0.50;   // RR fetch, 8 threads
constexpr double hsmt_arf_area = 0.45;        // 128-entry shared ARF
constexpr double smt2_state_area = 0.10;      // 2nd thread state
constexpr double morph_mux_area = 0.30;       // mode mux/select paths
constexpr double tournament_pred_area = 0.33; // 3x16K + BTB + RAS
constexpr double gshare_pred_area = 0.12;     // 8K gshare + small BTB

double
tlbArea()
{
    // 64-entry fully associative CAM, ~100 bits/entry, 2 ports.
    return camAreaMm2(64, 100, 2);
}

} // namespace

const char *
toString(CoreKind kind)
{
    switch (kind) {
      case CoreKind::BaselineOoO:
        return "Baseline OoO";
      case CoreKind::Smt2:
        return "SMT";
      case CoreKind::MorphCore:
        return "MorphCore";
      case CoreKind::MasterCore:
        return "Master-core";
      case CoreKind::MasterCoreReplicated:
        return "Master-core + replication";
      case CoreKind::LenderCore:
        return "Lender-core";
    }
    return "?";
}

double
sramAreaMm2(std::uint64_t bytes, std::uint32_t assoc,
            std::uint32_t ports)
{
    DPX_CHECK(assoc >= 1 && ports >= 1) << " — bad SRAM parameters";
    double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    return mb * core_sram_mm2_per_mb *
           (1.0 + sram_assoc_factor * (assoc - 1)) *
           (1.0 + sram_port_factor * (ports - 1));
}

double
camAreaMm2(std::uint32_t entries, std::uint32_t entry_bits,
           std::uint32_t ports)
{
    DPX_CHECK(ports >= 1) << " — bad CAM parameters";
    return static_cast<double>(entries) * entry_bits *
           cam_mm2_per_bit_port *
           (1.0 + sram_port_factor * (ports - 1));
}

double
AreaBreakdown::total() const
{
    double sum = 0.0;
    for (const ComponentArea &part : parts)
        sum += part.mm2;
    return sum;
}

double
AreaBreakdown::part(const std::string &name) const
{
    for (const ComponentArea &component : parts) {
        if (component.name == name)
            return component.mm2;
    }
    return 0.0;
}

AreaBreakdown
coreArea(CoreKind kind)
{
    AreaBreakdown bd;
    auto add = [&bd](const std::string &name, double mm2) {
        bd.parts.push_back({name, mm2});
    };

    const double l1_fast = sramAreaMm2(64 * 1024, 2, 2);
    const double l1_ino = sramAreaMm2(64 * 1024, 2, 1);

    if (kind == CoreKind::LenderCore) {
        add("l1i", l1_ino);
        add("l1d", l1_ino);
        add("tlbs", 2 * tlbArea());
        add("predictor", gshare_pred_area);
        add("frontend", ino_frontend_logic);
        add("arf", hsmt_arf_area);
        add("fus", fu_area_ino);
        add("lsu", lsu_area_ino);
        return bd;
    }

    // OoO family: baseline components first.
    add("l1i", l1_fast);
    add("l1d", l1_fast);
    add("tlbs", 2 * tlbArea());
    add("predictor", tournament_pred_area);
    add("frontend", frontend_logic);
    add("window", ooo_window);
    add("prf", prf_area);
    add("fus", fu_area_ooo);
    add("lsu", lsu_area_ooo);
    add("misc", misc_area);

    switch (kind) {
      case CoreKind::BaselineOoO:
        break;
      case CoreKind::Smt2:
        add("smt-state", smt2_state_area);
        break;
      case CoreKind::MorphCore:
        add("morph-mux", morph_mux_area);
        break;
      case CoreKind::MasterCore:
        add("morph-mux", morph_mux_area);
        add("filler-tlbs", 2 * tlbArea());
        add("filler-predictor", gshare_pred_area);
        add("l0i", sramAreaMm2(2 * 1024, 2, 1));
        add("l0d", sramAreaMm2(4 * 1024, 2, 1));
        break;
      case CoreKind::MasterCoreReplicated:
        add("morph-mux", morph_mux_area);
        add("filler-tlbs", 2 * tlbArea());
        add("filler-predictor", tournament_pred_area);
        add("repl-l1i", l1_fast);
        add("repl-l1d", l1_fast);
        add("repl-arf", filler_arf_area);
        break;
      default:
        panic("unhandled core kind");
    }
    return bd;
}

double
coreFrequencyGhz(CoreKind kind)
{
    // Cycle-time penalties from extra muxing (Section V: ~20 gates
    // per pipeline stage, ~4% for the master-core's mode muxes).
    constexpr double base_ghz = 3.4;
    switch (kind) {
      case CoreKind::BaselineOoO:
      case CoreKind::LenderCore:
        return base_ghz;
      case CoreKind::Smt2:
        return base_ghz * (1.0 - 0.015);
      case CoreKind::MorphCore:
        return base_ghz * (1.0 - 0.030);
      case CoreKind::MasterCore:
      case CoreKind::MasterCoreReplicated:
        return base_ghz * (1.0 - 0.044);
    }
    return base_ghz;
}

double
llcAreaPerMb()
{
    return llc_mm2_per_mb;
}

double
pairedChipAreaMm2(CoreKind kind, double llc_mb)
{
    double area = coreArea(kind).total() + llc_mb * llcAreaPerMb();
    // Every alternative is paired with a throughput-oriented HSMT
    // core matching the lender-core; Duplexity's pairing *is* its
    // lender, so the rule is uniform.
    area += coreArea(CoreKind::LenderCore).total();
    return area;
}

} // namespace duplexity
