#include "power/energy_model.hh"

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

EnergyModel::EnergyModel(const EnergyModelConfig &config)
    : config_(config)
{
}

double
EnergyModel::totalJoules(double area_mm2,
                         const ActivityCounters &counters) const
{
    DPX_CHECK(counters.seconds >= 0.0) << " — negative interval";
    double static_j =
        area_mm2 * config_.static_w_per_mm2 * counters.seconds;
    double dynamic_nj =
        config_.ooo_op_nj * static_cast<double>(counters.ooo_ops) +
        config_.ino_op_nj * static_cast<double>(counters.ino_ops) +
        config_.l1_access_nj *
            static_cast<double>(counters.l1_accesses) +
        config_.llc_access_nj *
            static_cast<double>(counters.llc_accesses) +
        config_.dram_access_nj *
            static_cast<double>(counters.dram_accesses) +
        config_.l0_access_nj *
            static_cast<double>(counters.l0_accesses) +
        config_.link_nj *
            static_cast<double>(counters.link_traversals);
    return static_j + dynamic_nj * 1e-9;
}

double
EnergyModel::averageWatts(double area_mm2,
                          const ActivityCounters &counters) const
{
    if (counters.seconds <= 0.0)
        return 0.0;
    return totalJoules(area_mm2, counters) / counters.seconds;
}

double
EnergyModel::energyPerOpNj(double area_mm2,
                           const ActivityCounters &counters) const
{
    std::uint64_t ops = counters.totalOps();
    if (ops == 0)
        return 0.0;
    return totalJoules(area_mm2, counters) * 1e9 /
           static_cast<double>(ops);
}

} // namespace duplexity
