#include "branch/predictor.hh"

#include <bit>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

namespace
{

// 2-bit saturating counter helpers; >= 2 predicts taken.
constexpr std::uint8_t weakly_taken = 2;

/** PC hash for table indexing: robust to aligned/strided PCs. */
std::uint64_t
pcHash(Addr pc)
{
    return (pc >> 2) * 0x9e3779b97f4a7c15ull >> 16;
}

std::uint8_t
bump(std::uint8_t counter, bool up)
{
    if (up)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

double
BranchStats::mispredictRate() const
{
    return lookups == 0 ? 0.0
                        : static_cast<double>(mispredicts) /
                              static_cast<double>(lookups);
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    bool predicted = predictUpdate(pc, taken);
    ++stats_.lookups;
    if (predicted != taken)
        ++stats_.mispredicts;
    return predicted == taken;
}

bool
BranchPredictor::predictUpdate(Addr pc, bool taken)
{
    bool predicted = predict(pc);
    update(pc, taken);
    return predicted;
}

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries, weakly_taken), mask_(entries - 1)
{
    DPX_CHECK(std::has_single_bit(entries)) << " — bimodal entries must be a power of two";
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return pcHash(pc) & mask_;
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table_[index(pc)] >= weakly_taken;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &counter = table_[index(pc)];
    counter = bump(counter, taken);
}

bool
BimodalPredictor::predictUpdateRaw(Addr pc, bool taken)
{
    std::uint8_t &counter = table_[index(pc)];
    bool predicted = counter >= weakly_taken;
    counter = bump(counter, taken);
    return predicted;
}

bool
BimodalPredictor::predictUpdate(Addr pc, bool taken)
{
    return predictUpdateRaw(pc, taken);
}

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : table_(entries, weakly_taken), mask_(entries - 1),
      history_mask_((1ull << history_bits) - 1)
{
    DPX_CHECK(std::has_single_bit(entries)) << " — gshare entries must be a power of two";
    DPX_CHECK(history_bits > 0 && history_bits < 64) << " — bad gshare history length";
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    return (pcHash(pc) ^ history_) & mask_;
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table_[index(pc)] >= weakly_taken;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    std::uint8_t &counter = table_[index(pc)];
    counter = bump(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

bool
GsharePredictor::predictUpdateRaw(Addr pc, bool taken)
{
    // index() reads history_ before the shift below, exactly like a
    // predict() that precedes update().
    std::uint8_t &counter = table_[index(pc)];
    bool predicted = counter >= weakly_taken;
    counter = bump(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
    return predicted;
}

bool
GsharePredictor::predictUpdate(Addr pc, bool taken)
{
    return predictUpdateRaw(pc, taken);
}

TournamentPredictor::TournamentPredictor(std::size_t bimodal_entries,
                                         std::size_t gshare_entries,
                                         std::size_t selector_entries,
                                         unsigned history_bits)
    : bimodal_(bimodal_entries),
      gshare_(gshare_entries, history_bits),
      selector_(selector_entries, weakly_taken),
      selector_mask_(selector_entries - 1)
{
    DPX_CHECK(std::has_single_bit(selector_entries)) << " — selector entries must be a power of two";
}

std::size_t
TournamentPredictor::selectorIndex(Addr pc) const
{
    return pcHash(pc) & selector_mask_;
}

bool
TournamentPredictor::predict(Addr pc) const
{
    // Selector >= 2 chooses gshare.
    bool use_gshare = selector_[selectorIndex(pc)] >= weakly_taken;
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    bool bi = bimodal_.predict(pc);
    bool gs = gshare_.predict(pc);
    // Train the chooser only when the components disagree.
    if (bi != gs) {
        std::uint8_t &sel = selector_[selectorIndex(pc)];
        sel = bump(sel, gs == taken);
    }
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

bool
TournamentPredictor::predictUpdate(Addr pc, bool taken)
{
    // One walk per structure: read the chooser before anything
    // trains, run each component's combined predict+train, then
    // train the chooser on disagreement — the same state transitions
    // as predict() followed by update().
    std::uint8_t &sel = selector_[selectorIndex(pc)];
    bool use_gshare = sel >= weakly_taken;
    bool bi = bimodal_.predictUpdateRaw(pc, taken);
    bool gs = gshare_.predictUpdateRaw(pc, taken);
    if (bi != gs)
        sel = bump(sel, gs == taken);
    return use_gshare ? gs : bi;
}

Btb::Btb(std::size_t entries, std::uint32_t assoc) : assoc_(assoc)
{
    DPX_CHECK(entries % assoc == 0) << " — BTB entries % assoc != 0";
    num_sets_ = entries / assoc;
    DPX_CHECK(std::has_single_bit(num_sets_)) << " — BTB set count must be a power of two";
    entries_.assign(entries, Entry{});
}

std::size_t
Btb::setOf(Addr pc) const
{
    return pcHash(pc) & (num_sets_ - 1);
}

bool
Btb::lookup(Addr pc) const
{
    const Entry *base = &entries_[setOf(pc) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *base = &entries_[setOf(pc) * assoc_];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.pc == pc) {
            entry.target = target;
            entry.lru = ++lru_clock_;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lru < victim->lru) {
            victim = &entry;
        }
    }
    victim->pc = pc;
    victim->target = target;
    victim->valid = true;
    victim->lru = ++lru_clock_;
}

bool
Btb::lookupUpdate(Addr pc, Addr target)
{
    Entry *base = &entries_[setOf(pc) * assoc_];
    Entry *victim = base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.pc == pc) {
            ++hits_;
            entry.target = target;
            entry.lru = ++lru_clock_;
            return true;
        }
        // Victim choice mirrors update(): the last invalid way wins;
        // otherwise the least-recently-used valid way.
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lru < victim->lru) {
            victim = &entry;
        }
    }
    ++misses_;
    victim->pc = pc;
    victim->target = target;
    victim->valid = true;
    victim->lru = ++lru_clock_;
    return false;
}

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    DPX_CHECK(depth > 0) << " — RAS depth must be > 0";
}

void
ReturnAddressStack::push(Addr return_pc)
{
    if (top_ == stack_.size()) {
        // Overflow: wrap by discarding the oldest entry.
        ++overflows_;
        for (std::size_t i = 1; i < stack_.size(); ++i)
            stack_[i - 1] = stack_[i];
        --top_;
    }
    stack_[top_++] = return_pc;
}

Addr
ReturnAddressStack::pop()
{
    if (top_ == 0)
        return 0;
    return stack_[--top_];
}

std::unique_ptr<BranchPredictor>
makePredictor(PredictorConfig::Kind kind)
{
    switch (kind) {
      case PredictorConfig::Kind::Tournament:
        return std::make_unique<TournamentPredictor>(16 * 1024,
                                                     16 * 1024,
                                                     16 * 1024);
      case PredictorConfig::Kind::GshareSmall:
        return std::make_unique<GsharePredictor>(8 * 1024, 12);
    }
    panic("unknown predictor kind");
}

} // namespace duplexity
