/**
 * @file
 * Branch direction predictors, BTB, and return-address stack.
 *
 * Table I provisions a tournament predictor (16K bimodal + 16K gshare +
 * 16K selector), a 2K-entry BTB, and a 32-entry RAS for the OoO
 * master-core, and a smaller 8K gshare for the lender-core and for the
 * master-core's filler mode (the reduced-size replicated predictor of
 * Section III-B2).
 */

#ifndef DPX_BRANCH_PREDICTOR_HH
#define DPX_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace duplexity
{

struct BranchStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    double mispredictRate() const;
};

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) const = 0;

    /** Train with the resolved outcome; updates stats. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Lookup+train convenience; @return true if prediction correct. */
    bool predictAndUpdate(Addr pc, bool taken);

    const BranchStats &stats() const { return stats_; }
    void resetStats() { stats_ = BranchStats{}; }

  protected:
    /**
     * Combined predict-then-train step returning the prediction.
     * Subclasses override it to hash/index their tables once per
     * branch instead of once for predict and again for update; the
     * resulting predictor state and prediction must be identical to
     * predict() followed by update(). Stats are handled by the
     * predictAndUpdate wrapper.
     */
    virtual bool predictUpdate(Addr pc, bool taken);

    BranchStats stats_;
};

/** Classic 2-bit-counter bimodal table. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;

  protected:
    bool predictUpdate(Addr pc, bool taken) override;

  private:
    friend class TournamentPredictor;

    /** predictUpdate body, callable non-virtually by the tournament. */
    bool predictUpdateRaw(Addr pc, bool taken);

    std::size_t index(Addr pc) const;

    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

/** Global-history gshare predictor. */
class GsharePredictor : public BranchPredictor
{
  public:
    GsharePredictor(std::size_t entries, unsigned history_bits);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;

  protected:
    bool predictUpdate(Addr pc, bool taken) override;

  private:
    friend class TournamentPredictor;

    /** predictUpdate body, callable non-virtually by the tournament. */
    bool predictUpdateRaw(Addr pc, bool taken);

    std::size_t index(Addr pc) const;

    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t history_mask_;
};

/** Tournament of bimodal and gshare with a 2-bit chooser. */
class TournamentPredictor : public BranchPredictor
{
  public:
    TournamentPredictor(std::size_t bimodal_entries,
                        std::size_t gshare_entries,
                        std::size_t selector_entries,
                        unsigned history_bits = 12);

    bool predict(Addr pc) const override;
    void update(Addr pc, bool taken) override;

  protected:
    bool predictUpdate(Addr pc, bool taken) override;

  private:
    std::size_t selectorIndex(Addr pc) const;

    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> selector_;
    std::size_t selector_mask_;
};

/** Branch target buffer: taken branches need a target to redirect. */
class Btb
{
  public:
    Btb(std::size_t entries, std::uint32_t assoc = 4);

    /** @return true when @p pc has a target entry. */
    bool lookup(Addr pc) const;

    void update(Addr pc, Addr target);

    /**
     * lookup(pc) followed by update(pc, target) in one set walk;
     * @return the lookup result. Hit/miss counters and replacement
     * state end up exactly as with the two separate calls.
     */
    bool lookupUpdate(Addr pc, Addr target);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    std::size_t setOf(Addr pc) const;

    std::vector<Entry> entries_;
    std::size_t num_sets_;
    std::uint32_t assoc_;
    std::uint64_t lru_clock_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

/** Return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t depth);

    void push(Addr return_pc);

    /** Pop a prediction; 0 when empty (forces a mispredict). */
    Addr pop();

    std::size_t size() const { return top_; }
    std::size_t depth() const { return stack_.size(); }
    std::uint64_t overflows() const { return overflows_; }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::uint64_t overflows_ = 0;
};

/** Predictor menus used across the design points. */
struct PredictorConfig
{
    enum class Kind
    {
        Tournament, // bimodal 16K + gshare 16K + selector 16K
        GshareSmall // gshare 8K
    };

    Kind kind = Kind::Tournament;
    std::size_t btb_entries = 2048;
    std::size_t ras_depth = 32;
};

std::unique_ptr<BranchPredictor>
makePredictor(PredictorConfig::Kind kind);

} // namespace duplexity

#endif // DPX_BRANCH_PREDICTOR_HH
