/**
 * @file
 * SMT thread-scaling experiments (Figures 1(c) and 2(a)): N threads
 * on one 4-wide core, OoO or InO issue, shared caches/predictor/ROB,
 * stalling in place on µs-scale remote ops (plain SMT has no context
 * backlog). Reports aggregate throughput.
 */

#ifndef DPX_CORE_SMT_SWEEP_HH
#define DPX_CORE_SMT_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/core_engine.hh"
#include "workload/microservice.hh"

namespace duplexity
{

struct SmtSweepConfig
{
    IssueMode mode = IssueMode::OutOfOrder;
    std::uint32_t threads = 1;
    /** Workload of thread @p i (thread-private address regions). */
    std::function<BatchSpec(ThreadId)> workload;
    Cycle warmup_cycles = 200'000;
    Cycle measure_cycles = 1'000'000;
    std::uint64_t seed = 7;

    /**
     * Forced-legacy switch for the most-behind streak scheduler: when
     * false, the multi-thread loop re-scans every thread per op. The
     * streak schedule is bit-identical (it only elides scans whose
     * winner is already known); see SmtSweepDeterminism tests.
     */
    // dpx-lint: allow(DPX110): sweep-mode selector, not a hot path
    // (golden-covered by the step-side differential wall; the sweep
    // driver is not on the hotpath_bench measurement path, so there
    // is no activation counter to surface).
    bool event_driven = true;
};

struct SmtSweepResult
{
    /** Aggregate committed micro-ops per cycle. */
    double total_ipc = 0.0;
    /** Aggregate L1-D miss rate observed. */
    double l1d_miss_rate = 0.0;
    /** Branch mispredict rate across threads. */
    double mispredict_rate = 0.0;
};

SmtSweepResult runSmtSweep(const SmtSweepConfig &config);

/**
 * Run many independent sweep points on the parallel sweep engine
 * (sim/parallel_sweep.hh). Results are indexed like @p configs and
 * bit-identical to running each point serially: every point draws
 * all randomness from its own config seed, never from scheduling.
 * @p threads 0 honors the DPX_THREADS override.
 */
std::vector<SmtSweepResult>
runSmtSweepMany(const std::vector<SmtSweepConfig> &configs,
                unsigned threads = 0);

} // namespace duplexity

#endif // DPX_CORE_SMT_SWEEP_HH
