/**
 * @file
 * The evaluation grid: (microservice x load x design) scenario cells,
 * run in parallel on the sweep engine (sim/parallel_sweep.hh).
 *
 * Every cell's RNG seed is derived from its identity — gridCellSeed()
 * mixes (base seed, service, load, design) through the Rng fork
 * chain — never from submission or completion order, so a Grid is
 * bit-identical for any worker count (DPX_THREADS=1 vs =N) and any
 * subgrid ordering. The Figure 5 family, the NIC study, and the
 * golden regression tests all run on this engine.
 */

#ifndef DPX_CORE_GRID_HH
#define DPX_CORE_GRID_HH

#include <cstdint>
#include <vector>

#include "core/scenario.hh"
#include "sim/parallel_sweep.hh"

namespace duplexity
{

struct GridCell
{
    MicroserviceKind service;
    double load;
    DesignKind design;
    ScenarioResult result;
};

/** Which cells to run and how long to measure each. */
struct GridSpec
{
    /** Services/loads/designs to cross; empty = the paper's full
     *  evaluation set (all services, {30,50,70}% load, all designs). */
    std::vector<MicroserviceKind> services;
    std::vector<double> loads;
    std::vector<DesignKind> designs;

    Cycle warmup_cycles = 400'000;
    Cycle measure_cycles = 1'500'000;

    /** Master seed every cell seed is derived from. */
    std::uint64_t base_seed = 42;
    /** Worker threads; 0 = DPX_THREADS env, else one per core. */
    unsigned threads = 0;
};

struct Grid
{
    /** Cells in services-major, loads, designs-minor order. */
    std::vector<GridCell> cells;
    /** Per-cell timing and parallel-speedup stats of the run. */
    SweepReport sweep;

    const ScenarioResult &at(MicroserviceKind service, double load,
                             DesignKind design) const;
};

/** The evaluation loads of Section VI. */
const std::vector<double> &evaluationLoads();

/** Deterministic seed of one cell: pure function of its identity. */
std::uint64_t gridCellSeed(std::uint64_t base_seed,
                           MicroserviceKind service, double load,
                           DesignKind design);

/** Run every cell of @p spec on the parallel sweep engine. */
Grid runGrid(const GridSpec &spec = {});

} // namespace duplexity

#endif // DPX_CORE_GRID_HH
