#include "core/smt_sweep.hh"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "mem/memory_system.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/parallel_sweep.hh"
#include "sim/rng.hh"

namespace duplexity
{

SmtSweepResult
runSmtSweep(const SmtSweepConfig &config)
{
    DPX_CHECK(config.threads >= 1) << " — need at least one thread";
    DPX_CHECK(static_cast<bool>(config.workload)) << " — sweep needs a workload factory";

    MemSystemConfig mem_cfg = MemSystemConfig::makeDefault();
    DyadMemorySystem mem(mem_cfg);
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::Tournament);
    Btb btb(2048, 4);

    struct Thread
    {
        std::unique_ptr<BatchSource> source;
        std::unique_ptr<ReturnAddressStack> ras;
        Lane lane;
        std::uint64_t ops = 0;
    };

    Rng rng(config.seed);
    std::vector<Thread> threads(config.threads);
    for (std::uint32_t i = 0; i < config.threads; ++i) {
        Thread &t = threads[i];
        t.source = std::make_unique<BatchSource>(
            config.workload(i), rng.fork(i));
        t.ras = std::make_unique<ReturnAddressStack>(16);
        LaneConfig cfg = engine.defaultLaneConfig(config.mode);
        cfg.path = mem.masterPath(); // all threads share the L1s
        cfg.branch = {pred.get(), &btb, t.ras.get()};
        if (config.mode == IssueMode::OutOfOrder) {
            // Partitioned window per thread (how real SMT cores
            // provision the ROB; also the effect ICOUNT fetch
            // policies approximate): a stalled thread cannot block
            // other threads' dispatch at the shared ring head.
            std::uint32_t rob = engine.config().rob_entries;
            cfg.inflight_cap =
                std::max<std::uint32_t>(16, rob / config.threads);
            cfg.use_shared_rob = false;
            cfg.use_shared_lsq = config.threads == 1;
        }
        t.lane.configure(cfg);
    }

    const Cycle m_start = config.warmup_cycles;
    const Cycle m_end = config.warmup_cycles + config.measure_cycles;
    const Frequency freq = mem_cfg.frequency;
    constexpr Cycle never = std::numeric_limits<Cycle>::max();

    std::uint64_t total_ops = 0;
    if (config.threads == 1) {
        // Single-thread sweeps have no fetch-fairness interleaving to
        // respect, so the lane can step in blocks (bit-identical to
        // the most-behind loop below, which would pick the only
        // thread every round).
        Thread &t = threads[0];
        OpBlock block;
        std::uint32_t head = 0;
        while (t.lane.nextFetch() < m_end) {
            if (head == block.size()) {
                block.clear();
                t.source->fillBlock(block, kOpBlockCapacity);
                head = 0;
            }
            BlockOutcome blk = engine.processBlock(
                t.lane, block, head, m_end, m_start, m_end);
            head += blk.processed;
            t.ops += blk.committed_in_window;
            total_ops += blk.committed_in_window;
            if (blk.stopped_remote) {
                t.lane.stallUntil(
                    blk.last.commit_time +
                    freq.microsToCycles(blk.last.stall_us));
            }
        }
        SmtSweepResult result;
        result.total_ipc = static_cast<double>(total_ops) /
                           static_cast<double>(config.measure_cycles);
        result.l1d_miss_rate = mem.masterL1d().stats().missRate();
        result.mispredict_rate = pred->stats().mispredictRate();
        return result;
    }
    auto stepThread = [&](Thread &t) {
        MicroOp op = t.source->next();
        OpOutcome out = engine.processOp(t.lane, op);
        if (out.commit_time >= m_start && out.commit_time < m_end) {
            ++t.ops;
            ++total_ops;
        }
        if (out.remote) {
            t.lane.stallUntil(
                out.commit_time +
                freq.microsToCycles(out.stall_us));
        }
    };
    if (!config.event_driven) {
        // Forced-legacy schedule: full most-behind rescan per op.
        for (;;) {
            // Advance the most-behind thread: min next-fetch time.
            // This approximates an ICOUNT-fair fetch policy.
            Thread *best = nullptr;
            Cycle best_time = never;
            for (Thread &t : threads) {
                if (t.lane.nextFetch() < best_time) {
                    best_time = t.lane.nextFetch();
                    best = &t;
                }
            }
            if (!best || best_time >= m_end)
                break;
            stepThread(*best);
        }
    } else {
        // Streak schedule: one merged scan finds the most-behind
        // thread (index tie-break, like the legacy `<` scan) and the
        // runner-up; the winner then keeps stepping without rescans
        // while it would still win — stepping one thread never moves
        // another thread's next-fetch time, so the cached runner-up
        // stays valid for the whole streak.
        for (;;) {
            std::size_t best_i = 0, second_i = 0;
            Cycle best_time = never, second_time = never;
            for (std::size_t i = 0; i < threads.size(); ++i) {
                Cycle t = threads[i].lane.nextFetch();
                if (t < best_time) {
                    second_time = best_time;
                    second_i = best_i;
                    best_time = t;
                    best_i = i;
                } else if (t < second_time) {
                    second_time = t;
                    second_i = i;
                }
            }
            if (best_time >= m_end)
                break;
            Thread &best = threads[best_i];
            for (;;) {
                stepThread(best);
                Cycle t = best.lane.nextFetch();
                if (t >= m_end)
                    break;
                const bool still_first =
                    t < second_time ||
                    (t == second_time && best_i < second_i);
                if (!still_first)
                    break;
            }
        }
    }

    SmtSweepResult result;
    result.total_ipc = static_cast<double>(total_ops) /
                       static_cast<double>(config.measure_cycles);
    result.l1d_miss_rate = mem.masterL1d().stats().missRate();
    result.mispredict_rate = pred->stats().mispredictRate();
    return result;
}

std::vector<SmtSweepResult>
runSmtSweepMany(const std::vector<SmtSweepConfig> &configs,
                unsigned threads)
{
    std::vector<SmtSweepResult> results(configs.size());
    SweepOptions options;
    options.threads = threads;
    options.label = "smt-sweep";
    parallelSweep(
        configs.size(),
        [&](std::size_t i) { results[i] = runSmtSweep(configs[i]); },
        options);
    return results;
}

} // namespace duplexity
