/**
 * @file
 * The scenario runner: assembles one dyad under one of the seven
 * design points, drives the latency-critical microservice with an
 * open-loop Poisson arrival process at a given load, runs the batch
 * (filler) threads per the design's policy, and measures everything
 * the evaluation section needs:
 *
 *  - master-core issue-bandwidth utilization (Figure 5(a)),
 *  - per-request service-time samples for the BigHouse-style queueing
 *    stage (Figures 5(d)/(e)),
 *  - batch-thread progress for STP (Figure 5(f)),
 *  - remote-operation rates for the NIC study (Figure 6),
 *  - activity counters for the energy model (Figures 5(b)/(c)).
 */

#ifndef DPX_CORE_SCENARIO_HH
#define DPX_CORE_SCENARIO_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/designs.hh"
#include "power/energy_model.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "workload/catalog.hh"

namespace duplexity
{

struct ScenarioConfig
{
    DesignKind design = DesignKind::Duplexity;
    MicroserviceKind service = MicroserviceKind::FlannLL;
    /** Offered load as a fraction of the service's nominal capacity. */
    double load = 0.5;
    /** Override the arrival rate (requests/s); 0 = derive from load. */
    double arrival_rate_rps = 0.0;
    /** Virtual contexts provisioned per dyad (Section IV: 32). */
    std::uint32_t pool_contexts = 32;

    /**
     * Ablation hook: run with a hand-modified design configuration
     * instead of makeDesign(design). `design` still labels the
     * result and selects the area/frequency row unless the override
     * changes area_kind too.
     */
    std::optional<DesignConfig> design_override;

    Cycle warmup_cycles = 400'000;
    Cycle measure_cycles = 4'000'000;
    std::uint64_t seed = 42;

    /**
     * Forced-legacy switch for the event-driven scheduling fast path:
     * when false, the run loop re-scans all four actors per action and
     * the HSMT units use their stepped per-poll schedule
     * (HsmtUnit::setFastForwardEnabled(false)). The two schedules are
     * proven field-identical in tests/cpu/hsmt_fast_forward_test.cc.
     */
    bool hsmt_fast_forward = true;
};

struct ScenarioResult
{
    DesignKind design;
    MicroserviceKind service;
    double load = 0.0;
    double frequency_ghz = 0.0;
    double seconds = 0.0; // measured wall time

    /** Retired-per-cycle / peak-width on the master-core (or its
     *  alternative), borrowed threads included (Figure 5(a)). */
    double utilization = 0.0;

    /** Master-thread request statistics, microseconds. */
    SampleStats service_us;
    SampleStats sojourn_us;
    SampleStats wait_us;
    std::uint64_t requests = 0;

    /** Batch-thread metrics. */
    double batch_stp = 0.0;
    double batch_ops_per_sec = 0.0;

    /** Remote operations per second across the dyad (Figure 6). */
    double remote_ops_per_sec = 0.0;

    /** Energy-model inputs. */
    ActivityCounters activity;

    /** Requests/s offered to the master-thread. */
    double offered_rps = 0.0;

    /** Diagnostics: morph-window coverage and per-unit progress. */
    double filler_window_fraction = 0.0;
    std::uint64_t filler_ops = 0;
    std::uint64_t lender_ops = 0;
    std::uint64_t master_ops = 0;
    std::uint64_t filler_swaps = 0;
};

/** Run one (design, service, load) scenario to completion. */
ScenarioResult runScenario(const ScenarioConfig &config);

/**
 * IPC of one batch thread of @p kind running alone on a lender-style
 * core (stalling in place on remote ops) — the STP denominator.
 * Results are memoized per kind.
 */
double aloneBatchIpc(BatchKind kind);

/**
 * Measured in-situ service time of @p service on the Baseline design
 * (lender core running) — the capacity basis for "load" (Section V:
 * service rate derived from measured IPC). Memoized.
 */
double baselineServiceUs(MicroserviceKind service);

/** Measurement horizon: DPX_MEASURE_CYCLES env var or @p def. */
Cycle measureCyclesFromEnv(Cycle def = 4'000'000);

} // namespace duplexity

#endif // DPX_CORE_SCENARIO_HH
