#include "core/grid.hh"

#include <cmath>

#include "sim/logging.hh"
#include "workload/catalog.hh"

namespace duplexity
{

const std::vector<double> &
evaluationLoads()
{
    static const std::vector<double> values{0.3, 0.5, 0.7};
    return values;
}

std::uint64_t
gridCellSeed(std::uint64_t base_seed, MicroserviceKind service,
             double load, DesignKind design)
{
    return deriveCellSeed(
        base_seed,
        {static_cast<std::uint64_t>(service), coordKey(load),
         static_cast<std::uint64_t>(design)});
}

const ScenarioResult &
Grid::at(MicroserviceKind service, double load,
         DesignKind design) const
{
    for (const GridCell &cell : cells) {
        if (cell.service == service && cell.design == design &&
            std::abs(cell.load - load) < 1e-9) {
            return cell.result;
        }
    }
    fatal("grid cell not found");
}

Grid
runGrid(const GridSpec &spec)
{
    std::vector<MicroserviceKind> services = spec.services;
    if (services.empty())
        services = allMicroservices();
    std::vector<double> loads = spec.loads;
    if (loads.empty())
        loads = evaluationLoads();
    std::vector<DesignKind> designs = spec.designs;
    if (designs.empty())
        designs = allDesigns();

    Grid grid;
    grid.cells.reserve(services.size() * loads.size() *
                       designs.size());
    for (MicroserviceKind service : services)
        for (double load : loads)
            for (DesignKind design : designs) {
                GridCell &cell = grid.cells.emplace_back();
                cell.service = service;
                cell.load = load;
                cell.design = design;
            }

    SweepOptions options;
    options.threads = spec.threads;
    options.label = "grid";
    grid.sweep = parallelSweep(
        grid.cells.size(),
        [&](std::size_t i) {
            GridCell &cell = grid.cells[i];
            ScenarioConfig cfg;
            cfg.design = cell.design;
            cfg.service = cell.service;
            cfg.load = cell.load;
            cfg.warmup_cycles = spec.warmup_cycles;
            cfg.measure_cycles = spec.measure_cycles;
            cfg.seed = gridCellSeed(spec.base_seed, cell.service,
                                    cell.load, cell.design);
            cell.result = runScenario(cfg);
        },
        options);
    return grid;
}

} // namespace duplexity
