#include "core/grid.hh"

#include <algorithm>
#include <cmath>

#include "core/calibration.hh"
#include "sim/logging.hh"
#include "workload/catalog.hh"

namespace duplexity
{

const std::vector<double> &
evaluationLoads()
{
    static const std::vector<double> values{0.3, 0.5, 0.7};
    return values;
}

std::uint64_t
gridCellSeed(std::uint64_t base_seed, MicroserviceKind service,
             double load, DesignKind design)
{
    return deriveCellSeed(
        base_seed,
        {static_cast<std::uint64_t>(service), coordKey(load),
         static_cast<std::uint64_t>(design)});
}

const ScenarioResult &
Grid::at(MicroserviceKind service, double load,
         DesignKind design) const
{
    for (const GridCell &cell : cells) {
        if (cell.service == service && cell.design == design &&
            std::abs(cell.load - load) < 1e-9) {
            return cell.result;
        }
    }
    fatal("grid cell not found");
}

Grid
runGrid(const GridSpec &spec)
{
    std::vector<MicroserviceKind> services = spec.services;
    if (services.empty())
        services = allMicroservices();
    std::vector<double> loads = spec.loads;
    if (loads.empty())
        loads = evaluationLoads();
    std::vector<DesignKind> designs = spec.designs;
    if (designs.empty())
        designs = allDesigns();

    Grid grid;
    grid.cells.reserve(services.size() * loads.size() *
                       designs.size());
    for (MicroserviceKind service : services)
        for (double load : loads)
            for (DesignKind design : designs) {
                GridCell &cell = grid.cells.emplace_back();
                cell.service = service;
                cell.load = load;
                cell.design = design;
            }

    SweepOptions options;
    options.threads = spec.threads;
    options.label = "grid";

    if (memoWideningEnabled()) {
        // Pre-warm pass: the cells share one calibration probe set
        // per distinct service (capacity probe, phase IPCs, batch
        // IPCs — all reached transitively from baselineServiceUs).
        // Warming the distinct probes up front, in parallel, keeps a
        // cold sweep's first cells from serializing behind each
        // other's call_once chains; every probe is fixed-seed, so the
        // pass is invisible in results (cells hit warm memos either
        // way — dedup is the wide memo's job, not ordering's).
        std::vector<MicroserviceKind> distinct;
        for (const GridCell &cell : grid.cells) {
            if (std::find(distinct.begin(), distinct.end(),
                          cell.service) == distinct.end())
                distinct.push_back(cell.service);
        }
        SweepOptions warm_options;
        warm_options.threads = spec.threads;
        warm_options.label = "grid-prewarm";
        parallelSweep(
            distinct.size(),
            [&](std::size_t i) { baselineServiceUs(distinct[i]); },
            warm_options);
    }

    grid.sweep = parallelSweep(
        grid.cells.size(),
        [&](std::size_t i) {
            GridCell &cell = grid.cells[i];
            ScenarioConfig cfg;
            cfg.design = cell.design;
            cfg.service = cell.service;
            cfg.load = cell.load;
            cfg.warmup_cycles = spec.warmup_cycles;
            cfg.measure_cycles = spec.measure_cycles;
            cfg.seed = gridCellSeed(spec.base_seed, cell.service,
                                    cell.load, cell.design);
            cell.result = runScenario(cfg);
        },
        options);
    return grid;
}

} // namespace duplexity
