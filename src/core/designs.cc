#include "core/designs.hh"

#include "sim/logging.hh"

namespace duplexity
{

const char *
toString(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Baseline:
        return "Baseline";
      case DesignKind::Smt:
        return "SMT";
      case DesignKind::SmtPlus:
        return "SMT+";
      case DesignKind::MorphCore:
        return "MorphCore";
      case DesignKind::MorphCorePlus:
        return "MorphCore+";
      case DesignKind::DuplexityRepl:
        return "Duplexity+repl";
      case DesignKind::Duplexity:
        return "Duplexity";
    }
    return "?";
}

std::vector<DesignKind>
allDesigns()
{
    return {DesignKind::Baseline,      DesignKind::Smt,
            DesignKind::SmtPlus,       DesignKind::MorphCore,
            DesignKind::MorphCorePlus, DesignKind::DuplexityRepl,
            DesignKind::Duplexity};
}

DesignConfig
makeDesign(DesignKind kind)
{
    DesignConfig cfg;
    cfg.kind = kind;
    cfg.name = toString(kind);

    switch (kind) {
      case DesignKind::Baseline:
        cfg.area_kind = CoreKind::BaselineOoO;
        break;

      case DesignKind::Smt:
        cfg.area_kind = CoreKind::Smt2;
        cfg.has_corunner = true;
        break;

      case DesignKind::SmtPlus:
        cfg.area_kind = CoreKind::Smt2;
        cfg.has_corunner = true;
        cfg.corunner_prioritized = true;
        cfg.corunner_storage_cap = 0.30;
        break;

      case DesignKind::MorphCore:
        cfg.area_kind = CoreKind::MorphCore;
        cfg.morphs = true;
        cfg.hsmt_borrowing = false;
        cfg.private_fillers = 8;
        cfg.filler_path = FillerPath::Local;
        // Microcode register swap through the D-cache on each mode
        // transition.
        cfg.resume_penalty = 250;
        cfg.morph_in_delay = 60;
        break;

      case DesignKind::MorphCorePlus:
        cfg.area_kind = CoreKind::MorphCore;
        cfg.morphs = true;
        cfg.hsmt_borrowing = true;
        cfg.filler_path = FillerPath::Local;
        cfg.resume_penalty = 250;
        cfg.morph_in_delay = 60;
        break;

      case DesignKind::DuplexityRepl:
        cfg.area_kind = CoreKind::MasterCoreReplicated;
        cfg.morphs = true;
        cfg.hsmt_borrowing = true;
        cfg.filler_path = FillerPath::Replicated;
        cfg.separate_filler_state = true;
        cfg.resume_penalty = 50;
        cfg.morph_in_delay = 30;
        break;

      case DesignKind::Duplexity:
        cfg.area_kind = CoreKind::MasterCore;
        cfg.morphs = true;
        cfg.hsmt_borrowing = true;
        cfg.filler_path = FillerPath::Remote;
        cfg.separate_filler_state = true;
        cfg.resume_penalty = 50;
        cfg.morph_in_delay = 30;
        break;
    }
    return cfg;
}

} // namespace duplexity
