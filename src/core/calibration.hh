/**
 * @file
 * Service-time calibration.
 *
 * The paper defines its workloads by wall-clock phase durations
 * measured on real hardware (e.g. FLANN-HA's 10 µs lookup, RSC's
 * 3 µs cuckoo probe). Our synthetic compute phases are defined in
 * micro-ops, so the mapping from µs to micro-ops depends on the IPC
 * the phase actually achieves on the baseline core. This module
 * measures that IPC once per phase character and rescales the
 * catalog's instruction counts so that nominal phase durations hold
 * on the baseline — exactly the role real-hardware measurement plays
 * in the paper's methodology (Section V).
 */

#ifndef DPX_CORE_CALIBRATION_HH
#define DPX_CORE_CALIBRATION_HH

#include "cpu/core_engine.hh"
#include "workload/catalog.hh"

namespace duplexity
{

/**
 * IPC of @p params compute (no µs stalls) running alone on one core:
 * OoO for master-thread phases, InO (full width) for batch threads.
 */
double measureComputeIpc(const WorkloadParams &params, IssueMode mode);

/** Microservice spec with phase instruction counts rescaled so the
 *  nominal µs durations hold at the measured baseline IPC. Cached. */
MicroserviceSpec calibratedMicroservice(MicroserviceKind kind);

/** Batch spec with segment lengths rescaled likewise (InO basis). */
BatchSpec calibratedBatch(BatchKind kind, ThreadId uid);

/** Calibrated FLANN-X-Y variant for the Figure 1(c) sweep (OoO
 *  basis — the sweep runs on the 4-wide OoO core). */
BatchSpec calibratedFlannXY(double compute_us, double stall_us,
                            ThreadId uid);

} // namespace duplexity

#endif // DPX_CORE_CALIBRATION_HH
