/**
 * @file
 * Service-time calibration.
 *
 * The paper defines its workloads by wall-clock phase durations
 * measured on real hardware (e.g. FLANN-HA's 10 µs lookup, RSC's
 * 3 µs cuckoo probe). Our synthetic compute phases are defined in
 * micro-ops, so the mapping from µs to micro-ops depends on the IPC
 * the phase actually achieves on the baseline core. This module
 * measures that IPC once per phase character and rescales the
 * catalog's instruction counts so that nominal phase durations hold
 * on the baseline — exactly the role real-hardware measurement plays
 * in the paper's methodology (Section V).
 */

#ifndef DPX_CORE_CALIBRATION_HH
#define DPX_CORE_CALIBRATION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/core_engine.hh"
#include "sim/distributions.hh"
#include "workload/catalog.hh"

namespace duplexity
{

/**
 * IPC of @p params compute (no µs stalls) running alone on one core:
 * OoO for master-thread phases, InO (full width) for batch threads.
 */
double measureComputeIpc(const WorkloadParams &params, IssueMode mode);

/**
 * Design-relevant fingerprint of one calibration probe: the exact
 * word sequence of every parameter the probe's result depends on.
 * The unified probe memo hashes the words for lookup but compares the
 * full sequence on a bucket hit, so a hash collision between distinct
 * probes chains a second entry instead of aliasing (the PR-2
 * collision-safety rule). Probes that agree on every design-relevant
 * word — e.g. two grid cells re-deriving the same baseline capacity
 * under different queueing axes — dedup to one measurement.
 */
class ProbeKey
{
  public:
    void mix(std::uint64_t v) { words_.push_back(v); }
    /** Raw-bit double encoding: exact (never truncated) equality. */
    void mixDouble(double v);

    const std::vector<std::uint64_t> &words() const { return words_; }

    /** FNV-1a over the word sequence (lookup hash, not identity). */
    std::uint64_t hash() const;

  private:
    std::vector<std::uint64_t> words_;
};

/** Mix the behavioural (IPC-relevant) fields of @p p into @p key —
 *  address bases are deliberately excluded, as in the PR-2 memo. */
void fingerprintWorkload(ProbeKey &key, const WorkloadParams &p);

/** Mix @p dist's shape into @p key (type tag + parameters for the
 *  known leaf shapes; opaque compositions mix the object identity so
 *  they can never falsely dedup). nullptr mixes a sentinel. */
void fingerprintDistribution(ProbeKey &key, const Distribution *dist);

/** Mix every design-relevant field of a microservice spec. */
void fingerprintMicroservice(ProbeKey &key,
                             const MicroserviceSpec &spec);

/** Mix every design-relevant field of a batch spec. */
void fingerprintBatch(ProbeKey &key, const BatchSpec &spec);

/**
 * The unified probe memo: return the memoized value for @p key or run
 * @p compute exactly once (per-entry once_flag: distinct probes
 * calibrate concurrently, only same-key racers wait). All wide-keyed
 * calibration memos — compute-IPC, baseline service time, alone-run
 * batch IPC — flow through here and share the stats counters.
 */
double memoizedProbe(const ProbeKey &key,
                     const std::function<double()> &compute);

/** Counters over every wide-keyed probe memo (bench telemetry). */
struct CalibrationMemoStats
{
    /** Measurements actually run (memo misses). */
    std::uint64_t probes = 0;
    /** Lookups served without re-measuring (wide-key dedup hits). */
    std::uint64_t wide_hits = 0;
};
CalibrationMemoStats calibrationMemoStats();

/**
 * Forced-legacy switch for the wide probe memo (default on). When
 * disabled, measureComputeIpc / baselineServiceUs / aloneBatchIpc
 * fall back to their narrow per-enum/per-character memos computed
 * under their own locks — the pre-widening protocol — and the wide
 * stores are bypassed. Proven value-identical by
 * tests/core/calibration_memo_test.cc.
 */
void setMemoWideningEnabled(bool enabled);
bool memoWideningEnabled();

/** Microservice spec with phase instruction counts rescaled so the
 *  nominal µs durations hold at the measured baseline IPC. Cached. */
MicroserviceSpec calibratedMicroservice(MicroserviceKind kind);

/** Batch spec with segment lengths rescaled likewise (InO basis). */
BatchSpec calibratedBatch(BatchKind kind, ThreadId uid);

/** Calibrated FLANN-X-Y variant for the Figure 1(c) sweep (OoO
 *  basis — the sweep runs on the 4-wide OoO core). */
BatchSpec calibratedFlannXY(double compute_us, double stall_us,
                            ThreadId uid);

} // namespace duplexity

#endif // DPX_CORE_CALIBRATION_HH
