#include "core/calibration.hh"

#include <map>
#include <memory>
#include <mutex>

#include "branch/predictor.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"

namespace duplexity
{

namespace
{

/** Nominal IPC assumptions baked into the uncalibrated catalog. */
constexpr double master_nominal_ipc = 2.0;
constexpr double batch_nominal_ipc = 1.0;

/** Key for the IPC memo: character fingerprint + issue mode. */
std::uint64_t
characterKey(const WorkloadParams &p, IssueMode mode)
{
    // The address bases differ per thread but do not change IPC;
    // hash the behavioural fields only.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
    };
    mix(p.data_ws_bytes);
    mix(static_cast<std::uint64_t>(p.spatial_locality * 1e6));
    mix(static_cast<std::uint64_t>(p.hot_prob * 1e6));
    mix(p.hot_bytes);
    mix(p.code_bytes);
    mix(p.hot_code_bytes);
    mix(p.static_branches);
    mix(static_cast<std::uint64_t>(p.branch_taken_bias * 1e6));
    mix(static_cast<std::uint64_t>(p.periodic_branch_frac * 1e6));
    mix(static_cast<std::uint64_t>(p.dep_prob * 1e6));
    mix(static_cast<std::uint64_t>(p.mean_dep_dist * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.load * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.store * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.branch * 1e6));
    mix(static_cast<std::uint64_t>(mode));
    return h;
}

} // namespace

double
measureComputeIpc(const WorkloadParams &params, IssueMode mode)
{
    // Parallel sweep cells calibrate concurrently. The measurement
    // is self-contained and fixed-seed, so computing under the lock
    // yields the same memo value for every thread count.
    static std::mutex mutex;
    static std::map<std::uint64_t, double> memo;
    const std::uint64_t key = characterKey(params, mode);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    MemSystemConfig mem_cfg = MemSystemConfig::makeDefault();
    DyadMemorySystem mem(mem_cfg);
    CoreEngine engine{CoreEngineConfig{}};
    auto pred =
        makePredictor(mode == IssueMode::OutOfOrder
                          ? PredictorConfig::Kind::Tournament
                          : PredictorConfig::Kind::GshareSmall);
    Btb btb(2048, 4);
    ReturnAddressStack ras(32);

    BatchSpec spec;
    spec.name = "calibration";
    spec.character = params;
    spec.segment_instrs = makeDeterministic(1e9);
    spec.stall_us = nullptr;

    Rng rng(0xca11b8a7eull);
    BatchSource source(spec, rng.fork(1));

    Lane lane;
    LaneConfig cfg = engine.defaultLaneConfig(mode);
    cfg.path = mode == IssueMode::OutOfOrder ? mem.masterPath()
                                             : mem.lenderPath();
    cfg.branch = {pred.get(), &btb, &ras};
    lane.configure(cfg);

    const Cycle warmup = 150'000;
    const Cycle horizon = 750'000;
    std::uint64_t ops = 0;
    while (lane.nextFetch() < horizon) {
        OpOutcome out = engine.processOp(lane, source.next());
        if (out.commit_time >= warmup && out.commit_time < horizon)
            ++ops;
    }
    double ipc = static_cast<double>(ops) /
                 static_cast<double>(horizon - warmup);
    memo[key] = ipc;
    return ipc;
}

MicroserviceSpec
calibratedMicroservice(MicroserviceKind kind)
{
    // Lock order: this mutex, then measureComputeIpc()'s. Nothing
    // takes them in the reverse order.
    static std::mutex mutex;
    static std::map<MicroserviceKind, MicroserviceSpec> memo;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(kind);
    if (it != memo.end())
        return it->second;

    MicroserviceSpec spec = makeMicroservice(kind);
    for (PhaseSpec &phase : spec.phases) {
        if (phase.kind != PhaseSpec::Kind::Compute)
            continue;
        const WorkloadParams &character =
            phase.character ? *phase.character : spec.character;
        double ipc =
            measureComputeIpc(character, IssueMode::OutOfOrder);
        phase.instr_count = makeScaled(phase.instr_count,
                                       ipc / master_nominal_ipc);
    }
    memo[kind] = spec;
    return spec;
}

BatchSpec
calibratedBatch(BatchKind kind, ThreadId uid)
{
    BatchSpec spec = makeBatch(kind, uid);
    double ipc =
        measureComputeIpc(spec.character, IssueMode::InOrder);
    spec.segment_instrs =
        makeScaled(spec.segment_instrs, ipc / batch_nominal_ipc);
    return spec;
}

BatchSpec
calibratedFlannXY(double compute_us, double stall_us, ThreadId uid)
{
    BatchSpec spec = makeFlannXY(compute_us, stall_us, uid);
    double ipc =
        measureComputeIpc(spec.character, IssueMode::OutOfOrder);
    spec.segment_instrs =
        makeScaled(spec.segment_instrs, ipc / master_nominal_ipc);
    return spec;
}

} // namespace duplexity
