#include "core/calibration.hh"

#include <array>
#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "branch/predictor.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"

// dpx-lint: allow-file(DPX003): the calibration memos are the one
// sanctioned locking site outside the thread pool. The guards protect
// memo lookup/insert only, never a measurement; every memoized value
// is fixed-seed and first-toucher independent (see measureComputeIpc).

// dpx-lint: allow-file(DPX105): the mutable globals here are exactly
// the DPX003-waived memo caches plus their probe/widening telemetry
// counters. Memo content is fixed-seed deterministic regardless of
// fill order, and the atomics only feed bench reporting — no
// simulated outcome reads them.

namespace duplexity
{

namespace
{

/** Nominal IPC assumptions baked into the uncalibrated catalog. */
constexpr double master_nominal_ipc = 2.0;
constexpr double batch_nominal_ipc = 1.0;

/** Key for the IPC memo: character fingerprint + issue mode. */
std::uint64_t
characterKey(const WorkloadParams &p, IssueMode mode)
{
    // The address bases differ per thread but do not change IPC;
    // hash the behavioural fields only.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
    };
    mix(p.data_ws_bytes);
    mix(static_cast<std::uint64_t>(p.spatial_locality * 1e6));
    mix(static_cast<std::uint64_t>(p.hot_prob * 1e6));
    mix(p.hot_bytes);
    mix(p.code_bytes);
    mix(p.static_branches);
    mix(static_cast<std::uint64_t>(p.near_jump_prob * 1e6));
    mix(p.near_jump_range);
    mix(static_cast<std::uint64_t>(p.far_to_hot_prob * 1e6));
    mix(p.hot_code_bytes);
    mix(static_cast<std::uint64_t>(p.branch_taken_bias * 1e6));
    mix(static_cast<std::uint64_t>(p.periodic_branch_frac * 1e6));
    mix(static_cast<std::uint64_t>(p.dep_prob * 1e6));
    mix(static_cast<std::uint64_t>(p.mean_dep_dist * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.load * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.store * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.branch * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.call * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.int_mul * 1e6));
    mix(static_cast<std::uint64_t>(p.mix.fp * 1e6));
    mix(static_cast<std::uint64_t>(mode));
    return h;
}

/**
 * Exact equality over every field characterKey hashes. The hash is
 * lossy (doubles truncated to 1e-6); a collision between distinct
 * characters must land in different memo entries, not alias.
 */
bool
sameCharacter(const WorkloadParams &a, const WorkloadParams &b)
{
    return a.data_ws_bytes == b.data_ws_bytes &&
           a.spatial_locality == b.spatial_locality &&
           a.hot_prob == b.hot_prob && a.hot_bytes == b.hot_bytes &&
           a.code_bytes == b.code_bytes &&
           a.static_branches == b.static_branches &&
           a.near_jump_prob == b.near_jump_prob &&
           a.near_jump_range == b.near_jump_range &&
           a.far_to_hot_prob == b.far_to_hot_prob &&
           a.hot_code_bytes == b.hot_code_bytes &&
           a.branch_taken_bias == b.branch_taken_bias &&
           a.periodic_branch_frac == b.periodic_branch_frac &&
           a.dep_prob == b.dep_prob &&
           a.mean_dep_dist == b.mean_dep_dist &&
           a.mix.load == b.mix.load && a.mix.store == b.mix.store &&
           a.mix.branch == b.mix.branch &&
           a.mix.call == b.mix.call &&
           a.mix.int_mul == b.mix.int_mul && a.mix.fp == b.mix.fp;
}

/** One memoized calibration; measured at most once via @ref once. */
struct CalibEntry
{
    WorkloadParams params;
    IssueMode mode;
    std::once_flag once;
    double ipc = 0.0;
};

/** The fixed-seed, self-contained IPC measurement (no caching). */
double
measureComputeIpcUncached(const WorkloadParams &params, IssueMode mode)
{
    MemSystemConfig mem_cfg = MemSystemConfig::makeDefault();
    DyadMemorySystem mem(mem_cfg);
    CoreEngine engine{CoreEngineConfig{}};
    auto pred =
        makePredictor(mode == IssueMode::OutOfOrder
                          ? PredictorConfig::Kind::Tournament
                          : PredictorConfig::Kind::GshareSmall);
    Btb btb(2048, 4);
    ReturnAddressStack ras(32);

    BatchSpec spec;
    spec.name = "calibration";
    spec.character = params;
    spec.segment_instrs = makeDeterministic(1e9);
    spec.stall_us = nullptr;

    Rng rng(0xca11b8a7eull);
    BatchSource source(spec, rng.fork(1));

    Lane lane;
    LaneConfig cfg = engine.defaultLaneConfig(mode);
    cfg.path = mode == IssueMode::OutOfOrder ? mem.masterPath()
                                             : mem.lenderPath();
    cfg.branch = {pred.get(), &btb, &ras};
    lane.configure(cfg);

    const Cycle warmup = 150'000;
    const Cycle horizon = 750'000;
    std::uint64_t ops = 0;
    // Block-batched stepping: pre-draw ops (the source's stream does
    // not depend on pipeline outcomes, and the source is local, so
    // over-drawing at the horizon is invisible) and let the engine
    // amortize per-op dispatch. Bit-identical to a processOp loop.
    // The legacy loop ignored remote ops here (calibration batches
    // carry no stall distribution), so stopped_remote just resumes.
    OpBlock block;
    std::uint32_t head = 0;
    while (lane.nextFetch() < horizon) {
        if (head == block.size()) {
            block.clear();
            source.fillBlock(block, kOpBlockCapacity);
            head = 0;
        }
        BlockOutcome blk =
            engine.processBlock(lane, block, head, horizon, warmup,
                                horizon);
        head += blk.processed;
        ops += blk.committed_in_window;
    }
    return static_cast<double>(ops) /
           static_cast<double>(horizon - warmup);
}

/** One wide-memo entry: full key words + the once-computed value. */
struct ProbeEntry
{
    std::vector<std::uint64_t> words;
    std::once_flag once;
    double value = 0.0;
};

std::atomic<bool> g_memo_widening{true};
std::atomic<std::uint64_t> g_probe_count{0};
std::atomic<std::uint64_t> g_wide_hits{0};

} // namespace

void
ProbeKey::mixDouble(double v)
{
    mix(std::bit_cast<std::uint64_t>(v));
}

std::uint64_t
ProbeKey::hash() const
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t w : words_)
        h = (h ^ w) * 1099511628211ull;
    return h;
}

void
fingerprintWorkload(ProbeKey &key, const WorkloadParams &p)
{
    key.mix(p.data_ws_bytes);
    key.mixDouble(p.spatial_locality);
    key.mixDouble(p.hot_prob);
    key.mix(p.hot_bytes);
    key.mix(p.code_bytes);
    key.mix(p.static_branches);
    key.mixDouble(p.near_jump_prob);
    key.mix(p.near_jump_range);
    key.mixDouble(p.far_to_hot_prob);
    key.mix(p.hot_code_bytes);
    key.mixDouble(p.branch_taken_bias);
    key.mixDouble(p.periodic_branch_frac);
    key.mixDouble(p.dep_prob);
    key.mixDouble(p.mean_dep_dist);
    key.mixDouble(p.mix.load);
    key.mixDouble(p.mix.store);
    key.mixDouble(p.mix.branch);
    key.mixDouble(p.mix.call);
    key.mixDouble(p.mix.int_mul);
    key.mixDouble(p.mix.fp);
}

void
fingerprintDistribution(ProbeKey &key, const Distribution *dist)
{
    if (dist == nullptr) {
        key.mix(0); // absent (e.g. a stall-free batch)
        return;
    }
    if (auto *d = dynamic_cast<const DeterministicDist *>(dist)) {
        key.mix(1);
        key.mixDouble(d->mean());
        return;
    }
    if (auto *d = dynamic_cast<const ExponentialDist *>(dist)) {
        key.mix(2);
        key.mixDouble(d->mean());
        return;
    }
    if (auto *d = dynamic_cast<const UniformDist *>(dist)) {
        key.mix(3);
        key.mixDouble(d->lo());
        key.mixDouble(d->hi());
        return;
    }
    if (auto *d = dynamic_cast<const LogNormalDist *>(dist)) {
        key.mix(4);
        key.mixDouble(d->mu());
        key.mixDouble(d->sigma());
        key.mixDouble(d->mean());
        return;
    }
    if (auto *d = dynamic_cast<const BoundedParetoDist *>(dist)) {
        key.mix(5);
        key.mixDouble(d->lo());
        key.mixDouble(d->hi());
        key.mixDouble(d->alpha());
        return;
    }
    if (auto *d = dynamic_cast<const EmpiricalDist *>(dist)) {
        key.mix(6);
        key.mix(d->size());
        for (double v : d->values())
            key.mixDouble(v);
        return;
    }
    if (auto *d = dynamic_cast<const ScaledDist *>(dist)) {
        key.mix(7);
        key.mixDouble(d->factor());
        fingerprintDistribution(key, d->base().get());
        return;
    }
    // Opaque composition (mixture/sum/...): mix the object identity
    // so two distinct opaque distributions can never falsely dedup.
    key.mix(8);
    key.mix(reinterpret_cast<std::uintptr_t>(dist));
}

void
fingerprintMicroservice(ProbeKey &key, const MicroserviceSpec &spec)
{
    fingerprintWorkload(key, spec.character);
    key.mix(spec.phases.size());
    for (const PhaseSpec &phase : spec.phases) {
        key.mix(static_cast<std::uint64_t>(phase.kind));
        fingerprintDistribution(key, phase.instr_count.get());
        fingerprintDistribution(key, phase.stall_us.get());
        key.mix(phase.character.has_value());
        if (phase.character)
            fingerprintWorkload(key, *phase.character);
    }
}

void
fingerprintBatch(ProbeKey &key, const BatchSpec &spec)
{
    fingerprintWorkload(key, spec.character);
    fingerprintDistribution(key, spec.segment_instrs.get());
    fingerprintDistribution(key, spec.stall_us.get());
}

double
memoizedProbe(const ProbeKey &key,
              const std::function<double()> &compute)
{
    // Same protocol as the PR-2 compute-IPC memo: the mutex guards
    // entry lookup/insert only, never a measurement; entries are
    // keyed by hash but matched by full word-sequence equality, so a
    // hash collision chains a second entry instead of aliasing.
    // Memo guard for fixed-seed, self-contained probes — covered by
    // the file-wide DPX003 waiver above.
    static std::mutex mutex;
    static std::map<std::uint64_t,
                    std::vector<std::unique_ptr<ProbeEntry>>>
        memo;

    ProbeEntry *entry = nullptr;
    bool inserted = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto &bucket = memo[key.hash()];
        for (const auto &e : bucket) {
            if (e->words == key.words()) {
                entry = e.get();
                break;
            }
        }
        if (!entry) {
            auto fresh = std::make_unique<ProbeEntry>();
            fresh->words = key.words();
            entry = fresh.get();
            bucket.push_back(std::move(fresh));
            inserted = true;
        }
    }
    if (!inserted)
        g_wide_hits.fetch_add(1, std::memory_order_relaxed);
    std::call_once(entry->once, [&] {
        g_probe_count.fetch_add(1, std::memory_order_relaxed);
        entry->value = compute();
    });
    return entry->value;
}

CalibrationMemoStats
calibrationMemoStats()
{
    CalibrationMemoStats stats;
    stats.probes = g_probe_count.load(std::memory_order_relaxed);
    stats.wide_hits = g_wide_hits.load(std::memory_order_relaxed);
    return stats;
}

void
setMemoWideningEnabled(bool enabled)
{
    g_memo_widening.store(enabled, std::memory_order_relaxed);
}

bool
memoWideningEnabled()
{
    return g_memo_widening.load(std::memory_order_relaxed);
}

double
measureComputeIpc(const WorkloadParams &params, IssueMode mode)
{
    if (memoWideningEnabled()) {
        // Unified wide memo: raw-bit fingerprint (strictly stronger
        // equality than the truncated legacy hash, so it can only
        // split — never alias — legacy entries) + shared counters.
        ProbeKey key;
        key.mix(0x4950c0de); // probe tag: compute IPC
        fingerprintWorkload(key, params);
        key.mix(static_cast<std::uint64_t>(mode));
        return memoizedProbe(key, [&] {
            return measureComputeIpcUncached(params, mode);
        });
    }
    // Memo protocol: the mutex only guards the entry lookup/insert —
    // never the measurement. Each entry carries a once_flag, so
    // distinct characters calibrate fully in parallel and only
    // threads racing on the *same* key wait (inside call_once, which
    // also publishes `ipc` to them). Entries are keyed by hash but
    // matched by full field equality, so a truncated-double hash
    // collision chains a second entry instead of aliasing.
    // Memo guard for a fixed-seed, self-contained measurement —
    // covered by the file-wide DPX003 waiver above.
    static std::mutex mutex;
    static std::map<std::uint64_t,
                    std::vector<std::unique_ptr<CalibEntry>>>
        memo;

    const std::uint64_t key = characterKey(params, mode);
    CalibEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto &bucket = memo[key];
        for (const auto &e : bucket) {
            if (e->mode == mode && sameCharacter(e->params, params)) {
                entry = e.get();
                break;
            }
        }
        if (!entry) {
            auto fresh = std::make_unique<CalibEntry>();
            fresh->params = params;
            fresh->mode = mode;
            entry = fresh.get();
            bucket.push_back(std::move(fresh));
        }
    }
    std::call_once(entry->once, [&] {
        entry->ipc = measureComputeIpcUncached(params, mode);
    });
    return entry->ipc;
}

MicroserviceSpec
calibratedMicroservice(MicroserviceKind kind)
{
    // Same protocol as measureComputeIpc: resolve the entry under a
    // short-lived lock, build the spec (which calibrates every
    // compute phase) inside the entry's call_once.
    struct SpecEntry
    {
        std::once_flag once;
        MicroserviceSpec spec;
    };
    // Memo guard (see measureComputeIpc); file-wide DPX003 waiver.
    static std::mutex mutex;
    static std::map<MicroserviceKind, std::unique_ptr<SpecEntry>> memo;

    SpecEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto &slot = memo[kind];
        if (!slot)
            slot = std::make_unique<SpecEntry>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        MicroserviceSpec spec = makeMicroservice(kind);
        for (PhaseSpec &phase : spec.phases) {
            if (phase.kind != PhaseSpec::Kind::Compute)
                continue;
            const WorkloadParams &character =
                phase.character ? *phase.character : spec.character;
            double ipc =
                measureComputeIpc(character, IssueMode::OutOfOrder);
            phase.instr_count = makeScaled(phase.instr_count,
                                           ipc / master_nominal_ipc);
        }
        entry->spec = std::move(spec);
    });
    return entry->spec;
}

BatchSpec
calibratedBatch(BatchKind kind, ThreadId uid)
{
    BatchSpec spec = makeBatch(kind, uid);
    double ipc =
        measureComputeIpc(spec.character, IssueMode::InOrder);
    spec.segment_instrs =
        makeScaled(spec.segment_instrs, ipc / batch_nominal_ipc);
    return spec;
}

BatchSpec
calibratedFlannXY(double compute_us, double stall_us, ThreadId uid)
{
    BatchSpec spec = makeFlannXY(compute_us, stall_us, uid);
    double ipc =
        measureComputeIpc(spec.character, IssueMode::OutOfOrder);
    spec.segment_instrs =
        makeScaled(spec.segment_instrs, ipc / master_nominal_ipc);
    return spec;
}

} // namespace duplexity
