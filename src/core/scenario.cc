#include "core/scenario.hh"

#include <array>
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cpu/core_engine.hh"
#include "cpu/hsmt.hh"
#include "cpu/virtual_context.hh"
#include "mem/memory_system.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "core/calibration.hh"
#include "workload/microservice.hh"

// dpx-lint: allow-file(DPX105): the only mutable statics here are the
// DPX003-waived calibration-probe memos (mutex + map pairs). Their
// content is fixed-seed deterministic for any first-toucher, so they
// cannot leak state between runs.

namespace duplexity
{

namespace
{

constexpr Cycle never = std::numeric_limits<Cycle>::max();
/** Windows shorter than this are not worth a mode morph. */
constexpr Cycle min_morph_window = 100;

/** One batch thread: its program and its schedulable context. */
struct BatchThread
{
    BatchKind kind;
    std::unique_ptr<BatchSource> source;
    std::unique_ptr<VirtualContext> ctx;
    std::uint64_t window_ops = 0;
    std::uint64_t window_remote = 0;
};

/**
 * Complete state of one simulated dyad scenario. Owns the memory
 * system, both engines, all branch hardware, the context pools, and
 * the master-thread request state machine.
 */
class ScenarioEngine
{
  public:
    ScenarioEngine(const ScenarioConfig &config);

    ScenarioResult run();

    /** Batch commit from one of the HSMT units. @p on_master_core is
     *  true for the filler unit (counts into Fig 5(a) utilization). */
    void onBatchCommit(const VirtualContext &ctx, const OpOutcome &out,
                       bool on_master_core);

  private:
    enum class MState
    {
        Processing,
        Blocked,
    };
    enum class BlockKind
    {
        Stall,
        Idle,
    };

    void buildBatchThreads();
    void buildUnits();
    void generateArrivalsUpTo(Cycle t);
    void beginRequest(Cycle begin);
    void completeRequest(Cycle completion);
    void maybeOpenWindow(Cycle from, Cycle to);
    void closeWindow(Cycle at);

    Cycle masterNextTime() const;
    Cycle corunnerNextTime() const;
    void advanceMaster();
    void advanceCorunner();

    bool inWindow(Cycle t) const
    {
        return t >= m_start_ && t < m_end_;
    }
    double usOf(Cycle cycles) const
    {
        return toMicros(frequency_.cyclesToSeconds(cycles));
    }

    void snapshotActivity();
    void finishActivity(ScenarioResult &result);

    ScenarioConfig cfg_;
    DesignConfig design_;
    Frequency frequency_;
    Rng rng_;

    MemSystemConfig mem_cfg_;
    std::unique_ptr<DyadMemorySystem> mem_;
    std::unique_ptr<CoreEngine> master_engine_;
    std::unique_ptr<CoreEngine> lender_engine_;

    // Branch hardware.
    std::unique_ptr<BranchPredictor> master_pred_;
    std::unique_ptr<BranchPredictor> filler_pred_;
    std::unique_ptr<BranchPredictor> lender_pred_;
    std::unique_ptr<Btb> master_btb_;
    std::unique_ptr<Btb> filler_btb_;
    std::unique_ptr<Btb> lender_btb_;
    std::unique_ptr<ReturnAddressStack> master_ras_;
    std::vector<std::unique_ptr<ReturnAddressStack>> filler_ras_;
    std::vector<std::unique_ptr<ReturnAddressStack>> lender_ras_;

    // Batch world. Thread ids are handed out densely from 1, so the
    // id->batch index map is a plain vector (slot 0 unused).
    std::vector<BatchThread> batch_;
    std::vector<std::size_t> ctx_index_;
    VirtualContextPool shared_pool_;
    VirtualContextPool private_pool_;
    std::unique_ptr<HsmtUnit> lender_unit_;
    std::unique_ptr<HsmtUnit> filler_unit_;

    // Master thread.
    std::unique_ptr<MicroserviceSource> master_source_;
    Lane master_lane_;
    MState mstate_ = MState::Blocked;
    BlockKind block_kind_ = BlockKind::Idle;
    Cycle blocked_until_ = 0;
    bool window_open_ = false;
    Cycle window_open_start_ = 0;
    Cycle window_cycles_ = 0;
    Cycle mean_interarrival_cycles_ = 0;
    Cycle next_arrival_ = 0;
    std::deque<Cycle> arrivals_;
    Cycle current_arrival_ = 0;
    Cycle current_begin_ = 0;
    bool request_in_flight_ = false;

    // SMT co-runner.
    std::size_t corunner_index_ = 0;
    bool has_corunner_ = false;
    Lane corunner_lane_;
    std::unique_ptr<SlotCalendar> co_fetch_;
    std::unique_ptr<SlotCalendar> co_issue_;
    std::unique_ptr<SlotCalendar> co_commit_;

    // Measurement.
    Cycle m_start_ = 0;
    Cycle m_end_ = 0;
    ScenarioResult result_;
    std::uint64_t master_core_ops_ = 0; // master + co + fillers
    std::uint64_t master_ops_ = 0;
    std::uint64_t ino_ops_ = 0;
    std::uint64_t remote_ops_ = 0;
    std::uint64_t batch_ops_ = 0;

    struct CacheSnapshot
    {
        std::uint64_t l1 = 0;
        std::uint64_t l0 = 0;
        std::uint64_t llc = 0;
        std::uint64_t dram = 0;
        std::uint64_t link = 0;
    } snap_;

    /** Adapter routing unit commits back with core attribution. */
    struct UnitSink : CommitSink
    {
        ScenarioEngine *engine = nullptr;
        bool on_master_core = false;

        void
        onCommit(const VirtualContext &ctx,
                 const OpOutcome &out) override
        {
            engine->onBatchCommit(ctx, out, on_master_core);
        }
    };

    UnitSink filler_sink_;
    UnitSink lender_sink_;
};

ScenarioEngine::ScenarioEngine(const ScenarioConfig &config)
    : cfg_(config),
      design_(config.design_override ? *config.design_override
                                     : makeDesign(config.design)),
      frequency_(coreFrequencyGhz(design_.area_kind) * 1e9),
      rng_(config.seed)
{
    mem_cfg_ = MemSystemConfig::makeDefault();
    mem_cfg_.frequency = frequency_;
    mem_ = std::make_unique<DyadMemorySystem>(mem_cfg_);

    CoreEngineConfig engine_cfg; // Table I defaults
    master_engine_ = std::make_unique<CoreEngine>(engine_cfg);
    lender_engine_ = std::make_unique<CoreEngine>(engine_cfg);

    master_pred_ = makePredictor(PredictorConfig::Kind::Tournament);
    filler_pred_ = makePredictor(PredictorConfig::Kind::GshareSmall);
    lender_pred_ = makePredictor(PredictorConfig::Kind::GshareSmall);
    master_btb_ = std::make_unique<Btb>(2048, 4);
    filler_btb_ = std::make_unique<Btb>(512, 4);
    lender_btb_ = std::make_unique<Btb>(2048, 4);
    master_ras_ = std::make_unique<ReturnAddressStack>(32);

    // Master thread.
    MicroserviceSpec spec = calibratedMicroservice(cfg_.service);
    master_source_ = std::make_unique<MicroserviceSource>(
        spec, rng_.fork(1));
    LaneConfig mcfg =
        master_engine_->defaultLaneConfig(IssueMode::OutOfOrder);
    mcfg.path = mem_->masterPath();
    mcfg.branch = {master_pred_.get(), master_btb_.get(),
                   master_ras_.get()};
    master_lane_.configure(mcfg);

    // Arrival process. Capacity is the *measured* baseline service
    // rate (the paper measures IPC in gem5 and derives the M/G/1
    // service rate from it, Section V), so "70% load" loads the
    // Baseline design to 70% and every design sees the same QPS.
    double rate = cfg_.arrival_rate_rps;
    if (rate <= 0.0) {
        rate = cfg_.load /
               fromMicros(baselineServiceUs(cfg_.service));
    }
    result_.offered_rps = rate;
    mean_interarrival_cycles_ = static_cast<Cycle>(
        std::max(1.0, frequency_.hertz() / rate));
    next_arrival_ = static_cast<Cycle>(
        rng_.exponential(static_cast<double>(
            mean_interarrival_cycles_)));

    buildBatchThreads();
    buildUnits();

    filler_sink_.engine = this;
    filler_sink_.on_master_core = true;
    lender_sink_.engine = this;
    lender_sink_.on_master_core = false;
}

void
ScenarioEngine::buildBatchThreads()
{
    Rng batch_rng = rng_.fork(2);
    ThreadId uid = 1;
    ctx_index_.push_back(batch_.size()); // unused id-0 slot
    auto add = [&](BatchKind kind, VirtualContextPool *pool) {
        BatchThread bt;
        bt.kind = kind;
        bt.source = std::make_unique<BatchSource>(
            calibratedBatch(kind, uid), batch_rng.fork(uid));
        bt.ctx = std::make_unique<VirtualContext>(uid,
                                                  bt.source.get());
        DPX_CHECK_EQ(ctx_index_.size(), uid)
            << " — batch thread ids must stay dense";
        ctx_index_.push_back(batch_.size());
        if (pool)
            pool->add(bt.ctx.get());
        batch_.push_back(std::move(bt));
        ++uid;
    };

    // The shared dyad pool (Section IV: 32 virtual contexts).
    for (std::uint32_t i = 0; i < cfg_.pool_contexts; ++i) {
        add(i % 2 == 0 ? BatchKind::PageRank : BatchKind::Sssp,
            &shared_pool_);
    }

    // SMT co-runner: one statically bound batch thread.
    if (design_.has_corunner) {
        has_corunner_ = true;
        add(BatchKind::PageRank, nullptr);
        corunner_index_ = batch_.size() - 1;
    }

    // MorphCore: eight private (non-HSMT) filler threads.
    if (design_.morphs && !design_.hsmt_borrowing) {
        for (std::uint32_t i = 0; i < design_.private_fillers; ++i) {
            add(i % 2 == 0 ? BatchKind::PageRank : BatchKind::Sssp,
                &private_pool_);
        }
    }
}

void
ScenarioEngine::buildUnits()
{
    HsmtConfig hcfg;
    hcfg.quantum = frequency_.microsToCycles(100.0);

    // The paired throughput core: a lender-style HSMT core runs the
    // batch backlog in every design (Section VI-B pairing rule).
    lender_unit_ = std::make_unique<HsmtUnit>(
        *lender_engine_, shared_pool_, hcfg, frequency_);
    lender_unit_->setFastForwardEnabled(cfg_.hsmt_fast_forward);
    LaneConfig lproto =
        lender_engine_->defaultLaneConfig(IssueMode::InOrder);
    lproto.path = mem_->lenderPath();
    for (std::uint32_t i = 0; i < lender_unit_->numLanes(); ++i) {
        lender_ras_.push_back(
            std::make_unique<ReturnAddressStack>(16));
        lproto.branch = {lender_pred_.get(), lender_btb_.get(),
                         lender_ras_.back().get()};
        lender_unit_->configureLane(i, lproto);
    }
    lender_unit_->openWindow(0, HsmtUnit::never);

    // SMT co-runner lane: shares the master's caches, TLBs, and
    // predictor. Under SMT+ it is de-prioritized: private calendars
    // model leftover-bandwidth-only fetch/issue/commit and its window
    // occupancy is capped at 30% (Section V).
    if (has_corunner_) {
        const std::uint32_t rob = master_engine_->config().rob_entries;
        LaneConfig ccfg =
            master_engine_->defaultLaneConfig(IssueMode::OutOfOrder);
        ccfg.path = mem_->masterPath();
        ccfg.branch = {master_pred_.get(), master_btb_.get(),
                       master_ras_.get()};
        // Both SMT contexts get partitioned windows (a stalled
        // co-runner must not block the master at a shared ring
        // head); under plain SMT the split is even.
        ccfg.inflight_cap = rob / 2;
        ccfg.use_shared_rob = false;
        ccfg.use_shared_lsq = false;
        if (design_.corunner_prioritized) {
            co_fetch_ = std::make_unique<SlotCalendar>(2);
            co_issue_ = std::make_unique<SlotCalendar>(2);
            co_commit_ = std::make_unique<SlotCalendar>(2);
            ccfg.fetch_cal = co_fetch_.get();
            ccfg.issue_cal = co_issue_.get();
            ccfg.commit_cal = co_commit_.get();
            ccfg.inflight_cap = static_cast<std::uint32_t>(
                master_engine_->config().rob_entries *
                design_.corunner_storage_cap);
            ccfg.use_shared_rob = false;
            ccfg.use_shared_lsq = false;
        }
        corunner_lane_.configure(ccfg);

        // The master keeps its partition: half under plain SMT, the
        // complement of the 30% co-runner cap under SMT+.
        LaneConfig mcfg =
            master_engine_->defaultLaneConfig(IssueMode::OutOfOrder);
        mcfg.path = mem_->masterPath();
        mcfg.branch = {master_pred_.get(), master_btb_.get(),
                       master_ras_.get()};
        mcfg.inflight_cap =
            design_.corunner_prioritized ? rob - ccfg.inflight_cap
                                         : rob / 2;
        mcfg.use_shared_rob = false;
        mcfg.use_shared_lsq = false;
        master_lane_.configure(mcfg);
    }

    if (!design_.morphs)
        return;

    VirtualContextPool &filler_pool =
        design_.hsmt_borrowing ? shared_pool_ : private_pool_;
    filler_unit_ = std::make_unique<HsmtUnit>(
        *master_engine_, filler_pool, hcfg, frequency_);
    filler_unit_->setFastForwardEnabled(cfg_.hsmt_fast_forward);

    LaneConfig fproto =
        master_engine_->defaultLaneConfig(IssueMode::InOrder);
    switch (design_.filler_path) {
      case FillerPath::Local:
        fproto.path = mem_->fillerLocalPath();
        break;
      case FillerPath::Replicated:
        fproto.path = mem_->fillerReplicatedPath();
        break;
      case FillerPath::Remote:
        fproto.path = mem_->fillerRemotePath();
        break;
      case FillerPath::None:
        panic("morphing design without a filler path");
    }
    for (std::uint32_t i = 0; i < filler_unit_->numLanes(); ++i) {
        filler_ras_.push_back(
            std::make_unique<ReturnAddressStack>(16));
        if (design_.separate_filler_state) {
            fproto.branch = {filler_pred_.get(), filler_btb_.get(),
                             filler_ras_.back().get()};
        } else {
            // MorphCore variants thrash the master's predictor state.
            fproto.branch = {master_pred_.get(), master_btb_.get(),
                             master_ras_.get()};
        }
        filler_unit_->configureLane(i, fproto);
    }

}

void
ScenarioEngine::onBatchCommit(const VirtualContext &ctx,
                              const OpOutcome &out,
                              bool on_master_core)
{
    if (!inWindow(out.commit_time))
        return;
    ++ino_ops_;
    ++batch_ops_;
    if (on_master_core) {
        ++master_core_ops_;
        ++result_.filler_ops;
    } else {
        ++result_.lender_ops;
    }
    if (ctx.id() < ctx_index_.size()) {
        BatchThread &bt = batch_[ctx_index_[ctx.id()]];
        ++bt.window_ops;
        if (out.remote)
            ++bt.window_remote;
    }
    if (out.remote)
        ++remote_ops_;
}

void
ScenarioEngine::generateArrivalsUpTo(Cycle t)
{
    while (next_arrival_ <= t) {
        arrivals_.push_back(next_arrival_);
        next_arrival_ += 1 + static_cast<Cycle>(rng_.exponential(
                                 static_cast<double>(
                                     mean_interarrival_cycles_)));
    }
}

void
ScenarioEngine::beginRequest(Cycle begin)
{
    DPX_CHECK(!arrivals_.empty()) << " — no arrival to begin";
    current_arrival_ = arrivals_.front();
    arrivals_.pop_front();
    current_begin_ = std::max(begin, current_arrival_);
    request_in_flight_ = true;
}

void
ScenarioEngine::completeRequest(Cycle completion)
{
    DPX_CHECK(request_in_flight_) << " — completion without a request";
    request_in_flight_ = false;
    if (completion >= m_start_ && completion < m_end_) {
        double service = usOf(completion - current_begin_);
        double sojourn = usOf(completion - current_arrival_);
        result_.service_us.add(service, rng_.next());
        result_.sojourn_us.add(sojourn, rng_.next());
        result_.wait_us.add(
            usOf(current_begin_ - current_arrival_), rng_.next());
        ++result_.requests;
    }

    generateArrivalsUpTo(completion);
    if (!arrivals_.empty()) {
        beginRequest(completion);
        mstate_ = MState::Processing;
    } else {
        mstate_ = MState::Blocked;
        block_kind_ = BlockKind::Idle;
        blocked_until_ = next_arrival_;
        maybeOpenWindow(completion, next_arrival_);
    }
}

void
ScenarioEngine::maybeOpenWindow(Cycle from, Cycle to)
{
    if (!design_.morphs || filler_unit_ == nullptr)
        return;
    Cycle start = from + design_.morph_in_delay;
    if (to == never || to > start + min_morph_window) {
        filler_unit_->openWindow(start,
                                 to == never ? HsmtUnit::never : to);
        window_open_ = true;
        window_open_start_ = start;
    }
}

void
ScenarioEngine::closeWindow(Cycle at)
{
    if (window_open_) {
        filler_unit_->closeWindow(at);
        window_open_ = false;
        // Coverage accounting, clamped into the measurement window.
        Cycle lo = std::max(window_open_start_, m_start_);
        Cycle hi = std::min(at, m_end_);
        if (hi > lo)
            window_cycles_ += hi - lo;
        // Filler squash + register spill through the L0 before the
        // master-thread issues again (Section III-B4).
        master_lane_.stallUntil(at + design_.resume_penalty);
    }
}

Cycle
ScenarioEngine::masterNextTime() const
{
    if (mstate_ == MState::Blocked)
        return blocked_until_;
    return master_lane_.nextFetch();
}

Cycle
ScenarioEngine::corunnerNextTime() const
{
    if (!has_corunner_)
        return never;
    return corunner_lane_.nextFetch();
}

void
ScenarioEngine::advanceMaster()
{
    if (mstate_ == MState::Blocked) {
        Cycle t = blocked_until_;
        closeWindow(t);
        master_lane_.stallUntil(t);
        if (block_kind_ == BlockKind::Idle) {
            generateArrivalsUpTo(t);
            beginRequest(t);
        }
        mstate_ = MState::Processing;
        return;
    }

    MicroOp op = master_source_->next();
    OpOutcome out = master_engine_->processOp(master_lane_, op);
    if (inWindow(out.commit_time)) {
        ++master_core_ops_;
        ++master_ops_;
        if (out.remote)
            ++remote_ops_;
    }

    if (out.remote) {
        DPX_CHECK(!out.end_of_request) << " — requests must end with a compute phase";
        Cycle stall = frequency_.microsToCycles(out.stall_us);
        Cycle resume = out.commit_time + stall;
        maybeOpenWindow(out.commit_time, resume);
        blocked_until_ = resume;
        block_kind_ = BlockKind::Stall;
        mstate_ = MState::Blocked;
        // The lane must not run ahead during the stall.
        master_lane_.stallUntil(resume);
        return;
    }
    if (out.end_of_request)
        completeRequest(out.commit_time);
}

void
ScenarioEngine::advanceCorunner()
{
    BatchThread &bt = batch_[corunner_index_];
    MicroOp op = bt.source->next();
    OpOutcome out =
        master_engine_->processOp(corunner_lane_, op);
    if (inWindow(out.commit_time)) {
        ++master_core_ops_;
        ++ino_ops_; // batch work, even though it flows through OoO
        ++batch_ops_;
        ++bt.window_ops;
        if (out.remote) {
            ++remote_ops_;
            ++bt.window_remote;
        }
    }
    if (out.remote) {
        // Plain SMT has no backlog to swap in: stall in place.
        corunner_lane_.stallUntil(
            out.commit_time +
            frequency_.microsToCycles(out.stall_us));
    }
}

void
ScenarioEngine::snapshotActivity()
{
    snap_.l1 = mem_->masterL1i().stats().accesses() +
               mem_->masterL1d().stats().accesses() +
               mem_->lenderL1i().stats().accesses() +
               mem_->lenderL1d().stats().accesses() +
               mem_->replL1i().stats().accesses() +
               mem_->replL1d().stats().accesses();
    snap_.l0 = mem_->l0i().stats().accesses() +
               mem_->l0d().stats().accesses();
    snap_.llc = mem_->llc().stats().accesses();
    snap_.dram = mem_->dram().accesses();
    snap_.link = mem_->dyadLinkI().traversals() +
                 mem_->dyadLinkD().traversals();
}

void
ScenarioEngine::finishActivity(ScenarioResult &result)
{
    ActivityCounters &act = result.activity;
    act.seconds = frequency_.cyclesToSeconds(cfg_.measure_cycles);
    act.ooo_ops = master_ops_ +
                  (has_corunner_
                       ? batch_[corunner_index_].window_ops
                       : 0);
    act.ino_ops = ino_ops_ - (has_corunner_
                                  ? batch_[corunner_index_].window_ops
                                  : 0);
    act.l1_accesses = mem_->masterL1i().stats().accesses() +
                      mem_->masterL1d().stats().accesses() +
                      mem_->lenderL1i().stats().accesses() +
                      mem_->lenderL1d().stats().accesses() +
                      mem_->replL1i().stats().accesses() +
                      mem_->replL1d().stats().accesses() - snap_.l1;
    act.l0_accesses = mem_->l0i().stats().accesses() +
                      mem_->l0d().stats().accesses() - snap_.l0;
    act.llc_accesses = mem_->llc().stats().accesses() - snap_.llc;
    act.dram_accesses = mem_->dram().accesses() - snap_.dram;
    act.link_traversals = mem_->dyadLinkI().traversals() +
                          mem_->dyadLinkD().traversals() - snap_.link;
}

ScenarioResult
ScenarioEngine::run()
{
    m_start_ = cfg_.warmup_cycles;
    m_end_ = cfg_.warmup_cycles + cfg_.measure_cycles;
    const Cycle horizon = m_end_;

    result_.design = cfg_.design;
    result_.service = cfg_.service;
    result_.load = cfg_.load;
    result_.frequency_ghz = frequency_.gigahertz();
    result_.seconds =
        frequency_.cyclesToSeconds(cfg_.measure_cycles);

    // Initial state: idle until the first arrival; fillers may run.
    mstate_ = MState::Blocked;
    block_kind_ = BlockKind::Idle;
    blocked_until_ = next_arrival_;
    maybeOpenWindow(0, next_arrival_);

    bool snapshotted = false;
    if (!cfg_.hsmt_fast_forward) {
        // Forced-legacy schedule: re-derive every actor's next time
        // and perform exactly one action per iteration.
        for (;;) {
            Cycle t_master = masterNextTime();
            Cycle t_co = corunnerNextTime();
            Cycle t_filler =
                filler_unit_ ? filler_unit_->nextTime() : never;
            Cycle t_lender = lender_unit_->nextTime();

            Cycle tmin = std::min(std::min(t_master, t_co),
                                  std::min(t_filler, t_lender));
            if (tmin == never || tmin > horizon)
                break;
            if (!snapshotted && tmin >= m_start_) {
                snapshotActivity();
                snapshotted = true;
            }

            if (tmin == t_master) {
                advanceMaster();
            } else if (tmin == t_co) {
                advanceCorunner();
            } else if (tmin == t_filler) {
                filler_unit_->advanceOne(&filler_sink_);
            } else {
                lender_unit_->advanceOne(&lender_sink_);
            }
        }
    } else {
        // Event-driven schedule: cache each actor's next time and
        // recompute only what the last action can have moved. A
        // master action may open/close the filler window (so it
        // refreshes the filler's time too); unit actions are
        // lane-local and never move another actor's clock; the shared
        // pool only matters once an actor acts, never for *when* it
        // acts. HSMT units batch all actions up to a bound that
        // encodes the legacy if-chain priority (master > co > filler >
        // lender): a unit keeps acting strictly before every
        // higher-priority actor and at-or-before every lower-priority
        // one. Until the activity snapshot is taken the bounds also
        // stop short of m_start_, so the snapshot falls between the
        // same two actions as the stepped schedule.
        Cycle t_master = masterNextTime();
        Cycle t_co = corunnerNextTime();
        Cycle t_filler =
            filler_unit_ ? filler_unit_->nextTime() : never;
        Cycle t_lender = lender_unit_->nextTime();
        for (;;) {
            Cycle tmin = std::min(std::min(t_master, t_co),
                                  std::min(t_filler, t_lender));
            if (tmin == never || tmin > horizon)
                break;
            if (!snapshotted && tmin >= m_start_) {
                snapshotActivity();
                snapshotted = true;
            }
            const Cycle snap_bound = snapshotted ? never : m_start_;

            if (tmin == t_master) {
                advanceMaster();
                t_master = masterNextTime();
                if (filler_unit_)
                    t_filler = filler_unit_->nextTime();
            } else if (tmin == t_co) {
                advanceCorunner();
                t_co = corunnerNextTime();
            } else if (tmin == t_filler) {
                Cycle bound = std::min(
                    std::min(t_master, t_co),
                    std::min(t_lender == never ? never : t_lender + 1,
                             std::min(horizon + 1, snap_bound)));
                t_filler =
                    filler_unit_->advanceUntil(bound, &filler_sink_);
            } else {
                Cycle bound = std::min(
                    std::min(t_master, t_co),
                    std::min(t_filler,
                             std::min(horizon + 1, snap_bound)));
                t_lender =
                    lender_unit_->advanceUntil(bound, &lender_sink_);
            }
        }
    }
    if (!snapshotted)
        snapshotActivity();
    if (window_open_) {
        // Account the window still open at the horizon.
        Cycle lo = std::max(window_open_start_, m_start_);
        if (m_end_ > lo)
            window_cycles_ += m_end_ - lo;
    }

    result_.utilization =
        static_cast<double>(master_core_ops_) /
        (4.0 * static_cast<double>(cfg_.measure_cycles));

    // Batch progress (STP) against the alone-run on a lender core.
    double stp = 0.0;
    for (const BatchThread &bt : batch_) {
        double together =
            static_cast<double>(bt.window_ops) /
            static_cast<double>(cfg_.measure_cycles);
        stp += together / aloneBatchIpc(bt.kind);
    }
    result_.batch_stp = stp;
    result_.master_ops = master_ops_;
    result_.filler_window_fraction =
        static_cast<double>(window_cycles_) /
        static_cast<double>(cfg_.measure_cycles);
    if (filler_unit_)
        result_.filler_swaps = filler_unit_->contextSwaps();
    result_.batch_ops_per_sec =
        static_cast<double>(batch_ops_) / result_.seconds;
    result_.remote_ops_per_sec =
        static_cast<double>(remote_ops_) / result_.seconds;

    finishActivity(result_);
    return result_;
}

} // namespace

ScenarioResult
runScenario(const ScenarioConfig &config)
{
    ScenarioEngine engine(config);
    return engine.run();
}

namespace
{

/** The baseline capacity measurement (no caching): the Baseline
 *  design in situ (lender core running) at a moderate load pinned by
 *  the nominal capacity, so the value does not depend on the caller's
 *  requested load. Fully self-contained and fixed-seed; it pins its
 *  own arrival rate, so there is no recursion back into the memo. */
double
baselineServiceUsUncached(MicroserviceKind service, double nominal_us)
{
    ScenarioConfig cfg;
    cfg.design = DesignKind::Baseline;
    cfg.service = service;
    cfg.arrival_rate_rps = 0.5 / fromMicros(nominal_us);
    cfg.warmup_cycles = 300'000;
    cfg.measure_cycles = 1'200'000;
    ScenarioResult res = runScenario(cfg);
    return res.service_us.count() > 8 ? res.service_us.mean()
                                      : nominal_us;
}

} // namespace

double
baselineServiceUs(MicroserviceKind service)
{
    MicroserviceSpec spec = makeMicroservice(service);
    const double nominal_us = spec.nominalServiceUs();

    if (memoWideningEnabled()) {
        // Wide memo: keyed on the design-relevant probe recipe (the
        // uncalibrated spec's full fingerprint plus the measurement
        // pinning), not the service enum — grid cells that re-derive
        // an identical capacity probe dedup to one measurement, and
        // distinct services calibrate concurrently (per-entry
        // once_flag instead of one global compute lock).
        ProbeKey key;
        key.mix(0xba5e11beull); // probe tag: baseline capacity
        fingerprintMicroservice(key, spec);
        key.mixDouble(nominal_us);
        key.mix(300'000); // warmup_cycles
        key.mix(1'200'000); // measure_cycles
        key.mix(42); // ScenarioConfig seed default
        return memoizedProbe(key, [&] {
            return baselineServiceUsUncached(service, nominal_us);
        });
    }

    // Forced-legacy protocol: enum-keyed memo computed under the
    // lock. Sweep cells call this concurrently; computing under the
    // lock keeps the memo deterministic for any thread count because
    // the measurement run is fully self-contained and fixed-seed.
    // dpx-lint: allow(DPX003) — memo guard, not simulation
    // concurrency; the measured value is identical for every
    // first-toucher (see comment above).
    static std::mutex mutex;
    static std::map<MicroserviceKind, double> memo;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = memo.find(service);
    if (it != memo.end())
        return it->second;

    double measured = baselineServiceUsUncached(service, nominal_us);
    memo[service] = measured;
    return measured;
}

namespace
{

/** The alone-run measurement (no caching): one batch thread alone on
 *  a lender-style InO core, stalling in place on remote ops. Fully
 *  self-contained and fixed-seed. */
double
aloneBatchIpcUncached(BatchKind kind, const BatchSpec &spec)
{
    MemSystemConfig mem_cfg = MemSystemConfig::makeDefault();
    DyadMemorySystem mem(mem_cfg);
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::GshareSmall);
    Btb btb(2048, 4);
    ReturnAddressStack ras(16);

    Rng rng(0xa10eull + static_cast<std::uint64_t>(kind));
    BatchSource source(spec, rng.fork(1));

    Lane lane;
    LaneConfig cfg = engine.defaultLaneConfig(IssueMode::InOrder);
    cfg.path = mem.lenderPath();
    cfg.branch = {pred.get(), &btb, &ras};
    lane.configure(cfg);

    const Cycle warmup = 200'000;
    const Cycle horizon = 1'200'000;
    std::uint64_t ops = 0;
    Frequency freq = mem_cfg.frequency;
    // Block-batched stepping (bit-identical to the processOp loop):
    // the source stream is outcome-independent and local, so
    // pre-drawing a block is invisible; the engine stops right after
    // a remote op so the µs stall lands before the next fetch check,
    // exactly as in the per-op loop.
    OpBlock block;
    std::uint32_t head = 0;
    while (lane.nextFetch() < horizon) {
        if (head == block.size()) {
            block.clear();
            source.fillBlock(block, kOpBlockCapacity);
            head = 0;
        }
        BlockOutcome blk =
            engine.processBlock(lane, block, head, horizon, warmup,
                                horizon);
        head += blk.processed;
        ops += blk.committed_in_window;
        if (blk.stopped_remote) {
            lane.stallUntil(blk.last.commit_time +
                            freq.microsToCycles(blk.last.stall_us));
        }
    }
    return static_cast<double>(ops) /
           static_cast<double>(horizon - warmup);
}

} // namespace

double
aloneBatchIpc(BatchKind kind)
{
    BatchSpec spec = calibratedBatch(kind, 7);

    if (memoWideningEnabled()) {
        // Wide memo: keyed on the calibrated spec's full fingerprint
        // plus the probe's own seed and horizon — everything the
        // measured value depends on — instead of the enum. The seed
        // is enum-derived (legacy behaviour), so two kinds dedup only
        // when they are the same probe in every respect.
        ProbeKey key;
        key.mix(0xa10e19c0ull); // probe tag: alone-run batch IPC
        fingerprintBatch(key, spec);
        key.mix(0xa10eull + static_cast<std::uint64_t>(kind));
        key.mix(200'000); // warmup
        key.mix(1'200'000); // horizon
        return memoizedProbe(key, [&] {
            return aloneBatchIpcUncached(kind, spec);
        });
    }

    // Forced-legacy protocol: enum-keyed memo computed under the
    // lock; the alone-run is self-contained and fixed-seed, so
    // first-toucher identity cannot change the memoized value.
    // dpx-lint: allow(DPX003) — memo guard, not simulation
    // concurrency (see baselineServiceUs above).
    static std::mutex mutex;
    static std::map<BatchKind, double> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(kind);
    if (it != cache.end())
        return it->second;

    double ipc = aloneBatchIpcUncached(kind, spec);
    cache[kind] = ipc;
    return ipc;
}

Cycle
measureCyclesFromEnv(Cycle def)
{
    const char *env = std::getenv("DPX_MEASURE_CYCLES");
    if (!env)
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || v == 0)
        return def;
    return static_cast<Cycle>(v);
}

} // namespace duplexity
