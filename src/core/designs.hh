/**
 * @file
 * The seven evaluated server designs (Section V, "Design
 * Configurations") expressed as configuration of the shared dyad
 * machinery.
 */

#ifndef DPX_CORE_DESIGNS_HH
#define DPX_CORE_DESIGNS_HH

#include <string>
#include <vector>

#include "power/area_model.hh"
#include "sim/types.hh"

namespace duplexity
{

enum class DesignKind
{
    Baseline,      //!< 4-wide OoO, master-thread only
    Smt,           //!< + one batch SMT thread, ICOUNT, no priority
    SmtPlus,       //!< SMT with master priority + 30% storage cap
    MorphCore,     //!< morphs to 8-thread InO, local caches, own
                   //!< 8 filler threads
    MorphCorePlus, //!< MorphCore + HSMT borrowing from the dyad pool
    DuplexityRepl, //!< Duplexity with fully replicated state
    Duplexity,     //!< final design: L0 filters + lender L1 sharing
};

/** Where filler-threads' memory accesses go on the master-core. */
enum class FillerPath
{
    None,       //!< design never runs fillers on the master-core
    Local,      //!< master's own L1s/TLBs (MorphCore: thrashing)
    Replicated, //!< private full-size L1s (Duplexity+replication)
    Remote,     //!< L0 filters -> lender L1s (Duplexity)
};

struct DesignConfig
{
    DesignKind kind = DesignKind::Baseline;
    std::string name;
    /** Table II row used for area/frequency/power. */
    CoreKind area_kind = CoreKind::BaselineOoO;

    /** SMT co-runner (designs SMT / SMT+). */
    bool has_corunner = false;
    bool corunner_prioritized = false;
    /** Fraction of storage resources the co-runner may occupy. */
    double corunner_storage_cap = 1.0;

    /** Morphing master-core (MorphCore and later designs). */
    bool morphs = false;
    /** Borrow virtual contexts from the dyad pool (HSMT). */
    bool hsmt_borrowing = false;
    /** Private filler threads when not borrowing (MorphCore). */
    std::uint32_t private_fillers = 8;
    FillerPath filler_path = FillerPath::None;
    /** Replicated reduced predictor + TLBs for filler mode. */
    bool separate_filler_state = false;

    /** Cycles from "master ready" until it issues again. Duplexity's
     *  L0 register spill keeps this at ~50 (Section III-B4);
     *  MorphCore's microcode swap is far slower. */
    Cycle resume_penalty = 0;
    /** Drain/flush delay before filler-threads may start. */
    Cycle morph_in_delay = 30;
};

DesignConfig makeDesign(DesignKind kind);
std::vector<DesignKind> allDesigns();
const char *toString(DesignKind kind);

} // namespace duplexity

#endif // DPX_CORE_DESIGNS_HH
