#include "net/nic_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace duplexity
{

NicModel::NicModel(const NicConfig &config) : config_(config)
{
    DPX_CHECK(config.data_rate_gbps > 0.0 && config.max_ops_per_sec > 0.0) << " — bad NIC parameters";
}

double
NicModel::iopsUtilization(double ops_per_sec) const
{
    DPX_CHECK(ops_per_sec >= 0.0) << " — negative op rate";
    return ops_per_sec / config_.max_ops_per_sec;
}

double
NicModel::bandwidthUtilization(double ops_per_sec,
                               double bytes_per_op) const
{
    DPX_CHECK(bytes_per_op >= 0.0) << " — negative op size";
    double bits_per_sec = ops_per_sec * bytes_per_op * 8.0;
    return bits_per_sec / (config_.data_rate_gbps * 1e9);
}

double
NicModel::utilization(double ops_per_sec, double bytes_per_op) const
{
    return std::max(iopsUtilization(ops_per_sec),
                    bandwidthUtilization(ops_per_sec, bytes_per_op));
}

bool
NicModel::iopsLimited(double ops_per_sec, double bytes_per_op) const
{
    return iopsUtilization(ops_per_sec) >=
           bandwidthUtilization(ops_per_sec, bytes_per_op);
}

std::uint32_t
NicModel::dyadsPerPort(double ops_per_dyad_per_sec,
                       double bytes_per_op) const
{
    double per_dyad =
        utilization(ops_per_dyad_per_sec, bytes_per_op);
    if (per_dyad <= 0.0)
        return ~std::uint32_t(0);
    return static_cast<std::uint32_t>(std::floor(1.0 / per_dyad));
}

} // namespace duplexity
