/**
 * @file
 * NIC model for the interconnect case study (Section VIII).
 *
 * An FDR 4x InfiniBand port imposes two ceilings: a data rate
 * (56 Gbit/s) and an I/O-operation rate (90 M ops/s). The paper's
 * workloads issue single-cache-line remote accesses, so they are
 * IOPS-limited; Figure 6 reports per-dyad IOPS utilization and finds
 * the maximum under 7.1 %, i.e. 14 dyads can share one port.
 */

#ifndef DPX_NET_NIC_MODEL_HH
#define DPX_NET_NIC_MODEL_HH

#include <cstdint>

namespace duplexity
{

struct NicConfig
{
    double data_rate_gbps = 56.0; // FDR 4x
    double max_ops_per_sec = 90e6;
};

class NicModel
{
  public:
    explicit NicModel(const NicConfig &config = NicConfig{});

    const NicConfig &config() const { return config_; }

    /** Fraction of the IOPS ceiling consumed. */
    double iopsUtilization(double ops_per_sec) const;

    /** Fraction of the data-rate ceiling consumed. */
    double bandwidthUtilization(double ops_per_sec,
                                double bytes_per_op) const;

    /** Binding constraint: max of the two utilizations. */
    double utilization(double ops_per_sec, double bytes_per_op) const;

    /** True when the op stream is limited by IOPS, not bytes. */
    bool iopsLimited(double ops_per_sec, double bytes_per_op) const;

    /** How many identical dyads can share one port. */
    std::uint32_t dyadsPerPort(double ops_per_dyad_per_sec,
                               double bytes_per_op) const;

  private:
    NicConfig config_;
};

} // namespace duplexity

#endif // DPX_NET_NIC_MODEL_HH
