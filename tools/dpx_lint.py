#!/usr/bin/env python3
"""dpx-lint: determinism-contract lint for the duplexity tree.

The simulator's headline guarantee is bit-identical results for any
thread count, any replica count, and any sweep decomposition (see
DESIGN.md "Determinism contract").  That guarantee is easy to break
with one innocent-looking line: a wall-clock read folded into a
result, an ad-hoc std::thread racing the pool's deterministic merge
order, an unordered-container walk feeding a reduction.  This linter
turns the contract into named, greppable rules.

Rules
-----
DPX001  nondeterministic-randomness
        rand()/srand()/std::random_device/drand48 et al. are banned
        everywhere: all randomness must flow from duplexity::Rng so
        streams are seeded, forkable, and replayable.
DPX002  wall-clock-in-sim
        Reading a clock (std::chrono clocks, gettimeofday,
        clock_gettime, std::time) inside src/ risks timing leaking
        into simulated results.  Timing for *reporting* is fine —
        annotate it (see parallel_sweep.cc).
DPX003  raw-threading
        std::thread/std::async/std::mutex/... outside
        src/sim/thread_pool.* bypasses the pool's deterministic
        work-stealing and merge discipline.  Sanctioned exceptions
        (the calibration memos) carry allow annotations.
DPX004  unordered-iteration
        Iterating an unordered container feeds hash-order — which
        varies across libstdc++ versions and ASLR — into whatever
        consumes the loop.  Result paths must iterate ordered
        containers or sort first.
DPX005  float-accumulator
        float accumulators in stats/queueing code lose the low bits
        that the golden tests pin; accumulate in double.
        (Scoped to src/sim/stats.* and src/queueing/.)
DPX006  include-guard
        Headers under src/ must guard with DPX_<PATH>_HH so guards
        never collide when files move or new dirs appear.
DPX007  panic-vs-fatal
        Direct abort()/exit()/assert() skip the failure hook and the
        file:line report.  Invariant violations use DPX_CHECK/panic();
        invalid user input uses fatal() (see src/sim/logging.hh).
DPX008  hot-loop-indirect-call
        Inside a ``// dpx-hot-loop: begin <name>`` /
        ``// dpx-hot-loop: end`` region (the per-op commit loops of
        CoreEngine::processBlock and friends), calls that dispatch
        through a virtual interface pointer (BranchPredictor,
        InstrSource, Distribution, CommitSink) or a std::function are
        banned: one indirect call per op is exactly the overhead the
        split-phase refactor removed, and it creeps back silently.
        Hoist the work into the block-precompute phase, devirtualize,
        or — when the call is genuinely order-dependent serial state,
        like predictor updates — waive the line with
        ``// dpx-lint: allow(DPX008)`` and say why.  Unbalanced
        begin/end markers are themselves violations.
DPX009  raw-simd-outside-wrapper
        Raw vector extensions (__attribute__((vector_size)),
        __builtin_shuffle/convertvector/ia32 intrinsics) or intrinsic
        headers (<immintrin.h>, <arm_neon.h>) outside src/sim/simd.hh
        bypass the one place the forced-scalar switch
        (simd::setSimdEnabled) and the -DDPX_SIMD=OFF build control.
        All SIMD goes through the wrapper so every vector fast path
        keeps a provably-identical scalar fallback.

Escape hatches
--------------
``// dpx-lint: allow(DPX00N)`` on a code line suppresses that rule on
that line.  On a comment line of its own it covers the contiguous
non-blank block that follows (comment included).  A file-wide waiver
is ``// dpx-lint: allow-file(DPX00N): <reason>`` anywhere in the file;
the reason is mandatory.

``--report-unused-waivers`` turns stale escape hatches into findings:
an allow()/allow-file() that no longer suppresses anything is dead
weight that silently widens the next edit's blast radius, so it must
be removed or re-justified.  (A line allow shadowed by a file-wide
allow for the same rule counts as unused — the file waiver is doing
the suppressing.)

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h")

ALLOW_RE = re.compile(r"dpx-lint:\s*allow\((DPX\d{3})\)")
ALLOW_FILE_RE = re.compile(r"dpx-lint:\s*allow-file\((DPX\d{3})\)(:?)")


class Rule:
    def __init__(self, rule_id, name, rationale, checker, path_filter=None,
                 exempt=None):
        self.rule_id = rule_id
        self.name = name
        self.rationale = rationale
        self.checker = checker
        # path_filter: predicate over repo-relative path; None = all files.
        self.path_filter = path_filter
        # exempt: repo-relative paths where the rule never applies
        # (the file IS the sanctioned implementation).
        self.exempt = frozenset(exempt or ())

    def applies_to(self, relpath, all_paths):
        if relpath in self.exempt:
            return False
        if all_paths or self.path_filter is None:
            return True
        return self.path_filter(relpath)


def _is_digit_separator(text, i):
    """True when the apostrophe at text[i] is a C++14 digit separator:
    it sits inside a token that starts with a digit (1'000, 0xFF'FF).
    Char-literal prefixes (L'a', u8'a') fail the digit test because
    their token starts with a letter."""
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] in "_."):
        j -= 1
    return j + 1 < i and text[j + 1].isdigit() and \
        i + 1 < len(text) and text[i + 1].isalnum()


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token regexes never fire inside either."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:j])
            i = j
        elif c == "'" and _is_digit_separator(text, i):
            # C++14 digit separator (2'000'000), not a char literal:
            # treating it as a quote would blank everything up to the
            # next apostrophe — often whole lines of real code.
            out.append(" ")
            i += 1
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_regex_checker(pattern):
    rx = re.compile(pattern)

    def check(relpath, raw_lines, code_lines):
        return [(ln, m.group(0).strip())
                for ln, line in enumerate(code_lines, start=1)
                for m in [rx.search(line)] if m]

    return check


def check_unordered_iteration(relpath, raw_lines, code_lines):
    """Flag iteration over std::unordered_* containers.

    Two passes: collect names declared with an unordered type in this
    file, then flag range-fors over (or .begin() calls on) those
    names, plus range-fors whose range expression itself mentions an
    unordered type.
    """
    decl_rx = re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
    name_rx = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*[;={(]")
    names = set()
    for line in code_lines:
        m = decl_rx.search(line)
        if not m:
            continue
        nm = name_rx.search(line, m.end())
        if nm:
            names.add(nm.group(1))
    findings = []
    range_for_rx = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]*)")
    for ln, line in enumerate(code_lines, start=1):
        m = range_for_rx.search(line)
        range_expr = m.group(1) if m else None
        if range_expr is None and ln > 1 and \
                re.search(r"\bfor\s*\([^;)]*:\s*$", code_lines[ln - 2]):
            range_expr = line  # range expression wrapped to next line
        if range_expr is None:
            continue
        if decl_rx.search(range_expr) or any(
                re.search(r"\b%s\b" % re.escape(n), range_expr)
                for n in names):
            findings.append((ln, range_expr.strip() or "range-for"))
    for ln, line in enumerate(code_lines, start=1):
        for n in names:
            if re.search(r"\b%s\s*\.\s*(c?begin|c?end)\s*\(" %
                         re.escape(n), line):
                findings.append((ln, line.strip()))
    return sorted(set(findings))


def check_include_guard(relpath, raw_lines, code_lines):
    if not relpath.startswith("src/") or not relpath.endswith(".hh"):
        return []
    stem = relpath[len("src/"):]
    want = "DPX_" + re.sub(r"[^A-Za-z0-9]", "_",
                           stem[:-len(".hh")]).upper() + "_HH"
    ifndef_rx = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
    for ln, line in enumerate(code_lines, start=1):
        m = ifndef_rx.match(line)
        if not m:
            continue
        got = m.group(1)
        if got != want:
            return [(ln, "guard is %s, expected %s" % (got, want))]
        define = code_lines[ln] if ln < len(code_lines) else ""
        if not re.match(r"^\s*#\s*define\s+%s\b" % re.escape(want),
                        define):
            return [(ln + 1, "#define does not match guard %s" % want)]
        return []
    return [(1, "missing include guard %s" % want)]


HOT_BEGIN_RE = re.compile(r"//\s*dpx-hot-loop:\s*begin\b")
HOT_END_RE = re.compile(r"//\s*dpx-hot-loop:\s*end\b")

# Repo interfaces whose calls dispatch virtually. A pointer to one of
# these inside a hot-loop region means one indirect call per op.
VIRTUAL_BASES = frozenset((
    "BranchPredictor",
    "InstrSource",
    "Distribution",
    "CommitSink",
))


def check_hot_loop_calls(relpath, raw_lines, code_lines):
    """DPX008: virtual/indirect per-op calls inside dpx-hot-loop
    regions.

    Pointer declarations are collected file-wide (raw ``T *name``,
    ``std::unique_ptr<T>``/``std::shared_ptr<T>`` and the
    DistributionPtr alias), then every ``name->method(`` whose pointee
    is a known virtual interface — and every call through a
    std::function object — is flagged when it appears between the
    begin/end markers. Markers live in comments, so they are matched
    against the raw lines.
    """
    ptr_rx = re.compile(
        r"\b([A-Z]\w*)\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*[=;,)]")
    smart_rx = re.compile(
        r"\bstd\s*::\s*(?:unique|shared)_ptr\s*<\s*(?:const\s+)?"
        r"([A-Z]\w*)[^>]*>\s*&?\s*(?:const\s+)?([A-Za-z_]\w*)")
    alias_rx = re.compile(
        r"\bDistributionPtr\s*&?\s*(?:const\s+)?([A-Za-z_]\w*)")
    fn_rx = re.compile(
        r"\bstd\s*::\s*function\s*<[^;{]*>\s*&?\s*([A-Za-z_]\w*)")
    ptr_types = {}
    fn_objects = set()
    for line in code_lines:
        for m in ptr_rx.finditer(line):
            ptr_types[m.group(2)] = m.group(1)
        for m in smart_rx.finditer(line):
            ptr_types[m.group(2)] = m.group(1)
        for m in alias_rx.finditer(line):
            ptr_types[m.group(1)] = "Distribution"
        for m in fn_rx.finditer(line):
            fn_objects.add(m.group(1))

    findings = []
    call_rx = re.compile(r"\b([A-Za-z_]\w*)\s*->\s*(\w+)\s*\(")
    in_region = False
    begin_ln = 0
    for ln, (raw, line) in enumerate(zip(raw_lines, code_lines),
                                     start=1):
        if HOT_BEGIN_RE.search(raw):
            if in_region:
                findings.append(
                    (ln, "nested dpx-hot-loop begin (previous begin "
                         "at line %d has no end)" % begin_ln))
            in_region = True
            begin_ln = ln
            continue
        if HOT_END_RE.search(raw):
            if not in_region:
                findings.append((ln, "dpx-hot-loop end without begin"))
            in_region = False
            continue
        if not in_region:
            continue
        for m in call_rx.finditer(line):
            base = ptr_types.get(m.group(1))
            if base in VIRTUAL_BASES:
                findings.append(
                    (ln, "%s->%s() dispatches through %s per op"
                         % (m.group(1), m.group(2), base)))
        for name in sorted(fn_objects):
            if re.search(r"\b%s\s*\(" % re.escape(name), line):
                findings.append(
                    (ln, "%s(...) calls a std::function per op"
                         % name))
    if in_region:
        findings.append(
            (begin_ln, "dpx-hot-loop begin without matching end"))
    return findings


def in_dirs(*prefixes):
    return lambda p: any(p.startswith(pre) for pre in prefixes)


RULES = [
    Rule(
        "DPX001", "nondeterministic-randomness",
        "all randomness must flow from duplexity::Rng so streams are "
        "seeded and replayable",
        line_regex_checker(
            r"\bstd\s*::\s*random_device\b|\bs?rand\s*\(|"
            r"\b[dlm]rand48\s*\(|\brandom\s*\(")),
    Rule(
        "DPX002", "wall-clock-in-sim",
        "clock reads in src/ risk timing leaking into simulated "
        "results; annotate reporting-only timing",
        line_regex_checker(
            r"\bstd\s*::\s*chrono\s*::\s*"
            r"(system_clock|steady_clock|high_resolution_clock)\b|"
            r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
            r"\bstd\s*::\s*time\s*\("),
        path_filter=in_dirs("src/")),
    Rule(
        "DPX003", "raw-threading",
        "concurrency outside src/sim/thread_pool.* bypasses the "
        "pool's deterministic scheduling and merge order",
        line_regex_checker(
            r"\bstd\s*::\s*(thread|jthread|async|mutex|recursive_mutex|"
            r"timed_mutex|shared_mutex|condition_variable(_any)?|"
            r"once_flag|call_once|promise|future|packaged_task)\b"),
        exempt=("src/sim/thread_pool.hh", "src/sim/thread_pool.cc")),
    Rule(
        "DPX004", "unordered-iteration",
        "hash-order iteration feeds ASLR/libstdc++-dependent order "
        "into result paths; iterate ordered containers or sort first",
        check_unordered_iteration),
    Rule(
        "DPX005", "float-accumulator",
        "float accumulators lose low bits the golden tests pin; "
        "accumulate in double",
        line_regex_checker(r"\bfloat\b"),
        path_filter=in_dirs("src/sim/stats", "src/queueing/")),
    Rule(
        "DPX006", "include-guard",
        "headers guard with DPX_<PATH>_HH so guards never collide "
        "when files move",
        check_include_guard,
        path_filter=in_dirs("src/")),
    Rule(
        "DPX007", "panic-vs-fatal",
        "direct abort()/exit()/assert() skip the failure hook and "
        "file:line report; use DPX_CHECK/panic() or fatal()",
        line_regex_checker(
            r"\bstd\s*::\s*(abort|exit|terminate|quick_exit|_Exit)\b|"
            r"\babort\s*\(|\bexit\s*\(|\bassert\s*\("),
        exempt=("src/sim/logging.hh", "src/sim/logging.cc",
                "src/sim/check.hh")),
    Rule(
        "DPX008", "hot-loop-indirect-call",
        "virtual/std::function calls inside dpx-hot-loop regions "
        "reintroduce the per-op dispatch the split-phase commit pass "
        "removed; hoist to the precompute phase or waive with a "
        "reason",
        check_hot_loop_calls),
    Rule(
        "DPX009", "raw-simd-outside-wrapper",
        "vector extensions/intrinsics outside src/sim/simd.hh bypass "
        "setSimdEnabled's forced-scalar switch and the -DDPX_SIMD=OFF "
        "build; use the simd:: typedefs and helpers",
        line_regex_checker(
            r"#\s*include\s*<[a-z0-9_]*intrin\.h>|"
            r"#\s*include\s*<arm_(neon|sve)\.h>|"
            r"\b__builtin_(shuffle|shufflevector|convertvector)\b|"
            r"\b__builtin_ia32_\w+|\bvector_size\s*\("),
        exempt=("src/sim/simd.hh",)),
]


def collect_allows(raw_lines):
    """Return (file_allows, line_allows, bad_allows, annotations).

    line_allows maps line number -> set of rule ids suppressed there.
    A trailing allow covers its own line; an allow on a comment-only
    line covers the contiguous non-blank block it sits in.
    annotations records every waiver's own location for the
    unused-waiver report: (annotation line, rule id, kind).
    """
    file_allows = set()
    bad_allows = []
    line_allows = {}
    annotations = []
    comment_only_rx = re.compile(r"^\s*(//|\*|/\*)")
    for ln, line in enumerate(raw_lines, start=1):
        for m in ALLOW_FILE_RE.finditer(line):
            rule_id, colon = m.group(1), m.group(2)
            if colon != ":" or not line[m.end():].strip():
                bad_allows.append((ln, rule_id))
            else:
                file_allows.add(rule_id)
                annotations.append((ln, rule_id, "allow-file"))
        for m in ALLOW_RE.finditer(line):
            rule_id = m.group(1)
            if comment_only_rx.match(line):
                # Cover the whole contiguous block around this line.
                lo = ln
                while lo > 1 and raw_lines[lo - 2].strip():
                    lo -= 1
                hi = ln
                while hi < len(raw_lines) and raw_lines[hi].strip():
                    hi += 1
                span = range(lo, hi + 1)
            else:
                span = (ln,)
            annotations.append((ln, rule_id, "allow"))
            for covered in span:
                line_allows.setdefault(covered, set()).add(rule_id)
    return file_allows, line_allows, bad_allows, annotations


def lint_file(path, relpath, rules, all_paths):
    """Lint one file.  Returns (findings, unused_waivers) or None on
    a config error.  unused_waivers lists waiver annotations that
    suppressed nothing across the full rule set (meaningful only when
    every rule ran — main() guards that for the report flag)."""
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as err:
        print("dpx-lint: cannot read %s: %s" % (path, err),
              file=sys.stderr)
        return None
    raw_lines = text.split("\n")
    code_lines = strip_code(text).split("\n")
    file_allows, line_allows, bad_allows, annotations = \
        collect_allows(raw_lines)
    if bad_allows:
        for ln, rule_id in bad_allows:
            print("%s:%d: allow-file(%s) requires a reason: "
                  "// dpx-lint: allow-file(%s): <why>"
                  % (relpath, ln, rule_id, rule_id), file=sys.stderr)
        return None  # malformed allow-file: config error
    findings = []
    used_file = set()       # rule ids a file-wide allow suppressed
    used_line = set()       # (line, rule id) a line allow suppressed
    for rule in rules:
        if not rule.applies_to(relpath, all_paths):
            continue
        for ln, detail in rule.checker(relpath, raw_lines, code_lines):
            # File-wide allows take precedence (they always did: the
            # old code skipped the rule outright), so a line allow
            # shadowed by one never registers a use.
            if rule.rule_id in file_allows:
                used_file.add(rule.rule_id)
                continue
            if rule.rule_id in line_allows.get(ln, ()):
                used_line.add((ln, rule.rule_id))
                continue
            findings.append((relpath, ln, rule, detail))
    unused = []
    own_rules = {rule.rule_id for rule in rules}
    comment_only_rx = re.compile(r"^\s*(//|\*|/\*)")
    for ln, rule_id, kind in annotations:
        if rule_id not in own_rules:
            # A waiver for a rule this tool does not implement (the
            # DPX1xx semantic rules live in dpx_analyze.py) is not
            # "unused" — it is simply not ours to judge.
            continue
        if kind == "allow-file":
            if rule_id not in used_file:
                unused.append((relpath, ln, rule_id, kind))
            continue
        # Recompute the span this line allow covered.
        if comment_only_rx.match(raw_lines[ln - 1]):
            lo = ln
            while lo > 1 and raw_lines[lo - 2].strip():
                lo -= 1
            hi = ln
            while hi < len(raw_lines) and raw_lines[hi].strip():
                hi += 1
            span = range(lo, hi + 1)
        else:
            span = (ln,)
        if not any((covered, rule_id) in used_line for covered in span):
            unused.append((relpath, ln, rule_id, kind))
    return findings, unused


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print("dpx-lint: no such path: %s" % p, file=sys.stderr)
            return None
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dpx_lint.py",
        description="determinism-contract lint for the duplexity tree")
    parser.add_argument("paths", nargs="*",
                        default=["src", "bench", "examples"],
                        help="files or directories (default: "
                             "src bench examples)")
    parser.add_argument("--rule", action="append", metavar="DPX00N",
                        help="run only these rules")
    parser.add_argument("--all-paths", action="store_true",
                        help="ignore per-rule path scoping (fixture "
                             "self-tests)")
    parser.add_argument("--root", default=None,
                        help="repo root for path scoping (default: "
                             "the directory containing tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--report-unused-waivers", action="store_true",
                        help="treat allow()/allow-file() annotations "
                             "that suppress nothing as violations")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print("%s  %-28s %s" % (rule.rule_id, rule.name,
                                    rule.rationale))
        return 0

    rules = RULES
    if args.rule:
        known = {r.rule_id: r for r in RULES}
        unknown = [r for r in args.rule if r not in known]
        if unknown:
            print("dpx-lint: unknown rule(s): %s" % ", ".join(unknown),
                  file=sys.stderr)
            return 2
        rules = [known[r] for r in args.rule]

    if args.report_unused_waivers and args.rule:
        # With a rule subset, a waiver for an unselected rule would
        # look unused even though it still suppresses findings.
        print("dpx-lint: --report-unused-waivers requires the full "
              "rule set (drop --rule)", file=sys.stderr)
        return 2

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = gather_files(args.paths)
    if files is None:
        return 2

    total = 0
    config_error = False
    for path in files:
        rel = os.path.relpath(os.path.abspath(path), root)
        rel = rel.replace(os.sep, "/")
        result = lint_file(path, rel, rules, args.all_paths)
        if result is None:
            config_error = True
            continue
        findings, unused = result
        for relpath, ln, rule, detail in findings:
            print("%s:%d: %s [%s]: %s\n    rationale: %s"
                  % (relpath, ln, rule.rule_id, rule.name, detail,
                     rule.rationale))
            total += 1
        if args.report_unused_waivers:
            for relpath, ln, rule_id, kind in unused:
                print("%s:%d: unused waiver [%s(%s)]: suppresses no "
                      "finding — remove it or re-justify the rule "
                      "violation it was written for"
                      % (relpath, ln, kind, rule_id))
                total += 1
    if config_error:
        return 2
    if total:
        print("dpx-lint: %d violation%s" % (total,
                                            "" if total == 1 else "s"),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
