#!/usr/bin/env python3
"""dpx-analyze: semantic analyzer + fast-path contract auditor.

dpx_lint.py (DPX001-009) matches tokens; it cannot see through
``auto``, typedefs, member types, or call graphs, and the repo's
fast-path contract — every runtime switch ships a GOLDEN differential
test and a bench activation counter — was enforced only by reviewer
convention.  This tool closes both gaps with a per-TU *semantic
index*: type-resolved declarations, records with virtual/final method
sets, range-for statements with the real range type, accumulation
sites, and a cross-TU call graph.

Backends
--------
Two interchangeable front ends produce the same index:

* ``clang``: consumes ``compile_commands.json`` and per-TU clang AST
  dumps (``clang++ -fsyntax-only -Xclang -ast-dump=json``).  Types
  come from the real compiler, so resolution is exact.
* ``builtin``: a reduced C++ front end written here — a brace/scope
  scanner plus declaration and alias tables with iterative type
  resolution.  No toolchain dependency; precision is pinned by the
  fixture self-tests.

``--backend auto`` (the default) picks clang when a working
``clang++`` is on PATH and a compile database is available, and falls
back to builtin per TU on any failure, so the analyzer runs anywhere
the repo builds.  Either way the extracted index is cached in
``.dpx-analyze-cache/`` keyed by content hash (file bytes + backend +
analyzer version), so incremental runs only re-parse changed files.

Rules
-----
DPX101  semantic-unordered-iteration
        Range-fors (and .begin()/.end() walks) whose *resolved* range
        type — through auto, typedefs, using aliases, members, and
        function return types — is a std::unordered_* container.
        Upgrades DPX004, which only sees literal spellings.
DPX102  float-accumulation
        ``+=``/``-=``/``*=``/``x = x + …`` in a loop onto an lvalue
        whose resolved type is single-precision ``float``, in
        stats/queueing code, outside the blessed accumulators.
        Upgrades DPX005, which only sees the ``float`` keyword.
DPX103  hot-loop-virtual-call
        Calls inside ``// dpx-hot-loop:`` regions that dispatch
        through a pointer/reference whose resolved static type leaves
        the callee virtual (not ``final``, class not ``final``), or
        through a std::function.  Upgrades DPX008's hard-coded
        four-interface list with actual callee resolution:
        devirtualized (``final``) calls no longer need waivers.
DPX104  banned-api-reachability
        Call-graph reachability of banned primitives (raw RNG, wall
        clocks) from hot entry points (functions containing a
        dpx-hot-loop region or marked ``// dpx-analyze: hot-entry``).
        DPX001/002 waivers say "reporting only" — this rule catches a
        hot path that reaches the waived site anyway.
DPX105  mutable-global-in-sim
        Mutable non-const globals (namespace scope or function-local
        static) in src/: shared state that silently couples
        deterministic runs.  Sanctioned instances (forced-slow switch
        flags, memo caches behind the DPX003-waived locks) carry
        reasoned waivers.
DPX106  scalar-libm-on-hot-path
        Call-graph reachability of scalar ``std::log``/``std::log1p``/
        ``std::exp`` from hot entry points, outside sim/vmath.{hh,cc}
        (which owns the libm fallbacks).  A hot draw loop that still
        calls libm directly is bypassing the replica kernels; findings
        land at the call site so reasoned waivers (e.g. LogNormal's
        ``std::log(1-u)``, which is not bitwise ``log1p(-u)``) sit
        next to the call they justify.
DPX110  fast-path-contract
        Discovers every ``set<Name>Enabled`` switch and fast-path
        config flag declared in src/ and fails unless each one is
        (a) exercised by a GOLDEN-labeled differential test (from
        tests/CMakeLists.txt's dpx_add_test(... GOLDEN ...) source
        lists) and (b) surfaced in bench/hotpath_bench.cc's
        ``fast_path`` activation subtree via a ``// dpx-fast-path:``
        annotation whose counter key exists in the committed
        BENCH_hotpath.json — or carries a reasoned waiver.  The
        discovered registry is emitted as tools/contract_registry.json
        (``--write-registry``; ``--check-registry`` gates staleness).

Waivers reuse the dpx-lint syntax: ``// dpx-lint: allow(DPX1NN)`` on
or above the line, ``allow-file(DPX1NN): <reason>`` for a file.
DPX110 waivers must carry a reason after the closing parenthesis.

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from dpx_lint import (  # noqa: E402
    SOURCE_EXTENSIONS, collect_allows, gather_files, strip_code)

ANALYZE_VERSION = 1

UNORDERED_RX = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")
SET_ENABLED_RX = re.compile(r"^set[A-Z]\w*Enabled$")
CONFIG_FLAG_RX = re.compile(
    r"fast_forward|fast_path|event_driven|split_phase|soa|simd|idle_ff")
HOT_BEGIN_RX = re.compile(r"//\s*dpx-hot-loop:\s*begin\b")
HOT_END_RX = re.compile(r"//\s*dpx-hot-loop:\s*end\b")
HOT_ENTRY_RX = re.compile(r"//\s*dpx-analyze:\s*hot-entry\b")
FAST_PATH_NOTE_RX = re.compile(r"//\s*dpx-fast-path:\s*(.+?)\s*$")
BENCH_KEY_RX = re.compile(r'\\"([a-z0-9_]+)\\"\s*:')

# Banned primitives for DPX104 — the DPX001/002 token sets, each with
# a short display name.
BANNED_APIS = [
    ("std::random_device", re.compile(r"\bstd\s*::\s*random_device\b")),
    ("rand()", re.compile(r"\b(?:s?rand|[dlm]rand48|random)\s*\(")),
    ("std::chrono clock", re.compile(
        r"\bstd\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
        r"high_resolution_clock)\b")),
    ("gettimeofday()", re.compile(r"\bgettimeofday\s*\(")),
    ("clock_gettime()", re.compile(r"\bclock_gettime\s*\(")),
    ("std::time()", re.compile(r"\bstd\s*::\s*time\s*\(")),
]

# Scalar libm transcendentals for DPX106 — calls that should route
# through the vmath replica kernels when they sit on a hot path.  The
# `\s*\(` suffix keeps log2/log10/expm1 out of scope on purpose:
# vmath only replicates log1p/log/exp-shaped draws.
MATH_APIS = [
    ("std::log1p", re.compile(r"\bstd\s*::\s*log1p\s*\(")),
    ("std::log", re.compile(r"\bstd\s*::\s*log\s*\(")),
    ("std::exp", re.compile(r"\bstd\s*::\s*exp\s*\(")),
]

# vmath owns the libm references: its probe and fallback paths call
# std::log1p by design, so DPX106 never looks inside it.
MATH_EXEMPT_FILES = ("src/sim/vmath.hh", "src/sim/vmath.cc")

# Accumulator types allowed to do float math internally (they own the
# precision contract and are golden-tested).
BLESSED_ACCUMULATORS = frozenset(
    ("MeanAccumulator", "SampleStats", "QuantileSketch"))

CPP_KEYWORDS = frozenset((
    "alignas", "alignof", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "continue", "decltype",
    "default", "delete", "do", "double", "else", "enum", "explicit",
    "extern", "false", "float", "for", "friend", "goto", "if",
    "inline", "int", "long", "mutable", "namespace", "new",
    "noexcept", "nullptr", "operator", "private", "protected",
    "public", "register", "return", "short", "signed", "sizeof",
    "static", "static_assert", "static_cast", "struct", "switch",
    "template", "this", "throw", "true", "try", "typedef",
    "typeid", "typename", "union", "unsigned", "using", "virtual",
    "void", "volatile", "while", "co_await", "co_return", "co_yield",
    "dynamic_cast", "reinterpret_cast", "const_cast", "final",
    "override",
))

QUALIFIER_WORDS = frozenset((
    "static", "inline", "constexpr", "const", "mutable",
    "thread_local", "extern", "register", "volatile", "virtual",
    "explicit", "friend", "typename", "struct", "class", "enum",
))


def norm_ws(s):
    return re.sub(r"\s+", " ", s).strip()


def split_toplevel(s, sep):
    """Split on sep outside <>, (), [], {} nesting."""
    out, depth, start = [], 0, 0
    i, n = 0, len(s)
    while i < n:
        c = s[i]
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            # '->' and comparison '>' false positives: only track '>'
            # as nesting when depth > 0 (a stray '>' at depth 0 is
            # left alone).
            if depth > 0:
                depth -= 1
        elif c == sep and depth == 0:
            out.append(s[start:i])
            start = i + 1
        i += 1
    out.append(s[start:])
    return out


def find_matching(code, i, open_ch, close_ch):
    """Index of the brace matching code[i] (an open_ch), else -1."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def blank_preprocessor(code):
    """Blank out preprocessor lines (including continuations) so
    directives never look like statements."""
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


# --------------------------------------------------------------------
# The semantic index (shared by both backends; JSON-serializable).
# --------------------------------------------------------------------

class TuIndex:
    """Per-file semantic index."""

    def __init__(self, relpath):
        self.file = relpath
        # alias name (or "Record::name") -> underlying type text
        self.aliases = {}
        # record name -> description dict
        self.records = {}
        # [line, name, type, storage] at namespace scope
        self.globals = []
        # [line, name, type, enclosing function qname]
        self.local_statics = []
        # list of function dicts (see parse_tu)
        self.functions = []
        # free-function name -> return type (prototypes + defs)
        self.fn_returns = {}

    def to_json(self):
        return {
            "version": ANALYZE_VERSION,
            "file": self.file,
            "aliases": self.aliases,
            "records": self.records,
            "globals": self.globals,
            "local_statics": self.local_statics,
            "functions": self.functions,
            "fn_returns": self.fn_returns,
        }

    @classmethod
    def from_json(cls, d):
        tu = cls(d["file"])
        tu.aliases = d["aliases"]
        tu.records = d["records"]
        tu.globals = d["globals"]
        tu.local_statics = d["local_statics"]
        tu.functions = d["functions"]
        tu.fn_returns = d["fn_returns"]
        return tu


def new_record(name, line, kind, final=False, bases=None):
    return {
        "name": name,
        "kind": kind,
        "line": line,
        "final": final,
        "bases": bases or [],
        "fields": {},          # name -> type
        "field_lines": {},     # name -> decl line
        "methods": {},         # name -> return type
        "method_lines": {},    # name -> decl line
        "virtual": [],         # virtual (incl. override) method names
        "final_methods": [],   # methods marked final
    }


# --------------------------------------------------------------------
# Builtin backend: reduced C++ front end.
# --------------------------------------------------------------------

DECL_TYPE_RX = re.compile(
    r"^((?:(?:static|inline|constexpr|const|mutable|thread_local|"
    r"extern|register|volatile|typename|struct|class)\s+)*)"
    r"((?:::)?[A-Za-z_][\w:]*(?:\s*<.*>)?(?:\s+const)?"
    r"(?:\s*[*&]+\s*(?:const\s*)?)*)\s+"
    r"([A-Za-z_]\w*)\s*(.*)$", re.S)

ACCESS_SPEC_RX = re.compile(r"^\s*(?:public|private|protected)\s*:")

RECORD_HEAD_RX = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(final\b)?\s*(?::\s*(.*))?$",
    re.S)

NS_HEAD_RX = re.compile(r"\bnamespace\s*([A-Za-z_]\w*)?\s*$")

CONTROL_HEAD_RX = re.compile(
    r"\b(for|while|if|switch|catch|else|do|try)\b")

_CHAIN_SEG = r"[A-Za-z_]\w*(?:\s*\(\s*\))?"
MEMBER_CALL_RX = re.compile(
    r"\b(" + _CHAIN_SEG + r"(?:\s*(?:->|\.)\s*" + _CHAIN_SEG +
    r")*)\s*(->|\.)\s*([A-Za-z_]\w*)\s*\(")
QUAL_CALL_RX = re.compile(
    r"\b((?:[A-Za-z_]\w*::)+)([A-Za-z_]\w*)\s*\(")
FREE_CALL_RX = re.compile(
    r"(?<![\w.:>])([a-z_]\w*)\s*\(")
COMPOUND_ASSIGN_RX = re.compile(
    r"([A-Za-z_][\w.>\[\]-]*?)\s*([+\-*/]=)(?!=)")
SELF_ASSIGN_RX = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*\1\s*[+\-*/]")
RANGE_FOR_RX = re.compile(r"\bfor\s*\(")

# `Type name{...}` heads: qualifiers + one type token + identifier,
# no parens — the braces are an initializer, not a scope.
BRACE_INIT_HEAD_RX = re.compile(
    r"^(?:(?:static|inline|constexpr|const|mutable|thread_local|"
    r"extern)\s+)*(?:::)?[A-Za-z_][\w:]*(?:\s*<[^(]*>)?"
    r"(?:\s*[*&]+)?(?:\s+[A-Za-z_]\w*)+\s*$")
NON_DECL_HEAD_WORDS = frozenset((
    "namespace", "class", "struct", "enum", "union", "using",
    "return", "typedef", "template", "else", "do", "try", "catch",
    "case", "default", "public", "private", "protected", "new",
    "throw", "delete", "operator", "goto", "friend",
))


def strip_template_prefix(s):
    s = s.lstrip()
    while s.startswith("template"):
        lt = s.find("<")
        if lt < 0:
            break
        gt = find_matching(s, lt, "<", ">")
        if gt < 0:
            break
        s = s[gt + 1:].lstrip()
    return s


ATTRIBUTE_RX = re.compile(r"__attribute__\s*\(\([^;]*?\)\)")


def parse_decl(stmt, paren_init=True):
    """Parse one declaration statement.  Returns a list of
    (name, type-with-qualifiers, initializer-or-None), or [] when the
    statement is not a declaration.  paren_init accepts the direct
    ctor form `Type name(args)` — only valid at function scope, where
    that shape cannot be a prototype."""
    s = norm_ws(ATTRIBUTE_RX.sub("", stmt))
    s = ACCESS_SPEC_RX.sub("", s).strip()
    s = strip_template_prefix(s)
    if not paren_init and s and "(" in s.split("=")[0].split("{")[0]:
        return []
    if not s or "(" in s.split("=")[0].split("{")[0] and \
            not re.match(r"^[\w\s:<>,*&]+\([^()]*\)$", s):
        # Calls and control statements have '(' before any '='; the
        # one declaration shape with parens we keep is the direct
        # ctor call `Type name(args)`.
        m = re.match(
            r"^((?:[\w:]+\s+)*(?:::)?[A-Za-z_][\w:]*(?:\s*<.*?>)?"
            r"(?:\s*[*&]+)?)\s+([A-Za-z_]\w*)\s*\(.*\)$", s)
        if not m:
            return []
        tname = m.group(1).strip()
        head = tname.split()[-1].split("<")[0].lstrip(":")
        if head in CPP_KEYWORDS and head not in ("auto",):
            return []
        return [(m.group(2), tname, None)]
    m = DECL_TYPE_RX.match(s)
    if not m:
        return []
    quals, tname, name, rest = m.groups()
    head = tname.split("<")[0].strip().split()[-1] \
        if tname.split("<")[0].strip() else ""
    head = head.lstrip(":").rstrip("*& ")
    first = tname.split("<")[0].strip().split()[0].lstrip(":")
    if first in CPP_KEYWORDS and first not in (
            "auto", "bool", "char", "double", "float", "int", "long",
            "short", "signed", "unsigned", "void"):
        return []
    if name in CPP_KEYWORDS:
        return []
    rest = rest.strip()
    init = None
    full_type = (quals + tname).strip()
    if rest.startswith("="):
        init = rest[1:].strip()
    elif rest.startswith("{") or rest.startswith("("):
        init = rest.strip("{}()").strip()
    elif rest.startswith("["):
        pass  # array declarator
    elif rest.startswith(","):
        # Multiple declarators sharing one base type.
        out = [(name, full_type, None)]
        for part in split_toplevel(rest[1:], ","):
            pm = re.match(r"^\s*([A-Za-z_]\w*)\s*(=\s*(.*))?$", part)
            if pm:
                out.append((pm.group(1), full_type,
                            (pm.group(3) or "").strip() or None))
        return out
    elif rest:
        return []
    return [(name, full_type, init)]


def parse_signature(head, record, ns):
    """Parse a function-definition head.  Returns a dict with name,
    cls, ns, ret, params — or None when the head is not a function."""
    h = norm_ws(head)
    h = ACCESS_SPEC_RX.sub("", h).strip()
    h = strip_template_prefix(h)
    if not h:
        return None
    # Parameter list: first '(' at angle depth 0.
    depth = 0
    paren = -1
    for i, c in enumerate(h):
        if c == "<":
            depth += 1
        elif c == ">":
            if depth > 0:
                depth -= 1
        elif c == "(" and depth == 0:
            paren = i
            break
    if paren < 0:
        return None
    close = find_matching(h, paren, "(", ")")
    if close < 0:
        close = len(h) - 1
    m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*)(~?[A-Za-z_]\w*)\s*$",
                  h[:paren])
    if not m:
        return None
    qual, name = m.group(1), m.group(2)
    if name in CPP_KEYWORDS and name not in ("operator",):
        return None
    ret = h[:m.start()].strip()
    for word in ("virtual", "static", "inline", "constexpr",
                 "explicit", "friend"):
        ret = re.sub(r"\b%s\b" % word, "", ret).strip()
    cls = None
    if qual:
        parts = [p for p in re.split(r"\s*::\s*", qual) if p]
        if parts:
            cls = parts[-1]
    elif record:
        cls = record
    params = {}
    for part in split_toplevel(h[paren + 1:close], ","):
        part = split_toplevel(part, "=")[0].strip()
        pm = re.match(r"^(.*?)([A-Za-z_]\w*)\s*(?:\[\s*\])?$", part,
                      re.S)
        if pm and pm.group(1).strip():
            params[pm.group(2)] = norm_ws(pm.group(1))
    suffix = h[close + 1:]
    return {
        "name": name, "cls": cls, "ns": ns, "ret": ret,
        "params": params,
        "virtual": bool(re.search(r"\bvirtual\b", h[:paren])
                        or re.search(r"\boverride\b|\bfinal\b",
                                     suffix)),
        "final": bool(re.search(r"\bfinal\b", suffix)),
        "pure": bool(re.search(r"=\s*0\s*$", suffix)),
    }


class _Frame:
    __slots__ = ("kind", "name", "line", "fn", "loop_start")

    def __init__(self, kind, name=None, line=0, fn=None):
        self.kind = kind
        self.name = name
        self.line = line
        self.fn = fn


def parse_tu_builtin(relpath, text):
    """The reduced front end: one pass over the stripped text with a
    scope stack, then per-function body analysis."""
    tu = TuIndex(relpath)
    code = blank_preprocessor(strip_code(text))
    n = len(code)
    # Position -> line table.
    line_at = []
    ln = 1
    for c in code:
        line_at.append(ln)
        if c == "\n":
            ln += 1
    line_at.append(ln)

    stack = [_Frame("global")]
    ns_stack = []
    paren = 0
    i = 0
    stmt_start = 0

    def stmt_line(start, end):
        # The statement region starts right after the previous ';'/
        # '{'/'}', which may be lines of blanks and stripped comments
        # above the declaration itself — report the first token's line.
        j = start
        while j < end and code[j] in " \t\r\n":
            j += 1
        return line_at[j if j < end else start]

    def cur_record():
        for fr in reversed(stack):
            if fr.kind == "record":
                return fr.name
            if fr.kind in ("function",):
                return None
        return None

    def cur_fn():
        for fr in reversed(stack):
            if fr.fn is not None:
                return fr.fn
        return None

    def process_statement(stmt, line):
        frame = stack[-1]
        s = norm_ws(ATTRIBUTE_RX.sub("", stmt))
        s2 = ACCESS_SPEC_RX.sub("", s).strip()
        if not s2 or frame.kind == "enum":
            return
        um = re.match(r"^using\s+([A-Za-z_]\w*)\s*=\s*(.+)$", s2)
        tm = re.match(r"^typedef\s+(.+?)\s+([A-Za-z_]\w*)$", s2)
        if um or tm:
            name = um.group(1) if um else tm.group(2)
            target = um.group(2) if um else tm.group(1)
            rec = cur_record()
            key = "%s::%s" % (rec, name) if rec and \
                frame.kind == "record" else name
            tu.aliases[key] = norm_ws(target)
            return
        if s2.startswith("using ") or s2.startswith("namespace "):
            return
        if frame.kind == "record":
            rec = tu.records.get(frame.name)
            sig = parse_signature(s2, frame.name, "::".join(ns_stack))
            if sig and rec is not None and "(" in s2:
                rec["methods"][sig["name"]] = sig["ret"]
                rec["method_lines"].setdefault(sig["name"], line)
                if sig["virtual"] or sig["pure"]:
                    if sig["name"] not in rec["virtual"]:
                        rec["virtual"].append(sig["name"])
                if sig["final"]:
                    rec["final_methods"].append(sig["name"])
                return
            for name, typ, init in parse_decl(s2, paren_init=False):
                if rec is not None:
                    rec["fields"][name] = typ
                    rec["field_lines"].setdefault(name, line)
            return
        if frame.kind in ("global", "namespace"):
            sig = parse_signature(s2, None, "::".join(ns_stack))
            if sig and "(" in s2 and \
                    not parse_decl(s2, paren_init=False):
                if sig["cls"] is None:
                    tu.fn_returns.setdefault(sig["name"], sig["ret"])
                return
            for name, typ, init in parse_decl(s2, paren_init=False):
                tu.globals.append([line, name, typ,
                                   "::".join(ns_stack)])
            return
        # Function / control / block scope: local declarations.
        fn = cur_fn()
        if fn is None:
            return
        rf = extract_range_for(s2)
        if rf:
            fn["rangefors"].append([line, rf[0], rf[1]])
        for name, typ, init in parse_decl(s2):
            fn["locals"].append([line, name, typ, init])
            if re.match(r"^static\b", typ):
                tu.local_statics.append(
                    [line, name, typ, fn_qname(fn)])

    def extract_range_for(s):
        m = RANGE_FOR_RX.search(s)
        if not m:
            return None
        close = find_matching(s, m.end() - 1, "(", ")")
        if close < 0:
            return None
        inner = s[m.end():close]
        if ";" in inner:
            return None
        parts = split_toplevel(inner, ":")
        if len(parts) != 2:
            return None
        return norm_ws(parts[0]), norm_ws(parts[1])

    while i < n:
        c = code[i]
        if c == "(":
            paren += 1
        elif c == ")":
            if paren > 0:
                paren -= 1
        elif c == "{":
            if paren > 0:
                # Lambda body / brace-init inside an argument list:
                # opaque for scoping (body lines are still scanned by
                # the enclosing function's analyzers).
                j = find_matching(code, i, "{", "}")
                if j < 0:
                    break
                i = j
            else:
                head = code[stmt_start:i]
                line = stmt_line(stmt_start, i)
                frame = stack[-1]
                h = norm_ws(ATTRIBUTE_RX.sub("", head))
                h2 = ACCESS_SPEC_RX.sub("", h).strip()
                hs = strip_template_prefix(h2)
                if BRACE_INIT_HEAD_RX.match(hs) and \
                        hs.split()[0] not in NON_DECL_HEAD_WORDS:
                    # `Type name{init};` — the braces belong to the
                    # declaration, not a scope.  Swallow them and let
                    # the terminating ';' process the statement.
                    j = find_matching(code, i, "{", "}")
                    if j < 0:
                        break
                    i = j + 1
                    continue
                opaque = (not hs or hs.endswith("=")
                          or hs.endswith(",") or hs.endswith("return")
                          or re.search(r"\breturn\b[^;]*$", hs))
                if opaque:
                    j = find_matching(code, i, "{", "}")
                    if j < 0:
                        break
                    i = j
                    stmt_start = i + 1
                    i += 1
                    continue
                nsm = NS_HEAD_RX.search(hs)
                recm = RECORD_HEAD_RX.search(hs) \
                    if "enum" not in hs.split() else None
                if frame.kind in ("global", "namespace", "record") \
                        and nsm:
                    fr = _Frame("namespace", nsm.group(1) or "", line)
                    ns_stack.append(nsm.group(1) or "<anon>")
                    stack.append(fr)
                elif frame.kind in ("global", "namespace", "record") \
                        and recm:
                    name = recm.group(2)
                    bases = []
                    if recm.group(4):
                        for b in split_toplevel(recm.group(4), ","):
                            b = re.sub(
                                r"\b(public|private|protected|"
                                r"virtual)\b", "", b).strip()
                            if b:
                                bases.append(b.split("<")[0].strip())
                    tu.records.setdefault(name, new_record(
                        name, line, recm.group(1),
                        final=bool(recm.group(3)), bases=bases))
                    stack.append(_Frame("record", name, line))
                elif "enum" in hs.split():
                    stack.append(_Frame("enum", None, line))
                elif frame.kind in ("global", "namespace", "record"):
                    sig = parse_signature(hs, cur_record(),
                                          "::".join(ns_stack))
                    if sig:
                        fn = {
                            "name": sig["name"], "cls": sig["cls"],
                            "ns": sig["ns"], "ret": sig["ret"],
                            "line0": line, "line1": line,
                            "params": sig["params"], "locals": [],
                            "rangefors": [], "loops": [],
                        }
                        tu.functions.append(fn)
                        if sig["cls"] is None:
                            tu.fn_returns.setdefault(sig["name"],
                                                     sig["ret"])
                        else:
                            rec = tu.records.get(sig["cls"])
                            if rec is not None:
                                rec["methods"].setdefault(sig["name"],
                                                          sig["ret"])
                                rec["method_lines"].setdefault(
                                    sig["name"], line)
                                if sig["virtual"] and sig["name"] \
                                        not in rec["virtual"]:
                                    rec["virtual"].append(sig["name"])
                        stack.append(_Frame("function", sig["name"],
                                            line, fn))
                    else:
                        stack.append(_Frame("block", None, line))
                else:
                    # Inside a function: control flow or plain block.
                    kind = "block"
                    cm = CONTROL_HEAD_RX.search(hs)
                    if cm and cm.group(1) in ("for", "while", "do"):
                        kind = "loop"
                    fr = _Frame(kind, None, line)
                    fr.fn = None
                    fn = cur_fn()
                    rf = extract_range_for(hs)
                    if fn is not None and rf:
                        fn["rangefors"].append([line, rf[0], rf[1]])
                    stack.append(fr)
                    if kind == "loop" and fn is not None:
                        fr.loop_start = line
            stmt_start = i + 1
        elif c == "}":
            if paren == 0:
                if len(stack) > 1:
                    fr = stack.pop()
                    endline = line_at[i]
                    if fr.kind == "namespace":
                        if ns_stack:
                            ns_stack.pop()
                    elif fr.kind == "function" and fr.fn is not None:
                        fr.fn["line1"] = endline
                    elif fr.kind == "loop":
                        fn = cur_fn()
                        if fn is not None:
                            fn["loops"].append([fr.line, endline])
                stmt_start = i + 1
        elif c == ";" and paren == 0:
            process_statement(code[stmt_start:i],
                              stmt_line(stmt_start, i))
            stmt_start = i + 1
        i += 1

    analyze_bodies(tu, code.split("\n"))
    return tu


def fn_qname(fn):
    if fn.get("cls"):
        return "%s::%s" % (fn["cls"], fn["name"])
    return fn["name"]


def analyze_bodies(tu, code_lines):
    """Second pass: regex analyzers over each function's body lines
    (covers lambda bodies the scope scanner treated as opaque)."""
    for fn in tu.functions:
        calls = []
        accums = []
        banned = []
        lo, hi = fn["line0"], min(fn["line1"], len(code_lines))
        for ln in range(lo, hi + 1):
            line = code_lines[ln - 1] if ln - 1 < len(code_lines) \
                else ""
            for m in MEMBER_CALL_RX.finditer(line):
                calls.append([ln, "member", m.group(1), m.group(3)])
            for m in QUAL_CALL_RX.finditer(line):
                qual = m.group(1).rstrip(":")
                calls.append([ln, "qual", qual, m.group(2)])
            for m in FREE_CALL_RX.finditer(line):
                name = m.group(1)
                if name not in CPP_KEYWORDS:
                    calls.append([ln, "free", None, name])
            for m in COMPOUND_ASSIGN_RX.finditer(line):
                accums.append([ln, m.group(1), m.group(2)])
            for m in SELF_ASSIGN_RX.finditer(line):
                accums.append([ln, m.group(1), "= self op"])
            for api, rx in BANNED_APIS:
                if rx.search(line):
                    banned.append([ln, api])
        fn["calls"] = calls
        fn["accums"] = accums
        fn["banned"] = banned


# --------------------------------------------------------------------
# Program-level index + type resolution.
# --------------------------------------------------------------------

SMART_PTR_RX = re.compile(
    r"^(?:std\s*::\s*)?(?:unique_ptr|shared_ptr)\s*<\s*(?:const\s+)?"
    r"([A-Za-z_][\w:]*)")

LITERAL_FLOAT_RX = re.compile(r"^[0-9.]+f\b|^[0-9]+\.[0-9]*f$")
LITERAL_DOUBLE_RX = re.compile(r"^[0-9]+\.[0-9]*(?:[eE][-+]?\d+)?$")


class Program:
    def __init__(self, tus):
        self.tus = tus
        self.records = {}
        self.aliases = {}
        self.fn_returns = {}
        self.functions = []
        self.record_file = {}
        for tu in tus:
            for name, rec in tu.records.items():
                if name in self.records:
                    merged = self.records[name]
                    merged["fields"].update(rec["fields"])
                    merged["methods"].update(rec["methods"])
                    for k, v in rec["method_lines"].items():
                        merged["method_lines"].setdefault(k, v)
                    for k, v in rec.get("field_lines", {}).items():
                        merged["field_lines"].setdefault(k, v)
                    for v in rec["virtual"]:
                        if v not in merged["virtual"]:
                            merged["virtual"].append(v)
                    merged["final_methods"].extend(
                        rec["final_methods"])
                    if rec["bases"]:
                        merged["bases"] = rec["bases"]
                    merged["final"] = merged["final"] or rec["final"]
                else:
                    self.records[name] = rec
                    self.record_file[name] = tu.file
            self.aliases.update(tu.aliases)
            for k, v in tu.fn_returns.items():
                self.fn_returns.setdefault(k, v)
            for fn in tu.functions:
                fn["file"] = tu.file
                self.functions.append(fn)
        self.derived = {}
        for name, rec in self.records.items():
            for b in rec["bases"]:
                self.derived.setdefault(b, []).append(name)

    # -------------- type machinery --------------

    def expand_alias(self, t, rec=None, depth=0):
        if not t or depth > 8:
            return t
        head_m = re.match(r"\s*(?:const\s+)?((?:[A-Za-z_]\w*::)*"
                          r"[A-Za-z_]\w*)", t)
        if not head_m:
            return t
        head = head_m.group(1)
        short = head.split("::")[-1]
        target = None
        if rec and "%s::%s" % (rec, short) in self.aliases:
            target = self.aliases["%s::%s" % (rec, short)]
        elif head in self.aliases:
            target = self.aliases[head]
        elif short in self.aliases and not head.startswith("std::"):
            target = self.aliases[short]
        if target is None or norm_ws(target) == norm_ws(t):
            return t
        new = t[:head_m.start(1)] + target + t[head_m.end(1):]
        return self.expand_alias(new, rec, depth + 1)

    def base_record_name(self, t):
        """Record named by a (possibly pointer/ref/smart-ptr) type."""
        if not t:
            return None
        t = re.sub(r"\b(const|volatile|static|inline|constexpr|"
                   r"mutable|typename|struct|class)\b", "",
                   t).strip()
        t = t.strip("*& ")
        m = SMART_PTR_RX.match(t)
        if m:
            t = m.group(1)
        t = t.split("<")[0].strip().strip("*& ")
        short = t.split("::")[-1]
        if short in self.records:
            return short
        return None

    def field_type(self, rec_name, field):
        seen = set()
        stack = [rec_name]
        while stack:
            r = stack.pop(0)
            if r in seen:
                continue
            seen.add(r)
            rec = self.records.get(r)
            if not rec:
                continue
            if field in rec["fields"]:
                return rec["fields"][field]
            stack.extend(b.split("::")[-1] for b in rec["bases"])
        return None

    def method_ret(self, rec_name, method):
        seen = set()
        stack = [rec_name]
        while stack:
            r = stack.pop(0)
            if r in seen:
                continue
            seen.add(r)
            rec = self.records.get(r)
            if not rec:
                continue
            if method in rec["methods"]:
                return rec["methods"][method]
            stack.extend(b.split("::")[-1] for b in rec["bases"])
        return None

    def is_virtual(self, rec_name, method):
        """(virtual, devirtualized): whether the method dispatches
        virtually through a pointer of static type rec_name, and
        whether final-ness devirtualizes it."""
        seen = set()
        stack = [rec_name]
        virt = False
        while stack:
            r = stack.pop(0)
            if r in seen:
                continue
            seen.add(r)
            rec = self.records.get(r)
            if not rec:
                continue
            if method in rec["virtual"]:
                virt = True
                break
            stack.extend(b.split("::")[-1] for b in rec["bases"])
        if not virt:
            return False, False
        rec = self.records.get(rec_name)
        devirt = bool(rec and (rec["final"]
                               or method in rec["final_methods"]))
        return True, devirt

    def resolve_expr(self, expr, ctx, depth=0):
        """Resolve an expression to a type string (unexpanded), or
        None.  ctx: dict with 'locals', 'params', 'cls', 'file'."""
        if depth > 6 or not expr:
            return None
        e = norm_ws(expr).rstrip(";")
        e = re.sub(r"^[*&(]+", "", e).strip()
        e = re.sub(r"\)+$", "", e).strip()
        if not e:
            return None
        if LITERAL_FLOAT_RX.match(e):
            return "float"
        if LITERAL_DOUBLE_RX.match(e):
            return "double"
        segs = self.split_chain(e)
        if not segs:
            return None
        cur = None
        for idx, seg in enumerate(segs):
            name, is_call = self.parse_segment(seg)
            if name is None:
                return None
            if idx == 0:
                cur = self.resolve_base(name, is_call, ctx, depth)
            else:
                rec = self.base_record_name(
                    self.expand_alias(cur or "", ctx.get("cls")))
                if rec is None:
                    return None
                cur = (self.method_ret(rec, name) if is_call
                       else self.field_type(rec, name))
            if cur is None:
                return None
        return cur

    @staticmethod
    def split_chain(e):
        out, depth, start = [], 0, 0
        i = 0
        while i < len(e):
            c = e[i]
            if c in "<([{":
                depth += 1
            elif c in ">)]}":
                if depth > 0:
                    depth -= 1
            elif depth == 0:
                if c == "." and not (i and e[i - 1].isdigit()):
                    out.append(e[start:i])
                    start = i + 1
                elif c == "-" and i + 1 < len(e) and e[i + 1] == ">":
                    out.append(e[start:i])
                    i += 1
                    start = i + 1
            i += 1
        out.append(e[start:])
        return [s.strip() for s in out if s.strip()]

    @staticmethod
    def parse_segment(seg):
        m = re.match(r"^((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*(\()?",
                     seg)
        if not m:
            return None, False
        return m.group(1), bool(m.group(2))

    def resolve_base(self, name, is_call, ctx, depth):
        if name == "this":
            return (ctx.get("cls") or "") + " *"
        if "::" in name:
            qual, _, last = name.rpartition("::")
            qrec = qual.split("::")[-1]
            if qrec in self.records:
                return (self.method_ret(qrec, last) if is_call
                        else self.field_type(qrec, last))
            if is_call:
                return self.fn_returns.get(last)
            return None
        if is_call:
            cls = ctx.get("cls")
            if cls:
                r = self.method_ret(cls, name)
                if r is not None:
                    return r
            return self.fn_returns.get(name)
        for scope in ("locals", "params"):
            t = (ctx.get(scope) or {}).get(name)
            if t is not None:
                if re.search(r"\bauto\b", t):
                    init = (ctx.get("inits") or {}).get(name)
                    resolved = self.resolve_expr(init, ctx,
                                                 depth + 1) \
                        if init else None
                    if resolved is None:
                        return None
                    # Keep the reference/pointer shape of the auto.
                    return resolved
                return t
        cls = ctx.get("cls")
        if cls:
            t = self.field_type(cls, name)
            if t is not None:
                return t
        for tu in self.tus:
            if tu.file == ctx.get("file"):
                for ln, gname, gtype, ns in tu.globals:
                    if gname == name:
                        return gtype
        return None


def fn_ctx(program, fn):
    locals_map = {}
    inits = {}
    for ln, name, typ, init in fn.get("locals", ()):
        locals_map[name] = typ
        if init:
            inits[name] = init
    return {
        "locals": locals_map,
        "params": fn.get("params", {}),
        "inits": inits,
        "cls": fn.get("cls"),
        "file": fn.get("file"),
    }


def hot_regions(raw_lines):
    spans = []
    begin = None
    for ln, line in enumerate(raw_lines, start=1):
        if HOT_BEGIN_RX.search(line):
            begin = ln
        elif HOT_END_RX.search(line) and begin is not None:
            spans.append((begin, ln))
            begin = None
    return spans


def in_spans(line, spans):
    return any(lo <= line <= hi for lo, hi in spans)


# --------------------------------------------------------------------
# Rules.  Each checker yields (relpath, line, rule_id, message).
# --------------------------------------------------------------------

DPX102_DIRS = ("src/queueing/", "src/sim/stats")


def scalar_of(t):
    if not t:
        return ""
    return re.sub(r"\b(const|volatile|static|inline|constexpr|"
                  r"mutable)\b", "", t).strip(" &*")


def check_dpx101(program, tu):
    for fn in tu.functions:
        ctx = fn_ctx(program, fn)
        for entry in fn.get("rangefors", ()):
            line, _decl, expr = entry[0], entry[1], entry[2]
            resolved = entry[3] if len(entry) > 3 else None
            t = resolved or program.resolve_expr(expr, ctx)
            t = program.expand_alias(t or "", fn.get("cls"))
            if t and UNORDERED_RX.search(t):
                yield (tu.file, line, "DPX101",
                       "range-for over unordered container "
                       "(resolved type: %s) — iteration order is "
                       "unspecified and breaks bit-identical replay; "
                       "use a deterministic container or sort first"
                       % norm_ws(t))
        for call in fn.get("calls", ()):
            line, kind, recv, name = call
            if kind != "member" or name not in ("begin", "cbegin"):
                continue
            t = program.resolve_expr(recv, ctx)
            t = program.expand_alias(t or "", fn.get("cls"))
            if t and UNORDERED_RX.search(t):
                yield (tu.file, line, "DPX101",
                       "iterator walk over unordered container %r "
                       "(resolved type: %s) — iteration order is "
                       "unspecified; use a deterministic container "
                       "or sort first" % (recv, norm_ws(t)))


def check_dpx102(program, tu, all_paths):
    if not all_paths and not any(tu.file.startswith(d)
                                 for d in DPX102_DIRS):
        return
    for fn in tu.functions:
        if fn.get("cls") in BLESSED_ACCUMULATORS:
            continue
        loops = fn.get("loops", ())
        ctx = fn_ctx(program, fn)
        for line, lvalue, op in fn.get("accums", ()):
            if not in_spans(line, loops):
                continue
            base = lvalue.split("[")[0]
            t = program.resolve_expr(base, ctx)
            t = program.expand_alias(t or "", fn.get("cls"))
            s = scalar_of(t)
            is_float = (s == "float"
                        or ("[" in lvalue
                            and (re.match(r"^float\s*\*?$", s)
                                 or re.match(
                                     r"^(?:std::)?(?:vector|array)\s*"
                                     r"<\s*float\s*[,>]", s))))
            if is_float:
                yield (tu.file, line, "DPX102",
                       "float accumulation %r %s in a loop (resolved "
                       "type: %s) — single precision drifts under "
                       "reassociation; accumulate in double or a "
                       "blessed accumulator" % (lvalue, op,
                                                norm_ws(t or "")))


def check_dpx103(program, tu, raw_lines):
    spans = hot_regions(raw_lines)
    if not spans:
        return
    for fn in tu.functions:
        if not any(lo <= fn["line1"] and hi >= fn["line0"]
                   for lo, hi in spans):
            continue
        ctx = fn_ctx(program, fn)
        fn_like = set()
        for scope in ("locals", "params"):
            for name, t in (ctx.get(scope) or {}).items():
                if "function<" in (t or ""):
                    fn_like.add(name)
        if fn.get("cls"):
            rec = program.records.get(fn["cls"])
            if rec:
                for name, t in rec["fields"].items():
                    if "function<" in (t or ""):
                        fn_like.add(name)
        for call in fn.get("calls", ()):
            line, kind, recv, name = call
            if not in_spans(line, spans):
                continue
            if kind == "member":
                t = program.resolve_expr(recv, ctx)
                t = program.expand_alias(t or "", fn.get("cls"))
                rec = program.base_record_name(t)
                if rec is None:
                    continue
                virt, devirt = program.is_virtual(rec, name)
                if virt and not devirt:
                    yield (tu.file, line, "DPX103",
                           "virtual call %s->%s() inside a "
                           "dpx-hot-loop region (static type %s, not "
                           "final) — indirect dispatch defeats "
                           "inlining on the microsecond path; "
                           "devirtualize (final) or hoist out of the "
                           "loop" % (recv, name, rec))
            elif kind == "free" and name in fn_like:
                yield (tu.file, line, "DPX103",
                       "indirect call through std::function %r "
                       "inside a dpx-hot-loop region — type-erased "
                       "dispatch defeats inlining; use a template "
                       "parameter or hoist out of the loop" % name)


def fn_node_key(fn):
    if fn.get("cls"):
        return "%s::%s" % (fn["cls"], fn["name"])
    return fn["name"]


def build_call_graph(program):
    """edges: node key -> set of callee node keys; defs: key -> fn."""
    defs = {}
    for fn in program.functions:
        defs.setdefault(fn_node_key(fn), fn)
    edges = {}
    for fn in program.functions:
        key = fn_node_key(fn)
        out = edges.setdefault(key, set())
        ctx = fn_ctx(program, fn)
        for call in fn.get("calls", ()):
            line, kind, recv, name = call
            if kind == "member":
                t = program.resolve_expr(recv, ctx)
                t = program.expand_alias(t or "", fn.get("cls"))
                rec = program.base_record_name(t)
                if rec is None:
                    continue
                targets = ["%s::%s" % (rec, name)]
                # Virtual dispatch: any transitive override.
                pending = [rec]
                seen = set()
                while pending:
                    r = pending.pop()
                    if r in seen:
                        continue
                    seen.add(r)
                    for d in program.derived.get(r, ()):
                        targets.append("%s::%s" % (d, name))
                        pending.append(d)
                for t2 in targets:
                    if t2 in defs:
                        out.add(t2)
            elif kind == "qual":
                rec = recv.split("::")[-1]
                cand = "%s::%s" % (rec, name)
                if cand in defs:
                    out.add(cand)
                elif name in defs:
                    out.add(name)
            elif kind == "free":
                if fn.get("cls") and \
                        "%s::%s" % (fn["cls"], name) in defs:
                    out.add("%s::%s" % (fn["cls"], name))
                elif name in defs:
                    out.add(name)
    return defs, edges


def check_dpx104(program, target_files, raw_map):
    defs, edges = build_call_graph(program)
    banned_at = {}
    for key, fn in defs.items():
        if fn.get("banned"):
            banned_at[key] = fn["banned"][0]
    roots = []
    for fn in program.functions:
        f = fn.get("file")
        if f not in raw_map:
            continue
        raw_lines = raw_map[f]
        spans = hot_regions(raw_lines)
        is_root = any(lo <= fn["line1"] and hi >= fn["line0"]
                      for lo, hi in spans)
        if not is_root:
            for ln in range(max(1, fn["line0"] - 3), fn["line0"] + 1):
                if ln - 1 < len(raw_lines) and \
                        HOT_ENTRY_RX.search(raw_lines[ln - 1]):
                    is_root = True
                    break
        if is_root and f in target_files:
            roots.append(fn)
    for fn in roots:
        start = fn_node_key(fn)
        parent = {start: None}
        queue = [start]
        hit = None
        while queue and hit is None:
            cur = queue.pop(0)
            if cur in banned_at and cur != start:
                hit = cur
                break
            for nxt in sorted(edges.get(cur, ())):
                if nxt not in parent:
                    parent[nxt] = cur
                    queue.append(nxt)
        if hit is None:
            # The root itself using a banned API is caught by
            # DPX001/002 directly; DPX104 is about reachability.
            continue
        path = []
        cur = hit
        while cur is not None:
            path.append(cur)
            cur = parent[cur]
        path.reverse()
        site_ln, api = banned_at[hit]
        site_fn = defs[hit]
        yield (fn["file"], fn["line0"], "DPX104",
               "hot entry %s() reaches banned API %s at %s:%d via "
               "%s — route through the scenario RNG / virtual clock "
               "instead" % (fn_node_key(fn), api,
                            site_fn.get("file", "?"), site_ln,
                            " -> ".join(path)))


def check_dpx105(program, tu):
    if not tu.file.startswith("src/"):
        return
    for ln, name, typ, ns in tu.globals:
        if re.search(r"\bconst(expr)?\b", typ or ""):
            continue
        yield (tu.file, ln, "DPX105",
               "mutable global %r (%s) at namespace scope in sim "
               "code — cross-run shared state breaks replica "
               "independence; make it const, pass it explicitly, or "
               "waive with a determinism argument"
               % (name, norm_ws(typ or "")))
    for ln, name, typ, owner in tu.local_statics:
        if re.search(r"\bconst(expr)?\b", typ or ""):
            continue
        yield (tu.file, ln, "DPX105",
               "function-local static %r (%s) in %s() — mutable "
               "hidden state breaks replica independence; hoist into "
               "an explicitly-passed context or waive with a "
               "determinism argument" % (name, norm_ws(typ or ""),
                                         owner))


def check_dpx106(program, target_files, raw_map):
    """Scalar libm log/exp reachable from a hot entry point.

    Where DPX104 chases banned primitives, this chases the
    transcendentals the vmath replica kernels were built to replace:
    a hot entry (dpx-hot-loop region or ``// dpx-analyze: hot-entry``)
    that still reaches ``std::log1p``/``std::log``/``std::exp``
    through the call graph is leaving the batched pipeline.  Findings
    land at the call site (not the root) so a reasoned
    ``// dpx-lint: allow(DPX106)`` can sit next to the call it
    justifies, and every reachable site is reported — waiving one must
    not hide the next.
    """
    defs, edges = build_call_graph(program)
    # Math call sites per function, scanned from the raw text of the
    # definition span (trailing // comments stripped so annotations
    # and prose mentioning std::log don't count as calls).
    math_at = {}
    for key, fn in defs.items():
        f = fn.get("file")
        if f not in raw_map or f in MATH_EXEMPT_FILES:
            continue
        raw_lines = raw_map[f]
        sites = []
        for ln in range(fn["line0"], fn["line1"] + 1):
            if ln - 1 >= len(raw_lines):
                break
            code = raw_lines[ln - 1].split("//", 1)[0]
            for api, rx in MATH_APIS:
                if rx.search(code):
                    sites.append((ln, api))
        if sites:
            math_at[key] = sites
    roots = []
    for fn in program.functions:
        f = fn.get("file")
        if f not in raw_map:
            continue
        raw_lines = raw_map[f]
        spans = hot_regions(raw_lines)
        is_root = any(lo <= fn["line1"] and hi >= fn["line0"]
                      for lo, hi in spans)
        if not is_root:
            for ln in range(max(1, fn["line0"] - 3), fn["line0"] + 1):
                if ln - 1 < len(raw_lines) and \
                        HOT_ENTRY_RX.search(raw_lines[ln - 1]):
                    is_root = True
                    break
        if is_root and f in target_files:
            roots.append(fn)
    seen = set()
    for fn in roots:
        start = fn_node_key(fn)
        parent = {start: None}
        queue = [start]
        reached = []
        while queue:
            cur = queue.pop(0)
            if cur in math_at:
                reached.append(cur)
            for nxt in sorted(edges.get(cur, ())):
                if nxt not in parent:
                    parent[nxt] = cur
                    queue.append(nxt)
        for hit in reached:
            path = []
            cur = hit
            while cur is not None:
                path.append(cur)
                cur = parent[cur]
            path.reverse()
            site_fn = defs[hit]
            for site_ln, api in math_at[hit]:
                dkey = (site_fn.get("file", "?"), site_ln, api)
                if dkey in seen:
                    continue
                seen.add(dkey)
                yield (site_fn.get("file", "?"), site_ln, "DPX106",
                       "direct %s call reachable from hot entry "
                       "%s() via %s — route through vmath::log1pNeg"
                       "/log1pNegBlock (sim/vmath.hh) or waive with "
                       "a reason why no replica route exists"
                       % (api, fn_node_key(fn), " -> ".join(path)))


# --------------------------------------------------------------------
# DPX110: the fast-path contract auditor.
# --------------------------------------------------------------------

def discover_switches(program):
    switches = []
    seen = set()
    for rec_name in sorted(program.records):
        rec = program.records[rec_name]
        f = program.record_file.get(rec_name, "")
        if not f.startswith("src/"):
            continue
        for mname in sorted(rec["methods"]):
            if SET_ENABLED_RX.match(mname):
                sid = "%s::%s" % (rec_name, mname)
                if sid not in seen:
                    seen.add(sid)
                    switches.append({
                        "id": sid, "kind": "method", "class": rec_name,
                        "name": mname, "file": f,
                        "line": rec["method_lines"].get(mname,
                                                        rec["line"]),
                    })
        if rec_name.endswith("Config"):
            for fname in sorted(rec["fields"]):
                ftype = rec["fields"][fname]
                if "bool" in (ftype or "") and \
                        CONFIG_FLAG_RX.search(fname):
                    sid = "%s::%s" % (rec_name, fname)
                    if sid not in seen:
                        seen.add(sid)
                        switches.append({
                            "id": sid, "kind": "config",
                            "class": rec_name, "name": fname,
                            "file": f,
                            "line": rec.get("field_lines", {}).get(
                                fname, rec["line"]),
                        })
    for fn in program.functions:
        if fn.get("cls") is None and \
                SET_ENABLED_RX.match(fn["name"]) and \
                fn.get("file", "").startswith("src/"):
            parts = [p for p in (fn.get("ns") or "").split("::")
                     if p and p not in ("duplexity", "<anon>")]
            sid = "::".join(parts + [fn["name"]])
            if sid not in seen:
                seen.add(sid)
                switches.append({
                    "id": sid, "kind": "free", "class": None,
                    "name": fn["name"], "file": fn["file"],
                    "line": fn["line0"],
                })
    return switches


def golden_test_sources(tests_cmake_path):
    """Map golden test name -> list of source paths (relative to the
    tests/ directory) from dpx_add_test(... GOLDEN ...) calls."""
    try:
        with open(tests_cmake_path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return None
    text = re.sub(r"#[^\n]*", "", text)
    out = {}
    for m in re.finditer(r"dpx_add_test\s*\(([^)]*)\)", text, re.S):
        tokens = m.group(1).split()
        if not tokens or "GOLDEN" not in tokens:
            continue
        srcs = [t for t in tokens[1:]
                if t.endswith((".cc", ".cpp"))]
        if srcs:
            out[tokens[0]] = srcs
    return out


def record_family(program, rec_name):
    """rec_name plus all ancestors and descendants (dispatch can be
    spelled through any of them)."""
    fam = set()
    pending = [rec_name]
    while pending:
        r = pending.pop()
        if r in fam:
            continue
        fam.add(r)
        rec = program.records.get(r)
        if rec:
            pending.extend(b.split("::")[-1] for b in rec["bases"])
        pending.extend(program.derived.get(r, ()))
    return fam


def golden_coverage(program, switches, golden_map, golden_tus):
    """For each switch id, the sorted list of golden tests whose
    sources exercise it."""
    method_classes = {}
    for sw in switches:
        if sw["kind"] == "method":
            method_classes.setdefault(sw["name"], set()).add(
                sw["class"])
    cov = {sw["id"]: set() for sw in switches}
    for test_name, sources in sorted(golden_map.items()):
        tus = [golden_tus[s] for s in sources if s in golden_tus]
        for sw in switches:
            hit = False
            for tu in tus:
                stripped = tu._stripped_text
                if sw["kind"] in ("config", "free"):
                    if re.search(r"\b%s\b" % re.escape(sw["name"]),
                                 stripped):
                        hit = True
                        break
                    continue
                # Method switch: need the receiver's class when the
                # method name is shared between switches.
                shared = len(method_classes.get(sw["name"], ())) > 1
                if not shared:
                    if re.search(r"\b%s\s*\(" % re.escape(sw["name"]),
                                 stripped):
                        hit = True
                        break
                    continue
                fam = record_family(program, sw["class"])
                for fn in tu.functions:
                    ctx = fn_ctx(program, fn)
                    for call in fn.get("calls", ()):
                        _ln, kind, recv, name = call
                        if kind != "member" or name != sw["name"]:
                            continue
                        t = program.resolve_expr(recv, ctx)
                        t = program.expand_alias(t or "",
                                                 fn.get("cls"))
                        rec = program.base_record_name(t)
                        if rec in fam:
                            hit = True
                            break
                    if hit:
                        break
                if hit:
                    break
            if hit:
                cov[sw["id"]].add(test_name)
    return {k: sorted(v) for k, v in cov.items()}


def bench_annotations(bench_path):
    """Parse // dpx-fast-path: annotations in the bench source.
    Returns (id -> [keys], [(line, unknown-format message)])."""
    try:
        with open(bench_path, encoding="utf-8") as fh:
            raw_lines = fh.read().split("\n")
    except OSError:
        return None, []
    notes = {}
    problems = []
    for ln, line in enumerate(raw_lines, start=1):
        m = FAST_PATH_NOTE_RX.search(line)
        if not m:
            continue
        ids = [s.strip() for s in m.group(1).split(",") if s.strip()]
        key = None
        for look in range(ln, min(ln + 4, len(raw_lines) + 1)):
            km = BENCH_KEY_RX.search(raw_lines[look - 1])
            if km:
                key = km.group(1)
                break
        if key is None:
            problems.append((ln, "dpx-fast-path annotation has no "
                             "fast_path counter key on the next "
                             "lines"))
            continue
        for sid in ids:
            notes.setdefault(sid, []).append(key)
    return notes, problems


def audit_contract(program, root, target_allows, golden_tus,
                   bench_rel="bench/hotpath_bench.cc",
                   bench_json_rel="BENCH_hotpath.json",
                   tests_cmake_rel="tests/CMakeLists.txt"):
    """Returns (findings, config_errors, registry)."""
    findings = []
    config_errors = []
    switches = discover_switches(program)
    golden_map = golden_test_sources(os.path.join(root,
                                                  tests_cmake_rel))
    if golden_map is None:
        config_errors.append(
            "%s: unreadable — cannot audit the fast-path contract"
            % tests_cmake_rel)
        return findings, config_errors, None
    cov = golden_coverage(program, switches, golden_map, golden_tus)
    notes, note_problems = bench_annotations(
        os.path.join(root, bench_rel))
    bench_keys = set()
    if notes is None:
        notes = {}
        config_errors.append("%s: unreadable — cannot audit bench "
                             "activation coverage" % bench_rel)
    for ln, msg in note_problems:
        findings.append((bench_rel, ln, "DPX110", msg))
    try:
        with open(os.path.join(root, bench_json_rel),
                  encoding="utf-8") as fh:
            bench_json = json.load(fh)
        fp = bench_json.get("fast_path", {})
        bench_keys = {k for k, v in fp.items()
                      if isinstance(v, (int, float, bool))}
    except (OSError, ValueError):
        config_errors.append("%s: unreadable — regenerate it from "
                             "hotpath_bench (see bench/README or "
                             "DESIGN.md)" % bench_json_rel)
    known_ids = {sw["id"] for sw in switches}
    for sid in sorted(notes):
        if sid not in known_ids:
            findings.append((bench_rel, 1, "DPX110",
                             "dpx-fast-path annotation names unknown "
                             "switch %r (known: discovered "
                             "set*Enabled/config flags in src/)"
                             % sid))
    registry = {"version": 1, "switches": []}
    for sw in switches:
        file_allows, line_allows, raw_lines = target_allows.get(
            sw["file"], (set(), {}, None))
        waived = "DPX110" in file_allows or \
            "DPX110" in line_allows.get(sw["line"], set())
        reason = None
        if waived:
            reason = find_waiver_reason(raw_lines, sw["line"])
            if reason is None:
                config_errors.append(
                    "%s:%d: DPX110 waiver for %s needs a reason "
                    "after the annotation: // dpx-lint: "
                    "allow(DPX110): <why this switch is exempt>"
                    % (sw["file"], sw["line"], sw["id"]))
                waived = False
        keys = sorted(k for k in notes.get(sw["id"], ())
                      if k in bench_keys)
        tests = cov.get(sw["id"], [])
        if not waived:
            if not tests:
                findings.append((
                    sw["file"], sw["line"], "DPX110",
                    "fast-path switch %s has no GOLDEN differential "
                    "test — add a dpx_add_test(... GOLDEN ...) that "
                    "toggles it and proves bit-identical results, or "
                    "waive with a reason" % sw["id"]))
            if not keys:
                missing = [k for k in notes.get(sw["id"], ())
                           if k not in bench_keys]
                if missing:
                    findings.append((
                        sw["file"], sw["line"], "DPX110",
                        "fast-path switch %s is annotated with "
                        "counter %s but the key is absent from the "
                        "committed %s — regenerate the baseline"
                        % (sw["id"], "/".join(sorted(missing)),
                           bench_json_rel)))
                else:
                    findings.append((
                        sw["file"], sw["line"], "DPX110",
                        "fast-path switch %s is not surfaced in the "
                        "hotpath_bench fast_path activation subtree "
                        "— add a counter plus a // dpx-fast-path: %s "
                        "annotation, or waive with a reason"
                        % (sw["id"], sw["id"])))
        registry["switches"].append({
            "id": sw["id"],
            "kind": sw["kind"],
            "file": sw["file"],
            "line": sw["line"],
            "golden_tests": tests,
            "bench_counters": keys,
            "waiver": reason,
        })
    return findings, config_errors, registry


def find_waiver_reason(raw_lines, decl_line):
    """Reason text of the allow(DPX110) annotation covering
    decl_line, or None when the annotation carries none."""
    if raw_lines is None:
        return None
    for ln in range(max(1, decl_line - 4),
                    min(decl_line + 2, len(raw_lines) + 1)):
        line = raw_lines[ln - 1]
        m = re.search(r"dpx-lint:\s*allow\(DPX110\)", line)
        if not m:
            continue
        tail = line[m.end():].strip()
        tail = tail.lstrip(":—- ").strip()
        if re.search(r"\w", tail):
            return tail
    return None


def registry_text(registry):
    return json.dumps(registry, indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------
# Index cache.
# --------------------------------------------------------------------

def cache_key(relpath, data, backend_tag):
    h = hashlib.sha256()
    for part in (str(ANALYZE_VERSION).encode(), backend_tag.encode(),
                 relpath.encode()):
        h.update(part)
        h.update(b"\0")
    h.update(data)
    return h.hexdigest()


def cache_load(cache_dir, key):
    if cache_dir is None:
        return None
    path = os.path.join(cache_dir, key + ".json")
    try:
        with open(path, encoding="utf-8") as fh:
            d = json.load(fh)
        if d.get("version") != ANALYZE_VERSION:
            return None
        return TuIndex.from_json(d)
    except (OSError, ValueError, KeyError):
        return None


def cache_store(cache_dir, key, tu):
    if cache_dir is None:
        return
    try:
        os.makedirs(cache_dir, exist_ok=True)
        path = os.path.join(cache_dir, key + ".json")
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(tu.to_json(), fh)
        os.replace(tmp, path)
    except OSError:
        pass


# --------------------------------------------------------------------
# Clang backend: compile_commands.json + -ast-dump=json.
# --------------------------------------------------------------------

def find_clang():
    for cand in ("clang++", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def load_compile_db(path):
    try:
        with open(path, encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, ValueError):
        return None
    db = {}
    for e in entries:
        src = os.path.normpath(
            os.path.join(e.get("directory", "."), e["file"]))
        if "arguments" in e:
            args = list(e["arguments"])
        else:
            args = shlex.split(e.get("command", ""))
        db[src] = (e.get("directory", "."), args)
    return db


def clang_args_for(db_entry, abspath):
    """Filter a compile-db command line down to flags clang can use
    for a syntax-only AST dump."""
    directory, args = db_entry
    out = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if a in ("-c", "-MD", "-MMD", "-MP") or \
                os.path.normpath(os.path.join(directory, a)) == \
                abspath:
            continue
        if a.startswith(("-W", "-f")) and "sanitize" in a:
            continue
        out.append(a)
    return directory, out


class _ClangWalk:
    """Walk state for the clang JSON AST: the dump differentially
    encodes locations (file/line omitted when unchanged)."""

    def __init__(self, tu, abspath):
        self.tu = tu
        self.abspath = abspath
        self.cur_file = None
        self.cur_line = 0
        self.ns = []
        self.record = None
        self.fn = None

    def update_loc(self, node):
        loc = node.get("loc") or {}
        if "expansionLoc" in loc:
            loc = loc["expansionLoc"]
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]
        rng = (node.get("range") or {}).get("begin") or {}
        if "expansionLoc" in rng:
            rng = rng["expansionLoc"]
        if "file" in rng:
            self.cur_file = rng["file"]
        if "line" in rng:
            self.cur_line = rng["line"]

    def in_main_file(self):
        return self.cur_file is not None and \
            os.path.normpath(self.cur_file) == self.abspath

    def end_line(self, node):
        end = (node.get("range") or {}).get("end") or {}
        if "expansionLoc" in end:
            end = end["expansionLoc"]
        return end.get("line", self.cur_line)


def clang_walk(node, st):
    if not isinstance(node, dict):
        return
    st.update_loc(node)
    kind = node.get("kind")
    line = st.cur_line
    main = st.in_main_file()
    if kind == "NamespaceDecl":
        st.ns.append(node.get("name") or "<anon>")
        for ch in node.get("inner") or ():
            clang_walk(ch, st)
        st.ns.pop()
        return
    if kind in ("TypeAliasDecl", "TypedefDecl") and main:
        name = node.get("name")
        target = ((node.get("type") or {}).get("qualType") or "")
        if name and target:
            key = "%s::%s" % (st.record, name) if st.record else name
            st.tu.aliases[key] = target
    elif kind == "CXXRecordDecl" and main and \
            node.get("completeDefinition"):
        name = node.get("name")
        if name:
            bases = []
            for b in node.get("bases") or ():
                qt = ((b.get("type") or {}).get("qualType") or "")
                qt = re.sub(r"\b(public|private|protected|virtual|"
                            r"class|struct)\b", "", qt).strip()
                if qt:
                    bases.append(qt.split("<")[0].strip())
            rec = st.tu.records.setdefault(
                name, new_record(name, line, node.get("tagUsed",
                                                      "class"),
                                 bases=bases))
            for ch in node.get("inner") or ():
                if isinstance(ch, dict) and \
                        ch.get("kind") == "FinalAttr":
                    rec["final"] = True
            prev = st.record
            st.record = name
            for ch in node.get("inner") or ():
                clang_walk(ch, st)
            st.record = prev
            return
    elif kind == "FieldDecl" and main and st.record:
        rec = st.tu.records.get(st.record)
        name = node.get("name")
        if rec is not None and name:
            rec["fields"][name] = ((node.get("type") or {})
                                   .get("qualType") or "")
            rec["field_lines"].setdefault(name, line)
    elif kind == "VarDecl" and main and st.fn is None:
        name = node.get("name")
        qt = ((node.get("type") or {}).get("qualType") or "")
        if name:
            storage = "static " if node.get("storageClass") == \
                "static" else ""
            if node.get("constexpr"):
                storage += "constexpr "
            st.tu.globals.append([line, name, storage + qt,
                                  "::".join(st.ns)])
    elif kind in ("FunctionDecl", "CXXMethodDecl") and main:
        name = node.get("name") or ""
        qt = ((node.get("type") or {}).get("qualType") or "")
        ret = qt.split("(")[0].strip()
        cls = st.record
        if cls is None and kind == "CXXMethodDecl":
            parent = node.get("parentDeclContextId")
            cls = None  # out-of-line: recover from qualified name
            qual = node.get("mangledName")  # not reliable; fall back
            m = re.match(r"^([A-Za-z_]\w*)::", node.get(
                "qualifiedName", ""))
            if m:
                cls = m.group(1)
        if st.record:
            rec = st.tu.records.get(st.record)
            if rec is not None and name:
                rec["methods"][name] = ret
                rec["method_lines"].setdefault(name, line)
                if node.get("virtual") or node.get("pure"):
                    if name not in rec["virtual"]:
                        rec["virtual"].append(name)
                for ch in node.get("inner") or ():
                    if isinstance(ch, dict) and \
                            ch.get("kind") == "FinalAttr":
                        rec["final_methods"].append(name)
        elif name:
            st.tu.fn_returns.setdefault(name, ret)
        body = None
        params = {}
        for ch in node.get("inner") or ():
            if not isinstance(ch, dict):
                continue
            if ch.get("kind") == "ParmVarDecl" and ch.get("name"):
                params[ch["name"]] = ((ch.get("type") or {})
                                      .get("qualType") or "")
            elif ch.get("kind") == "CompoundStmt":
                body = ch
        if body is not None and name:
            fn = {
                "name": name, "cls": cls,
                "ns": "::".join(st.ns), "ret": ret,
                "line0": line, "line1": st.end_line(node),
                "params": params, "locals": [], "rangefors": [],
                "loops": [],
            }
            st.tu.functions.append(fn)
            prev = st.fn
            st.fn = fn
            clang_walk_body(body, st)
            st.fn = prev
        return
    elif kind == "CXXForRangeStmt" and main and st.fn is not None:
        clang_range_for(node, st, line)
        # fall through to walk children for nested loops/decls
    elif kind in ("ForStmt", "WhileStmt", "DoStmt") and main and \
            st.fn is not None:
        st.fn["loops"].append([line, st.end_line(node)])
    elif kind == "VarDecl" and main and st.fn is not None:
        name = node.get("name")
        qt = ((node.get("type") or {}).get("qualType") or "")
        if name:
            storage = "static " if node.get("storageClass") == \
                "static" else ""
            st.fn["locals"].append([line, name, storage + qt, None])
            if storage and not node.get("constexpr"):
                st.tu.local_statics.append(
                    [line, name, storage + qt, fn_qname(st.fn)])
    for ch in node.get("inner") or ():
        clang_walk(ch, st)


def clang_walk_body(node, st):
    if not isinstance(node, dict):
        return
    st.update_loc(node)
    kind = node.get("kind")
    line = st.cur_line
    if kind == "CXXForRangeStmt":
        clang_range_for(node, st, line)
        st.fn["loops"].append([line, st.end_line(node)])
    elif kind in ("ForStmt", "WhileStmt", "DoStmt"):
        st.fn["loops"].append([line, st.end_line(node)])
    elif kind == "VarDecl":
        name = node.get("name")
        qt = ((node.get("type") or {}).get("qualType") or "")
        if name and not name.startswith("__"):
            storage = "static " if node.get("storageClass") == \
                "static" else ""
            st.fn["locals"].append([line, name, storage + qt, None])
            if storage and not node.get("constexpr"):
                st.tu.local_statics.append(
                    [line, name, storage + qt, fn_qname(st.fn)])
    for ch in node.get("inner") or ():
        clang_walk_body(ch, st)


def clang_range_for(node, st, line):
    """Record a range-for with the compiler-resolved range type (the
    synthesized __range1 variable's deduced type)."""
    resolved = None
    stack = list(node.get("inner") or ())
    while stack:
        ch = stack.pop(0)
        if not isinstance(ch, dict):
            continue
        if ch.get("kind") == "VarDecl" and \
                (ch.get("name") or "").startswith("__range"):
            resolved = ((ch.get("type") or {}).get("qualType") or
                        None)
            break
        stack.extend(ch.get("inner") or ())
    st.fn["rangefors"].append([line, "", "", resolved])


def parse_tu_clang(clang, root, relpath, text, db):
    abspath = os.path.normpath(os.path.join(root, relpath))
    entry = db.get(abspath) if db else None
    if entry is None:
        return None  # headers etc.: builtin handles them
    directory, flags = clang_args_for(entry, abspath)
    cmd = [clang] + flags + ["-fsyntax-only", "-Xclang",
                             "-ast-dump=json", abspath]
    try:
        proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                              text=True, timeout=240)
        if proc.returncode != 0 or not proc.stdout.strip():
            return None
        ast = json.loads(proc.stdout)
    except (OSError, ValueError, subprocess.TimeoutExpired):
        return None
    tu = TuIndex(relpath)
    st = _ClangWalk(tu, abspath)
    try:
        clang_walk(ast, st)
    except (KeyError, TypeError, AttributeError):
        return None
    # Calls / accumulations / banned APIs come from the same body
    # regexes as the builtin backend; clang supplies the exact types.
    analyze_bodies(tu, blank_preprocessor(
        strip_code(text)).split("\n"))
    return tu


# --------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------

ANALYZE_RULES = [
    ("DPX101", "semantic-unordered-iteration: range-for/.begin() "
     "over a type that resolves to std::unordered_*"),
    ("DPX102", "float-accumulation: loop accumulation onto a "
     "resolved float lvalue in stats/queueing code"),
    ("DPX103", "hot-loop-virtual-call: virtual or std::function "
     "dispatch inside a dpx-hot-loop region (resolved callee)"),
    ("DPX104", "banned-api-reachability: hot entry points reaching "
     "raw RNG / wall clocks through the call graph"),
    ("DPX105", "mutable-global-in-sim: non-const namespace-scope or "
     "function-local-static state in src/"),
    ("DPX106", "scalar-libm-on-hot-path: std::log/log1p/exp "
     "reachable from hot entries outside sim/vmath"),
    ("DPX110", "fast-path-contract: every set*Enabled / fast-path "
     "config switch needs a GOLDEN test + bench counter"),
]
ANALYZE_RULE_IDS = [r for r, _ in ANALYZE_RULES]


def load_tu(path, relpath, backend, clang, db, root, cache_dir):
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as err:
        print("dpx-analyze: cannot read %s: %s" % (path, err),
              file=sys.stderr)
        return None, None
    text = data.decode("utf-8", errors="replace")
    tag = backend
    if backend == "clang" and clang:
        tag = "clang:%s" % clang
    key = cache_key(relpath, data, tag)
    tu = cache_load(cache_dir, key)
    if tu is None:
        tu = None
        if backend == "clang" and clang:
            tu = parse_tu_clang(clang, root, relpath, text, db)
        if tu is None:
            tu = parse_tu_builtin(relpath, text)
        cache_store(cache_dir, key, tu)
    return tu, text


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dpx_analyze.py",
        description="semantic analyzer + fast-path contract auditor "
                    "for the duplexity tree")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src "
                             "bench examples under --root)")
    parser.add_argument("--root", default=".",
                        help="repo root for path-scoped rules and "
                             "contract inputs (default: cwd)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="DPX1NN",
                        help="run only this rule (repeatable)")
    parser.add_argument("--all-paths", action="store_true",
                        help="apply path-scoped rules everywhere")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "builtin", "clang"),
                        help="semantic front end (default: auto — "
                             "clang when available, else builtin)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile database for the clang backend "
                             "(default: <root>/build/"
                             "compile_commands.json)")
    parser.add_argument("--cache-dir", default=None,
                        help="index cache directory (default: "
                             "<root>/.dpx-analyze-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the index cache")
    parser.add_argument("--registry",
                        default="tools/contract_registry.json",
                        help="contract registry path, relative to "
                             "--root")
    parser.add_argument("--write-registry", action="store_true",
                        help="write the discovered contract registry")
    parser.add_argument("--check-registry", action="store_true",
                        help="fail when the committed registry is "
                             "stale")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, doc in ANALYZE_RULES:
            print("%s  %s" % (rule_id, doc))
        return 0

    selected = list(ANALYZE_RULE_IDS)
    if args.rule:
        unknown = [r for r in args.rule if r not in ANALYZE_RULE_IDS]
        if unknown:
            print("dpx-analyze: unknown rule(s): %s"
                  % ", ".join(unknown), file=sys.stderr)
            return 2
        selected = [r for r in ANALYZE_RULE_IDS if r in args.rule]

    root = os.path.abspath(args.root)
    paths = args.paths
    if not paths:
        paths = [os.path.join(root, d) for d in ("src", "bench",
                                                 "examples")
                 if os.path.isdir(os.path.join(root, d))]
        if not paths:
            print("dpx-analyze: nothing to analyze under %s" % root,
                  file=sys.stderr)
            return 2
    files = gather_files(paths)
    if files is None:
        return 2

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(
            root, ".dpx-analyze-cache")

    backend = args.backend
    clang = db = None
    if backend in ("auto", "clang"):
        clang = find_clang()
        cc_path = args.compile_commands or os.path.join(
            root, "build", "compile_commands.json")
        db = load_compile_db(cc_path) if clang else None
        if backend == "clang" and (clang is None or db is None):
            print("dpx-analyze: clang backend needs clang++ on PATH "
                  "and a compile database (looked for %s)" % cc_path,
                  file=sys.stderr)
            return 2
        backend = "clang" if (clang and db) else "builtin"

    # Index the target files plus every GOLDEN test source (the
    # contract auditor resolves receivers inside those tests).
    tus = []
    target_files = []
    raw_map = {}
    allows_map = {}
    want_110 = "DPX110" in selected
    tests_cmake = os.path.join(root, "tests", "CMakeLists.txt")
    golden_map = {}
    if want_110:
        gm = golden_test_sources(tests_cmake)
        if gm is None:
            if args.rule and "DPX110" in args.rule:
                print("dpx-analyze: DPX110 requested but %s is "
                      "missing" % tests_cmake, file=sys.stderr)
                return 2
            want_110 = False
        else:
            golden_map = gm

    config_error = False
    for path in files:
        relpath = os.path.relpath(os.path.abspath(path), root)
        tu, text = load_tu(path, relpath, backend, clang, db, root,
                           cache_dir)
        if tu is None:
            config_error = True
            continue
        tus.append(tu)
        target_files.append(relpath)
        raw_lines = text.split("\n")
        raw_map[relpath] = raw_lines
        file_allows, line_allows, bad, _ann = \
            collect_allows(raw_lines)
        for ln, rule_id in bad:
            print("%s:%d: allow-file(%s) requires a reason: "
                  "// dpx-lint: allow-file(%s): <why>"
                  % (relpath, ln, rule_id, rule_id), file=sys.stderr)
            config_error = True
        allows_map[relpath] = (file_allows, line_allows, raw_lines)

    golden_tus = {}
    if want_110:
        for test_name, sources in sorted(golden_map.items()):
            for src in sources:
                if src in golden_tus:
                    continue
                path = os.path.join(root, "tests", src)
                rel = os.path.relpath(path, root)
                if rel in raw_map:
                    for tu in tus:
                        if tu.file == rel:
                            tu._stripped_text = blank_preprocessor(
                                strip_code("\n".join(raw_map[rel])))
                            golden_tus[src] = tu
                            break
                    continue
                if not os.path.isfile(path):
                    continue
                tu, text = load_tu(path, rel, backend, clang, db,
                                   root, cache_dir)
                if tu is None:
                    continue
                tu._stripped_text = blank_preprocessor(
                    strip_code(text))
                golden_tus[src] = tu
                tus.append(tu)

    program = Program(tus)
    target_set = set(target_files)

    findings = []
    for tu in tus:
        if tu.file not in target_set:
            continue
        raw_lines = raw_map[tu.file]
        if "DPX101" in selected:
            findings.extend(check_dpx101(program, tu))
        if "DPX102" in selected:
            findings.extend(check_dpx102(program, tu,
                                         args.all_paths))
        if "DPX103" in selected:
            findings.extend(check_dpx103(program, tu, raw_lines))
        if "DPX105" in selected:
            findings.extend(check_dpx105(program, tu))
    if "DPX104" in selected:
        findings.extend(check_dpx104(program, target_set, raw_map))
    if "DPX106" in selected:
        findings.extend(check_dpx106(program, target_set, raw_map))

    registry = None
    if want_110:
        c_findings, c_errors, registry = audit_contract(
            program, root, allows_map, golden_tus)
        findings.extend(c_findings)
        for msg in c_errors:
            print("dpx-analyze: %s" % msg, file=sys.stderr)
            config_error = True

    # Waiver filtering (dpx-lint syntax; DPX110 waivers were already
    # consumed — with reasons — inside the auditor).
    kept = []
    for relpath, line, rule_id, message in findings:
        file_allows, line_allows, _raw = allows_map.get(
            relpath, (set(), {}, None))
        if rule_id != "DPX110":
            if rule_id in file_allows or \
                    rule_id in line_allows.get(line, set()):
                continue
        kept.append((relpath, line, rule_id, message))
    kept.sort(key=lambda f: (f[0], f[1], f[2]))

    if registry is not None:
        reg_path = os.path.join(root, args.registry)
        text = registry_text(registry)
        if args.write_registry:
            reg_dir = os.path.dirname(reg_path)
            if reg_dir:
                os.makedirs(reg_dir, exist_ok=True)
            with open(reg_path, "w", encoding="utf-8") as fh:
                fh.write(text)
        elif args.check_registry:
            try:
                with open(reg_path, encoding="utf-8") as fh:
                    committed = fh.read()
            except OSError:
                committed = ""
            if committed != text:
                kept.append((args.registry, 1, "DPX110",
                             "contract registry is stale — run "
                             "tools/dpx_analyze.py --write-registry "
                             "and commit the result"))

    for relpath, line, rule_id, message in kept:
        print("%s:%d: %s [%s]" % (relpath, line, message, rule_id))
    if config_error:
        return 2
    if kept:
        print("dpx-analyze: %d finding(s)" % len(kept),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
