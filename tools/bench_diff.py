#!/usr/bin/env python3
"""Diff a fresh BENCH_hotpath.json against the committed baseline.

Usage: bench_diff.py <committed.json> <fresh.json> [--threshold PCT]

Flattens both files to dotted numeric leaves, infers a direction for
each key from its name (speedup-like: higher is better; ns/seconds:
lower is better; counts/threads/flags: informational only), and
prints a GitHub Actions ::warning:: line for every metric that
regressed by more than the threshold (default 15 %).

Fast-path activation counters (the fast_path subtree) are excluded
from regression gating — they are deterministic proof that the fast
paths ran, not timings — but they are printed as informational lines
so a fast path that silently stops firing is visible in the CI log.
A counter that was positive in the committed JSON and is zero in the
fresh run gets its own ::warning::: that shape means a fast path was
disabled or broken, not that the machine was noisy.

Also cross-checks the baseline_* leaves: the benchmark binary compiles
its parent-commit baselines in, so when the committed JSON's baseline
leaves differ from the fresh run's, the committed file predates the
last baseline rebase and its speedup columns are computed against the
wrong anchor — that staleness gets its own ::warning::.

Exits 0 in the default advisory mode: perf-smoke is not a perf gate.
Benchmarks run on shared CI runners whose noise floor would make a
hard gate flaky; the warning surfaces regressions for a human to
judge. --fail-on-stale upgrades exactly one class of finding to an
error: baseline drift. A stale committed baseline is not noise — it
means BENCH_hotpath.json was not regenerated after the parent-commit
rebase, and every speedup column in it anchors to the wrong numbers.
That is a repo-hygiene failure, deterministic on any host, so CI
fails on it (exit 1) instead of warning.
"""

import argparse
import json
import sys

# Key substrings that mark a leaf as informational (no direction).
# p99/quantile values are simulation statistics, not perf numbers.
SKIP_MARKERS = (
    "count",
    "completed",
    "cells",
    "threads",
    "identical",
    "baseline",
    # Deliberately-slow reference paths (fast-path benches measure
    # them only to compute the speedup; their drift is not a perf
    # signal for the product configuration).
    "forced_slow",
    "p99",
    "quantile",
    # Fast-path activation counters (split_phase_ops, skipped polls,
    # memo hits): deterministic proof the fast paths ran, not timings.
    "fast_path",
)

# Higher is better.
HIGHER_MARKERS = ("speedup",)

# Lower is better.
LOWER_MARKERS = ("ns", "_s", "seconds", "_us")


def flatten(node, prefix=""):
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten(value, path))
    elif isinstance(node, bool):
        pass  # bit_identical etc.: not a perf number
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def direction(key):
    """+1 higher-better, -1 lower-better, 0 skip."""
    lowered = key.lower()
    if any(m in lowered for m in SKIP_MARKERS):
        return 0
    if any(m in lowered for m in HIGHER_MARKERS):
        return 1
    leaf = lowered.rsplit(".", 1)[-1]
    if any(m in leaf for m in LOWER_MARKERS):
        return -1
    # Leaves under an *_ns group (e.g. sampling_ns.exponential.fast)
    # are nanosecond timings even when the leaf name doesn't say so.
    if "_ns." in lowered or "ns_per" in lowered:
        return -1
    return 0


def fast_path_report(committed, fresh):
    """Informational lines for fast-path activation counters, plus a
    warning for each counter that dropped from positive to zero (a
    silently-disabled fast path, not host noise)."""
    lines = []
    warnings = []
    fmt = lambda v: "absent" if v is None else f"{v:.4g}"
    for key in sorted(set(committed) | set(fresh)):
        if "fast_path" not in key.lower():
            continue
        old = committed.get(key)
        new = fresh.get(key)
        lines.append(f"{key:55s} {fmt(old):>12s} -> {fmt(new):>12s}  info")
        if old is not None and old > 0 and new == 0:
            warnings.append(
                f"::warning::perf-smoke: fast-path counter {key} "
                f"dropped from {old:.4g} to 0 — the fast path no "
                f"longer activates; check for a disabled flag or a "
                f"broken dispatch, this is deterministic and not "
                f"runner noise")
    return lines, warnings


def baseline_drift(committed, fresh):
    """Baseline leaves whose committed value differs from the fresh
    binary's compiled-in one (or exists on only one side)."""
    drift = []
    for key in sorted(set(committed) | set(fresh)):
        if "baseline" not in key.lower():
            continue
        old = committed.get(key)
        new = fresh.get(key)
        if old != new:
            drift.append((key, old, new))
    return drift


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("committed")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression warning threshold, percent")
    parser.add_argument("--fail-on-stale", action="store_true",
                        help="exit 1 when the committed baseline_* "
                             "leaves differ from the fresh binary's "
                             "compiled-in ones (committed JSON older "
                             "than the parent-commit rebase)")
    args = parser.parse_args()

    try:
        with open(args.committed) as f:
            committed = flatten(json.load(f))
        with open(args.fresh) as f:
            fresh = flatten(json.load(f))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::bench_diff could not read inputs: {exc}")
        return 0

    drift = baseline_drift(committed, fresh)
    severity = "error" if args.fail_on_stale else "warning"
    for key, old, new in drift:
        fmt = lambda v: "absent" if v is None else f"{v:.4g}"
        print(f"::{severity}::perf-smoke: baseline leaf {key} is "
              f"{fmt(old)} in the committed JSON but {fmt(new)} in "
              f"the fresh run; the committed BENCH_hotpath.json "
              f"predates the parent-commit baseline rebase — refresh "
              f"it before trusting its speedup columns")

    regressions = []
    for key, old in sorted(committed.items()):
        sign = direction(key)
        if sign == 0 or key not in fresh or old == 0:
            continue
        new = fresh[key]
        # Positive delta = worse, in either direction convention.
        delta_pct = (old - new) / abs(old) * 100.0 * sign
        status = "ok"
        if delta_pct > args.threshold:
            status = "REGRESSED"
            regressions.append((key, old, new, delta_pct))
        print(f"{key:55s} {old:12.4f} -> {new:12.4f}  {status}")

    fp_lines, fp_warnings = fast_path_report(committed, fresh)
    for line in fp_lines:
        print(line)
    for warning in fp_warnings:
        print(warning)

    for key, old, new, delta_pct in regressions:
        print(f"::warning::perf-smoke: {key} regressed "
              f"{delta_pct:.1f}% ({old:.4g} -> {new:.4g}); "
              f"non-gating, verify on a quiet host")
    if not regressions:
        print(f"no regressions beyond {args.threshold:.0f}%")
    if args.fail_on_stale and drift:
        print("bench_diff: committed baseline is stale (see errors "
              "above); regenerate BENCH_hotpath.json")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
