/**
 * @file
 * NIC-model tests for the Section VIII interconnect case study.
 */

#include <gtest/gtest.h>

#include "net/nic_model.hh"

using namespace duplexity;

TEST(NicModel, DefaultIsFdr4x)
{
    NicModel nic;
    EXPECT_NEAR(nic.config().data_rate_gbps, 56.0, 1e-9);
    EXPECT_NEAR(nic.config().max_ops_per_sec, 90e6, 1e-3);
}

TEST(NicModel, IopsUtilizationLinear)
{
    NicModel nic;
    EXPECT_NEAR(nic.iopsUtilization(9e6), 0.1, 1e-12);
    EXPECT_NEAR(nic.iopsUtilization(90e6), 1.0, 1e-12);
}

TEST(NicModel, BandwidthUtilization)
{
    NicModel nic;
    // 1M ops of 4KB: 32.8 Gbit/s of 56.
    EXPECT_NEAR(nic.bandwidthUtilization(1e6, 4096), 32.768 / 56.0,
                1e-6);
}

TEST(NicModel, SingleCacheLineOpsAreIopsLimited)
{
    // Section VIII: 64B remote accesses saturate IOPS long before
    // the data rate.
    NicModel nic;
    EXPECT_TRUE(nic.iopsLimited(50e6, 64));
    EXPECT_GT(nic.iopsUtilization(50e6),
              nic.bandwidthUtilization(50e6, 64));
}

TEST(NicModel, LargeTransfersAreBandwidthLimited)
{
    NicModel nic;
    EXPECT_FALSE(nic.iopsLimited(1e6, 64 * 1024));
}

TEST(NicModel, UtilizationTakesBindingConstraint)
{
    NicModel nic;
    EXPECT_EQ(nic.utilization(50e6, 64), nic.iopsUtilization(50e6));
    EXPECT_EQ(nic.utilization(1e5, 1 << 20),
              nic.bandwidthUtilization(1e5, 1 << 20));
}

TEST(NicModel, PaperDyadSharingClaim)
{
    // Section VIII: each dyad uses at most 7.1% of FDR IOPS, so 14
    // dyads can share one NIC port.
    NicModel nic;
    double per_dyad_ops = 0.071 * 90e6;
    EXPECT_EQ(nic.dyadsPerPort(per_dyad_ops, 64), 14u);
}

TEST(NicModel, ZeroTrafficSharesInfinitely)
{
    NicModel nic;
    EXPECT_EQ(nic.dyadsPerPort(0.0, 64), ~std::uint32_t(0));
}

TEST(NicModel, CustomConfigRespected)
{
    NicConfig cfg;
    cfg.data_rate_gbps = 100.0;
    cfg.max_ops_per_sec = 150e6;
    NicModel nic(cfg);
    EXPECT_NEAR(nic.iopsUtilization(15e6), 0.1, 1e-12);
}
