/**
 * @file
 * BigHouse-lite tests: closed-form validation against M/M/1, queueing
 * amplification of the tail, convergence machinery, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"
#include "sim/rng.hh"

using namespace duplexity;

namespace
{

QueueSimConfig
mm1(double load, std::uint64_t seed = 17)
{
    QueueSimConfig cfg = makeMg1(makeExponential(1e-6), load, seed);
    cfg.max_batches = 60;
    return cfg;
}

} // namespace

TEST(QueueSim, Mm1MeanSojournMatchesTheory)
{
    QueueSimResult res = runQueueSim(mm1(0.5));
    double expected = mm1MeanSojourn(0.5e6, 1e6);
    EXPECT_NEAR(res.meanSojourn(), expected, 0.06 * expected);
}

TEST(QueueSim, Mm1P99MatchesTheory)
{
    QueueSimResult res = runQueueSim(mm1(0.5));
    double expected = mm1SojournQuantile(0.5e6, 1e6, 0.99);
    EXPECT_NEAR(res.p99Sojourn(), expected, 0.10 * expected);
}

/** The core tail phenomenon: p99 explodes as load approaches 1. */
class QueueSimLoad : public ::testing::TestWithParam<double>
{
};

TEST_P(QueueSimLoad, UtilizationTracksLoad)
{
    const double load = GetParam();
    QueueSimResult res = runQueueSim(mm1(load));
    EXPECT_NEAR(res.utilization, load, 0.03);
}

TEST_P(QueueSimLoad, P99MatchesMm1Theory)
{
    const double load = GetParam();
    QueueSimResult res = runQueueSim(mm1(load));
    double expected = mm1SojournQuantile(load * 1e6, 1e6, 0.99);
    EXPECT_NEAR(res.p99Sojourn(), expected, 0.15 * expected);
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueSimLoad,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(QueueSim, TailAmplificationAcrossLoads)
{
    double p99_30 = runQueueSim(mm1(0.3)).p99Sojourn();
    double p99_90 = runQueueSim(mm1(0.9)).p99Sojourn();
    EXPECT_GT(p99_90, 4.0 * p99_30);
}

TEST(QueueSim, DeterministicServiceHasLowerTailThanExponential)
{
    QueueSimConfig det =
        makeMg1(makeDeterministic(1e-6), 0.7, 21);
    det.max_batches = 60;
    QueueSimConfig exp_cfg = mm1(0.7, 21);
    EXPECT_LT(runQueueSim(det).p99Sojourn(),
              runQueueSim(exp_cfg).p99Sojourn());
}

TEST(QueueSim, HeavyTailedServiceWorsensP99)
{
    auto pareto = makeBoundedPareto(3e-7, 1e-3, 1.5);
    QueueSimConfig heavy = makeMg1(pareto, 0.5, 23);
    heavy.max_batches = 100;
    auto expo = makeExponential(pareto->mean());
    QueueSimConfig light = makeMg1(expo, 0.5, 23);
    light.max_batches = 100;
    EXPECT_GT(runQueueSim(heavy).p99Sojourn(),
              runQueueSim(light).p99Sojourn());
}

TEST(QueueSim, IdlePeriodsFollowArrivalRate)
{
    QueueSimResult res = runQueueSim(mm1(0.4));
    // Idle periods ~ Exp(lambda): mean 1/lambda.
    EXPECT_NEAR(res.idle_periods.mean(), 1.0 / 0.4e6,
                0.10 / 0.4e6);
}

TEST(QueueSim, WaitPlusServiceEqualsSojourn)
{
    QueueSimResult res = runQueueSim(mm1(0.6));
    EXPECT_NEAR(res.wait.mean() + 1e-6, res.meanSojourn(),
                0.05 * res.meanSojourn());
}

TEST(QueueSim, SeededRunsAreReproducible)
{
    QueueSimResult a = runQueueSim(mm1(0.5, 99));
    QueueSimResult b = runQueueSim(mm1(0.5, 99));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p99Sojourn(), b.p99Sojourn());
}

TEST(QueueSim, DifferentSeedsDiffer)
{
    QueueSimResult a = runQueueSim(mm1(0.5, 1));
    QueueSimResult b = runQueueSim(mm1(0.5, 2));
    EXPECT_NE(a.p99Sojourn(), b.p99Sojourn());
}

TEST(QueueSim, ConvergenceFlagSetWhenStable)
{
    QueueSimConfig cfg = mm1(0.3);
    cfg.max_batches = 200;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_TRUE(res.converged);
}

TEST(QueueSim, StopsAtMaxBatches)
{
    QueueSimConfig cfg = mm1(0.5);
    cfg.relative_error = 1e-9; // unattainable
    cfg.max_batches = 10;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.completed, 10u * cfg.batch_size);
}

TEST(QueueSim, MultiServerReducesWaits)
{
    auto service = makeExponential(1e-6);
    QueueSimConfig one;
    one.interarrival = makeExponential(1e-6 / 0.8);
    one.service = service;
    one.servers = 1;
    one.max_batches = 40;
    one.seed = 31;
    QueueSimConfig two = one;
    two.servers = 2; // same arrival rate, double capacity
    EXPECT_GT(runQueueSim(one).wait.mean(),
              runQueueSim(two).wait.mean() * 3.0);
}

TEST(QueueSim, MultiServerUtilizationHalves)
{
    auto service = makeExponential(1e-6);
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1e-6 / 0.8);
    cfg.service = service;
    cfg.servers = 2;
    cfg.max_batches = 40;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_NEAR(res.utilization, 0.4, 0.03);
}

namespace
{

/**
 * The pre-heap earliest-free-server policy, verbatim: linear scan
 * for the first minimum free time (std::min_element semantics).
 * The heap in ServerSchedule must reproduce it decision-for-decision.
 */
struct ScanSchedule
{
    std::vector<double> free_at;
    double last_departure = 0.0;

    explicit ScanSchedule(std::uint32_t k) : free_at(k, 0.0) {}

    ServerSchedule::Assignment
    assign(double arrival, double service)
    {
        ServerSchedule::Assignment out;
        auto it = std::min_element(free_at.begin(), free_at.end());
        if (arrival > *it)
            out.idle_before = arrival - *it;
        out.start = std::max(arrival, *it);
        *it = out.start + service;
        last_departure = std::max(last_departure, *it);
        return out;
    }
};

} // namespace

TEST(ServerScheduleDifferential, MatchesLinearScanAcrossServerCounts)
{
    // k = 1..24 with the default threshold 16 exercises both hybrid
    // modes: the internal linear scan below the cutoff and the
    // packed heap above it, against the same reference policy.
    for (std::uint32_t k = 1; k <= 24; ++k) {
        ServerSchedule hybrid(k);
        ScanSchedule scan(k);
        ASSERT_EQ(hybrid.usesScan(),
                  k <= ServerSchedule::kDefaultScanThreshold);
        Rng rng(1000 + k);
        double now = 0.0;
        for (int i = 0; i < 5000; ++i) {
            now += rng.exponential(1.0);
            double service = rng.exponential(0.9 * k);
            ServerSchedule::Assignment a = hybrid.assign(now, service);
            ServerSchedule::Assignment b = scan.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
        EXPECT_EQ(hybrid.lastDeparture(), scan.last_departure)
            << "k=" << k;
    }
}

TEST(ServerScheduleDifferential, ForcedModesAgreeAcrossTheCutoff)
{
    // Pin the cutoff itself: force the heap at small k and the scan
    // at large k via an explicit threshold, and demand bit-identical
    // streams from both modes on the same variates.
    for (std::uint32_t k : {4u, 8u, 32u, 64u}) {
        ServerSchedule forced_heap(k, /*scan_threshold=*/0);
        ServerSchedule forced_scan(k, /*scan_threshold=*/1024);
        ASSERT_FALSE(forced_heap.usesScan());
        ASSERT_TRUE(forced_scan.usesScan());
        Rng rng(7000 + k);
        double now = 0.0;
        for (int i = 0; i < 5000; ++i) {
            now += rng.exponential(1.0);
            double service = rng.exponential(0.9 * k);
            ServerSchedule::Assignment a =
                forced_heap.assign(now, service);
            ServerSchedule::Assignment b =
                forced_scan.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
        EXPECT_EQ(forced_heap.lastDeparture(),
                  forced_scan.lastDeparture());
    }
}

TEST(ServerScheduleDifferential, ExactTiesBreakTowardLowestIndex)
{
    // Deterministic arrivals and services manufacture exact double
    // ties in free times, the case the index tie-break exists for.
    constexpr std::uint32_t k = 4;
    ServerSchedule heap(k);
    ScanSchedule scan(k);
    double now = 0.0;
    for (int i = 0; i < 2000; ++i) {
        now += 0.25;
        double service = (i % 3 == 0) ? 1.0 : 0.5;
        ServerSchedule::Assignment a = heap.assign(now, service);
        ServerSchedule::Assignment b = scan.assign(now, service);
        ASSERT_EQ(a.start, b.start) << "i=" << i;
        ASSERT_EQ(a.idle_before, b.idle_before) << "i=" << i;
    }
    EXPECT_EQ(heap.lastDeparture(), scan.last_departure);
}

TEST(ServerScheduleDifferential, FullSimMatchesVirtualScanReference)
{
    // Re-run runQueueSim's exact loop the way the pre-optimization
    // engine did — one virtual sample per request, linear scan for
    // the server — and demand bitwise-equal statistics. Any drift in
    // RNG stream positions (e.g. from block sampling) or in the heap
    // policy would desynchronize the variates and fail this.
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1e-6 / 0.85 / 3.0);
    cfg.service = makeScaled(makeExponential(0.5e-6), 2.0);
    cfg.servers = 3;
    cfg.max_batches = 10;
    cfg.relative_error = 1e-9; // run all batches
    cfg.seed = 77;
    QueueSimResult fast = runQueueSim(cfg);

    SampleStats ref_sojourn, ref_wait, ref_idle;
    std::uint64_t ref_completed = 0;
    Rng root(cfg.seed);
    Rng arrival_rng = root.fork(1);
    Rng service_rng = root.fork(2);
    Rng reservoir_rng = root.fork(3);
    ScanSchedule scan(cfg.servers);
    double now = 0.0;
    double busy = 0.0;
    BatchMeans convergence(cfg.relative_error, cfg.z_score,
                           cfg.min_batches);

    auto step = [&](double &wait, double &service,
                    double &idle_before) {
        now += cfg.interarrival->sample(arrival_rng);
        service = cfg.service->sample(service_rng);
        ServerSchedule::Assignment a = scan.assign(now, service);
        wait = a.start - now;
        idle_before = a.idle_before;
        busy += service;
    };

    double wait, service, idle_before;
    for (std::uint64_t i = 0; i < cfg.warmup_requests; ++i)
        step(wait, service, idle_before);
    SampleStats batch(cfg.batch_size);
    for (std::uint64_t b = 0; b < cfg.max_batches; ++b) {
        batch.reset();
        for (std::uint64_t i = 0; i < cfg.batch_size; ++i) {
            step(wait, service, idle_before);
            double sojourn = wait + service;
            batch.add(sojourn);
            ref_sojourn.add(sojourn, reservoir_rng.next());
            ref_wait.add(wait, reservoir_rng.next());
            if (idle_before >= 0.0)
                ref_idle.add(idle_before, reservoir_rng.next());
            ++ref_completed;
        }
        convergence.addBatch(batch.percentile(0.99));
        if (convergence.converged())
            break;
    }

    ASSERT_TRUE(fast.sojourn.exact());
    EXPECT_EQ(fast.completed, ref_completed);
    EXPECT_EQ(fast.sojourn.mean(), ref_sojourn.mean());
    EXPECT_EQ(fast.wait.mean(), ref_wait.mean());
    EXPECT_EQ(fast.sojourn.percentile(0.99),
              ref_sojourn.percentile(0.99));
    EXPECT_EQ(fast.wait.percentile(0.99),
              ref_wait.percentile(0.99));
    EXPECT_EQ(fast.idle_periods.mean(), ref_idle.mean());
    double horizon = std::max(now, scan.last_departure);
    EXPECT_EQ(fast.utilization,
              busy / (horizon * static_cast<double>(cfg.servers)));
}

TEST(QueueSim, EmpiricalServiceReplay)
{
    // Feeding measured samples back through the queue reproduces
    // their mean in the service component.
    std::vector<double> samples{1e-6, 2e-6, 3e-6};
    QueueSimConfig cfg = makeMg1(makeEmpirical(samples), 0.5, 37);
    cfg.max_batches = 30;
    QueueSimResult res = runQueueSim(cfg);
    double mean_service = res.meanSojourn() - res.wait.mean();
    EXPECT_NEAR(mean_service, 2e-6, 0.1e-6);
}
