/**
 * @file
 * BigHouse-lite tests: closed-form validation against M/M/1, queueing
 * amplification of the tail, convergence machinery, and determinism.
 */

#include <gtest/gtest.h>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"

using namespace duplexity;

namespace
{

QueueSimConfig
mm1(double load, std::uint64_t seed = 17)
{
    QueueSimConfig cfg = makeMg1(makeExponential(1e-6), load, seed);
    cfg.max_batches = 60;
    return cfg;
}

} // namespace

TEST(QueueSim, Mm1MeanSojournMatchesTheory)
{
    QueueSimResult res = runQueueSim(mm1(0.5));
    double expected = mm1MeanSojourn(0.5e6, 1e6);
    EXPECT_NEAR(res.meanSojourn(), expected, 0.06 * expected);
}

TEST(QueueSim, Mm1P99MatchesTheory)
{
    QueueSimResult res = runQueueSim(mm1(0.5));
    double expected = mm1SojournQuantile(0.5e6, 1e6, 0.99);
    EXPECT_NEAR(res.p99Sojourn(), expected, 0.10 * expected);
}

/** The core tail phenomenon: p99 explodes as load approaches 1. */
class QueueSimLoad : public ::testing::TestWithParam<double>
{
};

TEST_P(QueueSimLoad, UtilizationTracksLoad)
{
    const double load = GetParam();
    QueueSimResult res = runQueueSim(mm1(load));
    EXPECT_NEAR(res.utilization, load, 0.03);
}

TEST_P(QueueSimLoad, P99MatchesMm1Theory)
{
    const double load = GetParam();
    QueueSimResult res = runQueueSim(mm1(load));
    double expected = mm1SojournQuantile(load * 1e6, 1e6, 0.99);
    EXPECT_NEAR(res.p99Sojourn(), expected, 0.15 * expected);
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueSimLoad,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(QueueSim, TailAmplificationAcrossLoads)
{
    double p99_30 = runQueueSim(mm1(0.3)).p99Sojourn();
    double p99_90 = runQueueSim(mm1(0.9)).p99Sojourn();
    EXPECT_GT(p99_90, 4.0 * p99_30);
}

TEST(QueueSim, DeterministicServiceHasLowerTailThanExponential)
{
    QueueSimConfig det =
        makeMg1(makeDeterministic(1e-6), 0.7, 21);
    det.max_batches = 60;
    QueueSimConfig exp_cfg = mm1(0.7, 21);
    EXPECT_LT(runQueueSim(det).p99Sojourn(),
              runQueueSim(exp_cfg).p99Sojourn());
}

TEST(QueueSim, HeavyTailedServiceWorsensP99)
{
    auto pareto = makeBoundedPareto(3e-7, 1e-3, 1.5);
    QueueSimConfig heavy = makeMg1(pareto, 0.5, 23);
    heavy.max_batches = 100;
    auto expo = makeExponential(pareto->mean());
    QueueSimConfig light = makeMg1(expo, 0.5, 23);
    light.max_batches = 100;
    EXPECT_GT(runQueueSim(heavy).p99Sojourn(),
              runQueueSim(light).p99Sojourn());
}

TEST(QueueSim, IdlePeriodsFollowArrivalRate)
{
    QueueSimResult res = runQueueSim(mm1(0.4));
    // Idle periods ~ Exp(lambda): mean 1/lambda.
    EXPECT_NEAR(res.idle_periods.mean(), 1.0 / 0.4e6,
                0.10 / 0.4e6);
}

TEST(QueueSim, WaitPlusServiceEqualsSojourn)
{
    QueueSimResult res = runQueueSim(mm1(0.6));
    EXPECT_NEAR(res.wait.mean() + 1e-6, res.meanSojourn(),
                0.05 * res.meanSojourn());
}

TEST(QueueSim, SeededRunsAreReproducible)
{
    QueueSimResult a = runQueueSim(mm1(0.5, 99));
    QueueSimResult b = runQueueSim(mm1(0.5, 99));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p99Sojourn(), b.p99Sojourn());
}

TEST(QueueSim, DifferentSeedsDiffer)
{
    QueueSimResult a = runQueueSim(mm1(0.5, 1));
    QueueSimResult b = runQueueSim(mm1(0.5, 2));
    EXPECT_NE(a.p99Sojourn(), b.p99Sojourn());
}

TEST(QueueSim, ConvergenceFlagSetWhenStable)
{
    QueueSimConfig cfg = mm1(0.3);
    cfg.max_batches = 200;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_TRUE(res.converged);
}

TEST(QueueSim, StopsAtMaxBatches)
{
    QueueSimConfig cfg = mm1(0.5);
    cfg.relative_error = 1e-9; // unattainable
    cfg.max_batches = 10;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.completed, 10u * cfg.batch_size);
}

TEST(QueueSim, MultiServerReducesWaits)
{
    auto service = makeExponential(1e-6);
    QueueSimConfig one;
    one.interarrival = makeExponential(1e-6 / 0.8);
    one.service = service;
    one.servers = 1;
    one.max_batches = 40;
    one.seed = 31;
    QueueSimConfig two = one;
    two.servers = 2; // same arrival rate, double capacity
    EXPECT_GT(runQueueSim(one).wait.mean(),
              runQueueSim(two).wait.mean() * 3.0);
}

TEST(QueueSim, MultiServerUtilizationHalves)
{
    auto service = makeExponential(1e-6);
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1e-6 / 0.8);
    cfg.service = service;
    cfg.servers = 2;
    cfg.max_batches = 40;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_NEAR(res.utilization, 0.4, 0.03);
}

TEST(QueueSim, EmpiricalServiceReplay)
{
    // Feeding measured samples back through the queue reproduces
    // their mean in the service component.
    std::vector<double> samples{1e-6, 2e-6, 3e-6};
    QueueSimConfig cfg = makeMg1(makeEmpirical(samples), 0.5, 37);
    cfg.max_batches = 30;
    QueueSimResult res = runQueueSim(cfg);
    double mean_service = res.meanSojourn() - res.wait.mean();
    EXPECT_NEAR(mean_service, 2e-6, 0.1e-6);
}
