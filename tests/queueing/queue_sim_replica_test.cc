/**
 * @file
 * Replicated tail-engine tests: the R = 1 bit-identity contract
 * against the legacy single-stream path, worker-count invariance of
 * the merged result for fixed R, the pooled early-stopping rule, and
 * the DPX_REPLICAS knob.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"

using namespace duplexity;

namespace
{

QueueSimConfig
smallMm1(double load, std::uint64_t seed)
{
    QueueSimConfig cfg = makeMg1(makeExponential(1e-6), load, seed);
    cfg.warmup_requests = 500;
    cfg.batch_size = 4000;
    cfg.min_batches = 8;
    cfg.max_batches = 32;
    return cfg;
}

/** RAII save/set/restore of one environment variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_ = false;
    std::string old_;
};

struct ResultFingerprint
{
    double p99;
    double mean;
    double wait_mean;
    double utilization;
    std::uint64_t completed;
    bool converged;
    std::uint32_t replicas;
};

ResultFingerprint
fingerprint(const QueueSimResult &res)
{
    return {res.p99Sojourn(),     res.meanSojourn(),
            res.wait.mean(),      res.utilization,
            res.completed,        res.converged,
            res.replicas};
}

void
expectBitIdentical(const ResultFingerprint &a,
                   const ResultFingerprint &b)
{
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.wait_mean, b.wait_mean);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.replicas, b.replicas);
}

} // namespace

TEST(ReplicaEngine, R1BitIdenticalToLegacySingleStream)
{
    // Hand-rolled pre-replication engine: one virtual-sampled Lindley
    // stream with reservoir-collected stats, the exact loop the
    // single-stream path must keep reproducing bit-for-bit.
    QueueSimConfig cfg = smallMm1(0.6, 91);
    cfg.relative_error = 1e-9; // run every batch
    cfg.max_batches = 12;
    cfg.replicas = 1;
    QueueSimResult fast = runQueueSim(cfg);
    ASSERT_TRUE(fast.sojourn.exact());

    SampleStats ref_sojourn, ref_wait, ref_idle;
    std::uint64_t ref_completed = 0;
    Rng root(cfg.seed);
    Rng arrival_rng = root.fork(1);
    Rng service_rng = root.fork(2);
    Rng reservoir_rng = root.fork(3);
    double now = 0.0, last_departure = 0.0, busy = 0.0;
    auto step = [&](double &wait, double &service,
                    double &idle_before) {
        now += cfg.interarrival->sample(arrival_rng);
        service = cfg.service->sample(service_rng);
        idle_before =
            now > last_departure ? now - last_departure : -1.0;
        double start = std::max(now, last_departure);
        wait = start - now;
        last_departure = start + service;
        busy += service;
    };

    double wait, service, idle_before;
    for (std::uint64_t i = 0; i < cfg.warmup_requests; ++i)
        step(wait, service, idle_before);
    SampleStats batch(cfg.batch_size);
    BatchMeans convergence(cfg.relative_error, cfg.z_score,
                           cfg.min_batches);
    for (std::uint64_t b = 0; b < cfg.max_batches; ++b) {
        batch.reset();
        for (std::uint64_t i = 0; i < cfg.batch_size; ++i) {
            step(wait, service, idle_before);
            double sojourn = wait + service;
            batch.add(sojourn);
            ref_sojourn.add(sojourn, reservoir_rng.next());
            ref_wait.add(wait, reservoir_rng.next());
            if (idle_before >= 0.0)
                ref_idle.add(idle_before, reservoir_rng.next());
            ++ref_completed;
        }
        convergence.addBatch(batch.percentile(0.99));
        if (convergence.converged())
            break;
    }

    EXPECT_EQ(fast.completed, ref_completed);
    EXPECT_EQ(fast.sojourn.mean(), ref_sojourn.mean());
    EXPECT_EQ(fast.p99Sojourn(), ref_sojourn.percentile(0.99));
    EXPECT_EQ(fast.wait.mean(), ref_wait.mean());
    EXPECT_EQ(fast.idle_periods.mean(), ref_idle.mean());
    double horizon = std::max(now, last_departure);
    EXPECT_EQ(fast.utilization, busy / horizon);
}

TEST(ReplicaEngine, ExplicitR1MatchesDefault)
{
    QueueSimConfig a = smallMm1(0.5, 7);
    QueueSimConfig b = a;
    a.replicas = 0; // resolve from env (unset -> 1)
    b.replicas = 1;
    ScopedEnv env("DPX_REPLICAS", nullptr);
    expectBitIdentical(fingerprint(runQueueSim(a)),
                       fingerprint(runQueueSim(b)));
}

TEST(ReplicaDeterminism, MergedResultInvariantAcrossWorkerCounts)
{
    // The semantics contract: for fixed R the merged result is a
    // pure function of the replica streams — bit-identical whether
    // the replicas run serially (DPX_THREADS=1), on a small pool, or
    // on every hardware thread.
    QueueSimConfig cfg = smallMm1(0.7, 123);
    cfg.replicas = 4;
    cfg.relative_error = 1e-9;

    ResultFingerprint serial, four, hw;
    {
        ScopedEnv env("DPX_THREADS", "1");
        serial = fingerprint(runQueueSim(cfg));
    }
    {
        ScopedEnv env("DPX_THREADS", "4");
        four = fingerprint(runQueueSim(cfg));
    }
    {
        ScopedEnv env("DPX_THREADS", nullptr); // hardware threads
        hw = fingerprint(runQueueSim(cfg));
    }
    expectBitIdentical(serial, four);
    expectBitIdentical(serial, hw);
    EXPECT_EQ(serial.replicas, 4u);
}

TEST(ReplicaDeterminism, InsideSweepPoolMatchesTopLevel)
{
    // Replicated runs inside a pool worker share the enclosing
    // pool's budget (nested runTaskBatch) — and still produce the
    // exact top-level result.
    QueueSimConfig cfg = smallMm1(0.6, 55);
    cfg.replicas = 3;
    cfg.relative_error = 1e-9;
    cfg.max_batches = 9;

    ResultFingerprint top = fingerprint(runQueueSim(cfg));

    ResultFingerprint nested{};
    ThreadPool pool(2);
    pool.submit([&] { nested = fingerprint(runQueueSim(cfg)); });
    pool.wait();
    expectBitIdentical(top, nested);
}

TEST(ReplicaDeterminism, RepeatedRunsBitIdentical)
{
    QueueSimConfig cfg = smallMm1(0.8, 321);
    cfg.replicas = 8;
    expectBitIdentical(fingerprint(runQueueSim(cfg)),
                       fingerprint(runQueueSim(cfg)));
}

TEST(ReplicaEngine, MergedStatsTrackSingleStreamAndTheory)
{
    const double load = 0.7;
    QueueSimConfig cfg = smallMm1(load, 11);
    cfg.relative_error = 1e-9;
    cfg.max_batches = 32;

    QueueSimConfig rep = cfg;
    rep.replicas = 8;
    QueueSimResult merged = runQueueSim(rep);
    QueueSimResult single = runQueueSim(cfg);

    ASSERT_FALSE(merged.sojourn.exact());
    ASSERT_NE(merged.sojourn.sketch(), nullptr);
    EXPECT_EQ(merged.completed, single.completed);
    EXPECT_NEAR(merged.meanSojourn(), single.meanSojourn(),
                0.05 * single.meanSojourn());
    EXPECT_NEAR(merged.p99Sojourn(), single.p99Sojourn(),
                0.15 * single.p99Sojourn());
    double expected = mm1SojournQuantile(load * 1e6, 1e6, 0.99);
    EXPECT_NEAR(merged.p99Sojourn(), expected, 0.15 * expected);
    EXPECT_NEAR(merged.utilization, load, 0.04);
}

TEST(ReplicaEngine, PooledStoppingRuleStopsEarly)
{
    // A low-load M/M/1 converges almost immediately: the pooled
    // stopping rule should cut the run to a small number of rounds
    // instead of draining the full batch budget in every replica.
    QueueSimConfig cfg = smallMm1(0.3, 19);
    cfg.replicas = 4;
    cfg.max_batches = 200;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_TRUE(res.converged);
    // Each round costs replicas * batch_size requests; converging in
    // <= 4 rounds leaves completed far below the serial budget.
    EXPECT_LE(res.completed, 4u * 4u * cfg.batch_size);
    EXPECT_EQ(res.completed % (4u * cfg.batch_size), 0u);
}

TEST(ReplicaEngine, BatchBudgetSplitsAcrossReplicas)
{
    // Unattainable target: R replicas drain ceil(max/R) rounds, so
    // total completed work stays at the serial budget, not R times.
    QueueSimConfig cfg = smallMm1(0.5, 29);
    cfg.replicas = 4;
    cfg.relative_error = 1e-12;
    cfg.max_batches = 12;
    QueueSimResult res = runQueueSim(cfg);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.completed, 12u * cfg.batch_size);
}

TEST(ReplicaEngine, EnvKnobResolvesReplicas)
{
    QueueSimConfig cfg = smallMm1(0.5, 3);
    cfg.max_batches = 8;
    cfg.relative_error = 1e-9;
    {
        ScopedEnv env("DPX_REPLICAS", "4");
        EXPECT_EQ(resolveReplicas(cfg), 4u);
        EXPECT_EQ(runQueueSim(cfg).replicas, 4u);
    }
    {
        ScopedEnv env("DPX_REPLICAS", "garbage");
        EXPECT_EQ(resolveReplicas(cfg), 1u);
    }
    {
        // The explicit field wins over the environment.
        ScopedEnv env("DPX_REPLICAS", "8");
        cfg.replicas = 2;
        EXPECT_EQ(resolveReplicas(cfg), 2u);
        EXPECT_EQ(runQueueSim(cfg).replicas, 2u);
    }
}

TEST(ReplicaEngine, SketchSummaryRejectsSampleAccess)
{
    // Fork-after-exec style: earlier tests spawn pool threads, and
    // the sanitizer jobs run this suite.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    QueueSimConfig cfg = smallMm1(0.5, 41);
    cfg.replicas = 2;
    cfg.max_batches = 8;
    cfg.relative_error = 1e-9;
    QueueSimResult res = runQueueSim(cfg);
    ASSERT_FALSE(res.sojourn.exact());
    EXPECT_DEATH(res.sojourn.samples(), "sketch-backed");
}
