/**
 * @file
 * Analytic-model tests, including cross-checks against the discrete
 * simulator: the M/G/1 idle-period law (Figure 1(b)), the binomial
 * ready-thread model (Figure 2(b)), and M/M/1 closed forms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/analytic.hh"
#include "queueing/queue_sim.hh"
#include "sim/rng.hh"

using namespace duplexity;

TEST(ClosedLoop, Limits)
{
    EXPECT_NEAR(closedLoopUtilization(10.0, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(closedLoopUtilization(0.0, 10.0), 0.0, 1e-12);
    EXPECT_NEAR(closedLoopUtilization(1.0, 1.0), 0.5, 1e-12);
    // A DRAM-scale (100ns) stall every few µs is negligible (Fig 1a).
    EXPECT_GT(closedLoopUtilization(5.0, 0.1), 0.97);
}

TEST(ClosedLoop, MonotonicInStall)
{
    double prev = 1.0;
    for (double stall = 0.1; stall < 100.0; stall *= 2.0) {
        double u = closedLoopUtilization(2.0, stall);
        EXPECT_LT(u, prev);
        prev = u;
    }
}

TEST(IdlePeriods, PaperExamples)
{
    // Section II-A: 200K QPS @ 50% load -> 10 µs mean idle;
    // 1M QPS @ 50% -> 2 µs.
    EXPECT_NEAR(meanIdlePeriodUs(200e3, 0.5), 10.0, 1e-9);
    EXPECT_NEAR(meanIdlePeriodUs(1e6, 0.5), 2.0, 1e-9);
}

TEST(IdlePeriods, CdfIsExponential)
{
    double mean = meanIdlePeriodUs(1e6, 0.3);
    EXPECT_NEAR(idlePeriodCdf(1e6, 0.3, mean), 1.0 - std::exp(-1.0),
                1e-9);
    EXPECT_EQ(idlePeriodCdf(1e6, 0.3, 0.0), 0.0);
}

TEST(IdlePeriods, LawIndependentOfServiceDistribution)
{
    // M/G/1 idle periods are Exp(lambda) regardless of G: check two
    // very different service shapes in the simulator.
    for (auto service :
         {makeDeterministic(2e-6),
          makeBoundedPareto(2e-7, 2e-4, 1.3)}) {
        QueueSimConfig cfg = makeMg1(service, 0.5, 11);
        cfg.max_batches = 20;
        QueueSimResult res = runQueueSim(cfg);
        double lambda = 0.5 / service->mean();
        EXPECT_NEAR(res.idle_periods.mean(), 1.0 / lambda,
                    0.08 / lambda)
            << "service mean " << service->mean();
    }
}

TEST(ReadyThreads, DegenerateCases)
{
    EXPECT_EQ(readyThreadsProbability(8, 0.0, 8), 1.0);
    EXPECT_EQ(readyThreadsProbability(7, 0.1, 8), 0.0);
    EXPECT_NEAR(readyThreadsProbability(8, 1.0, 8), 0.0, 1e-12);
    EXPECT_EQ(readyThreadsProbability(4, 0.5, 0), 1.0);
}

TEST(ReadyThreads, PaperFigure2bNumbers)
{
    // Section III-A: at 10% stall, ~11 virtual contexts keep the 8
    // physical contexts >=90% supplied (the exact binomial crosses
    // 0.90 at n = 10, one below the value read off Figure 2(b));
    // at 50% stall, exactly 21 are needed.
    EXPECT_GE(readyThreadsProbability(11, 0.1, 8), 0.90);
    EXPECT_LT(readyThreadsProbability(9, 0.1, 8), 0.90);
    EXPECT_GE(readyThreadsProbability(21, 0.5, 8), 0.90);
    EXPECT_LT(readyThreadsProbability(20, 0.5, 8), 0.90);
    std::uint32_t n_low = virtualContextsNeeded(0.1, 8, 0.90);
    EXPECT_GE(n_low, 10u);
    EXPECT_LE(n_low, 11u);
    EXPECT_EQ(virtualContextsNeeded(0.5, 8, 0.90), 21u);
}

TEST(ReadyThreads, MonotonicInContexts)
{
    double prev = 0.0;
    for (std::uint32_t n = 8; n <= 40; ++n) {
        double p = readyThreadsProbability(n, 0.5, 8);
        EXPECT_GE(p, prev - 1e-12);
        prev = p;
    }
}

TEST(ReadyThreads, MatchesMonteCarlo)
{
    Rng rng(13);
    const std::uint32_t n = 16;
    const double p_stall = 0.4;
    int success = 0;
    const int trials = 200000;
    for (int t = 0; t < trials; ++t) {
        int ready = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            ready += !rng.chance(p_stall);
        success += ready >= 8;
    }
    EXPECT_NEAR(static_cast<double>(success) / trials,
                readyThreadsProbability(n, p_stall, 8), 0.005);
}

TEST(Mm1, ClosedForms)
{
    double lambda = 0.7, mu = 1.0;
    EXPECT_NEAR(mm1MeanSojourn(lambda, mu), 1.0 / 0.3, 1e-9);
    EXPECT_NEAR(mm1MeanInSystem(lambda, mu), 0.7 / 0.3, 1e-9);
    EXPECT_NEAR(mm1SojournQuantile(lambda, mu, 0.99),
                std::log(100.0) / 0.3, 1e-9);
}

TEST(Mm1, QuantileOrdering)
{
    EXPECT_LT(mm1SojournQuantile(0.5, 1.0, 0.5),
              mm1SojournQuantile(0.5, 1.0, 0.99));
}
