/**
 * @file
 * Idle fast-forward differential wall for the queueing layer.
 *
 * The O(1) idle seating path (ServerSchedule's sorted ring) must be
 * invisible in every simulated outcome: assignment-by-assignment
 * against the forced legacy scan/heap across server counts straddling
 * the scan threshold, through load patterns that bounce the schedule
 * in and out of the drained state (including exact arrival == free
 * ties), and end-to-end through runQueueSim where every summary
 * statistic must be bitwise equal and the skipped idle spans must
 * still land in the idle-period stats. Part of the golden label.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "queueing/queue_sim.hh"
#include "sim/distributions.hh"
#include "sim/rng.hh"

using namespace duplexity;

namespace
{

/** Server counts on both sides of the scan threshold (16). */
constexpr std::uint32_t kServerCounts[] = {1, 2, 8, 16, 17, 64};

void
expectSummaryEq(const TailSummary &a, const TailSummary &b,
                const std::string &what)
{
    ASSERT_EQ(a.count(), b.count()) << what;
    ASSERT_EQ(a.mean(), b.mean()) << what;
    if (a.count() > 0) {
        ASSERT_EQ(a.min(), b.min()) << what;
        ASSERT_EQ(a.max(), b.max()) << what;
        ASSERT_EQ(a.percentile(0.5), b.percentile(0.5)) << what;
        ASSERT_EQ(a.percentile(0.99), b.percentile(0.99)) << what;
    }
}

void
expectResultEq(const QueueSimResult &a, const QueueSimResult &b,
               const std::string &what)
{
    ASSERT_EQ(a.completed, b.completed) << what;
    ASSERT_EQ(a.utilization, b.utilization) << what;
    ASSERT_EQ(a.converged, b.converged) << what;
    ASSERT_EQ(a.replicas, b.replicas) << what;
    expectSummaryEq(a.sojourn, b.sojourn, what + "/sojourn");
    expectSummaryEq(a.wait, b.wait, what + "/wait");
    expectSummaryEq(a.idle_periods, b.idle_periods, what + "/idle");
}

} // namespace

/** Fast vs forced-legacy schedules fed the identical arrival/service
 *  stream whose load ramps busy -> drained -> busy, so the ring is
 *  entered and exited repeatedly. Start times and idle gaps must
 *  match per assignment, exactly. */
TEST(QueueIdleFfDiff, AssignmentsMatchAcrossLoadSwings)
{
    for (std::uint32_t k : kServerCounts) {
        ServerSchedule fast(k);
        ServerSchedule legacy(k);
        legacy.setIdleFastForwardEnabled(false);
        ASSERT_TRUE(fast.idleFastForwardEnabled());
        ASSERT_FALSE(legacy.idleFastForwardEnabled());
        ASSERT_EQ(fast.usesScan(), legacy.usesScan());

        Rng rng(1000 + k);
        double now = 0.0;
        const double service_scale = 1e-6;
        for (int i = 0; i < 60'000; ++i) {
            // Four-phase ramp: saturating, drained (sparse arrivals),
            // moderate, then sparse again — each phase ~1/4 of the
            // stream so both idle entry and busy fallback recur.
            const int phase = (i / 5'000) % 4;
            const double sparse = (phase == 1 || phase == 3)
                                      ? 40.0 * static_cast<double>(k)
                                      : 0.4;
            now += sparse * service_scale * rng.uniform();
            const double service =
                service_scale * (0.25 + rng.uniform());
            ServerSchedule::Assignment a = fast.assign(now, service);
            ServerSchedule::Assignment b = legacy.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
        ASSERT_EQ(fast.lastDeparture(), legacy.lastDeparture())
            << "k=" << k;
        EXPECT_GT(fast.idleFastForwards(), 0u) << "k=" << k;
        EXPECT_EQ(legacy.idleFastForwards(), 0u) << "k=" << k;
    }
}

/** Exact arrival == free-time ties: the legacy modes break ties by
 *  server index and report idle_before = -1 (no idle gap on an exact
 *  back-to-back seat); the ring must reproduce both. Integer-valued
 *  times make every comparison exact. */
TEST(QueueIdleFfDiff, ExactTiesMatchLegacyTieBreaks)
{
    for (std::uint32_t k : kServerCounts) {
        ServerSchedule fast(k);
        ServerSchedule legacy(k);
        legacy.setIdleFastForwardEnabled(false);
        Rng rng(77 + k);
        double now = 0.0;
        for (int i = 0; i < 30'000; ++i) {
            // Integer arithmetic in doubles: ties happen constantly
            // (every server frees on a whole number, arrivals land on
            // whole numbers).
            now += static_cast<double>(rng.next() % 3);
            const double service =
                static_cast<double>(1 + rng.next() % 4);
            ServerSchedule::Assignment a = fast.assign(now, service);
            ServerSchedule::Assignment b = legacy.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
    }
}

/** Zero-length services on integer times force the exact-tie
 *  pathology the recorded-ring activation cannot represent: the
 *  legacy policy can reseat one server repeatedly inside a drained
 *  stretch, so validation must reject the record and take the
 *  snapshot-and-sort fallback — with outcomes still identical. */
TEST(QueueIdleFfDiff, ZeroServiceTiesTakeSortFallback)
{
    for (std::uint32_t k : {2u, 3u, 8u}) {
        ServerSchedule fast(k);
        ServerSchedule legacy(k);
        legacy.setIdleFastForwardEnabled(false);
        Rng rng(900 + k);
        double now = 0.0;
        for (int i = 0; i < 20'000; ++i) {
            // Mostly-zero services keep the system drained (long
            // stretches that reach the proving period even at k = 8)
            // while producing constant exact-tie reseats.
            now += static_cast<double>(rng.next() % 2);
            const double service =
                rng.next() % 4 == 0 ? 1.0 : 0.0;
            ServerSchedule::Assignment a = fast.assign(now, service);
            ServerSchedule::Assignment b = legacy.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
        ASSERT_EQ(fast.lastDeparture(), legacy.lastDeparture())
            << "k=" << k;
        EXPECT_GT(fast.idleFastForwards(), 0u) << "k=" << k;
    }
}

/** Disabling mid-stream (while the ring is active) resyncs the legacy
 *  structures exactly; re-enabling resumes fast-forwarding. */
TEST(QueueIdleFfDiff, MidStreamToggleResyncsLegacyState)
{
    for (std::uint32_t k : kServerCounts) {
        ServerSchedule toggled(k);
        ServerSchedule legacy(k);
        legacy.setIdleFastForwardEnabled(false);
        Rng rng(5 + k);
        double now = 0.0;
        for (int i = 0; i < 40'000; ++i) {
            if (i % 4'000 == 0) // flip while idle-active and while not
                toggled.setIdleFastForwardEnabled((i / 4'000) % 2 == 0);
            now += 60.0 * static_cast<double>(k % 7 + 1) *
                   rng.uniform() * (i % 9 == 0 ? 1e-3 : 1.0);
            const double service = 20.0 * (0.5 + rng.uniform());
            ServerSchedule::Assignment a = toggled.assign(now, service);
            ServerSchedule::Assignment b = legacy.assign(now, service);
            ASSERT_EQ(a.start, b.start) << "k=" << k << " i=" << i;
            ASSERT_EQ(a.idle_before, b.idle_before)
                << "k=" << k << " i=" << i;
        }
    }
}

/** End-to-end: runQueueSim with the fast path on vs config-disabled
 *  is bitwise identical in every reported statistic, across server
 *  counts, replica counts, and loads — and the idle-period stats
 *  conserve the skipped spans (they are charged, not dropped). */
TEST(QueueIdleFfDiff, RunQueueSimBitIdentical)
{
    const std::uint32_t server_counts[] = {1, 8, 64};
    const std::uint32_t replica_counts[] = {1, 4};
    const double loads[] = {0.05, 0.3, 0.7};
    for (std::uint32_t k : server_counts) {
        for (std::uint32_t replicas : replica_counts) {
            for (double load : loads) {
                QueueSimConfig cfg;
                cfg.service = makeExponential(1e-6);
                cfg.interarrival = makeExponential(
                    1e-6 / load / static_cast<double>(k));
                cfg.servers = k;
                cfg.seed = 42;
                cfg.warmup_requests = 2'000;
                cfg.batch_size = 20'000;
                cfg.min_batches = 4;
                cfg.max_batches = 4;
                cfg.relative_error = 1e-12;
                cfg.replicas = replicas;

                QueueSimConfig off = cfg;
                off.idle_fast_forward = false;

                QueueSimResult fast = runQueueSim(cfg);
                QueueSimResult legacy = runQueueSim(off);
                // Built with += : GCC 12's -Wrestrict false positive
                // (PR 105329) flags the literal + rvalue-string
                // chain under -O3, which -Werror CI would reject.
                std::string what = "k";
                what += std::to_string(k);
                what += "/r";
                what += std::to_string(replicas);
                what += "/load";
                what += std::to_string(load);
                expectResultEq(fast, legacy, what);
                ASSERT_EQ(legacy.idle_fast_forwards, 0u) << what;
                if (k == 8 && load <= 0.05) {
                    // The ring activates only after k consecutive
                    // drained seats (the proving period), so only
                    // genuinely sparse multi-server traffic is
                    // guaranteed to exercise it: at k = 8 and 5 %
                    // load drained stretches average ~3 arrivals
                    // and reach 8 often; at k = 64 they never do.
                    EXPECT_GT(fast.idle_fast_forwards, 0u) << what;
                }
            }
        }
    }
}
