#!/usr/bin/env python3
"""Self-test for tools/dpx_lint.py against the fixture tree.

Every bad fixture must trip exactly its own rule with exit status 1;
the allowed/clean fixtures must pass with exit status 0; a malformed
file-wide waiver must be a config error (exit status 2).  The
fixtures live under tests/lint/fixtures/ laid out like the real tree,
and the linter is pointed at them with --root so path-scoped rules
(DPX002/005/006) see realistic paths.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "dpx_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

RULE_IDS = ["DPX%03d" % n for n in range(1, 10)]

# (fixture path, expected exit status, rule that must fire or None)
CASES = [
    ("src/sim/dpx001_rand.cc", 1, "DPX001"),
    ("src/sim/dpx002_clock.cc", 1, "DPX002"),
    ("src/sim/dpx003_thread.cc", 1, "DPX003"),
    ("src/sim/dpx004_unordered.cc", 1, "DPX004"),
    ("src/queueing/dpx005_float.cc", 1, "DPX005"),
    ("src/sim/dpx006_guard.hh", 1, "DPX006"),
    ("src/sim/dpx007_abort.cc", 1, "DPX007"),
    ("src/cpu/dpx008_hotloop.cc", 1, "DPX008"),
    ("src/cpu/dpx008_unbalanced.cc", 1, "DPX008"),
    ("src/cpu/dpx009_simd.cc", 1, "DPX009"),
    ("src/sim/digit_separator.cc", 1, "DPX003"),
    ("src/sim/allowed_ok.cc", 0, None),
    ("src/sim/unused_waiver.cc", 0, None),
    ("src/sim/clean.hh", 0, None),
    ("src/sim/simd.hh", 0, None),  # the wrapper itself is exempt
    ("src/sim/bad_allow_file.cc", 2, None),
]


def run_lint(fixture):
    cmd = [sys.executable, LINT, "--root", FIXTURES,
           os.path.join(FIXTURES, fixture)]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []
    for fixture, want_rc, want_rule in CASES:
        proc = run_lint(fixture)
        output = proc.stdout + proc.stderr
        fired = {r for r in RULE_IDS
                 if re.search(r"\b%s\b" % r, proc.stdout)}
        if proc.returncode != want_rc:
            failures.append("%s: exit %d, expected %d\n%s"
                            % (fixture, proc.returncode, want_rc,
                               output))
            continue
        if want_rule is not None and fired != {want_rule}:
            failures.append("%s: rules fired %s, expected exactly {%s}"
                            "\n%s" % (fixture, sorted(fired) or "{}",
                                      want_rule, output))
        if want_rc == 0 and output.strip():
            failures.append("%s: expected silence, got:\n%s"
                            % (fixture, output))

    # The rule table must list every rule (docs stay in sync).
    proc = subprocess.run([sys.executable, LINT, "--list-rules"],
                          capture_output=True, text=True)
    for rule in RULE_IDS:
        if rule not in proc.stdout:
            failures.append("--list-rules omits %s" % rule)

    # Unknown rule names are a usage error, not a silent no-op.
    proc = subprocess.run([sys.executable, LINT, "--rule", "DPX999",
                           os.path.join(FIXTURES, CASES[0][0])],
                          capture_output=True, text=True)
    if proc.returncode != 2:
        failures.append("--rule DPX999: exit %d, expected 2"
                        % proc.returncode)

    # --report-unused-waivers: the dead allow() must become a finding,
    # while a waiver that suppresses a real hit stays silent.
    proc = subprocess.run([sys.executable, LINT, "--root", FIXTURES,
                           "--report-unused-waivers",
                           os.path.join(FIXTURES,
                                        "src/sim/unused_waiver.cc")],
                          capture_output=True, text=True)
    if proc.returncode != 1 or "unused waiver" not in proc.stdout:
        failures.append("--report-unused-waivers missed the dead "
                        "allow():\n%s" % (proc.stdout + proc.stderr))
    proc = subprocess.run([sys.executable, LINT, "--root", FIXTURES,
                           "--report-unused-waivers",
                           os.path.join(FIXTURES,
                                        "src/sim/allowed_ok.cc")],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append("--report-unused-waivers flagged a live "
                        "waiver:\n%s" % (proc.stdout + proc.stderr))
    # The flag needs the full rule set: a --rule subset would make
    # waivers for unselected rules look dead.
    proc = subprocess.run([sys.executable, LINT, "--rule", "DPX001",
                           "--report-unused-waivers",
                           os.path.join(FIXTURES, CASES[0][0])],
                          capture_output=True, text=True)
    if proc.returncode != 2:
        failures.append("--report-unused-waivers with --rule subset: "
                        "exit %d, expected 2" % proc.returncode)

    if failures:
        print("dpx-lint selftest: %d failure(s)" % len(failures))
        for failure in failures:
            print("----\n" + failure)
        return 1
    print("dpx-lint selftest: %d cases OK" % (len(CASES) + 5))
    return 0


if __name__ == "__main__":
    sys.exit(main())
