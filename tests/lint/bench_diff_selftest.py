#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py against the fixture JSONs.

Advisory cases must exit 0; what varies is which ::warning:: lines
appear. A regressed metric must produce exactly the perf-regression
warning, a rebased baseline leaf must produce exactly the
stale-baseline warning, a clean pair must stay warning-free — the
fast_path counter subtree swings wildly between fixtures and must
never gate, but its deltas are printed as informational lines, and
a counter collapsing from positive to zero must warn (that shape is
a disabled fast path, not noise) — and unreadable input must warn
rather than crash.
With --fail-on-stale, baseline drift upgrades to ::error:: and exit 1
while a clean pair still exits 0 — the one gating mode CI uses.
The fixtures live under tests/lint/fixtures/bench/.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
DIFF = os.path.join(REPO, "tools", "bench_diff.py")
FIXTURES = os.path.join(HERE, "fixtures", "bench")

REGRESSED = "regressed"
STALE = "predates the parent-commit baseline rebase"
UNREADABLE = "could not read inputs"
FF_ZERO = "no longer activates"

# (fresh fixture, extra flags, expected exit code,
#  substrings the output must contain, substrings it must not)
CASES = [
    ("fresh_ok.json", [], 0,
     ["no regressions", "fast_path.split_phase_ops", "info"],
     ["::warning::"]),
    ("fresh_regressed.json", [], 0,
     ["::warning::perf-smoke", REGRESSED, "process_op.ns_per_op"],
     [STALE, FF_ZERO]),
    ("fresh_stale.json", [], 0,
     ["::warning::perf-smoke", STALE, "baseline_ns_per_op"],
     [REGRESSED, FF_ZERO]),
    ("missing.json", [], 0, [UNREADABLE], [REGRESSED, STALE]),
    ("fresh_stale.json", ["--fail-on-stale"], 1,
     ["::error::perf-smoke", STALE, "regenerate BENCH_hotpath.json"],
     [REGRESSED, "::warning::"]),
    ("fresh_ok.json", ["--fail-on-stale"], 0, ["no regressions"],
     ["::warning::", "::error::"]),
    ("fresh_ff_zero.json", [], 0,
     ["::warning::perf-smoke", FF_ZERO, "fast_path.split_phase_ops"],
     [REGRESSED, STALE]),
]


def run_diff(fresh, flags):
    cmd = [sys.executable, DIFF,
           os.path.join(FIXTURES, "committed.json"),
           os.path.join(FIXTURES, fresh)] + flags
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []
    for fresh, flags, want_exit, want, forbid in CASES:
        proc = run_diff(fresh, flags)
        output = proc.stdout + proc.stderr
        label = " ".join([fresh] + flags)
        if proc.returncode != want_exit:
            failures.append("%s: exit %d, expected %d\n%s"
                            % (label, proc.returncode, want_exit,
                               output))
            continue
        for text in want:
            if text not in output:
                failures.append("%s: output lacks %r\n%s"
                                % (label, text, output))
        for text in forbid:
            if text in output:
                failures.append("%s: output must not contain %r\n%s"
                                % (label, text, output))

    if failures:
        print("bench-diff selftest: %d failure(s)" % len(failures))
        for failure in failures:
            print("----\n" + failure)
        return 1
    print("bench-diff selftest: %d cases OK" % len(CASES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
