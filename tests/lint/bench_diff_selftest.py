#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py against the fixture JSONs.

Every case must exit 0 (the perf-smoke diff is advisory, never
gating); what varies is which ::warning:: lines appear. A regressed
metric must produce exactly the perf-regression warning, a rebased
baseline leaf must produce exactly the stale-baseline warning, a
clean pair must stay silent, and unreadable input must warn rather
than crash. The fixtures live under tests/lint/fixtures/bench/.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
DIFF = os.path.join(REPO, "tools", "bench_diff.py")
FIXTURES = os.path.join(HERE, "fixtures", "bench")

REGRESSED = "regressed"
STALE = "predates the parent-commit baseline rebase"
UNREADABLE = "could not read inputs"

# (fresh fixture, substrings the output must contain,
#  substrings it must not contain)
CASES = [
    ("fresh_ok.json", ["no regressions"],
     ["::warning::"]),
    ("fresh_regressed.json",
     ["::warning::perf-smoke", REGRESSED, "process_op.ns_per_op"],
     [STALE]),
    ("fresh_stale.json",
     ["::warning::perf-smoke", STALE, "baseline_ns_per_op"],
     [REGRESSED]),
    ("missing.json", [UNREADABLE], [REGRESSED, STALE]),
]


def run_diff(fresh):
    cmd = [sys.executable, DIFF,
           os.path.join(FIXTURES, "committed.json"),
           os.path.join(FIXTURES, fresh)]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []
    for fresh, want, forbid in CASES:
        proc = run_diff(fresh)
        output = proc.stdout + proc.stderr
        if proc.returncode != 0:
            failures.append("%s: exit %d, expected 0 (advisory)\n%s"
                            % (fresh, proc.returncode, output))
            continue
        for text in want:
            if text not in output:
                failures.append("%s: output lacks %r\n%s"
                                % (fresh, text, output))
        for text in forbid:
            if text in output:
                failures.append("%s: output must not contain %r\n%s"
                                % (fresh, text, output))

    if failures:
        print("bench-diff selftest: %d failure(s)" % len(failures))
        for failure in failures:
            print("----\n" + failure)
        return 1
    print("bench-diff selftest: %d cases OK" % len(CASES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
