#!/usr/bin/env python3
"""Self-test for tools/dpx_analyze.py against the fixture trees.

Layout mirrors tests/lint/selftest.py (the dpx_lint fixture wall):

 - fixtures/analyze/       one positive + one negative fixture per
   semantic rule DPX101-106, run file-by-file with --rule so each
   fixture proves exactly its own rule (positives) or full-rule
   silence (negatives);
 - fixtures/contract_ok/   a miniature repo whose one fast-path
   switch is golden-covered, bench-surfaced, and registered — the
   auditor must pass and --check-registry must accept the committed
   registry;
 - fixtures/contract_bad/  the same switch with no golden coverage
   and no bench counter — the auditor must fail with DPX110;
 - fixtures/contract_waiver_bad/  a DPX110 waiver without a reason —
   a config error (exit 2), never a silent pass.

Everything runs on the builtin backend with the cache disabled so the
self-test is hermetic on hosts without clang.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZE = os.path.join(REPO, "tools", "dpx_analyze.py")
FIXTURES = os.path.join(HERE, "fixtures")
ANALYZE_FIX = os.path.join(FIXTURES, "analyze")

RULE_IDS = ["DPX%03d" % n for n in range(101, 107)] + ["DPX110"]

# (fixture path under analyze/, --rule selection, expected exit
#  status, rule that must fire or None)
RULE_CASES = [
    ("src/sim/dpx101_unordered.cc", "DPX101", 1, "DPX101"),
    ("src/queueing/dpx102_float.cc", "DPX102", 1, "DPX102"),
    ("src/cpu/dpx103_virtual.cc", "DPX103", 1, "DPX103"),
    ("src/cpu/dpx104_banned.cc", "DPX104", 1, "DPX104"),
    ("src/sim/dpx105_global.cc", "DPX105", 1, "DPX105"),
    ("src/sim/dpx106_math.cc", "DPX106", 1, "DPX106"),
    # Negatives run the full rule set and must stay silent.
    ("src/sim/dpx101_ok.cc", None, 0, None),
    ("src/queueing/dpx102_ok.cc", None, 0, None),
    ("src/cpu/dpx103_ok.cc", None, 0, None),
    ("src/cpu/dpx104_ok.cc", None, 0, None),
    ("src/sim/dpx105_ok.cc", None, 0, None),
    ("src/sim/dpx106_ok.cc", None, 0, None),
]


def run_analyze(root, extra):
    cmd = [sys.executable, ANALYZE, "--root", root,
           "--backend", "builtin", "--no-cache"] + extra
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []
    for fixture, rule, want_rc, want_rule in RULE_CASES:
        extra = ["--rule", rule] if rule else []
        proc = run_analyze(ANALYZE_FIX,
                           extra + [os.path.join(ANALYZE_FIX, fixture)])
        output = proc.stdout + proc.stderr
        fired = {r for r in RULE_IDS
                 if re.search(r"\[%s\]" % r, proc.stdout)}
        if proc.returncode != want_rc:
            failures.append("%s: exit %d, expected %d\n%s"
                            % (fixture, proc.returncode, want_rc,
                               output))
            continue
        if want_rule is not None and fired != {want_rule}:
            failures.append("%s: rules fired %s, expected exactly "
                            "{%s}\n%s" % (fixture,
                                          sorted(fired) or "{}",
                                          want_rule, output))
        if want_rc == 0 and output.strip():
            failures.append("%s: expected silence, got:\n%s"
                            % (fixture, output))

    # Contract auditor: the covered tree passes, and its committed
    # registry is accepted as fresh.
    ok_root = os.path.join(FIXTURES, "contract_ok")
    proc = run_analyze(ok_root, [])
    if proc.returncode != 0:
        failures.append("contract_ok: exit %d, expected 0\n%s"
                        % (proc.returncode,
                           proc.stdout + proc.stderr))
    proc = run_analyze(ok_root, ["--check-registry"])
    if proc.returncode != 0:
        failures.append("contract_ok --check-registry: exit %d, "
                        "expected 0\n%s" % (proc.returncode,
                                            proc.stdout + proc.stderr))
    # A registry path that does not exist must read as stale.
    proc = run_analyze(ok_root, ["--check-registry", "--registry",
                                 "tools/no_such_registry.json"])
    if proc.returncode != 1 or "stale" not in proc.stdout:
        failures.append("contract_ok --check-registry (missing file): "
                        "exit %d, expected 1 with a stale finding\n%s"
                        % (proc.returncode, proc.stdout + proc.stderr))

    # The uncovered switch must fail on both contract legs.
    proc = run_analyze(os.path.join(FIXTURES, "contract_bad"), [])
    out = proc.stdout + proc.stderr
    if proc.returncode != 1:
        failures.append("contract_bad: exit %d, expected 1\n%s"
                        % (proc.returncode, out))
    elif "no GOLDEN differential test" not in out or \
            "not surfaced in the hotpath_bench" not in out:
        failures.append("contract_bad: missing expected DPX110 "
                        "findings:\n%s" % out)

    # A reasonless DPX110 waiver is a config error.
    proc = run_analyze(os.path.join(FIXTURES, "contract_waiver_bad"),
                       [])
    if proc.returncode != 2 or "needs a reason" not in proc.stderr:
        failures.append("contract_waiver_bad: exit %d, expected 2 "
                        "with a needs-a-reason error\n%s"
                        % (proc.returncode,
                           proc.stdout + proc.stderr))

    # The rule table must list every rule (docs stay in sync).
    proc = subprocess.run([sys.executable, ANALYZE, "--list-rules"],
                          capture_output=True, text=True)
    for rule in RULE_IDS:
        if rule not in proc.stdout:
            failures.append("--list-rules omits %s" % rule)

    # Unknown rule names are a usage error, not a silent no-op.
    proc = run_analyze(ANALYZE_FIX, ["--rule", "DPX999"])
    if proc.returncode != 2:
        failures.append("--rule DPX999: exit %d, expected 2"
                        % proc.returncode)

    # The clang backend degrades loudly, not silently, when clang or
    # the compile database is absent (the fixture tree has neither).
    proc = run_analyze(ANALYZE_FIX, ["--backend", "clang"])
    if proc.returncode != 2:
        failures.append("--backend clang without a compile db: "
                        "exit %d, expected 2" % proc.returncode)

    if failures:
        print("dpx-analyze selftest: %d failure(s)" % len(failures))
        for failure in failures:
            print("----\n" + failure)
        return 1
    print("dpx-analyze selftest: %d cases OK" % (len(RULE_CASES) + 8))
    return 0


if __name__ == "__main__":
    sys.exit(main())
