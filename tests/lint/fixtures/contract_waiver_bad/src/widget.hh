// Contract-auditor fixture: the DPX110 waiver carries no reason —
// that is a config error (exit 2), never a silent pass.
#ifndef FIXTURE_WIDGET_WAIVER_HH
#define FIXTURE_WIDGET_WAIVER_HH

namespace duplexity
{

class Widget
{
  public:
    // dpx-lint: allow(DPX110)
    void setTurboEnabled(bool on) { turbo_ = on; }

  private:
    bool turbo_ = true;
};

} // namespace duplexity

#endif // FIXTURE_WIDGET_WAIVER_HH
