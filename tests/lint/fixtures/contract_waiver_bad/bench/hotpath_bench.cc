// Fixture bench: empty fast_path subtree.
#include <iostream>

int
main()
{
    std::cout << "{\n  \"fast_path\": {\n  }\n}\n";
    return 0;
}
