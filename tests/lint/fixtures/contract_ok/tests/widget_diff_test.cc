// Golden differential test exercising the turbo switch: the forced-
// slow widget must observe the same step() values.
namespace duplexity
{

class Widget; // fixture: the auditor indexes, never compiles, this

void
diffWidget()
{
    Widget fast;
    Widget slow;
    slow.setTurboEnabled(false);
    fast.step();
    slow.step();
}

} // namespace duplexity
