// Contract-auditor fixture: one fast-path switch that is golden-
// covered AND surfaced in the bench fast_path subtree — must pass.
#ifndef FIXTURE_WIDGET_HH
#define FIXTURE_WIDGET_HH

#include <cstdint>

namespace duplexity
{

class Widget
{
  public:
    void setTurboEnabled(bool on) { turbo_ = on; }
    bool turboEnabled() const { return turbo_; }
    std::uint64_t turboHits() const { return hits_; }

    std::uint64_t
    step()
    {
        if (turbo_)
            ++hits_;
        return hits_;
    }

  private:
    bool turbo_ = true;
    std::uint64_t hits_ = 0;
};

} // namespace duplexity

#endif // FIXTURE_WIDGET_HH
