// Fixture bench: emits the fast_path subtree with the annotated
// activation counter for the turbo switch.
#include <iostream>

int
main()
{
    unsigned long long hits = 0;
    std::cout << "{\n  \"fast_path\": {\n"
              // dpx-fast-path: Widget::setTurboEnabled
              << "    \"widget_turbo_hits\": " << hits << "\n"
              << "  }\n}\n";
    return 0;
}
