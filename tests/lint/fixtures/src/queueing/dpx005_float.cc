// Fixture: DPX005 float-accumulator must fire in stats/queueing
// code.
float
fixtureMean(const float *values, int count)
{
    float total = 0.0f;
    for (int i = 0; i < count; ++i)
        total += values[i];
    return total / static_cast<float>(count);
}
