// Fixture: DPX009 must flag raw vector extensions outside the
// src/sim/simd.hh wrapper — the typedef, the convertvector builtin,
// and the intrinsic include are each a violation; the simd:: helper
// call below them is fine.

#include <immintrin.h>

typedef unsigned char BadV16 __attribute__((vector_size(16)));

unsigned char
fixtureSimdLaneSum(const unsigned char *p)
{
    BadV16 v;
    __builtin_memcpy(&v, p, sizeof(v));
    const BadV16 w = __builtin_convertvector(v, BadV16);
    unsigned char acc = 0;
    for (int i = 0; i < 16; ++i)
        acc = static_cast<unsigned char>(acc + w[i]);
    return acc;
}
