// Fixture: DPX008 must flag the unwaived virtual dispatch inside the
// hot-loop region and nothing else — the waived predictor update, the
// concrete-type calls, and the identical call outside the region are
// all fine.

struct BranchPredictor
{
    virtual bool predictAndUpdate(unsigned long pc, bool taken) = 0;
};

struct Distribution
{
    virtual double sample() = 0;
};

struct SlotCalendar
{
    unsigned long reserve(unsigned long t);
};

void
commitPass(BranchPredictor *predictor, Distribution *stall_dist,
           SlotCalendar *commit_cal, const unsigned long *pcs, int n)
{
    double acc = 0.0;
    // Outside the region: indirect calls are the caller's business.
    acc += stall_dist->sample();

    // dpx-hot-loop: begin fixtureCommit
    for (int i = 0; i < n; ++i) {
        // dpx-lint: allow(DPX008) serial-state contract: predictor
        // updates are order-dependent
        predictor->predictAndUpdate(pcs[i], true);

        commit_cal->reserve(pcs[i]); // concrete type: devirtualized
        acc += stall_dist->sample(); // BAD: virtual sample per op
    }
    // dpx-hot-loop: end

    (void)acc;
}
