// Fixture: a dpx-hot-loop begin with no matching end is itself a
// DPX008 violation — an unterminated region silently lints the rest
// of the file as hot code (or, if begin was meant to be removed,
// stops linting it at all).

void
loopBody(const unsigned long *pcs, int n)
{
    unsigned long acc = 0;
    // dpx-hot-loop: begin neverClosed
    for (int i = 0; i < n; ++i)
        acc += pcs[i];
    (void)acc;
}
