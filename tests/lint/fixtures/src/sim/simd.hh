// Fixture: the sanctioned wrapper path — raw vector extensions are
// exempt from DPX009 here (this file IS the wrapper), so the linter
// must stay silent.
#ifndef DPX_SIM_SIMD_HH
#define DPX_SIM_SIMD_HH

typedef unsigned char FixtureU8x16 __attribute__((vector_size(16)));

inline FixtureU8x16
fixtureSplat(unsigned char x)
{
    return FixtureU8x16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x};
}

#endif // DPX_SIM_SIMD_HH
