// Fixture: a C++14 digit separator must not open a bogus char
// literal in strip_code — the std::mutex below sits "between
// apostrophes" and used to be invisible to every rule.
#include <mutex>

namespace duplexity
{

int
separated()
{
    const long big = 2'000'000;  // first apostrophe pair
    static std::mutex guard;     // DPX003 must still see this line
    (void)guard;
    const char apostrophe = '0'; // a real char literal still strips
    return static_cast<int>(big) + apostrophe;
}

} // namespace duplexity
