// Fixture: a waiver that suppresses nothing. Clean under the default
// run; --report-unused-waivers must flag both annotations.
#include <cstdint>

namespace duplexity
{

std::uint64_t
addOne(std::uint64_t x)
{
    return x + 1; // dpx-lint: allow(DPX001)
}

} // namespace duplexity
