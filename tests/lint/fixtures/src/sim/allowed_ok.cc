// Fixture: every violation below carries an escape hatch, so the
// linter must exit 0 on this file.
// dpx-lint: allow-file(DPX007): fixture exercising the file waiver.
#include <chrono>
#include <cstdlib>
#include <mutex>

int
fixtureAllowed()
{
    auto t0 = std::chrono::steady_clock::now(); // dpx-lint: allow(DPX002)
    // Reporting-only lock around the block below.
    // dpx-lint: allow(DPX003) — block form covers the next lines.
    static std::mutex guard;
    std::lock_guard<std::mutex> lock(guard);
    int noise = rand(); // dpx-lint: allow(DPX001)

    if (noise < 0)
        std::exit(1); // covered by the allow-file waiver above
    return static_cast<int>(t0.time_since_epoch().count());
}
