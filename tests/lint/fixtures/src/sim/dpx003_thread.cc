// Fixture: DPX003 raw-threading must fire on ad-hoc concurrency
// primitives outside src/sim/thread_pool.*.
#include <mutex>
#include <thread>

int
fixtureRace()
{
    static std::mutex guard;
    int x = 0;
    std::thread worker([&] {
        std::lock_guard<std::mutex> lock(guard);
        ++x;
    });
    worker.join();
    return x;
}
