// Fixture: DPX004 unordered-iteration must fire on hash-order walks.
#include <unordered_map>

double
fixtureSum()
{
    std::unordered_map<int, double> cells;
    cells[1] = 0.5;
    double total = 0.0;
    for (const auto &entry : cells)
        total += entry.second;
    for (auto it = cells.begin(); it != cells.end(); ++it)
        total += it->second;
    return total;
}
