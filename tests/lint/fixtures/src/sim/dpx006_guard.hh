// Fixture: DPX006 include-guard must flag a guard that does not
// match the file's path.
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

int fixtureGuard();

#endif // WRONG_GUARD_HH
