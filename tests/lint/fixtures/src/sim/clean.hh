// Fixture: fully conforming header — the linter must stay silent.
#ifndef DPX_SIM_CLEAN_HH
#define DPX_SIM_CLEAN_HH

int fixtureClean();

#endif // DPX_SIM_CLEAN_HH
