// Fixture: DPX002 wall-clock-in-sim must fire on clock reads in
// src/ code paths.
#include <chrono>
#include <ctime>

double
fixtureNow()
{
    auto tick = std::chrono::steady_clock::now();
    auto wall = std::chrono::system_clock::now();
    std::time_t stamp = std::time(nullptr);
    return static_cast<double>(stamp) +
           std::chrono::duration<double>(wall.time_since_epoch())
               .count() +
           std::chrono::duration<double>(tick.time_since_epoch())
               .count();
}
