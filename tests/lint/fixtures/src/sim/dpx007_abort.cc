// Fixture: DPX007 panic-vs-fatal must fire on direct process exits
// and on assert().
#include <cassert>
#include <cstdlib>

void
fixtureDie(int rc)
{
    assert(rc != 0);
    if (rc > 1)
        std::exit(rc);
    abort();
}
