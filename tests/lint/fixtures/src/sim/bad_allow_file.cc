// Fixture: an allow-file waiver with no reason is a config error
// (exit 2), not a silent suppression.
// dpx-lint: allow-file(DPX001)
#include <cstdlib>

int
fixtureBadWaiver()
{
    return rand();
}
