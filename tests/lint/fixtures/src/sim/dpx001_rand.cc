// Fixture: DPX001 nondeterministic-randomness must fire on every
// ad-hoc randomness source below.
#include <cstdlib>
#include <random>

int
fixtureEntropy()
{
    std::random_device device;
    srand(42);
    return rand() + static_cast<int>(device());
}
