// Contract-auditor fixture: a fast-path switch with NO golden
// differential test and NO bench activation counter — must fail.
#ifndef FIXTURE_WIDGET_BAD_HH
#define FIXTURE_WIDGET_BAD_HH

#include <cstdint>

namespace duplexity
{

class Widget
{
  public:
    void setTurboEnabled(bool on) { turbo_ = on; }
    bool turboEnabled() const { return turbo_; }

    std::uint64_t
    step()
    {
        if (turbo_)
            ++hits_;
        return hits_;
    }

  private:
    bool turbo_ = true;
    std::uint64_t hits_ = 0;
};

} // namespace duplexity

#endif // FIXTURE_WIDGET_BAD_HH
