// This "golden" test constructs the widget but never flips the
// turbo switch, so the differential contract is not exercised.
namespace duplexity
{

class Widget; // fixture: the auditor indexes, never compiles, this

void
diffWidget()
{
    Widget fast;
    fast.step();
}

} // namespace duplexity
