// Fixture bench: no annotation and no counter for the turbo switch.
#include <iostream>

int
main()
{
    std::cout << "{\n  \"fast_path\": {\n"
              << "    \"unrelated_counter\": " << 1 << "\n"
              << "  }\n}\n";
    return 0;
}
