// DPX101 positive: range-for over an unordered container reached
// through a member whose type is hidden behind a class-scope alias.
#include <cstdint>
#include <unordered_map>

namespace duplexity
{

class TableHolder
{
  public:
    using Table = std::unordered_map<std::uint64_t, double>;

    double
    sumAll() const
    {
        double sum = 0.0;
        for (const auto &kv : table_) {
            sum += kv.second;
        }
        return sum;
    }

  private:
    Table table_;
};

} // namespace duplexity
