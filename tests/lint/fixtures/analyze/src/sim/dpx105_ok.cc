// DPX105 negative: const/constexpr globals are fine, and a mutable
// one carrying a reasoned waiver stays silent.
#include <cstdint>

namespace duplexity
{

constexpr std::uint64_t k_table_size = 64;
const double k_scale = 0.5;

// dpx-lint: allow(DPX105): fixture — telemetry counter that no
// simulated outcome ever reads.
std::uint64_t g_waived_count = 0;

std::uint64_t
bump()
{
    return ++g_waived_count + k_table_size;
}

} // namespace duplexity
