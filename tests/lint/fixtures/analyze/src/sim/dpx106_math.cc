// DPX106 positive: a hot entry point reaches std::log two calls
// deep — neither the entry nor its direct callee touches libm, only
// whole-program reachability sees the scalar transcendental.
#include <cmath>

namespace duplexity
{

double
rawLogDraw(double u)
{
    return -std::log(1.0 - u);
}

double
helperDraw(double u)
{
    return rawLogDraw(u) * 0.5;
}

// dpx-analyze: hot-entry
double
drawMany(int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += helperDraw(i * 0.001);
    }
    return sum;
}

} // namespace duplexity
