// DPX101 negative: identical shape, but the alias resolves to an
// ordered map, so iteration order is deterministic.
#include <cstdint>
#include <map>

namespace duplexity
{

class TableHolder
{
  public:
    using Table = std::map<std::uint64_t, double>;

    double
    sumAll() const
    {
        double sum = 0.0;
        for (const auto &kv : table_) {
            sum += kv.second;
        }
        return sum;
    }

  private:
    Table table_;
};

} // namespace duplexity
