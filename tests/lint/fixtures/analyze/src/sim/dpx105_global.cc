// DPX105 positive: a mutable namespace-scope global in sim code.
#include <cstdint>

namespace duplexity
{

std::uint64_t g_call_count = 0;

std::uint64_t
bump()
{
    return ++g_call_count;
}

} // namespace duplexity
