// DPX106 negative: the same libm-calling helper exists, but no hot
// entry point can reach it — the hot entry only calls the clean
// helper, so plain grep would flag what reachability clears.
#include <cmath>

namespace duplexity
{

double
rawLogDraw(double u)
{
    return -std::log(1.0 - u);
}

double
cleanDraw(double u)
{
    return u * 0.5;
}

// dpx-analyze: hot-entry
double
drawMany(int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += cleanDraw(i * 0.001);
    }
    return sum;
}

} // namespace duplexity
