// DPX102 positive: single-precision accumulation in a loop in
// queueing code, outside any blessed accumulator.
namespace duplexity
{

float
sumLatencies(const float *lat, int n)
{
    float total = 0.0f;
    for (int i = 0; i < n; ++i) {
        total += lat[i];
    }
    return total;
}

} // namespace duplexity
