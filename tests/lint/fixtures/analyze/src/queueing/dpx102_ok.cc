// DPX102 negative: the loop accumulates in double (floats may feed
// it), and a float accumulation outside any loop is fine too.
namespace duplexity
{

double
sumLatencies(const float *lat, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
        total += lat[i];
    }
    return total;
}

float
addOnce(float a, float b)
{
    float out = a;
    out += b;
    return out;
}

} // namespace duplexity
