// DPX103 positive: a virtual call through a non-final static type
// inside a dpx-hot-loop region.
namespace duplexity
{

class Sampler
{
  public:
    virtual ~Sampler() = default;
    virtual double draw() = 0;
};

double
drainQueue(Sampler &sampler, int n)
{
    double sum = 0.0;
    // dpx-hot-loop: begin
    for (int i = 0; i < n; ++i) {
        sum += sampler.draw();
    }
    // dpx-hot-loop: end
    return sum;
}

} // namespace duplexity
