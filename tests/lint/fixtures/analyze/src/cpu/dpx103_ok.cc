// DPX103 negative: the static type is final, so the compiler can
// devirtualize the call — no waiver needed; the std::function member
// is only invoked outside the hot region.
#include <functional>

namespace duplexity
{

class Sampler
{
  public:
    virtual ~Sampler() = default;
    virtual double draw() = 0;
};

class FastSampler final : public Sampler
{
  public:
    double draw() override { return 1.0; }
};

class Driver
{
  public:
    double
    drain(FastSampler &sampler, int n)
    {
        double sum = 0.0;
        // dpx-hot-loop: begin
        for (int i = 0; i < n; ++i) {
            sum += sampler.draw();
        }
        // dpx-hot-loop: end
        if (on_done_)
            on_done_(sum);
        return sum;
    }

  private:
    std::function<void(double)> on_done_;
};

} // namespace duplexity
