// DPX104 positive: a hot entry point reaches std::rand two calls
// deep — neither the entry nor its direct callee mentions the banned
// API, only whole-program reachability sees it.
#include <cstdlib>

namespace duplexity
{

double
jitterSeed()
{
    return static_cast<double>(std::rand());
}

double
helperDraw()
{
    return jitterSeed() * 0.5;
}

// dpx-analyze: hot-entry
double
stepOnce(int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += helperDraw();
    }
    return sum;
}

} // namespace duplexity
