// DPX104 negative: the same banned helper exists, but no hot entry
// point can reach it (the hot entry only calls the clean helper, and
// the banned function itself is never annotated as hot).
#include <cstdlib>

namespace duplexity
{

double
jitterSeed()
{
    return static_cast<double>(std::rand());
}

double
cleanDraw()
{
    return 0.25;
}

// dpx-analyze: hot-entry
double
stepOnce(int n)
{
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += cleanDraw();
    }
    return sum;
}

} // namespace duplexity
