/**
 * @file
 * Synthetic-stream tests: instruction mixes, address-region
 * containment, dependency bounds, and branch behaviour.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/catalog.hh"
#include "workload/synthetic.hh"

using namespace duplexity;

namespace
{

struct MixCounts
{
    std::map<OpClass, std::uint64_t> by_class;
    std::uint64_t total = 0;

    double
    frac(OpClass cls) const
    {
        auto it = by_class.find(cls);
        return it == by_class.end()
                   ? 0.0
                   : static_cast<double>(it->second) / total;
    }
};

MixCounts
countMix(SyntheticStream &stream, int n = 200000)
{
    MixCounts counts;
    for (int i = 0; i < n; ++i) {
        MicroOp op = stream.next();
        ++counts.by_class[op.cls];
        ++counts.total;
    }
    return counts;
}

WorkloadParams
simpleParams()
{
    WorkloadParams p;
    p.data_base = 0x100000000ull;
    p.data_ws_bytes = 1 << 20;
    p.code_base = 0x10000000ull;
    p.code_bytes = 64 * 1024;
    return p;
}

} // namespace

TEST(SyntheticStream, MixFractionsMatchConfiguration)
{
    WorkloadParams p = simpleParams();
    p.mix = InstrMix{0.30, 0.10, 0.15, 0.01, 0.04, 0.05};
    SyntheticStream stream(p, Rng(1));
    MixCounts counts = countMix(stream);
    EXPECT_NEAR(counts.frac(OpClass::Load), 0.30, 0.01);
    EXPECT_NEAR(counts.frac(OpClass::Store), 0.10, 0.01);
    EXPECT_NEAR(counts.frac(OpClass::Branch), 0.15, 0.01);
    EXPECT_NEAR(counts.frac(OpClass::IntMul), 0.04, 0.01);
    EXPECT_NEAR(counts.frac(OpClass::FpAlu), 0.05, 0.01);
    double calls = counts.frac(OpClass::Call) +
                   counts.frac(OpClass::Return);
    EXPECT_NEAR(calls, 0.01, 0.005);
}

TEST(SyntheticStream, DataAddressesStayInRegion)
{
    WorkloadParams p = simpleParams();
    SyntheticStream stream(p, Rng(2));
    for (int i = 0; i < 100000; ++i) {
        MicroOp op = stream.next();
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            EXPECT_GE(op.mem_addr, p.data_base);
            EXPECT_LT(op.mem_addr, p.data_base + p.data_ws_bytes);
        }
    }
}

TEST(SyntheticStream, CodeAddressesStayInRegion)
{
    WorkloadParams p = simpleParams();
    SyntheticStream stream(p, Rng(3));
    for (int i = 0; i < 100000; ++i) {
        MicroOp op = stream.next();
        EXPECT_GE(op.pc, p.code_base);
        EXPECT_LT(op.pc, p.code_base + p.code_bytes);
    }
}

TEST(SyntheticStream, DependenciesWithinRing)
{
    WorkloadParams p = simpleParams();
    p.dep_prob = 1.0;
    SyntheticStream stream(p, Rng(4));
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = stream.next();
        EXPECT_LE(op.dep1, 63);
        EXPECT_LE(op.dep2, 63);
    }
}

TEST(SyntheticStream, BranchBiasRealized)
{
    WorkloadParams p = simpleParams();
    p.periodic_branch_frac = 0.0;
    p.branch_taken_bias = 0.9;
    SyntheticStream stream(p, Rng(5));
    std::uint64_t taken = 0, branches = 0;
    for (int i = 0; i < 300000; ++i) {
        MicroOp op = stream.next();
        if (op.cls == OpClass::Branch) {
            ++branches;
            taken += op.taken;
        }
    }
    ASSERT_GT(branches, 1000u);
    EXPECT_NEAR(static_cast<double>(taken) / branches, 0.9, 0.02);
}

TEST(SyntheticStream, PeriodicBranchesAreDeterministicPerSite)
{
    WorkloadParams p = simpleParams();
    p.periodic_branch_frac = 1.0;
    p.static_branches = 1;
    SyntheticStream stream(p, Rng(6));
    // A single periodic site: the not-taken outcomes must recur with
    // a fixed period.
    std::vector<int> not_taken_at;
    int branch_index = 0;
    for (int i = 0; i < 20000; ++i) {
        MicroOp op = stream.next();
        if (op.cls != OpClass::Branch)
            continue;
        if (!op.taken)
            not_taken_at.push_back(branch_index);
        ++branch_index;
    }
    ASSERT_GT(not_taken_at.size(), 3u);
    int period = not_taken_at[1] - not_taken_at[0];
    for (std::size_t i = 2; i < not_taken_at.size(); ++i)
        EXPECT_EQ(not_taken_at[i] - not_taken_at[i - 1], period);
}

TEST(SyntheticStream, DeterministicForSameSeed)
{
    WorkloadParams p = simpleParams();
    SyntheticStream a(p, Rng(7)), b(p, Rng(7));
    for (int i = 0; i < 10000; ++i) {
        MicroOp x = a.next(), y = b.next();
        EXPECT_EQ(x.cls, y.cls);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.mem_addr, y.mem_addr);
    }
}

/** Every catalog character must produce in-bounds streams. */
class CatalogCharacters
    : public ::testing::TestWithParam<MicroserviceKind>
{
};

TEST_P(CatalogCharacters, StreamStaysInItsRegions)
{
    MicroserviceSpec spec = makeMicroservice(GetParam());
    SyntheticStream stream(spec.character, Rng(8));
    for (int i = 0; i < 20000; ++i) {
        MicroOp op = stream.next();
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            EXPECT_GE(op.mem_addr, spec.character.data_base);
            EXPECT_LT(op.mem_addr, spec.character.data_base +
                                       spec.character.data_ws_bytes);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllServices, CatalogCharacters,
                         ::testing::ValuesIn(allMicroservices()));

TEST(Catalog, ThreadRegionsAreDisjoint)
{
    BatchSpec a = makeBatch(BatchKind::PageRank, 1);
    BatchSpec b = makeBatch(BatchKind::PageRank, 2);
    EXPECT_NE(a.character.data_base, b.character.data_base);
    // 4 GB spacing: no overlap possible.
    EXPECT_GE(std::max(a.character.data_base, b.character.data_base) -
                  std::min(a.character.data_base,
                           b.character.data_base),
              a.character.data_ws_bytes);
}

TEST(Catalog, SameKindSharesCode)
{
    BatchSpec a = makeBatch(BatchKind::PageRank, 1);
    BatchSpec b = makeBatch(BatchKind::PageRank, 2);
    EXPECT_EQ(a.character.code_base, b.character.code_base);
}
