/**
 * @file
 * SoA-vs-legacy differential wall for the op pipeline (draw side).
 *
 * Replays identical seeds through the SoA fill paths and the
 * forced-legacy per-op draw paths and compares the op streams
 * field-by-field: every catalog workload, block sizes of 1, non-pow2,
 * and a full block, several seeds, and the setSoaPipelineEnabled
 * switch on both sides. Part of the golden label; CI runs it in
 * Release and under ASan/UBSan.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "workload/catalog.hh"
#include "workload/microservice.hh"
#include "workload/op_block.hh"
#include "workload/synthetic.hh"

using namespace duplexity;

namespace
{

void
expectOpEq(const MicroOp &soa, const MicroOp &legacy,
           const std::string &what, std::uint64_t index)
{
    ASSERT_EQ(static_cast<int>(soa.cls), static_cast<int>(legacy.cls))
        << what << " op " << index;
    ASSERT_EQ(soa.pc, legacy.pc) << what << " op " << index;
    ASSERT_EQ(soa.mem_addr, legacy.mem_addr) << what << " op " << index;
    ASSERT_EQ(soa.taken, legacy.taken) << what << " op " << index;
    ASSERT_EQ(soa.dep1, legacy.dep1) << what << " op " << index;
    ASSERT_EQ(soa.dep2, legacy.dep2) << what << " op " << index;
    ASSERT_EQ(soa.stall_us, legacy.stall_us) << what << " op " << index;
    ASSERT_EQ(soa.end_of_request, legacy.end_of_request)
        << what << " op " << index;
}

/** Every catalog source as a factory, so each comparison side gets
 *  its own identically-seeded instance. */
struct SourceCase
{
    std::string name;
    std::unique_ptr<InstrSource> (*make)(std::uint64_t seed);
};

template <MicroserviceKind kind>
std::unique_ptr<InstrSource>
makeMicro(std::uint64_t seed)
{
    return std::make_unique<MicroserviceSource>(makeMicroservice(kind),
                                                Rng(seed).fork(1));
}

template <BatchKind kind>
std::unique_ptr<InstrSource>
makeBatchSrc(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeBatch(kind, 3),
                                         Rng(seed).fork(1));
}

template <SpecProfile profile>
std::unique_ptr<InstrSource>
makeSpecSrc(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeSpecBatch(profile, 5),
                                         Rng(seed).fork(1));
}

std::unique_ptr<InstrSource>
makeFlann(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeFlannXY(10.0, 1.0, 0),
                                         Rng(seed).fork(1));
}

std::vector<SourceCase>
allCases()
{
    return {
        {"FlannHA", makeMicro<MicroserviceKind::FlannHA>},
        {"FlannLL", makeMicro<MicroserviceKind::FlannLL>},
        {"Rsc", makeMicro<MicroserviceKind::Rsc>},
        {"McRouter", makeMicro<MicroserviceKind::McRouter>},
        {"WordStem", makeMicro<MicroserviceKind::WordStem>},
        {"PageRank", makeBatchSrc<BatchKind::PageRank>},
        {"Sssp", makeBatchSrc<BatchKind::Sssp>},
        {"SpecCpu", makeSpecSrc<SpecProfile::Cpu>},
        {"SpecMem", makeSpecSrc<SpecProfile::Mem>},
        {"SpecMix", makeSpecSrc<SpecProfile::Mix>},
        {"Flann-10-1", makeFlann},
    };
}

constexpr std::uint64_t kSeeds[] = {1, 42, 0xdeadbeef};

} // namespace

/** Buffered SoA next() == forced-legacy next(), op for op. */
TEST(OpBlockDiff, PerOpStreamsMatchForcedLegacy)
{
    // Long enough to cross many request/phase/segment boundaries.
    const std::uint64_t n = 50'000;
    for (const SourceCase &c : allCases()) {
        for (std::uint64_t seed : kSeeds) {
            auto soa = c.make(seed);
            auto legacy = c.make(seed);
            legacy->setSoaPipelineEnabled(false);
            ASSERT_TRUE(soa->soaPipelineEnabled());
            ASSERT_FALSE(legacy->soaPipelineEnabled());
            for (std::uint64_t i = 0; i < n; ++i)
                expectOpEq(soa->next(), legacy->next(),
                           c.name + "/seed" + std::to_string(seed), i);
        }
    }
}

/** Bulk fillBlock == forced-legacy next(), for block sizes of 1, a
 *  non-power-of-two, a prime near capacity, and a full block. */
TEST(OpBlockDiff, FillBlockMatchesForcedLegacy)
{
    const std::size_t sizes[] = {1, 7, 251, kOpBlockCapacity};
    for (const SourceCase &c : allCases()) {
        for (std::size_t block_size : sizes) {
            auto soa = c.make(9001);
            auto legacy = c.make(9001);
            legacy->setSoaPipelineEnabled(false);
            OpBlock block;
            std::uint64_t index = 0;
            // Enough refills to cross segment boundaries even at
            // size 1.
            const std::uint64_t total = 20'000;
            while (index < total) {
                block.clear();
                soa->fillBlock(block, block_size);
                ASSERT_EQ(block.size(), block_size);
                for (std::size_t i = 0; i < block.size(); ++i)
                    expectOpEq(block.get(i), legacy->next(),
                               c.name + "/bs" +
                                   std::to_string(block_size),
                               index++);
            }
        }
    }
}

/** The switch is honored on the bulk path too: a forced-legacy
 *  fillBlock (per-op loop inside) equals the SoA fill. */
TEST(OpBlockDiff, ForcedLegacyFillBlockMatchesSoaFill)
{
    for (const SourceCase &c : allCases()) {
        auto soa = c.make(7);
        auto legacy = c.make(7);
        legacy->setSoaPipelineEnabled(false);
        for (int round = 0; round < 60; ++round) {
            OpBlock a, b;
            soa->fillBlock(a, kOpBlockCapacity);
            legacy->fillBlock(b, kOpBlockCapacity);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                expectOpEq(a.get(i), b.get(i), c.name, i);
        }
    }
}

/** Stream-level wall: SyntheticStream::fillOpsInto vs a legacy
 *  per-call twin, including the raw-draw buffer crossing refills. */
TEST(OpBlockDiff, SyntheticFillOpsIntoMatchesLegacyNext)
{
    WorkloadParams params; // defaults exercise every op class
    for (std::uint64_t seed : kSeeds) {
        SyntheticStream soa(params, Rng(seed).fork(2));
        SyntheticStream legacy(params, Rng(seed).fork(2));
        legacy.setSoaDrawEnabled(false);
        const std::size_t sizes[] = {1, 3, 97, kOpBlockCapacity};
        std::uint64_t index = 0;
        for (int round = 0; round < 200; ++round) {
            const std::size_t bs = sizes[round % 4];
            OpBlock block;
            soa.fillOpsInto(block, bs);
            ASSERT_EQ(block.size(), bs);
            for (std::size_t i = 0; i < bs; ++i)
                expectOpEq(block.get(i), legacy.next(),
                           "synthetic/seed" + std::to_string(seed),
                           index++);
        }
    }
}

/** requestsCompleted counts delivered requests identically on both
 *  paths — the SoA buffer must not run the counter ahead. */
TEST(OpBlockDiff, RequestCountingMatchesOnDelivery)
{
    for (MicroserviceKind kind : allMicroservices()) {
        MicroserviceSource soa(makeMicroservice(kind), Rng(11).fork(1));
        MicroserviceSource legacy(makeMicroservice(kind),
                                  Rng(11).fork(1));
        legacy.setSoaPipelineEnabled(false);
        // Requests run to hundreds of thousands of ops for the
        // longer services, so drive until one delivers (capped).
        const std::uint64_t min_ops = 30'000, cap = 4'000'000;
        for (std::uint64_t i = 0;
             i < min_ops || (soa.requestsCompleted() == 0 && i < cap);
             ++i) {
            MicroOp a = soa.next();
            MicroOp b = legacy.next();
            ASSERT_EQ(a.end_of_request, b.end_of_request);
            ASSERT_EQ(soa.requestsCompleted(),
                      legacy.requestsCompleted())
                << toString(kind) << " op " << i;
        }
        EXPECT_GT(soa.requestsCompleted(), 0u) << toString(kind);
    }
}

/** Bulk hand-off counts a block's requests at fill time. */
TEST(OpBlockDiff, FillBlockCountsRequestsAtHandOff)
{
    MicroserviceSource source(
        makeMicroservice(MicroserviceKind::FlannLL), Rng(3).fork(1));
    std::uint64_t expected = 0;
    for (int round = 0; round < 400; ++round) {
        OpBlock block;
        source.fillBlock(block, kOpBlockCapacity);
        for (std::size_t i = 0; i < block.size(); ++i)
            expected += block.endOfRequest()[i];
        ASSERT_EQ(source.requestsCompleted(), expected);
    }
    EXPECT_GT(expected, 0u);
}
