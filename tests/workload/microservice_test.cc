/**
 * @file
 * Microservice/batch source tests: request phase structure, stall
 * sampling, end-of-request marking, and catalog timing parameters
 * (the Section V workload definitions).
 */

#include <gtest/gtest.h>

#include "workload/catalog.hh"
#include "workload/microservice.hh"

using namespace duplexity;

TEST(InstrsForMicros, ScalesLinearly)
{
    EXPECT_EQ(instrsForMicros(1.0, 3.4, 2.0), 6800u);
    EXPECT_EQ(instrsForMicros(2.0, 3.4, 2.0), 13600u);
    EXPECT_EQ(instrsForMicros(1.0, 3.4, 1.0), 3400u);
    EXPECT_GE(instrsForMicros(0.0), 1u); // never zero
}

TEST(MicroserviceSpec, MeansReflectPhases)
{
    MicroserviceSpec spec = makeMicroservice(MicroserviceKind::Rsc);
    // RSC: 3 µs + 4 µs compute, 8 µs Optane stall.
    EXPECT_NEAR(spec.meanStallUs(), 8.0, 1e-9);
    EXPECT_NEAR(spec.meanComputeInstrs(),
                instrsForMicros(3.0) + instrsForMicros(4.0),
                0.01 * spec.meanComputeInstrs());
    EXPECT_NEAR(spec.nominalServiceUs(), 15.0, 0.3);
}

TEST(MicroserviceSpec, McRouterStallRatioMatchesPaper)
{
    // Section VI-A: ~60% of McRouter's service time is stall.
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::McRouter);
    double stall = spec.meanStallUs();
    double total = spec.nominalServiceUs();
    EXPECT_NEAR(stall / total, 0.55, 0.07);
}

TEST(MicroserviceSpec, WordStemHasNoStalls)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::WordStem);
    EXPECT_EQ(spec.meanStallUs(), 0.0);
    EXPECT_NEAR(spec.nominalServiceUs(), 4.0, 0.1);
}

TEST(MicroserviceSource, EveryRequestEndsWithEndOfRequest)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::FlannLL);
    MicroserviceSource source(spec, Rng(1));
    int requests_seen = 0;
    for (int i = 0; i < 200000 && requests_seen < 10; ++i) {
        MicroOp op = source.next();
        if (op.end_of_request) {
            ++requests_seen;
            // Requests end with compute, never mid-stall.
            EXPECT_NE(op.cls, OpClass::Remote);
        }
    }
    EXPECT_EQ(requests_seen, 10);
    EXPECT_EQ(source.requestsCompleted(), 10u);
}

TEST(MicroserviceSource, RemoteOpsCarrySampledStalls)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::McRouter);
    MicroserviceSource source(spec, Rng(2));
    double sum = 0.0;
    int remotes = 0;
    for (int i = 0; i < 3000000 && remotes < 50; ++i) {
        MicroOp op = source.next();
        if (op.cls == OpClass::Remote) {
            // Leaf KV wait: uniform 3-5 µs.
            EXPECT_GE(op.stall_us, 3.0f);
            EXPECT_LE(op.stall_us, 5.0f);
            sum += op.stall_us;
            ++remotes;
        }
    }
    ASSERT_EQ(remotes, 50);
    EXPECT_NEAR(sum / remotes, 4.0, 0.35);
}

TEST(MicroserviceSource, OneRemotePerFlannRequest)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::FlannHA);
    MicroserviceSource source(spec, Rng(3));
    int remotes = 0, requests = 0;
    while (requests < 5) {
        MicroOp op = source.next();
        remotes += op.cls == OpClass::Remote;
        requests += op.end_of_request;
    }
    EXPECT_EQ(remotes, 5);
}

TEST(MicroserviceSource, RequestSizesVary)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::WordStem);
    MicroserviceSource source(spec, Rng(4));
    std::vector<std::uint64_t> sizes;
    std::uint64_t count = 0;
    while (sizes.size() < 20) {
        MicroOp op = source.next();
        ++count;
        if (op.end_of_request) {
            sizes.push_back(count);
            count = 0;
        }
    }
    // Lognormal compute counts: not all equal.
    bool all_equal = true;
    for (std::size_t i = 1; i < sizes.size(); ++i)
        all_equal = all_equal && sizes[i] == sizes[0];
    EXPECT_FALSE(all_equal);
}

TEST(MicroserviceSource, PerPhaseCharacterOverrideUsed)
{
    // RSC's memcpy phase uses its own (streaming) address region
    // behaviour; verify the source switches streams between phases:
    // the lookup phase draws from the lookup WS (4 MB) while the
    // memcpy phase draws from a 256 KB WS.
    MicroserviceSpec spec = makeMicroservice(MicroserviceKind::Rsc);
    ASSERT_TRUE(spec.phases[2].character.has_value());
    MicroserviceSource source(spec, Rng(5));
    bool after_stall = false;
    Addr memcpy_limit = spec.phases[2].character->data_base +
                        spec.phases[2].character->data_ws_bytes;
    for (int i = 0; i < 300000; ++i) {
        MicroOp op = source.next();
        if (op.cls == OpClass::Remote) {
            after_stall = true;
            continue;
        }
        if (op.end_of_request) {
            after_stall = false;
            continue;
        }
        if (after_stall &&
            (op.cls == OpClass::Load || op.cls == OpClass::Store)) {
            EXPECT_LT(op.mem_addr, memcpy_limit);
        }
    }
}

TEST(BatchSource, AlternatesComputeAndStalls)
{
    BatchSpec spec = makeBatch(BatchKind::PageRank, 3);
    BatchSource source(spec, Rng(6));
    int remotes = 0;
    std::uint64_t ops = 0;
    while (remotes < 20) {
        MicroOp op = source.next();
        ++ops;
        remotes += op.cls == OpClass::Remote;
    }
    // Segment lengths are thousands of micro-ops.
    EXPECT_GT(ops / remotes, 500u);
}

TEST(BatchSource, StallFreeSpecNeverStalls)
{
    BatchSpec spec = makeSpecBatch(SpecProfile::Cpu, 4);
    BatchSource source(spec, Rng(7));
    for (int i = 0; i < 100000; ++i)
        EXPECT_NE(source.next().cls, OpClass::Remote);
}

TEST(BatchSource, FlannXYHonorsStallParameter)
{
    BatchSpec with = makeFlannXY(1.0, 1.0, 5);
    BatchSpec without = makeFlannXY(1.0, 0.0, 5);
    EXPECT_NE(with.stall_us, nullptr);
    EXPECT_EQ(without.stall_us, nullptr);
    EXPECT_NEAR(with.stall_us->mean(), 1.0, 1e-9);
}

TEST(BatchSource, GraphFillerStallRatioMatchesPaper)
{
    // Section V: ~1 µs stall per 1-2 µs of compute.
    BatchSpec spec = makeBatch(BatchKind::Sssp, 6);
    EXPECT_NEAR(spec.stall_us->mean(), 1.0, 1e-9);
    double mean_segment_us =
        spec.segment_instrs->mean() / (3.4e3 * 1.0);
    EXPECT_GE(mean_segment_us, 1.0);
    EXPECT_LE(mean_segment_us, 2.0);
}
