/**
 * @file
 * Design-point configuration tests (Section V, configurations 1-7).
 */

#include <gtest/gtest.h>

#include "core/designs.hh"

using namespace duplexity;

TEST(Designs, AllSevenPresent)
{
    EXPECT_EQ(allDesigns().size(), 7u);
}

TEST(Designs, BaselineRunsMasterOnly)
{
    DesignConfig cfg = makeDesign(DesignKind::Baseline);
    EXPECT_FALSE(cfg.has_corunner);
    EXPECT_FALSE(cfg.morphs);
    EXPECT_EQ(cfg.filler_path, FillerPath::None);
    EXPECT_EQ(cfg.area_kind, CoreKind::BaselineOoO);
}

TEST(Designs, SmtHasUnprioritizedCorunner)
{
    DesignConfig cfg = makeDesign(DesignKind::Smt);
    EXPECT_TRUE(cfg.has_corunner);
    EXPECT_FALSE(cfg.corunner_prioritized);
    EXPECT_EQ(cfg.corunner_storage_cap, 1.0);
}

TEST(Designs, SmtPlusCapsCorunnerAtThirtyPercent)
{
    DesignConfig cfg = makeDesign(DesignKind::SmtPlus);
    EXPECT_TRUE(cfg.corunner_prioritized);
    EXPECT_NEAR(cfg.corunner_storage_cap, 0.30, 1e-12);
}

TEST(Designs, MorphCoreUsesPrivateFillersAndLocalCaches)
{
    DesignConfig cfg = makeDesign(DesignKind::MorphCore);
    EXPECT_TRUE(cfg.morphs);
    EXPECT_FALSE(cfg.hsmt_borrowing);
    EXPECT_EQ(cfg.private_fillers, 8u);
    EXPECT_EQ(cfg.filler_path, FillerPath::Local);
    EXPECT_FALSE(cfg.separate_filler_state);
}

TEST(Designs, MorphCorePlusBorrowsButStillThrashes)
{
    DesignConfig cfg = makeDesign(DesignKind::MorphCorePlus);
    EXPECT_TRUE(cfg.hsmt_borrowing);
    EXPECT_EQ(cfg.filler_path, FillerPath::Local);
    EXPECT_FALSE(cfg.separate_filler_state);
}

TEST(Designs, DuplexityReplReplicatesEverything)
{
    DesignConfig cfg = makeDesign(DesignKind::DuplexityRepl);
    EXPECT_EQ(cfg.filler_path, FillerPath::Replicated);
    EXPECT_TRUE(cfg.separate_filler_state);
    EXPECT_EQ(cfg.area_kind, CoreKind::MasterCoreReplicated);
}

TEST(Designs, DuplexityUsesRemotePathAndFastResume)
{
    DesignConfig cfg = makeDesign(DesignKind::Duplexity);
    EXPECT_EQ(cfg.filler_path, FillerPath::Remote);
    EXPECT_TRUE(cfg.separate_filler_state);
    // Section III-B4: ~50-cycle master-thread resumption.
    EXPECT_EQ(cfg.resume_penalty, 50u);
    EXPECT_EQ(cfg.area_kind, CoreKind::MasterCore);
}

TEST(Designs, MorphCoreResumeSlowerThanDuplexity)
{
    EXPECT_GT(makeDesign(DesignKind::MorphCore).resume_penalty,
              makeDesign(DesignKind::Duplexity).resume_penalty);
}

TEST(Designs, NamesRoundTrip)
{
    for (DesignKind kind : allDesigns()) {
        DesignConfig cfg = makeDesign(kind);
        EXPECT_EQ(cfg.name, toString(kind));
        EXPECT_FALSE(cfg.name.empty());
    }
}
