/**
 * @file
 * SMT thread-scaling tests, mirroring the claims behind Figures 1(c)
 * and 2(a): throughput grows with threads, µs-stalled workloads need
 * more threads, and the InO/OoO gap closes at high thread counts.
 */

#include <gtest/gtest.h>

#include "core/calibration.hh"
#include "core/smt_sweep.hh"

using namespace duplexity;

namespace
{

SmtSweepConfig
flannSweep(IssueMode mode, std::uint32_t threads, double compute_us,
           double stall_us)
{
    SmtSweepConfig cfg;
    cfg.mode = mode;
    cfg.threads = threads;
    cfg.workload = [=](ThreadId) {
        // Concurrent requests of one service share its tables.
        return calibratedFlannXY(compute_us, stall_us, 0);
    };
    cfg.warmup_cycles = 100'000;
    cfg.measure_cycles = 500'000;
    return cfg;
}

} // namespace

TEST(SmtSweep, MoreThreadsMoreThroughputWithoutStalls)
{
    double one =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 1, 10, 0))
            .total_ipc;
    double four =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 4, 10, 0))
            .total_ipc;
    EXPECT_GT(four, 1.5 * one);
}

TEST(SmtSweep, StalledWorkloadNeedsMoreThreads)
{
    // With 1 µs stalls per 1 µs compute, two threads are nowhere
    // near enough to cover the stall time; eight do much better.
    double two =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 2, 1, 1))
            .total_ipc;
    double eight =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 8, 1, 1))
            .total_ipc;
    EXPECT_GT(eight, 1.5 * two);
}

TEST(SmtSweep, StallsReduceThroughputAtEqualThreads)
{
    double no_stall =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 4, 10, 0))
            .total_ipc;
    double stalled =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 4, 1, 1))
            .total_ipc;
    EXPECT_GT(no_stall, stalled);
}

TEST(SmtSweep, OooBeatsInOrderSingleThread)
{
    double ooo =
        runSmtSweep(flannSweep(IssueMode::OutOfOrder, 1, 10, 0))
            .total_ipc;
    double ino =
        runSmtSweep(flannSweep(IssueMode::InOrder, 1, 10, 0))
            .total_ipc;
    EXPECT_GT(ooo, 1.3 * ino);
}

TEST(SmtSweep, InOrderGapClosesWithThreads)
{
    // Figure 2(a): the OoO/InO gap vanishes around 8 threads.
    auto gap = [&](std::uint32_t threads) {
        double ooo = runSmtSweep(flannSweep(IssueMode::OutOfOrder,
                                            threads, 10, 0))
                         .total_ipc;
        double ino = runSmtSweep(flannSweep(IssueMode::InOrder,
                                            threads, 10, 0))
                         .total_ipc;
        return ooo / ino;
    };
    double gap_1 = gap(1);
    double gap_8 = gap(8);
    EXPECT_LT(gap_8, 0.85 * gap_1);
    EXPECT_LT(gap_8, 1.6);
}

TEST(SmtSweep, CacheMissRateRisesWithPrivateFootprints)
{
    // Multiprogrammed co-location (private working sets per thread)
    // thrashes the shared L1, unlike same-service request threads.
    auto private_cfg = [](std::uint32_t threads) {
        SmtSweepConfig cfg;
        cfg.mode = IssueMode::OutOfOrder;
        cfg.threads = threads;
        cfg.workload = [](ThreadId uid) {
            return calibratedFlannXY(10.0, 0.0, uid);
        };
        cfg.warmup_cycles = 100'000;
        cfg.measure_cycles = 500'000;
        return cfg;
    };
    double one = runSmtSweep(private_cfg(1)).l1d_miss_rate;
    double eight = runSmtSweep(private_cfg(8)).l1d_miss_rate;
    EXPECT_GT(eight, one);
}

TEST(SmtSweep, DeterministicForSeed)
{
    SmtSweepConfig cfg = flannSweep(IssueMode::OutOfOrder, 2, 5, 1);
    double a = runSmtSweep(cfg).total_ipc;
    double b = runSmtSweep(cfg).total_ipc;
    EXPECT_EQ(a, b);
}

TEST(SmtSweep, SpecMixesRunStallFree)
{
    SmtSweepConfig cfg;
    cfg.mode = IssueMode::OutOfOrder;
    cfg.threads = 4;
    cfg.workload = [](ThreadId uid) {
        SpecProfile profile =
            static_cast<SpecProfile>(uid % 3);
        return makeSpecBatch(profile, uid);
    };
    cfg.warmup_cycles = 50'000;
    cfg.measure_cycles = 300'000;
    SmtSweepResult res = runSmtSweep(cfg);
    EXPECT_GT(res.total_ipc, 0.5);
}
