/**
 * @file
 * Calibration tests: measured-IPC scaling must make nominal phase
 * durations hold on the baseline core (the reproduction's analogue
 * of the paper's real-hardware service-time measurement).
 */

#include <gtest/gtest.h>

#include "core/calibration.hh"

using namespace duplexity;

TEST(Calibration, IpcMeasurementIsMemoized)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::FlannLL);
    double a = measureComputeIpc(spec.character,
                                 IssueMode::OutOfOrder);
    double b = measureComputeIpc(spec.character,
                                 IssueMode::OutOfOrder);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.05);
    EXPECT_LT(a, 4.0);
}

TEST(Calibration, OooBeatsInOrderOnSingleThread)
{
    MicroserviceSpec spec =
        makeMicroservice(MicroserviceKind::FlannLL);
    EXPECT_GT(
        measureComputeIpc(spec.character, IssueMode::OutOfOrder),
        measureComputeIpc(spec.character, IssueMode::InOrder));
}

TEST(Calibration, CacheResidentWorkloadHasHighIpc)
{
    // WordStem's data fits in cache: IPC should be decent.
    MicroserviceSpec stem =
        makeMicroservice(MicroserviceKind::WordStem);
    MicroserviceSpec flann =
        makeMicroservice(MicroserviceKind::FlannHA);
    EXPECT_GT(measureComputeIpc(stem.character,
                                IssueMode::OutOfOrder),
              measureComputeIpc(flann.character,
                                IssueMode::OutOfOrder));
}

/** Calibrated specs must preserve the paper's nominal durations. */
class CalibratedDurations
    : public ::testing::TestWithParam<MicroserviceKind>
{
};

TEST_P(CalibratedDurations, ComputePhasesScaledToMeasuredIpc)
{
    const MicroserviceKind kind = GetParam();
    MicroserviceSpec nominal = makeMicroservice(kind);
    MicroserviceSpec calibrated = calibratedMicroservice(kind);
    ASSERT_EQ(nominal.phases.size(), calibrated.phases.size());

    for (std::size_t i = 0; i < nominal.phases.size(); ++i) {
        const PhaseSpec &n = nominal.phases[i];
        const PhaseSpec &c = calibrated.phases[i];
        EXPECT_EQ(n.kind, c.kind);
        if (n.kind != PhaseSpec::Kind::Compute)
            continue;
        const WorkloadParams &character =
            n.character ? *n.character : nominal.character;
        double ipc =
            measureComputeIpc(character, IssueMode::OutOfOrder);
        // Nominal duration at nominal IPC == calibrated count at
        // measured IPC.
        double nominal_us = n.instr_count->mean() / (3.4e3 * 2.0);
        double calibrated_us =
            c.instr_count->mean() / (3.4e3 * ipc);
        EXPECT_NEAR(calibrated_us, nominal_us, 0.02 * nominal_us);
    }
}

TEST_P(CalibratedDurations, StallPhasesUntouched)
{
    const MicroserviceKind kind = GetParam();
    MicroserviceSpec nominal = makeMicroservice(kind);
    MicroserviceSpec calibrated = calibratedMicroservice(kind);
    EXPECT_NEAR(calibrated.meanStallUs(), nominal.meanStallUs(),
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllServices, CalibratedDurations,
                         ::testing::ValuesIn(allMicroservices()));

TEST(Calibration, BatchSegmentsScaledToInOrderIpc)
{
    BatchSpec nominal = makeBatch(BatchKind::PageRank, 3);
    BatchSpec calibrated = calibratedBatch(BatchKind::PageRank, 3);
    double ipc = measureComputeIpc(nominal.character,
                                   IssueMode::InOrder);
    EXPECT_NEAR(calibrated.segment_instrs->mean(),
                nominal.segment_instrs->mean() * ipc,
                0.02 * calibrated.segment_instrs->mean());
}

TEST(Calibration, FlannXYPreservesComputeToStallRatio)
{
    BatchSpec spec = calibratedFlannXY(9.0, 1.0, 0);
    double ipc = measureComputeIpc(spec.character,
                                   IssueMode::OutOfOrder);
    double compute_us = spec.segment_instrs->mean() / (3.4e3 * ipc);
    EXPECT_NEAR(compute_us, 9.0, 0.5);
    EXPECT_NEAR(spec.stall_us->mean(), 1.0, 1e-9);
}
