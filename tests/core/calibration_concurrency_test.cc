/**
 * @file
 * Concurrency hammer for the calibration memo: many threads racing
 * on overlapping (character, mode) keys must each observe exactly
 * one measurement's result per key. Run under TSan in CI — the
 * per-entry once_flag protocol in calibration.cc is what it checks.
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "core/calibration.hh"

using namespace duplexity;

TEST(CalibrationConcurrency, RacingThreadsAgreePerKey)
{
    struct Key
    {
        MicroserviceKind kind;
        IssueMode mode;
    };
    const std::vector<Key> keys = {
        {MicroserviceKind::FlannLL, IssueMode::OutOfOrder},
        {MicroserviceKind::FlannLL, IssueMode::InOrder},
        {MicroserviceKind::WordStem, IssueMode::OutOfOrder},
    };

    constexpr int threads = 8;
    constexpr int rounds = 3;
    // results[t][r * keys.size() + k] = IPC thread t saw for key k.
    std::vector<std::vector<double>> results(threads);

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int r = 0; r < rounds; ++r) {
                for (std::size_t k = 0; k < keys.size(); ++k) {
                    // Vary the visit order per thread so first
                    // touches race on different keys.
                    const Key &key =
                        keys[(k + static_cast<std::size_t>(t)) %
                             keys.size()];
                    MicroserviceSpec spec =
                        makeMicroservice(key.kind);
                    double ipc = measureComputeIpc(spec.character,
                                                   key.mode);
                    results[t].push_back(ipc);
                    // Stash which key it was alongside.
                    results[t].push_back(
                        static_cast<double>((k + t) % keys.size()));
                }
            }
        });
    }
    for (auto &th : pool)
        th.join();

    // Serial reference after the dust settles: memoized, so these
    // are whatever the winning measurement produced.
    std::map<std::size_t, double> expected;
    for (std::size_t k = 0; k < keys.size(); ++k) {
        MicroserviceSpec spec = makeMicroservice(keys[k].kind);
        expected[k] =
            measureComputeIpc(spec.character, keys[k].mode);
        EXPECT_GT(expected[k], 0.0);
    }

    for (int t = 0; t < threads; ++t) {
        ASSERT_EQ(results[t].size(),
                  2u * rounds * keys.size());
        for (std::size_t i = 0; i < results[t].size(); i += 2) {
            double ipc = results[t][i];
            auto key_index =
                static_cast<std::size_t>(results[t][i + 1]);
            EXPECT_EQ(ipc, expected[key_index])
                << "thread " << t << " entry " << i;
        }
    }
}

TEST(CalibrationConcurrency, CalibratedSpecsRaceSafely)
{
    constexpr int threads = 6;
    std::vector<std::vector<double>> means(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (MicroserviceKind kind :
                 {MicroserviceKind::FlannLL,
                  MicroserviceKind::WordStem}) {
                MicroserviceSpec spec = calibratedMicroservice(kind);
                means[t].push_back(spec.meanStallUs());
            }
        });
    }
    for (auto &th : pool)
        th.join();
    for (int t = 1; t < threads; ++t)
        EXPECT_EQ(means[t], means[0]);
}
