/**
 * @file
 * Integration tests over the full scenario runner. Each test asserts
 * one of the paper's qualitative claims on a short run: utilization
 * ordering across designs, state-protection effects on service time,
 * window accounting, and measurement plumbing.
 */

#include <gtest/gtest.h>

#include "core/scenario.hh"
#include "queueing/queue_sim.hh"

using namespace duplexity;

namespace
{

ScenarioResult
run(DesignKind design, MicroserviceKind service, double load,
    Cycle cycles = 1'500'000)
{
    ScenarioConfig cfg;
    cfg.design = design;
    cfg.service = service;
    cfg.load = load;
    cfg.warmup_cycles = 300'000;
    cfg.measure_cycles = cycles;
    return runScenario(cfg);
}

} // namespace

TEST(Scenario, BaselineCompletesRequestsNearOfferedRate)
{
    ScenarioResult res =
        run(DesignKind::Baseline, MicroserviceKind::FlannLL, 0.5);
    double expected =
        res.offered_rps * res.seconds;
    EXPECT_NEAR(static_cast<double>(res.requests), expected,
                0.35 * expected);
}

TEST(Scenario, UtilizationOrderingMatchesPaper)
{
    // Figure 5(a): Duplexity variants > SMT > Baseline.
    double base = run(DesignKind::Baseline,
                      MicroserviceKind::FlannLL, 0.5)
                      .utilization;
    double smt =
        run(DesignKind::Smt, MicroserviceKind::FlannLL, 0.5)
            .utilization;
    double duplexity = run(DesignKind::Duplexity,
                           MicroserviceKind::FlannLL, 0.5)
                           .utilization;
    EXPECT_GT(smt, base);
    EXPECT_GT(duplexity, smt);
}

TEST(Scenario, DuplexityProtectsServiceTime)
{
    // State segregation: Duplexity's service time stays near the
    // baseline's while MorphCore (shared caches + slow resume)
    // inflates badly.
    double base = run(DesignKind::Baseline,
                      MicroserviceKind::FlannLL, 0.5)
                      .service_us.mean();
    double duplexity = run(DesignKind::Duplexity,
                           MicroserviceKind::FlannLL, 0.5)
                           .service_us.mean();
    double morph = run(DesignKind::MorphCore,
                       MicroserviceKind::FlannLL, 0.5)
                       .service_us.mean();
    double smt =
        run(DesignKind::Smt, MicroserviceKind::FlannLL, 0.5)
            .service_us.mean();
    EXPECT_LT(duplexity, 1.25 * base);
    EXPECT_GT(morph, 1.3 * base);
    EXPECT_GT(smt, 1.2 * base);
}

TEST(Scenario, OnlyMorphingDesignsOpenWindows)
{
    EXPECT_EQ(run(DesignKind::Baseline,
                  MicroserviceKind::FlannLL, 0.5)
                  .filler_window_fraction,
              0.0);
    EXPECT_EQ(run(DesignKind::Smt, MicroserviceKind::FlannLL, 0.5)
                  .filler_ops,
              0u);
    EXPECT_GT(run(DesignKind::Duplexity,
                  MicroserviceKind::FlannLL, 0.5)
                  .filler_window_fraction,
              0.2);
}

TEST(Scenario, WindowFractionGrowsAsLoadFalls)
{
    double low = run(DesignKind::Duplexity,
                     MicroserviceKind::McRouter, 0.3)
                     .filler_window_fraction;
    double high = run(DesignKind::Duplexity,
                      MicroserviceKind::McRouter, 0.7)
                      .filler_window_fraction;
    EXPECT_GT(low, high);
}

TEST(Scenario, WordStemHasNoMasterRemoteOps)
{
    ScenarioResult res =
        run(DesignKind::Baseline, MicroserviceKind::WordStem, 0.5);
    // All remote traffic comes from batch threads; the master never
    // stalls (Section V).
    EXPECT_GT(res.requests, 0u);
    ScenarioResult dup =
        run(DesignKind::Duplexity, MicroserviceKind::WordStem, 0.5);
    // WordStem still opens windows: idleness remains.
    EXPECT_GT(dup.filler_window_fraction, 0.1);
}

TEST(Scenario, BatchStpImprovesWithBorrowing)
{
    double base = run(DesignKind::Baseline,
                      MicroserviceKind::FlannLL, 0.5)
                      .batch_stp;
    double duplexity = run(DesignKind::Duplexity,
                           MicroserviceKind::FlannLL, 0.5)
                           .batch_stp;
    EXPECT_GT(duplexity, base);
}

TEST(Scenario, RemoteOpsFlowAtAllLevels)
{
    ScenarioResult res =
        run(DesignKind::Duplexity, MicroserviceKind::FlannLL, 0.5);
    EXPECT_GT(res.remote_ops_per_sec, 0.0);
    // Single-cache-line ops: far below FDR IOPS capacity
    // (Section VIII).
    EXPECT_LT(res.remote_ops_per_sec, 90e6);
}

TEST(Scenario, ActivityCountersPopulated)
{
    ScenarioResult res =
        run(DesignKind::Duplexity, MicroserviceKind::Rsc, 0.5);
    EXPECT_GT(res.activity.seconds, 0.0);
    EXPECT_GT(res.activity.ooo_ops, 0u);
    EXPECT_GT(res.activity.ino_ops, 0u);
    EXPECT_GT(res.activity.l1_accesses, 0u);
    EXPECT_GT(res.activity.llc_accesses, 0u);
    EXPECT_GT(res.activity.dram_accesses, 0u);
    // Duplexity fillers cross the dyad link and filter through L0s.
    EXPECT_GT(res.activity.l0_accesses, 0u);
    EXPECT_GT(res.activity.link_traversals, 0u);
}

TEST(Scenario, OnlyDuplexityUsesTheDyadLink)
{
    ScenarioResult repl =
        run(DesignKind::DuplexityRepl, MicroserviceKind::Rsc, 0.5);
    EXPECT_EQ(repl.activity.link_traversals, 0u);
    ScenarioResult morph =
        run(DesignKind::MorphCorePlus, MicroserviceKind::Rsc, 0.5);
    EXPECT_EQ(morph.activity.link_traversals, 0u);
}

TEST(Scenario, FrequenciesFollowTableII)
{
    EXPECT_NEAR(run(DesignKind::Baseline,
                    MicroserviceKind::WordStem, 0.3)
                    .frequency_ghz,
                3.40, 0.01);
    EXPECT_NEAR(run(DesignKind::Duplexity,
                    MicroserviceKind::WordStem, 0.3)
                    .frequency_ghz,
                3.25, 0.01);
}

TEST(Scenario, DeterministicForSeed)
{
    ScenarioConfig cfg;
    cfg.design = DesignKind::Duplexity;
    cfg.service = MicroserviceKind::McRouter;
    cfg.load = 0.5;
    cfg.measure_cycles = 800'000;
    ScenarioResult a = runScenario(cfg);
    ScenarioResult b = runScenario(cfg);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.filler_ops, b.filler_ops);
}

TEST(Scenario, HigherLoadRaisesMasterUtilization)
{
    double low = run(DesignKind::Baseline,
                     MicroserviceKind::WordStem, 0.3)
                     .utilization;
    double high = run(DesignKind::Baseline,
                      MicroserviceKind::WordStem, 0.7)
                      .utilization;
    EXPECT_GT(high, 1.5 * low);
}

TEST(Scenario, SojournAtLeastService)
{
    ScenarioResult res =
        run(DesignKind::Baseline, MicroserviceKind::McRouter, 0.7);
    EXPECT_GE(res.sojourn_us.mean(), res.service_us.mean() - 1e-9);
    EXPECT_GE(res.wait_us.mean(), 0.0);
}

TEST(Scenario, AloneBatchIpcIsPositiveAndStable)
{
    double a = aloneBatchIpc(BatchKind::PageRank);
    double b = aloneBatchIpc(BatchKind::PageRank);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0.01);
    EXPECT_LT(a, 4.0);
}

TEST(Scenario, MeasureCyclesEnvFallback)
{
    EXPECT_EQ(measureCyclesFromEnv(1234), 1234u);
}

TEST(Scenario, BaselineServiceMemoStable)
{
    double a = baselineServiceUs(MicroserviceKind::FlannLL);
    double b = baselineServiceUs(MicroserviceKind::FlannLL);
    EXPECT_EQ(a, b);
    // In-situ service should be within ~2x of the nominal spec.
    double nominal = makeMicroservice(MicroserviceKind::FlannLL)
                         .nominalServiceUs();
    EXPECT_GT(a, 0.5 * nominal);
    EXPECT_LT(a, 2.0 * nominal);
}

namespace
{

/** The BigHouse stage over a scenario's measured services. */
double
queuedP99(const ScenarioResult &res)
{
    QueueSimConfig cfg;
    cfg.interarrival = makeExponential(1.0 / res.offered_rps);
    cfg.service = makeScaled(
        makeEmpirical(res.service_us.samples()), 1e-6);
    cfg.max_batches = 40;
    return toMicros(runQueueSim(cfg).p99Sojourn());
}

} // namespace

TEST(Scenario, TailOrderingAtHighLoad)
{
    // The paper's QoS headline (Section VII): at high load, SMT
    // co-location blows up the microservice's p99 while Duplexity
    // stays close to the baseline tail.
    ScenarioResult base = run(DesignKind::Baseline,
                              MicroserviceKind::FlannLL, 0.7,
                              2'500'000);
    ScenarioResult smt = run(DesignKind::Smt,
                             MicroserviceKind::FlannLL, 0.7,
                             2'500'000);
    ScenarioResult dup = run(DesignKind::Duplexity,
                             MicroserviceKind::FlannLL, 0.7,
                             2'500'000);
    ASSERT_GT(base.service_us.count(), 32u);
    double p99_base = queuedP99(base);
    double p99_smt = queuedP99(smt);
    double p99_dup = queuedP99(dup);
    EXPECT_GT(p99_smt, 1.5 * p99_base);
    EXPECT_LT(p99_dup, 1.6 * p99_base);
    EXPECT_LT(p99_dup, p99_smt);
}

TEST(Scenario, DesignOverrideRespected)
{
    // The ablation hook: a Duplexity variant with MorphCore's slow
    // resume must behave worse for the master-thread than stock
    // Duplexity under identical conditions.
    ScenarioConfig cfg;
    cfg.design = DesignKind::Duplexity;
    cfg.service = MicroserviceKind::FlannLL;
    cfg.load = 0.5;
    cfg.measure_cycles = 1'200'000;
    ScenarioResult stock = runScenario(cfg);

    DesignConfig slow = makeDesign(DesignKind::Duplexity);
    slow.resume_penalty = 2000;
    cfg.design_override = slow;
    ScenarioResult hobbled = runScenario(cfg);

    EXPECT_GT(hobbled.service_us.mean(), stock.service_us.mean());
}
