/**
 * @file
 * Determinism layer for the parallel sweep engine: the same Grid run
 * with 1, 2, and hardware_concurrency() worker threads must be
 * BIT-IDENTICAL (exact double equality, sample populations
 * included), cell results must not depend on the subgrid ordering,
 * and SmtSweep points must replay bit-exactly for the same seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/grid.hh"
#include "core/smt_sweep.hh"
#include "core/calibration.hh"
#include "sim/thread_pool.hh"

using namespace duplexity;

namespace
{

/** A small grid that still crosses services, loads, and designs. */
GridSpec
reducedSpec()
{
    GridSpec spec;
    spec.services = {MicroserviceKind::FlannLL,
                     MicroserviceKind::WordStem};
    spec.loads = {0.5};
    spec.designs = {DesignKind::Baseline, DesignKind::Smt,
                    DesignKind::Duplexity};
    spec.warmup_cycles = 200'000;
    spec.measure_cycles = 600'000;
    return spec;
}

void
expectSameSamples(const SampleStats &a, const SampleStats &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.stddev(), b.stddev());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    ASSERT_EQ(a.samples().size(), b.samples().size());
    EXPECT_EQ(a.samples(), b.samples());
}

void
expectSameResult(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.load, b.load);
    EXPECT_EQ(a.frequency_ghz, b.frequency_ghz);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.batch_stp, b.batch_stp);
    EXPECT_EQ(a.batch_ops_per_sec, b.batch_ops_per_sec);
    EXPECT_EQ(a.remote_ops_per_sec, b.remote_ops_per_sec);
    EXPECT_EQ(a.offered_rps, b.offered_rps);
    EXPECT_EQ(a.filler_window_fraction, b.filler_window_fraction);
    EXPECT_EQ(a.filler_ops, b.filler_ops);
    EXPECT_EQ(a.lender_ops, b.lender_ops);
    EXPECT_EQ(a.master_ops, b.master_ops);
    EXPECT_EQ(a.filler_swaps, b.filler_swaps);
    expectSameSamples(a.service_us, b.service_us);
    expectSameSamples(a.sojourn_us, b.sojourn_us);
    expectSameSamples(a.wait_us, b.wait_us);
    EXPECT_EQ(a.activity.seconds, b.activity.seconds);
    EXPECT_EQ(a.activity.ooo_ops, b.activity.ooo_ops);
    EXPECT_EQ(a.activity.ino_ops, b.activity.ino_ops);
    EXPECT_EQ(a.activity.l0_accesses, b.activity.l0_accesses);
    EXPECT_EQ(a.activity.l1_accesses, b.activity.l1_accesses);
    EXPECT_EQ(a.activity.llc_accesses, b.activity.llc_accesses);
    EXPECT_EQ(a.activity.dram_accesses, b.activity.dram_accesses);
    EXPECT_EQ(a.activity.link_traversals,
              b.activity.link_traversals);
}

void
expectSameGrid(const Grid &a, const Grid &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_EQ(a.cells[i].service, b.cells[i].service);
        EXPECT_EQ(a.cells[i].load, b.cells[i].load);
        EXPECT_EQ(a.cells[i].design, b.cells[i].design);
        expectSameResult(a.cells[i].result, b.cells[i].result);
    }
}

} // namespace

TEST(GridDeterminism, BitIdenticalForAnyThreadCount)
{
    GridSpec spec = reducedSpec();

    spec.threads = 1;
    Grid serial = runGrid(spec);
    EXPECT_EQ(serial.sweep.threads, 1u);

    spec.threads = 2;
    Grid two = runGrid(spec);

    spec.threads = ThreadPool::hardwareThreads();
    Grid hw = runGrid(spec);

    expectSameGrid(serial, two);
    expectSameGrid(serial, hw);
}

TEST(GridDeterminism, CellsIndependentOfSubgridOrdering)
{
    // The same cell must come out bit-identical whether its design
    // is enumerated first or last: seeds hang off cell identity,
    // never off the enumeration index.
    GridSpec forward = reducedSpec();
    GridSpec reversed = reducedSpec();
    std::reverse(reversed.designs.begin(), reversed.designs.end());
    std::reverse(reversed.services.begin(),
                 reversed.services.end());

    Grid a = runGrid(forward);
    Grid b = runGrid(reversed);
    for (MicroserviceKind service : forward.services) {
        for (DesignKind design : forward.designs) {
            SCOPED_TRACE(std::string(toString(service)) + "/" +
                         toString(design));
            expectSameResult(a.at(service, 0.5, design),
                             b.at(service, 0.5, design));
        }
    }
}

TEST(GridDeterminism, CellSeedIsPureFunctionOfIdentity)
{
    const std::uint64_t seed = gridCellSeed(
        42, MicroserviceKind::FlannLL, 0.5, DesignKind::Duplexity);
    EXPECT_EQ(gridCellSeed(42, MicroserviceKind::FlannLL, 0.5,
                           DesignKind::Duplexity),
              seed);
    EXPECT_NE(gridCellSeed(42, MicroserviceKind::FlannLL, 0.3,
                           DesignKind::Duplexity),
              seed);
    EXPECT_NE(gridCellSeed(42, MicroserviceKind::WordStem, 0.5,
                           DesignKind::Duplexity),
              seed);
    EXPECT_NE(gridCellSeed(42, MicroserviceKind::FlannLL, 0.5,
                           DesignKind::Baseline),
              seed);
    EXPECT_NE(gridCellSeed(1, MicroserviceKind::FlannLL, 0.5,
                           DesignKind::Duplexity),
              seed);
}

TEST(SmtSweepDeterminism, SameSeedReplaysBitExactly)
{
    auto point = [](std::uint64_t seed) {
        SmtSweepConfig cfg;
        cfg.mode = IssueMode::OutOfOrder;
        cfg.threads = 4;
        cfg.workload = [](ThreadId) {
            return calibratedFlannXY(2.0, 1.0, 0);
        };
        cfg.warmup_cycles = 100'000;
        cfg.measure_cycles = 400'000;
        cfg.seed = seed;
        return cfg;
    };

    // Two identical points and one reseeded point, fanned out over
    // 4 workers; replayed to check run-to-run stability too.
    std::vector<SmtSweepConfig> configs{point(7), point(7),
                                        point(8)};
    std::vector<SmtSweepResult> first = runSmtSweepMany(configs, 4);
    std::vector<SmtSweepResult> second = runSmtSweepMany(configs, 2);

    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].total_ipc, first[1].total_ipc);
    EXPECT_EQ(first[0].l1d_miss_rate, first[1].l1d_miss_rate);
    EXPECT_EQ(first[0].mispredict_rate, first[1].mispredict_rate);
    EXPECT_NE(first[0].total_ipc, first[2].total_ipc);
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        EXPECT_EQ(first[i].total_ipc, second[i].total_ipc);
        EXPECT_EQ(first[i].l1d_miss_rate, second[i].l1d_miss_rate);
        EXPECT_EQ(first[i].mispredict_rate,
                  second[i].mispredict_rate);
    }
}
