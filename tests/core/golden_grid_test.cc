/**
 * @file
 * Golden-number regression layer: pins the paper-facing metrics of a
 * reduced evaluation grid (2 services x 50% load x 3 designs) at
 * fixed seeds.
 *
 * Tolerance policy (documented per the issue):
 *  - Within one binary, results are BIT-exact for any DPX_THREADS —
 *    that is enforced by grid_determinism_test.cc, not here.
 *  - These golden checks use +/-10% relative tolerance (15% for the
 *    p99 tail, which is a high-variance order statistic of a ~60-
 *    sample population). That absorbs compiler/libm/FP-contraction
 *    drift across toolchains while still catching any behavioral
 *    regression that moves a headline metric.
 *
 * To refresh after an intentional modeling change:
 *   DPX_PRINT_GOLDEN=1 ./build/tests/grid_test \
 *       --gtest_filter='GoldenGrid.*'
 * and paste the emitted table over kGolden below.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/grid.hh"
#include "power/area_model.hh"

using namespace duplexity;

namespace
{

struct GoldenRow
{
    MicroserviceKind service;
    DesignKind design;
    double utilization;    // retired/cycle/width (IPC proxy)
    double service_p99_us; // tail latency of measured services
    double density;        // performance density, Mops/s/mm^2
    std::uint64_t requests;
};

/** The pinned numbers (seed 42, 300k warmup, 1M measured cycles). */
const GoldenRow kGolden[] = {
    // service, design, util, p99_us, Mops/s/mm^2, requests
    {MicroserviceKind::FlannLL, DesignKind::Baseline, 0.019298,
     6.2244, 187.3613, 45ull},
    {MicroserviceKind::FlannLL, DesignKind::Smt, 0.168161, 7.9449,
     263.0156, 46ull},
    {MicroserviceKind::FlannLL, DesignKind::Duplexity, 0.219556,
     7.0299, 270.4392, 52ull},
    {MicroserviceKind::WordStem, DesignKind::Baseline, 0.121679,
     6.4113, 240.9873, 34ull},
    {MicroserviceKind::WordStem, DesignKind::Smt, 0.266240, 10.3405,
     313.4908, 44ull},
    {MicroserviceKind::WordStem, DesignKind::Duplexity, 0.269023,
     8.7465, 296.4848, 31ull},
};

constexpr double kTolerance = 0.10;     // +/-10%
constexpr double kTailTolerance = 0.15; // +/-15% for p99

GridSpec
goldenSpec()
{
    GridSpec spec;
    spec.services = {MicroserviceKind::FlannLL,
                     MicroserviceKind::WordStem};
    spec.loads = {0.5};
    spec.designs = {DesignKind::Baseline, DesignKind::Smt,
                    DesignKind::Duplexity};
    spec.warmup_cycles = 300'000;
    spec.measure_cycles = 1'000'000;
    spec.base_seed = 42;
    return spec;
}

/** Performance density in Mops/s/mm^2 (the Figure 5(b) metric). */
double
densityMopsPerMm2(const ScenarioResult &result)
{
    DesignConfig design = makeDesign(result.design);
    double ops_per_sec =
        static_cast<double>(result.activity.totalOps()) /
        result.seconds;
    return ops_per_sec / pairedChipAreaMm2(design.area_kind) / 1e6;
}

const Grid &
goldenGrid()
{
    static const Grid grid = runGrid(goldenSpec());
    return grid;
}

/** Enum spellings for the refresh printout (toString() gives the
 *  display names, not the identifiers). */
const char *
enumName(MicroserviceKind kind)
{
    switch (kind) {
      case MicroserviceKind::FlannLL:
        return "FlannLL";
      case MicroserviceKind::WordStem:
        return "WordStem";
      default:
        return "?";
    }
}

const char *
enumName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Baseline:
        return "Baseline";
      case DesignKind::Smt:
        return "Smt";
      case DesignKind::Duplexity:
        return "Duplexity";
      default:
        return "?";
    }
}

} // namespace

TEST(GoldenGrid, PinnedMetricsHold)
{
    const Grid &grid = goldenGrid();

    if (std::getenv("DPX_PRINT_GOLDEN")) {
        for (const GoldenRow &row : kGolden) {
            const ScenarioResult &res =
                grid.at(row.service, 0.5, row.design);
            std::printf("    {MicroserviceKind::%s, "
                        "DesignKind::%s, %.6f, %.4f, %.4f, %lluull},"
                        "\n",
                        enumName(row.service), enumName(row.design),
                        res.utilization, res.service_us.p99(),
                        densityMopsPerMm2(res),
                        static_cast<unsigned long long>(
                            res.requests));
        }
    }

    for (const GoldenRow &row : kGolden) {
        SCOPED_TRACE(std::string(toString(row.service)) + "/" +
                     toString(row.design));
        const ScenarioResult &res =
            grid.at(row.service, 0.5, row.design);
        EXPECT_NEAR(res.utilization, row.utilization,
                    kTolerance * row.utilization);
        EXPECT_NEAR(res.service_us.p99(), row.service_p99_us,
                    kTailTolerance * row.service_p99_us);
        EXPECT_NEAR(densityMopsPerMm2(res), row.density,
                    kTolerance * row.density);
        EXPECT_NEAR(static_cast<double>(res.requests),
                    static_cast<double>(row.requests),
                    kTolerance * static_cast<double>(row.requests));
    }
}

TEST(GoldenGrid, PaperOrderingsHoldOnReducedGrid)
{
    // Shape checks that must survive any re-calibration: they are
    // the qualitative headlines of Figure 5 and guard the golden
    // table itself against being refreshed into nonsense.
    const Grid &grid = goldenGrid();
    for (MicroserviceKind service : goldenSpec().services) {
        SCOPED_TRACE(toString(service));
        const ScenarioResult &base =
            grid.at(service, 0.5, DesignKind::Baseline);
        const ScenarioResult &smt =
            grid.at(service, 0.5, DesignKind::Smt);
        const ScenarioResult &dup =
            grid.at(service, 0.5, DesignKind::Duplexity);
        // Figure 5(a): co-location lifts utilization far above the
        // baseline, and Duplexity at least matches SMT (the two are
        // within noise of each other on WordStem's reduced grid, so
        // a 5% slack keeps this toolchain-robust).
        EXPECT_GT(smt.utilization, 1.3 * base.utilization);
        EXPECT_GT(dup.utilization, 1.3 * base.utilization);
        EXPECT_GT(dup.utilization, 0.95 * smt.utilization);
        // Figure 5(b): density Duplexity > Baseline.
        EXPECT_GT(densityMopsPerMm2(dup), densityMopsPerMm2(base));
    }
}
