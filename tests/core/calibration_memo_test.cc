/**
 * @file
 * Wide calibration-memo differential wall: the recipe-fingerprint
 * memo (setMemoWideningEnabled(true)) must return bit-identical
 * values to the legacy enum/character-keyed memos for every probe
 * kind, and its wide-hit counter must prove the dedup actually
 * fires. The wide and legacy stores are separate, so one process can
 * compute both sides of the differential.
 */

#include <gtest/gtest.h>

#include "core/calibration.hh"
#include "core/scenario.hh"
#include "workload/catalog.hh"

using namespace duplexity;

namespace
{

/** RAII: force one memo mode, restore widening (the default) after. */
class MemoMode
{
  public:
    explicit MemoMode(bool wide) { setMemoWideningEnabled(wide); }
    ~MemoMode() { setMemoWideningEnabled(true); }
};

} // namespace

/** Same ProbeKey for the same recipe, different key for a different
 *  one — the property that makes wide lookups safe and useful. */
TEST(CalibrationMemo, ProbeKeyFingerprintsRecipeExactly)
{
    MicroserviceSpec spec_a = makeMicroservice(MicroserviceKind::FlannLL);
    MicroserviceSpec spec_b = makeMicroservice(MicroserviceKind::FlannLL);
    ProbeKey a, b;
    fingerprintMicroservice(a, spec_a);
    fingerprintMicroservice(b, spec_b);
    EXPECT_EQ(a.words(), b.words());
    EXPECT_EQ(a.hash(), b.hash());

    ProbeKey c;
    fingerprintMicroservice(
        c, makeMicroservice(MicroserviceKind::WordStem));
    EXPECT_NE(a.words(), c.words());

    ProbeKey d, e;
    fingerprintBatch(d, makeFlannXY(0.3, 1.0, 1));
    fingerprintBatch(e, makeFlannXY(0.3, 1.0, 1));
    EXPECT_EQ(d.words(), e.words());
    ProbeKey f;
    fingerprintBatch(f, makeFlannXY(0.3, 1.5, 1));
    EXPECT_NE(d.words(), f.words());
}

/** memoizedProbe computes once per distinct key, dedups repeats, and
 *  keeps colliding hashes apart via the full-key compare. */
TEST(CalibrationMemo, MemoizedProbeDedupsAndCountsWideHits)
{
    ProbeKey key;
    key.mix(0x7e57ull);
    key.mixDouble(0.125);
    int calls = 0;
    auto probe = [&] {
        ++calls;
        return 41.5;
    };
    CalibrationMemoStats before = calibrationMemoStats();
    EXPECT_EQ(memoizedProbe(key, probe), 41.5);
    EXPECT_EQ(memoizedProbe(key, probe), 41.5);
    EXPECT_EQ(calls, 1);
    CalibrationMemoStats after = calibrationMemoStats();
    EXPECT_EQ(after.probes, before.probes + 1);
    EXPECT_EQ(after.wide_hits, before.wide_hits + 1);

    // A different key with the same prefix computes fresh.
    ProbeKey other;
    other.mix(0x7e57ull);
    other.mixDouble(0.250);
    EXPECT_EQ(memoizedProbe(other, [&] {
                  ++calls;
                  return 7.0;
              }),
              7.0);
    EXPECT_EQ(calls, 2);
}

/** Value differential, GOLDEN: every probe the wide memo serves must
 *  be bit-identical to the legacy narrow-keyed path. Each side runs
 *  the same fixed-seed measurement; only the memo keying differs. */
TEST(CalibrationMemo, WideAndLegacyProbesAreBitIdentical)
{
    double wide_ipc, legacy_ipc;
    double wide_us, legacy_us;
    double wide_batch, legacy_batch;
    {
        MemoMode mode(true);
        wide_ipc = measureComputeIpc(
            makeMicroservice(MicroserviceKind::McRouter).character,
            IssueMode::OutOfOrder);
        wide_us = baselineServiceUs(MicroserviceKind::McRouter);
        wide_batch = aloneBatchIpc(BatchKind::PageRank);
    }
    {
        MemoMode mode(false);
        legacy_ipc = measureComputeIpc(
            makeMicroservice(MicroserviceKind::McRouter).character,
            IssueMode::OutOfOrder);
        legacy_us = baselineServiceUs(MicroserviceKind::McRouter);
        legacy_batch = aloneBatchIpc(BatchKind::PageRank);
    }
    EXPECT_EQ(wide_ipc, legacy_ipc);
    EXPECT_EQ(wide_us, legacy_us);
    EXPECT_EQ(wide_batch, legacy_batch);
}

/** Repeat calls on the wide path are wide-hits, not re-measurements:
 *  the counters expose the dedup the perf win depends on. */
TEST(CalibrationMemo, RepeatProbesHitTheWideMemo)
{
    MemoMode mode(true);
    double first = baselineServiceUs(MicroserviceKind::Rsc);
    CalibrationMemoStats before = calibrationMemoStats();
    double second = baselineServiceUs(MicroserviceKind::Rsc);
    CalibrationMemoStats after = calibrationMemoStats();
    EXPECT_EQ(first, second);
    EXPECT_EQ(after.probes, before.probes); // nothing re-measured
    EXPECT_GT(after.wide_hits, before.wide_hits);
}
