/**
 * @file
 * HSMT tests: run-queue FIFO semantics, stall-driven context swaps,
 * quantum preemption, window open/close, and pool-sharing between
 * units (the dyad's thread-borrowing mechanism).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/hsmt.hh"
#include "mem/memory_system.hh"

using namespace duplexity;

namespace
{

/** Deterministic source: n_compute ALU ops, then a remote stall. */
class ScriptedSource : public InstrSource
{
  public:
    ScriptedSource(std::uint64_t n_compute, float stall_us)
        : n_compute_(n_compute), stall_us_(stall_us)
    {
    }

  protected:
    MicroOp
    drawNext() override
    {
        MicroOp op;
        op.pc = 0x1000 + 4 * (count_ % 64);
        if (stall_us_ > 0 && count_ % (n_compute_ + 1) == n_compute_) {
            op.cls = OpClass::Remote;
            op.stall_us = stall_us_;
        } else {
            op.cls = OpClass::IntAlu;
        }
        ++count_;
        return op;
    }

  private:
    std::uint64_t n_compute_;
    float stall_us_;
    std::uint64_t count_ = 0;
};

class CountingSink : public CommitSink
{
  public:
    void
    onCommit(const VirtualContext &ctx, const OpOutcome &out) override
    {
        ++total;
        per_ctx[ctx.id()] += 1;
        if (out.remote)
            ++remotes;
    }

    std::uint64_t total = 0;
    std::uint64_t remotes = 0;
    std::map<ThreadId, std::uint64_t> per_ctx;
};

class HsmtTest : public ::testing::Test
{
  protected:
    HsmtTest()
        : mem_(MemSystemConfig::makeDefault()),
          engine_(CoreEngineConfig{}),
          pred_(makePredictor(PredictorConfig::Kind::GshareSmall)),
          btb_(2048, 4), ras_(16)
    {
    }

    void
    addContexts(int n, std::uint64_t compute, float stall_us)
    {
        for (int i = 0; i < n; ++i) {
            sources_.push_back(std::make_unique<ScriptedSource>(
                compute, stall_us));
            ctxs_.push_back(std::make_unique<VirtualContext>(
                static_cast<ThreadId>(i + 1),
                sources_.back().get()));
            pool_.add(ctxs_.back().get());
        }
    }

    std::unique_ptr<HsmtUnit>
    makeUnit(const HsmtConfig &cfg)
    {
        auto unit = std::make_unique<HsmtUnit>(
            engine_, pool_, cfg, Frequency(3.4e9));
        LaneConfig proto =
            engine_.defaultLaneConfig(IssueMode::InOrder);
        proto.path = mem_.lenderPath();
        proto.branch = {pred_.get(), &btb_, &ras_};
        unit->configureLanes(proto);
        return unit;
    }

    DyadMemorySystem mem_;
    CoreEngine engine_;
    std::unique_ptr<BranchPredictor> pred_;
    Btb btb_;
    ReturnAddressStack ras_;
    VirtualContextPool pool_;
    std::vector<std::unique_ptr<ScriptedSource>> sources_;
    std::vector<std::unique_ptr<VirtualContext>> ctxs_;
};

} // namespace

TEST(VirtualContextPool, FifoAcquireOrder)
{
    VirtualContextPool pool;
    ScriptedSource src(10, 0);
    VirtualContext a(1, &src), b(2, &src), c(3, &src);
    pool.add(&a);
    pool.add(&b);
    pool.add(&c);
    EXPECT_EQ(pool.acquire(0, nullptr), &a);
    EXPECT_EQ(pool.acquire(0, nullptr), &b);
    pool.release(&a);
    EXPECT_EQ(pool.acquire(0, nullptr), &c);
    EXPECT_EQ(pool.acquire(0, nullptr), &a);
}

TEST(VirtualContextPool, SkipsStalledContexts)
{
    VirtualContextPool pool;
    ScriptedSource src(10, 0);
    VirtualContext a(1, &src), b(2, &src);
    a.setReadyTime(1000);
    pool.add(&a);
    pool.add(&b);
    EXPECT_EQ(pool.acquire(0, nullptr), &b);
    Cycle avail = 0;
    EXPECT_EQ(pool.acquire(0, &avail), nullptr);
    EXPECT_EQ(avail, 1000u);
    EXPECT_EQ(pool.acquire(1000, nullptr), &a);
}

TEST(VirtualContextPool, StatsTracked)
{
    VirtualContextPool pool;
    ScriptedSource src(10, 0);
    VirtualContext a(1, &src);
    pool.add(&a);
    pool.acquire(0, nullptr);
    pool.release(&a);
    Cycle avail;
    pool.acquire(0, nullptr);
    pool.acquire(0, &avail);
    EXPECT_EQ(pool.stats().acquires, 2u);
    EXPECT_EQ(pool.stats().releases, 1u);
    EXPECT_EQ(pool.stats().empty_acquires, 1u);
}

TEST_F(HsmtTest, RunsStallFreeContextsAtFullOccupancy)
{
    addContexts(8, 1000000, 0.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(50000, &sink);
    EXPECT_EQ(unit->occupiedLanes(), 8u);
    EXPECT_GT(sink.total, 50000u); // aggregate IPC > 1
}

TEST_F(HsmtTest, SwapsOnMicrosecondStalls)
{
    // 16 contexts alternating 200 ops compute / 1 µs stall on 8
    // lanes: stalls force context swaps beyond the initial loads.
    addContexts(16, 200, 1.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(200000, &sink);
    EXPECT_GT(unit->contextSwaps(), 50u);
    EXPECT_GT(sink.remotes, 50u);
}

TEST_F(HsmtTest, BacklogImprovesThroughputUnderStalls)
{
    // Same per-thread behaviour; more virtual contexts should yield
    // more aggregate progress because lanes never idle. Each run
    // gets a fresh engine/memory world (calendars are stateful).
    auto run = [](int contexts) {
        DyadMemorySystem mem(MemSystemConfig::makeDefault());
        CoreEngine engine{CoreEngineConfig{}};
        auto pred =
            makePredictor(PredictorConfig::Kind::GshareSmall);
        Btb btb(2048, 4);
        ReturnAddressStack ras(16);
        VirtualContextPool pool;
        std::vector<std::unique_ptr<ScriptedSource>> sources;
        std::vector<std::unique_ptr<VirtualContext>> ctxs;
        for (int i = 0; i < contexts; ++i) {
            sources.push_back(
                std::make_unique<ScriptedSource>(400, 1.0f));
            ctxs.push_back(std::make_unique<VirtualContext>(
                static_cast<ThreadId>(i + 1), sources.back().get()));
            pool.add(ctxs.back().get());
        }
        HsmtUnit unit(engine, pool, HsmtConfig{}, Frequency(3.4e9));
        LaneConfig proto =
            engine.defaultLaneConfig(IssueMode::InOrder);
        proto.path = mem.lenderPath();
        proto.branch = {pred.get(), &btb, &ras};
        unit.configureLanes(proto);
        unit.openWindow(0, HsmtUnit::never);
        CountingSink sink;
        unit.runUntil(400000, &sink);
        return sink.total;
    };
    std::uint64_t with_8 = run(8);
    std::uint64_t with_24 = run(24);
    EXPECT_GT(with_24, with_8 * 3 / 2);
}

TEST_F(HsmtTest, QuantumPreemptsLongRunners)
{
    // 9 stall-free contexts on 8 lanes: only the quantum rotates the
    // 9th in.
    addContexts(9, 100000000, 0.0f);
    HsmtConfig cfg;
    cfg.quantum = 20000;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(300000, &sink);
    EXPECT_EQ(sink.per_ctx.size(), 9u);
    for (const auto &[id, ops] : sink.per_ctx)
        EXPECT_GT(ops, 0u) << "context " << id << " starved";
}

TEST_F(HsmtTest, NoQuantumStarvesExtraContext)
{
    addContexts(9, 100000000, 0.0f);
    HsmtConfig cfg;
    cfg.quantum = HsmtUnit::never; // effectively disabled
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(300000, &sink);
    EXPECT_LT(sink.per_ctx.size(), 9u);
}

TEST_F(HsmtTest, ClosedWindowRunsNothing)
{
    addContexts(8, 1000, 0.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    CountingSink sink;
    EXPECT_EQ(unit->nextTime(), HsmtUnit::never);
    EXPECT_FALSE(unit->advanceOne(&sink));
    EXPECT_EQ(sink.total, 0u);
}

TEST_F(HsmtTest, CloseWindowReturnsContextsReady)
{
    addContexts(8, 1000000, 0.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(10000, &sink);
    EXPECT_EQ(pool_.size(), 0u);
    unit->closeWindow(10000);
    EXPECT_EQ(unit->occupiedLanes(), 0u);
    EXPECT_EQ(pool_.size(), 8u);
    for (VirtualContext *ctx : pool_.queued())
        EXPECT_LE(ctx->readyTime(), 10000u);
}

TEST_F(HsmtTest, WindowEdgeHandsContextsBack)
{
    addContexts(8, 1000000, 0.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, 5000);
    CountingSink sink;
    // Run well past the window end; lanes self-release at the edge.
    while (unit->advanceOne(&sink)) {
    }
    EXPECT_EQ(unit->occupiedLanes(), 0u);
    EXPECT_EQ(pool_.size(), 8u);
}

TEST_F(HsmtTest, TwoUnitsShareOnePool)
{
    // The dyad: a lender unit and a master filler unit both steal
    // from the same 12-context pool.
    addContexts(12, 100000000, 0.0f);
    HsmtConfig cfg;
    auto lender = makeUnit(cfg);
    auto filler = makeUnit(cfg);
    lender->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    lender->runUntil(1000, &sink);
    EXPECT_EQ(lender->occupiedLanes(), 8u);
    filler->openWindow(1000, HsmtUnit::never);
    filler->runUntil(5000, &sink);
    EXPECT_EQ(filler->occupiedLanes(), 4u); // only 4 remained
    EXPECT_TRUE(pool_.empty());
}

TEST_F(HsmtTest, OccupancyCyclesAccumulate)
{
    addContexts(8, 1000000, 0.0f);
    HsmtConfig cfg;
    auto unit = makeUnit(cfg);
    unit->openWindow(0, HsmtUnit::never);
    CountingSink sink;
    unit->runUntil(20000, &sink);
    unit->closeWindow(20000);
    std::uint64_t total_occupancy = 0;
    for (const auto &ctx : ctxs_)
        total_occupancy += ctx->occupancy_cycles;
    // 8 lanes busy for ~20k cycles each.
    EXPECT_GT(total_occupancy, 8u * 15000u);
    EXPECT_LE(total_occupancy, 8u * 21000u);
}
