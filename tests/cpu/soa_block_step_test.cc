/**
 * @file
 * SoA OpBlock stepping differential: CoreEngine::processBlock over an
 * OpBlock filled by InstrSource::fillBlock must be bit-identical to
 * the legacy draw-one/process-one loop — same IPC, same stall cycles,
 * same predictor and BTB state, same remote-op stop positions — and
 * the setSoaPipelineEnabled(false) switch on the engine must force
 * the materializing legacy path with identical outcomes. This extends
 * the PR-5 block-step wall (tests/cpu/block_step_test.cc) to the SoA
 * pipeline, including buffered sources under SMT lane interleaving.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/core_engine.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"
#include "workload/microservice.hh"
#include "workload/op_block.hh"

using namespace duplexity;

namespace
{

/** Everything one single-lane measurement needs, seeded identically. */
struct Rig
{
    DyadMemorySystem mem;
    CoreEngine engine;
    std::unique_ptr<BranchPredictor> pred;
    Btb btb;
    ReturnAddressStack ras;
    BatchSource source;
    Lane lane;

    Rig(IssueMode mode, double stall_us)
        : mem(MemSystemConfig::makeDefault()),
          engine(CoreEngineConfig{}),
          pred(makePredictor(mode == IssueMode::OutOfOrder
                                 ? PredictorConfig::Kind::Tournament
                                 : PredictorConfig::Kind::GshareSmall)),
          btb(2048, 4), ras(32),
          // Short compute segments (~1.4k instrs) so remote ops show
          // up many times inside the test horizons.
          source(makeFlannXY(0.2, stall_us, 0),
                 Rng(0xb10cull).fork(1))
    {
        LaneConfig cfg = engine.defaultLaneConfig(mode);
        cfg.path = mode == IssueMode::OutOfOrder ? mem.masterPath()
                                                 : mem.lenderPath();
        cfg.branch = {pred.get(), &btb, &ras};
        lane.configure(cfg);
    }
};

/** Post-run state snapshot, including the branch structures — a SoA
 *  run must leave the predictor tables and BTB in the same state the
 *  legacy loop did, not just produce the same counters. */
struct RunResult
{
    std::uint64_t committed_in_window = 0;
    std::uint64_t ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t remote_ops = 0;
    /** Sum of remote-stall cycles the loop applied via stallUntil. */
    Cycle stall_cycles = 0;
    Cycle final_next_fetch = 0;
    std::uint64_t l1d_hits = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t dram = 0;
    std::uint64_t pred_lookups = 0;
    std::uint64_t pred_mispredicts = 0;
    std::uint64_t btb_hits = 0;
    std::uint64_t btb_misses = 0;
    /** Hash of predict() over a fixed PC sweep: pins table state. */
    std::uint64_t pred_fingerprint = 0;

    void
    expectEq(const RunResult &o) const
    {
        EXPECT_EQ(committed_in_window, o.committed_in_window);
        EXPECT_EQ(ops, o.ops);
        EXPECT_EQ(branches, o.branches);
        EXPECT_EQ(mispredicts, o.mispredicts);
        EXPECT_EQ(remote_ops, o.remote_ops);
        EXPECT_EQ(stall_cycles, o.stall_cycles);
        EXPECT_EQ(final_next_fetch, o.final_next_fetch);
        EXPECT_EQ(l1d_hits, o.l1d_hits);
        EXPECT_EQ(l1d_misses, o.l1d_misses);
        EXPECT_EQ(dram, o.dram);
        EXPECT_EQ(pred_lookups, o.pred_lookups);
        EXPECT_EQ(pred_mispredicts, o.pred_mispredicts);
        EXPECT_EQ(btb_hits, o.btb_hits);
        EXPECT_EQ(btb_misses, o.btb_misses);
        EXPECT_EQ(pred_fingerprint, o.pred_fingerprint);
    }
};

RunResult
finishResult(Rig &rig, std::uint64_t committed, Cycle stall_cycles)
{
    RunResult r;
    r.committed_in_window = committed;
    r.ops = rig.lane.stats().ops;
    r.branches = rig.lane.stats().branches;
    r.mispredicts = rig.lane.stats().mispredicts;
    r.remote_ops = rig.lane.stats().remote_ops;
    r.stall_cycles = stall_cycles;
    r.final_next_fetch = rig.lane.nextFetch();
    const Cache &l1d = rig.lane.config().path.data->cache();
    r.l1d_hits = l1d.stats().hits;
    r.l1d_misses = l1d.stats().misses;
    r.dram = rig.mem.dram().accesses();
    r.pred_lookups = rig.pred->stats().lookups;
    r.pred_mispredicts = rig.pred->stats().mispredicts;
    r.btb_hits = rig.btb.hits();
    r.btb_misses = rig.btb.misses();
    // predict() is const: sweeping it perturbs nothing but folds the
    // direction tables' state into one comparable word.
    for (Addr pc = 0; pc < 4096; ++pc) {
        r.pred_fingerprint =
            r.pred_fingerprint * 1099511628211ull +
            static_cast<std::uint64_t>(rig.pred->predict(pc << 2));
    }
    return r;
}

constexpr Cycle warmup = 30'000;
constexpr Cycle horizon = 180'000;

/** The legacy loop on a forced-legacy source: one scalar draw, one
 *  processOp, stall on remote. */
RunResult
runPerOpLegacy(Rig &rig, const Frequency &freq, bool apply_stall)
{
    rig.source.setSoaPipelineEnabled(false);
    std::uint64_t committed = 0;
    Cycle stall_cycles = 0;
    while (rig.lane.nextFetch() < horizon) {
        MicroOp op = rig.source.next();
        OpOutcome out = rig.engine.processOp(rig.lane, op);
        if (out.commit_time >= warmup && out.commit_time < horizon)
            ++committed;
        if (out.remote && apply_stall) {
            const Cycle stall = freq.microsToCycles(out.stall_us);
            stall_cycles += stall;
            rig.lane.stallUntil(out.commit_time + stall);
        }
    }
    return finishResult(rig, committed, stall_cycles);
}

/** The SoA loop: bulk fillBlock into an OpBlock, processBlock over
 *  lane arrays, stall on the remote stop. Mirrors calibration.cc. */
RunResult
runSoaBlocked(Rig &rig, const Frequency &freq, bool apply_stall,
              std::vector<std::uint64_t> *stop_ops = nullptr)
{
    std::uint64_t committed = 0;
    std::uint64_t consumed = 0;
    Cycle stall_cycles = 0;
    OpBlock block;
    std::uint32_t head = 0;
    while (rig.lane.nextFetch() < horizon) {
        if (head == block.size()) {
            block.clear();
            rig.source.fillBlock(block, kOpBlockCapacity);
            head = 0;
        }
        BlockOutcome blk = rig.engine.processBlock(
            rig.lane, block, head, horizon, warmup, horizon);
        head += blk.processed;
        consumed += blk.processed;
        committed += blk.committed_in_window;
        if (blk.stopped_remote) {
            if (stop_ops)
                stop_ops->push_back(consumed - 1);
            if (apply_stall) {
                const Cycle stall =
                    freq.microsToCycles(blk.last.stall_us);
                stall_cycles += stall;
                rig.lane.stallUntil(blk.last.commit_time + stall);
            }
        }
    }
    return finishResult(rig, committed, stall_cycles);
}

} // namespace

TEST(SoaBlockStep, MatchesLegacyPerOpLoopInOrderWithRemoteStalls)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 1.5);
    Rig b(IssueMode::InOrder, /*stall_us*/ 1.5);
    RunResult legacy = runPerOpLegacy(a, freq, true);
    RunResult soa = runSoaBlocked(b, freq, true);
    EXPECT_GT(legacy.remote_ops, 0u); // the stalls actually happened
    soa.expectEq(legacy);
}

TEST(SoaBlockStep, MatchesLegacyPerOpLoopOutOfOrder)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    Rig b(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    RunResult legacy = runPerOpLegacy(a, freq, false);
    RunResult soa = runSoaBlocked(b, freq, false);
    soa.expectEq(legacy);
}

/** setSoaPipelineEnabled(false) on the engine forces the
 *  materializing legacy path with identical outcomes and state. */
TEST(SoaBlockStep, EngineSwitchForcesLegacyMaterialization)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 1.0);
    Rig b(IssueMode::InOrder, /*stall_us*/ 1.0);
    ASSERT_TRUE(a.engine.soaPipelineEnabled());
    b.engine.setSoaPipelineEnabled(false);
    ASSERT_FALSE(b.engine.soaPipelineEnabled());
    RunResult soa = runSoaBlocked(a, freq, true);
    RunResult forced = runSoaBlocked(b, freq, true);
    forced.expectEq(soa);
}

/** Remote ops stop the SoA block at exactly the same op positions as
 *  the forced-legacy engine path sees them. */
TEST(SoaBlockStep, RemoteStopPositionsMatchForcedLegacyEngine)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 2.0);
    Rig b(IssueMode::InOrder, /*stall_us*/ 2.0);
    b.engine.setSoaPipelineEnabled(false);
    std::vector<std::uint64_t> soa_stops, legacy_stops;
    runSoaBlocked(a, freq, true, &soa_stops);
    runSoaBlocked(b, freq, true, &legacy_stops);
    ASSERT_FALSE(soa_stops.empty());
    EXPECT_EQ(soa_stops, legacy_stops);
}

/** SMT lane interleaving: the most-behind fetch policy consumes ops
 *  one at a time from each thread's buffered source. The SoA buffer
 *  must not change any thread's op sequence, so the whole interleaved
 *  run — shared L1s, shared predictor and BTB — matches the
 *  forced-legacy sources op for op. */
TEST(SoaBlockStep, SmtInterleavedLanesMatchForcedLegacySources)
{
    const Frequency freq(3.4e9);
    constexpr int kThreads = 3;

    struct Thread
    {
        std::unique_ptr<BatchSource> source;
        std::unique_ptr<ReturnAddressStack> ras;
        Lane lane;
    };

    auto run = [&](bool soa) {
        DyadMemorySystem mem(MemSystemConfig::makeDefault());
        CoreEngine engine{CoreEngineConfig{}};
        auto pred = makePredictor(PredictorConfig::Kind::Tournament);
        Btb btb(2048, 4);
        Rng rng(0x517ull);
        std::vector<Thread> threads(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            Thread &t = threads[i];
            t.source = std::make_unique<BatchSource>(
                makeFlannXY(0.5, 1.0, 0), rng.fork(i));
            if (!soa)
                t.source->setSoaPipelineEnabled(false);
            t.ras = std::make_unique<ReturnAddressStack>(16);
            LaneConfig cfg =
                engine.defaultLaneConfig(IssueMode::OutOfOrder);
            cfg.path = mem.masterPath();
            cfg.branch = {pred.get(), &btb, t.ras.get()};
            t.lane.configure(cfg);
        }
        // Most-behind interleave, as in runSmtSweep's multi-thread
        // loop.
        std::uint64_t total_ops = 0;
        Cycle stall_cycles = 0;
        for (;;) {
            Thread *best = nullptr;
            Cycle best_time = ~Cycle(0);
            for (Thread &t : threads) {
                if (t.lane.nextFetch() < best_time) {
                    best_time = t.lane.nextFetch();
                    best = &t;
                }
            }
            if (!best || best_time >= horizon)
                break;
            MicroOp op = best->source->next();
            OpOutcome out = engine.processOp(best->lane, op);
            ++total_ops;
            if (out.remote) {
                const Cycle stall =
                    freq.microsToCycles(out.stall_us);
                stall_cycles += stall;
                best->lane.stallUntil(out.commit_time + stall);
            }
        }
        // Fold everything comparable into one vector of words.
        std::vector<std::uint64_t> state;
        state.push_back(total_ops);
        state.push_back(stall_cycles);
        for (Thread &t : threads) {
            state.push_back(t.lane.stats().ops);
            state.push_back(t.lane.stats().branches);
            state.push_back(t.lane.stats().mispredicts);
            state.push_back(t.lane.stats().remote_ops);
            state.push_back(t.lane.nextFetch());
        }
        state.push_back(pred->stats().lookups);
        state.push_back(pred->stats().mispredicts);
        state.push_back(btb.hits());
        state.push_back(btb.misses());
        state.push_back(mem.masterL1d().stats().hits);
        state.push_back(mem.masterL1d().stats().misses);
        state.push_back(mem.dram().accesses());
        return state;
    };

    std::vector<std::uint64_t> soa = run(true);
    std::vector<std::uint64_t> legacy = run(false);
    EXPECT_EQ(soa, legacy);
}

/** Split-phase commit pass vs the forced-legacy stepOp loop
 *  (setSplitPhaseEnabled(false)): same IPC, stall cycles, predictor
 *  and BTB state, and remote-stop positions. */
TEST(SplitPhaseStep, SwitchForcesLegacyStepLoopInOrder)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 1.5);
    Rig b(IssueMode::InOrder, /*stall_us*/ 1.5);
    ASSERT_TRUE(a.engine.splitPhaseEnabled());
    b.engine.setSplitPhaseEnabled(false);
    ASSERT_FALSE(b.engine.splitPhaseEnabled());
    RunResult split = runSoaBlocked(a, freq, true);
    RunResult legacy = runSoaBlocked(b, freq, true);
    EXPECT_GT(split.remote_ops, 0u);
    EXPECT_GT(a.engine.splitPhaseOps(), 0u);
    EXPECT_EQ(b.engine.splitPhaseOps(), 0u);
    split.expectEq(legacy);
}

TEST(SplitPhaseStep, SwitchForcesLegacyStepLoopOutOfOrder)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    Rig b(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    b.engine.setSplitPhaseEnabled(false);
    RunResult split = runSoaBlocked(a, freq, false);
    RunResult legacy = runSoaBlocked(b, freq, false);
    EXPECT_GT(a.engine.splitPhaseOps(), 0u);
    split.expectEq(legacy);
}

/** Remote ops stop the split-phase block at exactly the same op
 *  positions the forced-legacy stepOp loop stops at. */
TEST(SplitPhaseStep, RemoteStopPositionsMatchForcedLegacy)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 2.0);
    Rig b(IssueMode::InOrder, /*stall_us*/ 2.0);
    b.engine.setSplitPhaseEnabled(false);
    std::vector<std::uint64_t> split_stops, legacy_stops;
    runSoaBlocked(a, freq, true, &split_stops);
    runSoaBlocked(b, freq, true, &legacy_stops);
    ASSERT_FALSE(split_stops.empty());
    EXPECT_EQ(split_stops, legacy_stops);
}

/** Both switches compose: every (soa, split) combination produces
 *  the same run — the AoS pointer overload delegates to the same
 *  commit pass, so the four paths cannot drift apart. */
TEST(SplitPhaseStep, SwitchMatrixAllPathsAgree)
{
    const Frequency freq(3.4e9);
    std::vector<RunResult> results;
    for (bool soa : {true, false}) {
        for (bool split : {true, false}) {
            Rig rig(IssueMode::InOrder, /*stall_us*/ 1.0);
            rig.engine.setSoaPipelineEnabled(soa);
            rig.engine.setSplitPhaseEnabled(split);
            results.push_back(runSoaBlocked(rig, freq, true));
        }
    }
    for (std::size_t i = 1; i < results.size(); ++i)
        results[i].expectEq(results[0]);
}
