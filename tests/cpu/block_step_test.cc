/**
 * @file
 * processBlock vs. processOp differential: the block-batched stepping
 * path must be bit-identical to the legacy per-op loop — same per-op
 * outcomes, same lane stats, same memory-system counters, same final
 * timestamps — for both issue modes, with and without remote-op
 * stalls. This is the cpu-side half of the golden fast-path wall
 * (see tests/mem/fastpath_diff_test.cc for the memory side).
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "cpu/core_engine.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"
#include "workload/microservice.hh"

using namespace duplexity;

namespace
{

/** Everything one single-lane measurement needs, seeded identically. */
struct Rig
{
    DyadMemorySystem mem;
    CoreEngine engine;
    std::unique_ptr<BranchPredictor> pred;
    Btb btb;
    ReturnAddressStack ras;
    BatchSource source;
    Lane lane;

    Rig(IssueMode mode, double stall_us)
        : mem(MemSystemConfig::makeDefault()),
          engine(CoreEngineConfig{}),
          pred(makePredictor(mode == IssueMode::OutOfOrder
                                 ? PredictorConfig::Kind::Tournament
                                 : PredictorConfig::Kind::GshareSmall)),
          btb(2048, 4), ras(32),
          // Short compute segments (~1.4k instrs) so remote ops show
          // up many times inside the test horizons.
          source(makeFlannXY(0.2, stall_us, 0),
                 Rng(0xb10cull).fork(1))
    {
        LaneConfig cfg = engine.defaultLaneConfig(mode);
        cfg.path = mode == IssueMode::OutOfOrder ? mem.masterPath()
                                                 : mem.lenderPath();
        cfg.branch = {pred.get(), &btb, &ras};
        lane.configure(cfg);
    }
};

struct RunResult
{
    std::uint64_t committed_in_window = 0;
    std::uint64_t ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t remote_ops = 0;
    Cycle final_next_fetch = 0;
    std::uint64_t l1d_hits = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t dram = 0;

    void
    expectEq(const RunResult &o) const
    {
        EXPECT_EQ(committed_in_window, o.committed_in_window);
        EXPECT_EQ(ops, o.ops);
        EXPECT_EQ(branches, o.branches);
        EXPECT_EQ(mispredicts, o.mispredicts);
        EXPECT_EQ(remote_ops, o.remote_ops);
        EXPECT_EQ(final_next_fetch, o.final_next_fetch);
        EXPECT_EQ(l1d_hits, o.l1d_hits);
        EXPECT_EQ(l1d_misses, o.l1d_misses);
        EXPECT_EQ(dram, o.dram);
    }
};

RunResult
finishResult(Rig &rig, std::uint64_t committed)
{
    RunResult r;
    r.committed_in_window = committed;
    r.ops = rig.lane.stats().ops;
    r.branches = rig.lane.stats().branches;
    r.mispredicts = rig.lane.stats().mispredicts;
    r.remote_ops = rig.lane.stats().remote_ops;
    r.final_next_fetch = rig.lane.nextFetch();
    const Cache &l1d = rig.lane.config().path.data->cache();
    r.l1d_hits = l1d.stats().hits;
    r.l1d_misses = l1d.stats().misses;
    r.dram = rig.mem.dram().accesses();
    return r;
}

constexpr Cycle warmup = 30'000;
constexpr Cycle horizon = 180'000;

/** The legacy loop: one draw, one processOp, stall on remote. */
RunResult
runPerOp(Rig &rig, const Frequency &freq, bool apply_stall)
{
    std::uint64_t committed = 0;
    while (rig.lane.nextFetch() < horizon) {
        MicroOp op = rig.source.next();
        OpOutcome out = rig.engine.processOp(rig.lane, op);
        if (out.commit_time >= warmup && out.commit_time < horizon)
            ++committed;
        if (out.remote && apply_stall) {
            rig.lane.stallUntil(out.commit_time +
                                freq.microsToCycles(out.stall_us));
        }
    }
    return finishResult(rig, committed);
}

/** The batched loop, mirroring scenario.cc aloneBatchIpc. */
RunResult
runBlocked(Rig &rig, const Frequency &freq, bool apply_stall)
{
    std::uint64_t committed = 0;
    std::array<MicroOp, 256> block;
    std::uint32_t head = 0;
    std::uint32_t filled = 0;
    while (rig.lane.nextFetch() < horizon) {
        if (head == filled) {
            for (MicroOp &op : block)
                op = rig.source.next();
            head = 0;
            filled = static_cast<std::uint32_t>(block.size());
        }
        BlockOutcome blk = rig.engine.processBlock(
            rig.lane, block.data() + head, filled - head, horizon,
            warmup, horizon);
        head += blk.processed;
        committed += blk.committed_in_window;
        if (blk.stopped_remote && apply_stall) {
            rig.lane.stallUntil(
                blk.last.commit_time +
                freq.microsToCycles(blk.last.stall_us));
        }
    }
    return finishResult(rig, committed);
}

} // namespace

TEST(BlockStep, MatchesPerOpLoopInOrderWithRemoteStalls)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::InOrder, /*stall_us*/ 1.5);
    Rig b(IssueMode::InOrder, /*stall_us*/ 1.5);
    RunResult per_op = runPerOp(a, freq, true);
    RunResult blocked = runBlocked(b, freq, true);
    EXPECT_GT(per_op.remote_ops, 0u); // the stalls actually happened
    blocked.expectEq(per_op);
}

TEST(BlockStep, MatchesPerOpLoopOutOfOrder)
{
    const Frequency freq(3.4e9);
    Rig a(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    Rig b(IssueMode::OutOfOrder, /*stall_us*/ 0.0);
    RunResult per_op = runPerOp(a, freq, false);
    RunResult blocked = runBlocked(b, freq, false);
    blocked.expectEq(per_op);
}

TEST(BlockStep, RemoteStopsBlockEarly)
{
    const Frequency freq(3.4e9);
    Rig rig(IssueMode::InOrder, /*stall_us*/ 1.0);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4'096; ++i)
        ops.push_back(rig.source.next());
    std::size_t head = 0;
    bool saw_remote_stop = false;
    while (head < ops.size() && rig.lane.nextFetch() < horizon) {
        BlockOutcome blk = rig.engine.processBlock(
            rig.lane, ops.data() + head,
            static_cast<std::uint32_t>(ops.size() - head), horizon, 0,
            horizon);
        ASSERT_GT(blk.processed, 0u);
        head += blk.processed;
        if (blk.stopped_remote) {
            saw_remote_stop = true;
            // The stop is exactly at the remote op: its outcome is
            // the block's last, and processing resumed nowhere past
            // it.
            EXPECT_TRUE(blk.last.remote);
            rig.lane.stallUntil(
                blk.last.commit_time +
                freq.microsToCycles(blk.last.stall_us));
        }
    }
    EXPECT_TRUE(saw_remote_stop);
}

TEST(BlockStep, HonorsFetchHorizon)
{
    Rig rig(IssueMode::InOrder, /*stall_us*/ 0.0);
    std::array<MicroOp, 256> block;
    for (MicroOp &op : block)
        op = rig.source.next();
    const Cycle tight_horizon = 500;
    for (int round = 0; round < 100; ++round) {
        BlockOutcome blk = rig.engine.processBlock(
            rig.lane, block.data(),
            static_cast<std::uint32_t>(block.size()), tight_horizon, 0,
            tight_horizon);
        if (blk.processed == 0)
            break;
    }
    // Once the lane crossed the horizon, processBlock refuses to step.
    EXPECT_GE(rig.lane.nextFetch(), tight_horizon);
    BlockOutcome blk = rig.engine.processBlock(
        rig.lane, block.data(), static_cast<std::uint32_t>(block.size()),
        tight_horizon, 0, tight_horizon);
    EXPECT_EQ(blk.processed, 0u);
}
