/**
 * @file
 * SIMD-vs-forced-scalar differential wall for the lane-vectorized
 * fast paths (cpu/block_precomp.hh and the uniform lane behind
 * SyntheticStream / FastSampler block draws).
 *
 * Every comparison replays identical inputs through the vector body
 * and the scalar reference and asserts bitwise equality — the SIMD
 * contract (DESIGN.md) is "faster, never different". Runs under both
 * CI configurations: the default build exercises the vector bodies,
 * the -DDPX_SIMD=OFF leg pins the forced-scalar dispatch. Part of the
 * golden label.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/block_precomp.hh"
#include "sim/distributions.hh"
#include "sim/rng.hh"
#include "sim/simd.hh"
#include "workload/catalog.hh"
#include "workload/microservice.hh"
#include "workload/op_block.hh"
#include "workload/synthetic.hh"

using namespace duplexity;

namespace
{

/** Restore the runtime SIMD switch no matter how the test exits. */
class SimdFlagGuard
{
  public:
    explicit SimdFlagGuard(bool enable)
        : prev_(simd::setSimdEnabled(enable))
    {
    }
    ~SimdFlagGuard() { simd::setSimdEnabled(prev_); }
    SimdFlagGuard(const SimdFlagGuard &) = delete;
    SimdFlagGuard &operator=(const SimdFlagGuard &) = delete;

  private:
    bool prev_;
};

/** Every catalog source as a factory (same wall as op_block_diff). */
struct SourceCase
{
    std::string name;
    std::unique_ptr<InstrSource> (*make)(std::uint64_t seed);
};

template <MicroserviceKind kind>
std::unique_ptr<InstrSource>
makeMicro(std::uint64_t seed)
{
    return std::make_unique<MicroserviceSource>(makeMicroservice(kind),
                                                Rng(seed).fork(1));
}

template <BatchKind kind>
std::unique_ptr<InstrSource>
makeBatchSrc(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeBatch(kind, 3),
                                         Rng(seed).fork(1));
}

template <SpecProfile profile>
std::unique_ptr<InstrSource>
makeSpecSrc(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeSpecBatch(profile, 5),
                                         Rng(seed).fork(1));
}

std::unique_ptr<InstrSource>
makeFlann(std::uint64_t seed)
{
    return std::make_unique<BatchSource>(makeFlannXY(10.0, 1.0, 0),
                                         Rng(seed).fork(1));
}

std::vector<SourceCase>
allCases()
{
    return {
        {"FlannHA", makeMicro<MicroserviceKind::FlannHA>},
        {"FlannLL", makeMicro<MicroserviceKind::FlannLL>},
        {"Rsc", makeMicro<MicroserviceKind::Rsc>},
        {"McRouter", makeMicro<MicroserviceKind::McRouter>},
        {"WordStem", makeMicro<MicroserviceKind::WordStem>},
        {"PageRank", makeBatchSrc<BatchKind::PageRank>},
        {"Sssp", makeBatchSrc<BatchKind::Sssp>},
        {"SpecCpu", makeSpecSrc<SpecProfile::Cpu>},
        {"SpecMem", makeSpecSrc<SpecProfile::Mem>},
        {"SpecMix", makeSpecSrc<SpecProfile::Mix>},
        {"Flann-10-1", makeFlann},
    };
}

constexpr std::uint64_t kSeeds[] = {1, 42, 0xdeadbeef};

SoaLaneView
viewOf(const OpBlock &block, std::uint32_t offset = 0)
{
    return SoaLaneView{
        block.cls() + offset,     block.pc() + offset,
        block.memAddr() + offset, block.taken() + offset,
        block.dep1() + offset,    block.dep2() + offset,
        block.stallUs() + offset, block.endOfRequest() + offset,
    };
}

void
expectPrecompEq(const BlockPrecomp &vec, const BlockPrecomp &ref,
                std::uint32_t count, const std::string &what)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        ASSERT_EQ(vec.code[i], ref.code[i]) << what << " lane " << i;
        ASSERT_EQ(vec.lat[i], ref.lat[i]) << what << " lane " << i;
        ASSERT_EQ(vec.new_line[i], ref.new_line[i])
            << what << " lane " << i;
        ASSERT_EQ(vec.has_dep[i], ref.has_dep[i])
            << what << " lane " << i;
    }
}

} // namespace

/** Vector precompute == scalar precompute, field-by-field, over every
 *  catalog workload, several seeds, and block sizes of 1, non-pow2, a
 *  prime near capacity, and a full block. */
TEST(SimdPrecomputeDiff, MatchesScalarAcrossCatalog)
{
    const std::uint32_t sizes[] = {1, 7, 251, kOpBlockCapacity};
    for (const SourceCase &c : allCases()) {
        for (std::uint64_t seed : kSeeds) {
            auto source = c.make(seed);
            for (std::uint32_t bs : sizes) {
                OpBlock block;
                source->fillBlock(block, bs);
                ASSERT_EQ(block.size(), bs);
                BlockPrecomp vec, ref;
                precomputeBlockSimd(viewOf(block), bs, vec);
                precomputeBlockScalar(viewOf(block), bs, ref);
                expectPrecompEq(vec, ref, bs,
                                c.name + "/seed" +
                                    std::to_string(seed) + "/bs" +
                                    std::to_string(bs));
            }
        }
    }
}

/** Windowed views into a block's interior (how splitPhaseBlock resumes
 *  mid-block): every offset/count mix that produces odd heads and
 *  scalar tails, including single-lane and whole-remainder windows.
 *  The vector body must not read or write outside the window. */
TEST(SimdPrecomputeDiff, MatchesScalarOnOffsetWindows)
{
    auto source = makeMicro<MicroserviceKind::FlannLL>(99);
    OpBlock block;
    source->fillBlock(block, kOpBlockCapacity);
    struct Window
    {
        std::uint32_t offset;
        std::uint32_t count;
    };
    const Window windows[] = {
        {0, 0},   {0, 1},    {1, 1},    {1, 15},  {1, 16},
        {3, 7},   {5, 2},    {16, 17},  {31, 33}, {100, 156},
        {255, 1}, {240, 16}, {129, 127},
    };
    for (const Window &w : windows) {
        BlockPrecomp vec, ref;
        precomputeBlockSimd(viewOf(block, w.offset), w.count, vec);
        precomputeBlockScalar(viewOf(block, w.offset), w.count, ref);
        expectPrecompEq(vec, ref, w.count,
                        "window+" + std::to_string(w.offset) + "x" +
                            std::to_string(w.count));
    }
}

/** The SoA dispatch honors the runtime switch: forced-scalar output
 *  equals the default dispatch bit-for-bit, setSimdEnabled returns
 *  the previous value, and the guard restores it. */
TEST(SimdPrecomputeDiff, RuntimeSwitchForcesScalar)
{
    ASSERT_EQ(simd::simdEnabled(), simd::kSimdCompiled);
    auto source = makeBatchSrc<BatchKind::PageRank>(7);
    OpBlock block;
    source->fillBlock(block, kOpBlockCapacity);
    BlockPrecomp enabled, forced;
    precomputeBlock(viewOf(block), kOpBlockCapacity, enabled);
    {
        SimdFlagGuard guard(false);
        ASSERT_FALSE(simd::simdEnabled());
        // Nested toggling must report the value it replaced.
        ASSERT_FALSE(simd::setSimdEnabled(false));
        precomputeBlock(viewOf(block), kOpBlockCapacity, forced);
    }
    ASSERT_EQ(simd::simdEnabled(), simd::kSimdCompiled);
    expectPrecompEq(enabled, forced, kOpBlockCapacity, "switch");
}

/** The vector uniform map is the scalar Rng::toUniform, lane for
 *  lane, including the extreme raw draws and odd counts. */
TEST(SimdPrecomputeDiff, ToUniformBlockMatchesScalarMap)
{
    std::vector<std::uint64_t> raws = {
        0,
        1,
        (std::uint64_t(1) << 11) - 1, // below the mantissa shift
        std::uint64_t(1) << 11,
        ~std::uint64_t(0),
        ~std::uint64_t(0) - 1,
        0x8000000000000000ull,
        0x0123456789abcdefull,
    };
    Rng rng(123);
    for (int i = 0; i < 2000; ++i)
        raws.push_back(rng.next());
    // Odd counts force the scalar tail; 2-lane groups the vector body.
    const std::size_t counts[] = {1, 2, 3, 17, raws.size()};
    for (std::size_t n : counts) {
        std::vector<double> out(n, -1.0);
        simd::toUniformBlock(raws.data(), out.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out[i], Rng::toUniform(raws[i])) << "raw " << i;
            ASSERT_GE(out[i], 0.0);
            ASSERT_LT(out[i], 1.0);
        }
    }
}

/** SyntheticStream's precomputed uniform lane: simd-on, forced-scalar,
 *  and the legacy per-draw path all emit the identical op stream. */
TEST(SimdPrecomputeDiff, SyntheticStreamUniformLaneBitIdentical)
{
    WorkloadParams params; // defaults exercise every op class
    for (std::uint64_t seed : kSeeds) {
        SyntheticStream vec(params, Rng(seed).fork(2));
        SyntheticStream scalar(params, Rng(seed).fork(2));
        SyntheticStream legacy(params, Rng(seed).fork(2));
        legacy.setSoaDrawEnabled(false);
        const std::size_t sizes[] = {1, 3, 97, kOpBlockCapacity};
        for (int round = 0; round < 200; ++round) {
            const std::size_t bs = sizes[round % 4];
            OpBlock a, b;
            vec.fillOpsInto(a, bs);
            {
                SimdFlagGuard guard(false);
                scalar.fillOpsInto(b, bs);
            }
            ASSERT_EQ(a.size(), bs);
            ASSERT_EQ(b.size(), bs);
            for (std::size_t i = 0; i < bs; ++i) {
                const MicroOp va = a.get(i);
                const MicroOp vb = b.get(i);
                const MicroOp vl = legacy.next();
                ASSERT_EQ(static_cast<int>(va.cls),
                          static_cast<int>(vb.cls));
                ASSERT_EQ(va.pc, vb.pc);
                ASSERT_EQ(va.mem_addr, vb.mem_addr);
                ASSERT_EQ(va.taken, vb.taken);
                ASSERT_EQ(va.dep1, vb.dep1);
                ASSERT_EQ(va.dep2, vb.dep2);
                ASSERT_EQ(va.stall_us, vb.stall_us);
                ASSERT_EQ(va.end_of_request, vl.end_of_request);
                ASSERT_EQ(va.pc, vl.pc);
                ASSERT_EQ(va.mem_addr, vl.mem_addr);
            }
        }
    }
}

/** Exponential sampleN (bulk raw draws) == the per-sample fast path,
 *  across sizes that cross the 256-draw internal block. */
TEST(SimdPrecomputeDiff, ExponentialSampleNMatchesPerSample)
{
    DistributionPtr dist = makeExponential(1e-6);
    const std::size_t counts[] = {1, 5, 255, 256, 257, 1000};
    for (std::uint64_t seed : kSeeds) {
        for (std::size_t n : counts) {
            FastSampler bulk_sampler(dist);
            FastSampler per_sampler(dist);
            Rng bulk_rng(seed);
            Rng per_rng(seed);
            std::vector<double> bulk(n, -1.0);
            bulk_sampler.sampleN(bulk_rng, bulk.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bulk[i], per_sampler.sample(per_rng))
                    << "seed " << seed << " n " << n << " i " << i;
        }
    }
}
