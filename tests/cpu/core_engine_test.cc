/**
 * @file
 * Timestamp pipeline-model tests: bandwidth caps, dependency
 * serialization, in-order vs out-of-order issue, window occupancy,
 * branch redirects, and remote-op reporting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "branch/predictor.hh"
#include "cpu/core_engine.hh"
#include "mem/memory_system.hh"

using namespace duplexity;

namespace
{

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : mem_(MemSystemConfig::makeDefault()),
          engine_(CoreEngineConfig{}),
          pred_(makePredictor(PredictorConfig::Kind::Tournament)),
          btb_(2048, 4), ras_(32)
    {
    }

    Lane
    makeLane(IssueMode mode)
    {
        Lane lane;
        LaneConfig cfg = engine_.defaultLaneConfig(mode);
        cfg.path = mem_.masterPath();
        cfg.branch = {pred_.get(), &btb_, &ras_};
        lane.configure(cfg);
        return lane;
    }

    MicroOp
    alu(Addr pc = 0, std::uint8_t dep = 0)
    {
        MicroOp op;
        op.cls = OpClass::IntAlu;
        op.pc = pc;
        op.dep1 = dep;
        return op;
    }

    /** Run n ALU ops over a warm 4KB code loop; return IPC. */
    double
    runAlu(Lane &lane, int n)
    {
        Cycle last = 0;
        for (int i = 0; i < n; ++i) {
            Addr pc = 0x1000 + static_cast<Addr>(i) * 4 % 4096;
            OpOutcome out = engine_.processOp(lane, alu(pc));
            last = out.commit_time;
        }
        return static_cast<double>(n) / static_cast<double>(last);
    }

    DyadMemorySystem mem_;
    CoreEngine engine_;
    std::unique_ptr<BranchPredictor> pred_;
    Btb btb_;
    ReturnAddressStack ras_;
};

} // namespace

TEST_F(EngineTest, IndependentAluIpcNearWidth)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    double ipc = runAlu(lane, 20000);
    EXPECT_GT(ipc, 3.2);
    EXPECT_LE(ipc, 4.001);
}

TEST_F(EngineTest, SerialDependencyChainLimitsIpcToOne)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    Cycle last = 0;
    for (int i = 0; i < 10000; ++i) {
        OpOutcome out = engine_.processOp(lane, alu(0x1000, 1));
        last = out.commit_time;
    }
    double ipc = 10000.0 / static_cast<double>(last);
    EXPECT_NEAR(ipc, 1.0, 0.05);
}

TEST_F(EngineTest, MultiplyChainLimitedByLatency)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    Cycle last = 0;
    for (int i = 0; i < 6000; ++i) {
        MicroOp op;
        op.cls = OpClass::IntMul;
        op.pc = 0x1000;
        op.dep1 = 1;
        last = engine_.processOp(lane, op).commit_time;
    }
    double ipc = 6000.0 / static_cast<double>(last);
    // Each multiply waits for the previous: 1 / 3-cycle latency.
    EXPECT_NEAR(ipc, 1.0 / 3.0, 0.03);
}

TEST_F(EngineTest, InOrderIssueIsMonotonic)
{
    Lane lane = makeLane(IssueMode::InOrder);
    Cycle prev_issue = 0;
    Addr pc = 0x1000;
    for (int i = 0; i < 5000; ++i) {
        OpOutcome out = engine_.processOp(lane, alu(pc));
        pc += 4;
        EXPECT_GE(out.issue_time, prev_issue);
        prev_issue = out.issue_time;
    }
}

TEST_F(EngineTest, CommitIsInProgramOrderPerLane)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    Cycle prev = 0;
    Addr pc = 0x1000;
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = alu(pc);
        if (i % 7 == 0) {
            op.cls = OpClass::Load;
            op.mem_addr = 0x100000 + 8192ull * i; // frequent misses
        }
        pc += 4;
        OpOutcome out = engine_.processOp(lane, op);
        EXPECT_GE(out.commit_time, prev);
        prev = out.commit_time;
    }
}

TEST_F(EngineTest, OutOfOrderHidesLoadMissBetterThanInOrder)
{
    Lane ooo = makeLane(IssueMode::OutOfOrder);
    Lane ino = makeLane(IssueMode::InOrder);
    auto run = [&](Lane &lane, Addr region) {
        Cycle last = 0;
        Addr pc = 0x1000;
        for (int i = 0; i < 8000; ++i) {
            MicroOp op;
            if (i % 10 == 0) {
                op.cls = OpClass::Load;
                // Unique lines: misses to DRAM.
                op.mem_addr = region + 64ull * 131 * i;
            } else {
                op.cls = OpClass::IntAlu;
            }
            op.pc = pc;
            pc += 4;
            last = engine_.processOp(lane, op).commit_time;
        }
        return 8000.0 / static_cast<double>(last);
    };
    double ipc_ooo = run(ooo, 0x10000000);
    double ipc_ino = run(ino, 0x50000000);
    EXPECT_GT(ipc_ooo, 1.5 * ipc_ino);
}

TEST_F(EngineTest, SmallerWindowLowersMlp)
{
    Lane big = makeLane(IssueMode::OutOfOrder);
    LaneConfig small_cfg =
        engine_.defaultLaneConfig(IssueMode::OutOfOrder);
    small_cfg.path = mem_.masterPath();
    small_cfg.branch = {pred_.get(), &btb_, &ras_};
    small_cfg.inflight_cap = 16;
    small_cfg.use_shared_rob = false;
    Lane small;
    small.configure(small_cfg);

    auto run = [&](Lane &lane, Addr region) {
        Cycle last = 0;
        for (int i = 0; i < 8000; ++i) {
            MicroOp op;
            op.cls = i % 4 == 0 ? OpClass::Load : OpClass::IntAlu;
            op.mem_addr = region + 64ull * 131 * i;
            op.pc = 0x1000 + 4 * i;
            last = engine_.processOp(lane, op).commit_time;
        }
        return 8000.0 / static_cast<double>(last);
    };
    double ipc_big = run(big, 0x20000000);
    double ipc_small = run(small, 0x60000000);
    EXPECT_GT(ipc_big, ipc_small);
}

TEST_F(EngineTest, MispredictOpensFetchGap)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    // Train the predictor taken, then surprise it.
    MicroOp branch;
    branch.cls = OpClass::Branch;
    branch.pc = 0x2000;
    branch.taken = true;
    for (int i = 0; i < 100; ++i)
        engine_.processOp(lane, branch);
    branch.taken = false; // mispredict
    OpOutcome out = engine_.processOp(lane, branch);
    EXPECT_TRUE(out.mispredicted);
    EXPECT_GE(lane.nextFetch(),
              out.done_time +
                  engine_.config().redirect_penalty_ooo);
}

TEST_F(EngineTest, RemoteOpReportsStall)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    MicroOp op;
    op.cls = OpClass::Remote;
    op.stall_us = 2.5f;
    OpOutcome out = engine_.processOp(lane, op);
    EXPECT_TRUE(out.remote);
    EXPECT_FLOAT_EQ(out.stall_us, 2.5f);
}

TEST_F(EngineTest, EndOfRequestPropagates)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    MicroOp op = alu(0x1000);
    op.end_of_request = true;
    EXPECT_TRUE(engine_.processOp(lane, op).end_of_request);
}

TEST_F(EngineTest, StallUntilDelaysNextFetch)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    engine_.processOp(lane, alu(0x1000));
    lane.stallUntil(5000);
    OpOutcome out = engine_.processOp(lane, alu(0x1004));
    EXPECT_GE(out.fetch_time, 5000u);
}

TEST_F(EngineTest, SharedIssueBandwidthSplitsAcrossLanes)
{
    Lane a = makeLane(IssueMode::InOrder);
    Lane b = makeLane(IssueMode::InOrder);
    // Interleave two lanes; aggregate cannot exceed issue width.
    Cycle last = 0;
    for (int i = 0; i < 4000; ++i) {
        last = std::max(
            last, engine_.processOp(a, alu(0x1000 + 4 * i))
                      .commit_time);
        last = std::max(
            last, engine_.processOp(b, alu(0x9000 + 4 * i))
                      .commit_time);
    }
    double aggregate = 8000.0 / static_cast<double>(last);
    EXPECT_LE(aggregate, 4.001);
    EXPECT_GT(aggregate, 2.0);
}

TEST_F(EngineTest, ResetHistoryClearsDependencies)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    // Long-latency op, then resetHistory: the next op must not wait
    // for the pre-reset producer.
    MicroOp load;
    load.cls = OpClass::Load;
    load.mem_addr = 0x34567000;
    load.pc = 0x1000;
    OpOutcome lout = engine_.processOp(lane, load);
    lane.resetHistory(lout.issue_time + 1);
    // Same fetch line as the load so only the dependency matters.
    OpOutcome next = engine_.processOp(lane, alu(0x1004, 1));
    EXPECT_LT(next.issue_time, lout.done_time);
}

TEST_F(EngineTest, ReturnWithoutCallRedirects)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    MicroOp ret;
    ret.cls = OpClass::Return;
    ret.pc = 0x3000;
    OpOutcome out = engine_.processOp(lane, ret);
    EXPECT_TRUE(out.mispredicted);
}

TEST_F(EngineTest, CallThenReturnPredictsFine)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    MicroOp call;
    call.cls = OpClass::Call;
    call.pc = 0x3000;
    call.taken = true;
    btb_.update(0x3000, 0x4000); // known call target
    engine_.processOp(lane, call);
    MicroOp ret;
    ret.cls = OpClass::Return;
    ret.pc = 0x4000;
    EXPECT_FALSE(engine_.processOp(lane, ret).mispredicted);
}

TEST_F(EngineTest, FetchTimeRespectsIcacheMiss)
{
    Lane lane = makeLane(IssueMode::OutOfOrder);
    // Jump far so the fetch misses everything down to DRAM.
    OpOutcome out = engine_.processOp(lane, alu(0x7777000000));
    EXPECT_GT(out.fetch_time + 10,
              engine_.config().fetch_hidden);
    OpOutcome out2 = engine_.processOp(lane, alu(0x7777000004));
    // Same line now: no extra fetch penalty beyond bandwidth.
    EXPECT_LE(out2.fetch_time, out.fetch_time + 1);
}
