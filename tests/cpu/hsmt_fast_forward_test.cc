/**
 * @file
 * Event-driven stall fast-forward differential wall: the merged-scan
 * advanceUntil schedule (streaks + bulk poll skipping) must be
 * field-identical to the legacy one-rescan-per-action schedule —
 * same commit log, same pool counters (idle-poll conservation:
 * skipped + performed == legacy total), same per-context progress —
 * at the unit level, in runSmtSweep's most-behind streak loop, and
 * through a full Duplexity scenario (ScenarioConfig::
 * hsmt_fast_forward forces the legacy run loop).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "branch/predictor.hh"
#include "core/scenario.hh"
#include "core/smt_sweep.hh"
#include "cpu/hsmt.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "workload/catalog.hh"
#include "workload/microservice.hh"

using namespace duplexity;

namespace
{

constexpr Cycle horizon = 600'000;

/** One self-contained unit run: everything the schedule touches is
 *  private to the run, so two runs differ only in the schedule. */
struct UnitRun
{
    /** Commit log: (ctx id, commit time, remote) word-packed. */
    std::vector<std::uint64_t> commits;
    /** Pool + unit counters and per-context progress. */
    std::vector<std::uint64_t> state;
    std::uint64_t ff_polls = 0;
    std::uint64_t ff_cycles = 0;
    std::uint64_t empty_acquires = 0;
};

class LogSink : public CommitSink
{
  public:
    void
    onCommit(const VirtualContext &ctx, const OpOutcome &out) override
    {
        log.push_back(static_cast<std::uint64_t>(ctx.id()));
        log.push_back(out.commit_time);
        log.push_back(out.remote ? 1 : 0);
    }

    std::vector<std::uint64_t> log;
};

/**
 * Drive one HSMT unit over @p n_ctx FLANN-X-Y batch threads (1 µs
 * remote stalls → frequent all-lanes-parked intervals) with the
 * fast-forward switch set to @p fast. With @p bounded, advance in
 * many small advanceUntil steps (the scenario interleaving shape) and
 * assert the returned next-times never move backwards.
 */
UnitRun
runUnit(bool fast, int n_ctx, bool bounded)
{
    DyadMemorySystem mem(MemSystemConfig::makeDefault());
    CoreEngine engine{CoreEngineConfig{}};
    auto pred = makePredictor(PredictorConfig::Kind::GshareSmall);
    Btb btb(2048, 4);
    ReturnAddressStack ras(16);

    VirtualContextPool pool;
    std::vector<std::unique_ptr<BatchSource>> sources;
    std::vector<std::unique_ptr<VirtualContext>> ctxs;
    Rng rng(0xfa57f0ull);
    for (int i = 0; i < n_ctx; ++i) {
        sources.push_back(std::make_unique<BatchSource>(
            makeFlannXY(0.3, 1.0, static_cast<ThreadId>(i)),
            rng.fork(i)));
        ctxs.push_back(std::make_unique<VirtualContext>(
            static_cast<ThreadId>(i + 1), sources.back().get()));
        pool.add(ctxs.back().get());
    }

    HsmtConfig hcfg;
    HsmtUnit unit(engine, pool, hcfg, Frequency(3.4e9));
    LaneConfig proto = engine.defaultLaneConfig(IssueMode::InOrder);
    proto.path = mem.lenderPath();
    proto.branch = {pred.get(), &btb, &ras};
    unit.configureLanes(proto);
    unit.setFastForwardEnabled(fast);
    unit.openWindow(0, HsmtUnit::never);

    LogSink sink;
    if (bounded) {
        Cycle prev = 0;
        for (Cycle bound = 997; bound <= horizon; bound += 997) {
            Cycle next = unit.advanceUntil(bound, &sink);
            // Time monotonicity: the unit's next actionable time
            // never moves backwards across bounded advances.
            EXPECT_GE(next, prev);
            prev = next;
        }
    } else {
        unit.runUntil(horizon, &sink);
    }

    UnitRun run;
    run.commits = std::move(sink.log);
    run.ff_polls = unit.fastForwardedPolls();
    run.ff_cycles = unit.fastForwardedCycles();
    run.empty_acquires = pool.stats().empty_acquires;
    run.state.push_back(pool.stats().acquires);
    run.state.push_back(pool.stats().releases);
    run.state.push_back(pool.stats().empty_acquires);
    run.state.push_back(unit.contextSwaps());
    run.state.push_back(unit.occupiedLanes());
    run.state.push_back(unit.nextTime());
    for (const auto &ctx : ctxs) {
        run.state.push_back(ctx->retired);
        run.state.push_back(ctx->remote_ops);
        run.state.push_back(ctx->occupancy_cycles);
        run.state.push_back(ctx->readyTime());
    }
    return run;
}

} // namespace

/** The fast-forward schedule is field-identical to the stepped one,
 *  and actually exercised (polls were skipped, not just performed). */
TEST(HsmtFastForward, FieldIdenticalToLegacySchedule)
{
    UnitRun fast = runUnit(true, /*n_ctx*/ 4, /*bounded*/ false);
    UnitRun legacy = runUnit(false, 4, false);
    EXPECT_EQ(legacy.ff_polls, 0u);
    EXPECT_GT(fast.ff_polls, 0u); // the bulk skip really ran
    EXPECT_GT(fast.ff_cycles, 0u);
    EXPECT_EQ(fast.commits, legacy.commits);
    EXPECT_EQ(fast.state, legacy.state);
}

/** Idle-poll conservation: every poll the fast path skips is charged
 *  to the same counter the stepped schedule increments, so
 *  skipped + performed == legacy total, exactly. */
TEST(HsmtFastForward, SkippedPollsConserveIdleAccounting)
{
    UnitRun fast = runUnit(true, 2, false); // 2 ctxs, 8 lanes: mostly idle
    UnitRun legacy = runUnit(false, 2, false);
    EXPECT_GT(fast.ff_polls, 0u);
    EXPECT_EQ(fast.empty_acquires, legacy.empty_acquires);
    // The fast path performed (empty_acquires - ff_polls) real polls.
    EXPECT_EQ((fast.empty_acquires - fast.ff_polls) + fast.ff_polls,
              legacy.empty_acquires);
    EXPECT_EQ(fast.commits, legacy.commits);
    EXPECT_EQ(fast.state, legacy.state);
}

/** Bounded advances (the scenario interleaving shape) return
 *  monotone next-times and land in the same final state as the
 *  stepped schedule driven the same way. */
TEST(HsmtFastForward, BoundedAdvancesMatchLegacyAndStayMonotone)
{
    UnitRun fast = runUnit(true, 3, /*bounded*/ true);
    UnitRun legacy = runUnit(false, 3, true);
    EXPECT_EQ(fast.commits, legacy.commits);
    EXPECT_EQ(fast.state, legacy.state);
}

/** The most-behind streak scheduler in runSmtSweep is bit-identical
 *  to the forced-legacy full-rescan loop. */
TEST(HsmtFastForward, SmtSweepStreakMatchesLegacyRescan)
{
    auto run = [](bool event_driven) {
        SmtSweepConfig cfg;
        cfg.mode = IssueMode::OutOfOrder;
        cfg.threads = 4;
        cfg.workload = [](ThreadId uid) {
            return makeFlannXY(0.5, 1.0, uid);
        };
        cfg.warmup_cycles = 100'000;
        cfg.measure_cycles = 400'000;
        cfg.event_driven = event_driven;
        return runSmtSweep(cfg);
    };
    SmtSweepResult fast = run(true);
    SmtSweepResult legacy = run(false);
    EXPECT_EQ(fast.total_ipc, legacy.total_ipc);
    EXPECT_EQ(fast.l1d_miss_rate, legacy.l1d_miss_rate);
    EXPECT_EQ(fast.mispredict_rate, legacy.mispredict_rate);
}

/** Full-scenario differential: a Duplexity dyad (filler windows,
 *  shared pool, lender unit) produces a field-identical result under
 *  the event-driven run loop and the forced-legacy one. */
TEST(HsmtFastForward, DuplexityScenarioFieldIdentical)
{
    auto run = [](bool fast_forward) {
        ScenarioConfig cfg;
        cfg.design = DesignKind::Duplexity;
        cfg.service = MicroserviceKind::FlannLL;
        cfg.load = 0.5;
        cfg.warmup_cycles = 150'000;
        cfg.measure_cycles = 600'000;
        cfg.hsmt_fast_forward = fast_forward;
        return runScenario(cfg);
    };
    ScenarioResult fast = run(true);
    ScenarioResult legacy = run(false);
    EXPECT_EQ(fast.utilization, legacy.utilization);
    EXPECT_EQ(fast.requests, legacy.requests);
    EXPECT_EQ(fast.service_us.count(), legacy.service_us.count());
    EXPECT_EQ(fast.service_us.mean(), legacy.service_us.mean());
    EXPECT_EQ(fast.sojourn_us.count(), legacy.sojourn_us.count());
    EXPECT_EQ(fast.sojourn_us.mean(), legacy.sojourn_us.mean());
    EXPECT_EQ(fast.wait_us.mean(), legacy.wait_us.mean());
    EXPECT_EQ(fast.batch_stp, legacy.batch_stp);
    EXPECT_EQ(fast.batch_ops_per_sec, legacy.batch_ops_per_sec);
    EXPECT_EQ(fast.remote_ops_per_sec, legacy.remote_ops_per_sec);
    EXPECT_EQ(fast.offered_rps, legacy.offered_rps);
    EXPECT_EQ(fast.filler_window_fraction,
              legacy.filler_window_fraction);
    EXPECT_EQ(fast.filler_ops, legacy.filler_ops);
    EXPECT_EQ(fast.lender_ops, legacy.lender_ops);
    EXPECT_EQ(fast.master_ops, legacy.master_ops);
    EXPECT_EQ(fast.filler_swaps, legacy.filler_swaps);
    EXPECT_EQ(fast.activity.ooo_ops, legacy.activity.ooo_ops);
    EXPECT_EQ(fast.activity.ino_ops, legacy.activity.ino_ops);
    EXPECT_EQ(fast.activity.l1_accesses, legacy.activity.l1_accesses);
    EXPECT_EQ(fast.activity.l0_accesses, legacy.activity.l0_accesses);
    EXPECT_EQ(fast.activity.llc_accesses,
              legacy.activity.llc_accesses);
    EXPECT_EQ(fast.activity.dram_accesses,
              legacy.activity.dram_accesses);
    EXPECT_EQ(fast.activity.link_traversals,
              legacy.activity.link_traversals);
}

/** The SMT+ design exercises the co-runner arm of the run loop. */
TEST(HsmtFastForward, SmtPlusScenarioFieldIdentical)
{
    auto run = [](bool fast_forward) {
        ScenarioConfig cfg;
        cfg.design = DesignKind::SmtPlus;
        cfg.service = MicroserviceKind::WordStem;
        cfg.load = 0.5;
        cfg.warmup_cycles = 150'000;
        cfg.measure_cycles = 400'000;
        cfg.hsmt_fast_forward = fast_forward;
        return runScenario(cfg);
    };
    ScenarioResult fast = run(true);
    ScenarioResult legacy = run(false);
    EXPECT_EQ(fast.utilization, legacy.utilization);
    EXPECT_EQ(fast.requests, legacy.requests);
    EXPECT_EQ(fast.service_us.mean(), legacy.service_us.mean());
    EXPECT_EQ(fast.batch_stp, legacy.batch_stp);
    EXPECT_EQ(fast.master_ops, legacy.master_ops);
    EXPECT_EQ(fast.lender_ops, legacy.lender_ops);
    EXPECT_EQ(fast.activity.dram_accesses,
              legacy.activity.dram_accesses);
}
