/**
 * Death tests for the contract macros (sim/check.hh) and the failure
 * hook (sim/logging.hh).
 *
 * This source builds twice: check_test forces DPX_ENABLE_DCHECKS=1
 * and check_release_test forces it to 0 (see tests/CMakeLists.txt),
 * so both DCHECK flavors are exercised on every CI configuration —
 * the suite name carries the flavor so ctest ids never collide.
 */

#include "sim/check.hh"

#include <csignal>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "sim/logging.hh"

#if DPX_ENABLE_DCHECKS
#define CHECK_SUITE CheckDchecksOn
#else
#define CHECK_SUITE CheckDchecksOff
#endif

namespace duplexity
{
namespace
{

TEST(CHECK_SUITE, PassingChecksAreSilentAndEvaluateOnce)
{
    int calls = 0;
    DPX_CHECK(++calls == 1) << " streamed context is lazy";
    EXPECT_EQ(calls, 1);
    DPX_CHECK_EQ(2 + 2, 4);
    DPX_CHECK_NE(1, 2);
    DPX_CHECK_LT(1, 2);
    DPX_CHECK_LE(2, 2);
    DPX_CHECK_GT(3, 2);
    DPX_CHECK_GE(3, 3);
}

TEST(CHECK_SUITE, FailurePrintsFileLineConditionAndContext)
{
    EXPECT_DEATH(DPX_CHECK(1 == 2) << " request=" << 42,
                 "panic: .*check_test\\.cc:[0-9]+: "
                 "DPX_CHECK\\(1 == 2\\) failed request=42");
}

TEST(CHECK_SUITE, ComparisonFailurePrintsBothOperands)
{
    const int want = 3;
    const int got = 5;
    EXPECT_DEATH(DPX_CHECK_EQ(want, got),
                 "DPX_CHECK\\(want == got\\) failed \\(3 vs. 5\\)");
}

TEST(CHECK_SUITE, PanicAbortsButFatalExitsCleanly)
{
    EXPECT_EXIT(panic("simulator bug"),
                testing::KilledBySignal(SIGABRT),
                "panic: simulator bug");
    EXPECT_EXIT(fatal("bad --load value"),
                testing::ExitedWithCode(1), "fatal: bad --load value");
    EXPECT_EXIT(fatalAt("config.cc", 7, "bad flag"),
                testing::ExitedWithCode(1),
                "fatal: config\\.cc:7: bad flag");
}

// The hook is a plain function pointer, so the observations land in
// file-scope state.
std::string g_hook_kind;    // NOLINT(cert-err58-cpp)
std::string g_hook_message; // NOLINT(cert-err58-cpp)

void
throwingHook(const char *kind, const std::string &msg)
{
    g_hook_kind = kind;
    g_hook_message = msg;
    throw std::runtime_error(msg);
}

TEST(CHECK_SUITE, FailureHookSeesFormattedMessageAndMayThrow)
{
    FailureHook previous = setFailureHookForTest(&throwingHook);
    EXPECT_EQ(previous, nullptr);
    g_hook_kind.clear();
    g_hook_message.clear();

    bool caught = false;
    try {
        DPX_CHECK_EQ(3, 5) << " extra";
    } catch (const std::runtime_error &err) {
        caught = true;
        EXPECT_NE(std::string(err.what()).find("(3 vs. 5) extra"),
                  std::string::npos);
    }
    setFailureHookForTest(previous);

    EXPECT_TRUE(caught);
    EXPECT_EQ(g_hook_kind, "panic");
    EXPECT_NE(g_hook_message.find("check_test.cc"), std::string::npos);
    EXPECT_NE(g_hook_message.find("DPX_CHECK(3 == 5) failed"),
              std::string::npos);
}

#if DPX_ENABLE_DCHECKS

TEST(CHECK_SUITE, DcheckFiresInThisFlavor)
{
    EXPECT_DEATH(DPX_DCHECK(false) << " debug-only invariant",
                 "DPX_CHECK\\(false\\) failed debug-only invariant");
    EXPECT_DEATH(DPX_DCHECK_LT(5, 3), "\\(5 vs. 3\\)");
}

TEST(CHECK_SUITE, DcheckEvaluatesConditionInThisFlavor)
{
    int calls = 0;
    DPX_DCHECK(++calls == 1);
    EXPECT_EQ(calls, 1);
}

#else

TEST(CHECK_SUITE, DcheckIsCompiledOutInThisFlavor)
{
    // A false DCHECK must be harmless...
    DPX_DCHECK(false) << " never reached";
    DPX_DCHECK_EQ(1, 2);
    DPX_DCHECK_LT(9, 3);
    // ...and the operands must never even be evaluated.
    int calls = 0;
    DPX_DCHECK(++calls == 1);
    DPX_DCHECK_EQ(++calls, 99);
    EXPECT_EQ(calls, 0);
}

#endif // DPX_ENABLE_DCHECKS

} // namespace
} // namespace duplexity
