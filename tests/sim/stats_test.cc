/**
 * @file
 * Statistics machinery tests: Welford moments, exact and reservoir
 * percentiles, log histograms, and the batch-means stopping rule.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace duplexity;

TEST(MeanAccumulator, ExactSmallCase)
{
    MeanAccumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    // Sample variance with Bessel correction: 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(MeanAccumulator, CiShrinksWithSamples)
{
    Rng rng(1);
    MeanAccumulator a, b;
    for (int i = 0; i < 100; ++i)
        a.add(rng.uniform());
    for (int i = 0; i < 10000; ++i)
        b.add(rng.uniform());
    EXPECT_GT(a.ciHalfWidth(), b.ciHalfWidth());
}

TEST(MeanAccumulator, ResetClears)
{
    MeanAccumulator acc;
    acc.add(5.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
}

TEST(SampleStats, ExactPercentilesBelowCapacity)
{
    SampleStats s(1024);
    for (int i = 100; i >= 1; --i)
        s.add(static_cast<double>(i));
    EXPECT_EQ(s.count(), 100u);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.p99(), 99.01, 0.1);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleStats, InterleavedInsertAndQuery)
{
    SampleStats s(1024);
    s.add(1.0);
    s.add(3.0);
    EXPECT_NEAR(s.percentile(0.5), 2.0, 1e-12);
    s.add(2.0);
    EXPECT_NEAR(s.percentile(0.5), 2.0, 1e-12);
}

TEST(SampleStats, ReservoirBoundsMemoryAndTracksQuantiles)
{
    SampleStats s(1000);
    Rng rng(2);
    for (int i = 0; i < 200000; ++i)
        s.add(rng.uniform(), rng.next());
    EXPECT_EQ(s.count(), 200000u);
    EXPECT_EQ(s.samples().size(), 1000u);
    // The reservoir median of U(0,1) should be near 0.5.
    EXPECT_NEAR(s.percentile(0.5), 0.5, 0.06);
}

TEST(SampleStats, MomentsUseAllSamplesNotJustReservoir)
{
    SampleStats s(10);
    for (int i = 1; i <= 1000; ++i)
        s.add(static_cast<double>(i), i * 2654435761u);
    EXPECT_NEAR(s.mean(), 500.5, 1e-9);
    EXPECT_EQ(s.max(), 1000.0);
}

TEST(LogHistogram, CountsAndCdf)
{
    LogHistogram h(1.0, 1000.0, 30);
    h.add(0.5);    // underflow
    h.add(10.0);
    h.add(100.0);
    h.add(5000.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    auto cdf = h.cdf();
    EXPECT_EQ(cdf.front().second, 0.25); // underflow bucket
    EXPECT_EQ(cdf.back().second, 1.0);
}

TEST(LogHistogram, PercentileApproximatesExponential)
{
    LogHistogram h(1e-2, 1e3, 200);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.exponential(10.0));
    // p50 of Exp(10) = 10 ln 2 = 6.93.
    EXPECT_NEAR(h.percentile(0.5), 6.93, 0.7);
    // p99 = 10 ln 100 = 46.1.
    EXPECT_NEAR(h.percentile(0.99), 46.1, 5.0);
}

TEST(BatchMeans, ConvergesOnStableMetric)
{
    BatchMeans bm(0.05, 1.96, 8);
    Rng rng(4);
    int batches = 0;
    while (!bm.converged() && batches < 1000) {
        bm.addBatch(100.0 + rng.normal(0.0, 5.0));
        ++batches;
    }
    EXPECT_TRUE(bm.converged());
    EXPECT_NEAR(bm.mean(), 100.0, 2.0);
}

TEST(BatchMeans, DoesNotConvergeBeforeMinBatches)
{
    BatchMeans bm(0.5, 1.96, 8);
    for (int i = 0; i < 7; ++i) {
        bm.addBatch(100.0);
        EXPECT_FALSE(bm.converged());
    }
}

TEST(BatchMeans, HighVarianceDelaysConvergence)
{
    Rng rng(5);
    BatchMeans tight(0.01, 1.96, 8);
    BatchMeans loose(0.20, 1.96, 8);
    int tight_batches = 0, loose_batches = 0;
    while (!loose.converged() && loose_batches < 100000) {
        loose.addBatch(10.0 + rng.normal(0.0, 10.0));
        ++loose_batches;
    }
    Rng rng2(5);
    while (!tight.converged() && tight_batches < 100000) {
        tight.addBatch(10.0 + rng2.normal(0.0, 10.0));
        ++tight_batches;
    }
    EXPECT_LT(loose_batches, tight_batches);
}

TEST(MeanAccumulator, MergeMatchesSequentialAccumulation)
{
    Rng rng(21);
    MeanAccumulator whole;
    std::vector<MeanAccumulator> shards(4);
    for (int i = 0; i < 40000; ++i) {
        double x = rng.exponential(3.0);
        whole.add(x);
        shards[i % 4].add(x);
    }
    MeanAccumulator merged;
    for (const MeanAccumulator &shard : shards)
        merged.merge(shard);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
    EXPECT_NEAR(merged.stddev(), whole.stddev(),
                1e-9 * whole.stddev());
}

TEST(MeanAccumulator, MergeIsDeterministic)
{
    Rng rng(22);
    std::vector<MeanAccumulator> shards(8);
    for (int i = 0; i < 8000; ++i)
        shards[i % 8].add(rng.uniform());
    MeanAccumulator a, b;
    for (const MeanAccumulator &shard : shards)
        a.merge(shard);
    for (const MeanAccumulator &shard : shards)
        b.merge(shard);
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.stddev(), b.stddev());
    EXPECT_EQ(a.count(), b.count());
}

TEST(SampleStats, FinalizeFreezesAndMarksSorted)
{
    SampleStats stats;
    Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        stats.add(rng.uniform(), rng.next());
    EXPECT_FALSE(stats.finalized());
    stats.finalize();
    EXPECT_TRUE(stats.finalized());
    double p99 = stats.percentile(0.99);
    stats.finalize(); // idempotent
    EXPECT_EQ(stats.percentile(0.99), p99);
}

namespace
{

/** Exact rank of @p value (count of samples <= value). */
std::uint64_t
exactRank(std::vector<double> sorted_population, double value)
{
    auto it = std::upper_bound(sorted_population.begin(),
                               sorted_population.end(), value);
    return static_cast<std::uint64_t>(it -
                                      sorted_population.begin());
}

} // namespace

TEST(QuantileSketch, ExactBelowCapacity)
{
    QuantileSketch sketch(256);
    for (int i = 100; i >= 1; --i)
        sketch.add(i);
    EXPECT_EQ(sketch.errorBound(), 0u);
    EXPECT_EQ(sketch.percentile(0.50), 50.0);
    EXPECT_EQ(sketch.percentile(0.99), 99.0);
    EXPECT_EQ(sketch.percentile(1.0), 100.0);
}

TEST(QuantileSketch, RankErrorWithinCertificate)
{
    const std::size_t capacity = 512;
    QuantileSketch sketch(capacity);
    Rng rng(41);
    std::vector<double> population;
    const int n = 100000;
    population.reserve(n);
    for (int i = 0; i < n; ++i) {
        double x = rng.exponential(1.0);
        sketch.add(x);
        population.push_back(x);
    }
    std::sort(population.begin(), population.end());
    // Memory stays fixed regardless of n.
    EXPECT_LE(sketch.retained(), capacity * 20);
    ASSERT_GT(sketch.errorBound(), 0u);
    for (double p : {0.5, 0.9, 0.99, 0.999}) {
        double est = sketch.percentile(p);
        auto target = static_cast<std::uint64_t>(
            std::ceil(p * static_cast<double>(n)));
        std::uint64_t got_rank = exactRank(population, est);
        // The certificate: |rank(est) - target| <= errorBound().
        std::uint64_t diff = got_rank > target ? got_rank - target
                                               : target - got_rank;
        EXPECT_LE(diff, sketch.errorBound()) << "p = " << p;
    }
}

TEST(QuantileSketch, MergeOfShardsMatchesWholePopulation)
{
    const std::size_t capacity = 512;
    const int shards_n = 8;
    const int per_shard = 20000;
    Rng rng(43);
    std::vector<QuantileSketch> shards(shards_n,
                                       QuantileSketch(capacity));
    std::vector<double> population;
    population.reserve(shards_n * per_shard);
    for (int s = 0; s < shards_n; ++s) {
        for (int i = 0; i < per_shard; ++i) {
            double x = rng.exponential(1.0);
            shards[s].add(x);
            population.push_back(x);
        }
    }
    std::sort(population.begin(), population.end());

    QuantileSketch merged(capacity);
    for (const QuantileSketch &shard : shards)
        merged.merge(shard);
    EXPECT_EQ(merged.count(),
              static_cast<std::uint64_t>(population.size()));

    const auto n = static_cast<double>(population.size());
    for (double p : {0.5, 0.9, 0.99}) {
        double est = merged.percentile(p);
        auto target =
            static_cast<std::uint64_t>(std::ceil(p * n));
        std::uint64_t got_rank = exactRank(population, est);
        std::uint64_t diff = got_rank > target ? got_rank - target
                                               : target - got_rank;
        EXPECT_LE(diff, merged.errorBound()) << "p = " << p;
        // And the bound itself is small relative to n.
        EXPECT_LE(merged.errorBound(), population.size() / 25);
    }
}

TEST(QuantileSketch, MergeIsDeterministic)
{
    Rng rng(47);
    std::vector<QuantileSketch> shards(4, QuantileSketch(128));
    for (int i = 0; i < 40000; ++i)
        shards[i % 4].add(rng.uniform());
    QuantileSketch a(128), b(128);
    for (const QuantileSketch &shard : shards)
        a.merge(shard);
    for (const QuantileSketch &shard : shards)
        b.merge(shard);
    for (double p : {0.01, 0.5, 0.99, 0.999})
        EXPECT_EQ(a.percentile(p), b.percentile(p));
    EXPECT_EQ(a.errorBound(), b.errorBound());
    EXPECT_EQ(a.retained(), b.retained());
}

TEST(SketchStats, TracksMomentsAndExtremesExactly)
{
    SketchStats stats(256);
    MeanAccumulator ref;
    Rng rng(53);
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 50000; ++i) {
        double x = rng.exponential(2.0);
        stats.add(x);
        ref.add(x);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    // Moments and extremes are exact even though quantiles come from
    // the sketch.
    EXPECT_EQ(stats.count(), ref.count());
    EXPECT_EQ(stats.mean(), ref.mean());
    EXPECT_EQ(stats.min(), lo);
    EXPECT_EQ(stats.max(), hi);
    // p99 of Exp(mean 2) = 2 ln 100 = 9.21; sketch-approximate.
    EXPECT_NEAR(stats.percentile(0.99), 2.0 * std::log(100.0),
                2.5);
}
