/**
 * @file
 * Statistics machinery tests: Welford moments, exact and reservoir
 * percentiles, log histograms, and the batch-means stopping rule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace duplexity;

TEST(MeanAccumulator, ExactSmallCase)
{
    MeanAccumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    // Sample variance with Bessel correction: 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(MeanAccumulator, CiShrinksWithSamples)
{
    Rng rng(1);
    MeanAccumulator a, b;
    for (int i = 0; i < 100; ++i)
        a.add(rng.uniform());
    for (int i = 0; i < 10000; ++i)
        b.add(rng.uniform());
    EXPECT_GT(a.ciHalfWidth(), b.ciHalfWidth());
}

TEST(MeanAccumulator, ResetClears)
{
    MeanAccumulator acc;
    acc.add(5.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
}

TEST(SampleStats, ExactPercentilesBelowCapacity)
{
    SampleStats s(1024);
    for (int i = 100; i >= 1; --i)
        s.add(static_cast<double>(i));
    EXPECT_EQ(s.count(), 100u);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 100.0);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.p99(), 99.01, 0.1);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleStats, InterleavedInsertAndQuery)
{
    SampleStats s(1024);
    s.add(1.0);
    s.add(3.0);
    EXPECT_NEAR(s.percentile(0.5), 2.0, 1e-12);
    s.add(2.0);
    EXPECT_NEAR(s.percentile(0.5), 2.0, 1e-12);
}

TEST(SampleStats, ReservoirBoundsMemoryAndTracksQuantiles)
{
    SampleStats s(1000);
    Rng rng(2);
    for (int i = 0; i < 200000; ++i)
        s.add(rng.uniform(), rng.next());
    EXPECT_EQ(s.count(), 200000u);
    EXPECT_EQ(s.samples().size(), 1000u);
    // The reservoir median of U(0,1) should be near 0.5.
    EXPECT_NEAR(s.percentile(0.5), 0.5, 0.06);
}

TEST(SampleStats, MomentsUseAllSamplesNotJustReservoir)
{
    SampleStats s(10);
    for (int i = 1; i <= 1000; ++i)
        s.add(static_cast<double>(i), i * 2654435761u);
    EXPECT_NEAR(s.mean(), 500.5, 1e-9);
    EXPECT_EQ(s.max(), 1000.0);
}

TEST(LogHistogram, CountsAndCdf)
{
    LogHistogram h(1.0, 1000.0, 30);
    h.add(0.5);    // underflow
    h.add(10.0);
    h.add(100.0);
    h.add(5000.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    auto cdf = h.cdf();
    EXPECT_EQ(cdf.front().second, 0.25); // underflow bucket
    EXPECT_EQ(cdf.back().second, 1.0);
}

TEST(LogHistogram, PercentileApproximatesExponential)
{
    LogHistogram h(1e-2, 1e3, 200);
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.exponential(10.0));
    // p50 of Exp(10) = 10 ln 2 = 6.93.
    EXPECT_NEAR(h.percentile(0.5), 6.93, 0.7);
    // p99 = 10 ln 100 = 46.1.
    EXPECT_NEAR(h.percentile(0.99), 46.1, 5.0);
}

TEST(BatchMeans, ConvergesOnStableMetric)
{
    BatchMeans bm(0.05, 1.96, 8);
    Rng rng(4);
    int batches = 0;
    while (!bm.converged() && batches < 1000) {
        bm.addBatch(100.0 + rng.normal(0.0, 5.0));
        ++batches;
    }
    EXPECT_TRUE(bm.converged());
    EXPECT_NEAR(bm.mean(), 100.0, 2.0);
}

TEST(BatchMeans, DoesNotConvergeBeforeMinBatches)
{
    BatchMeans bm(0.5, 1.96, 8);
    for (int i = 0; i < 7; ++i) {
        bm.addBatch(100.0);
        EXPECT_FALSE(bm.converged());
    }
}

TEST(BatchMeans, HighVarianceDelaysConvergence)
{
    Rng rng(5);
    BatchMeans tight(0.01, 1.96, 8);
    BatchMeans loose(0.20, 1.96, 8);
    int tight_batches = 0, loose_batches = 0;
    while (!loose.converged() && loose_batches < 100000) {
        loose.addBatch(10.0 + rng.normal(0.0, 10.0));
        ++loose_batches;
    }
    Rng rng2(5);
    while (!tight.converged() && tight_batches < 100000) {
        tight.addBatch(10.0 + rng2.normal(0.0, 10.0));
        ++tight_batches;
    }
    EXPECT_LT(loose_batches, tight_batches);
}
