/**
 * @file
 * TSan regression coverage for concurrent statistics reads.
 *
 * SampleStats::percentile historically sorted its reservoir lazily
 * under a mutable flag, so two "const" readers raced on the sort.
 * The contract is now: call finalize() once at end of collection,
 * after which every accessor is a pure read, safe from any number of
 * threads. These tests hammer that contract and fail under
 * ThreadSanitizer (the CI sanitizer job selects this suite by name)
 * if the lazy mutation ever comes back.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace duplexity;

namespace
{

constexpr int kThreads = 8;
constexpr int kQueriesPerThread = 64;

} // namespace

TEST(SampleStatsConcurrency, FinalizedPercentileReadsAreRaceFree)
{
    SampleStats stats(1u << 16);
    Rng rng(2024);
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.uniform(), rng.next());
    stats.finalize();
    ASSERT_TRUE(stats.finalized());

    const double want_p50 = stats.percentile(0.50);
    const double want_p99 = stats.percentile(0.99);
    const double want_mean = stats.mean();

    std::vector<std::thread> threads;
    std::vector<int> mismatches(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int q = 0; q < kQueriesPerThread; ++q) {
                if (stats.percentile(0.50) != want_p50 ||
                    stats.percentile(0.99) != want_p99 ||
                    stats.mean() != want_mean)
                    ++mismatches[t];
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(SampleStatsConcurrency, TailSummaryExactModeConcurrentReads)
{
    SampleStats stats(1u << 14);
    Rng rng(7);
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.uniform(), rng.next());
    TailSummary summary = TailSummary::fromExact(std::move(stats));
    ASSERT_TRUE(summary.exact());

    const double want_p99 = summary.p99();
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int q = 0; q < kQueriesPerThread; ++q)
                if (summary.p99() != want_p99)
                    ++mismatches[t];
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(SampleStatsConcurrency, SketchSummaryConcurrentReads)
{
    SketchStats shard(512);
    Rng rng(99);
    for (int i = 0; i < 100000; ++i)
        shard.add(rng.uniform());
    TailSummary summary = TailSummary::fromSketch(std::move(shard));
    ASSERT_FALSE(summary.exact());

    const double want_p50 = summary.percentile(0.50);
    const double want_p99 = summary.p99();
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int q = 0; q < kQueriesPerThread; ++q)
                if (summary.percentile(0.50) != want_p50 ||
                    summary.p99() != want_p99)
                    ++mismatches[t];
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}
