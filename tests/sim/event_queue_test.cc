/**
 * @file
 * Discrete-event kernel tests: ordering, tie-breaking, scheduling
 * from handlers, and run bounds.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace duplexity;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0.0);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(3.0, [&] { order.push_back(3); });
    q.scheduleAt(1.0, [&] { order.push_back(1); });
    q.scheduleAt(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.scheduleAt(1.0, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double fired_at = -1.0;
    q.scheduleAt(5.0, [&] {
        q.scheduleAfter(2.0, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 7.0);
}

TEST(EventQueue, HandlerMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            q.scheduleAfter(1.0, chain);
    };
    q.scheduleAt(0.0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue q;
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        q.scheduleAt(i, [&] { ++fired; });
    q.run(5.0);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.size(), 5u);
}

TEST(EventQueue, RunMaxEventsBound)
{
    EventQueue q;
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        q.scheduleAt(i, [&] { ++fired; });
    std::uint64_t executed = q.run(1e30, 3);
    EXPECT_EQ(executed, 3u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(1.0, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.scheduleAt(5.0, [] {});
    q.run();
    EXPECT_DEATH(q.scheduleAt(1.0, [] {}), "past");
}
