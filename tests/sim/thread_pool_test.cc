/**
 * @file
 * Thread-pool unit tests: result independence from task ordering and
 * pool size, exception propagation out of workers, empty and
 * oversubscribed pools, and drain-on-shutdown with tasks still
 * queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel_sweep.hh"
#include "sim/thread_pool.hh"

using namespace duplexity;

TEST(ThreadPool, DefaultSizeUsesHardwareThreads)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeHonored)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        constexpr std::size_t n = 200;
        std::vector<int> hits(n, 0);
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&hits, i] { ++hits[i]; });
        pool.wait();
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                  static_cast<int>(n))
            << "threads=" << threads;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i], 1) << "cell " << i;
    }
}

TEST(ThreadPool, ResultsIndependentOfPoolSize)
{
    // Each task writes a pure function of its index into its own
    // slot: any schedule must produce the identical vector.
    constexpr std::size_t n = 64;
    auto run = [](unsigned threads) {
        std::vector<std::uint64_t> out(n, 0);
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&out, i] {
                out[i] = deriveCellSeed(99, {i, i * i});
            });
        }
        pool.wait();
        return out;
    };
    std::vector<std::uint64_t> serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(ThreadPool::hardwareThreads()), serial);
}

TEST(ThreadPool, ExceptionPropagatesToWait)
{
    ThreadPool pool(2);
    std::atomic<int> survivors{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&survivors] { ++survivors; });
    pool.submit([] { throw std::runtime_error("cell exploded"); });
    for (int i = 0; i < 8; ++i)
        pool.submit([&survivors] { ++survivors; });

    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Sibling tasks still ran; the error does not stick to the pool.
    EXPECT_EQ(survivors.load(), 16);
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(3);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, OversubscribedPoolCompletes)
{
    // Far more workers than cores, and more tasks than workers.
    ThreadPool pool(32);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        // The first task blocks the only worker so the rest are
        // still queued when the destructor runs.
        pool.submit([] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        });
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
    } // destructor: drain, then join
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedSubmissionsSeenByWait)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.submit([&] {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
    });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThreadsFromEnvParsesOverride)
{
    ASSERT_EQ(setenv("DPX_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::threadsFromEnv(), 3u);
    ASSERT_EQ(setenv("DPX_THREADS", "garbage", 1), 0);
    EXPECT_EQ(ThreadPool::threadsFromEnv(7), 7u);
    ASSERT_EQ(unsetenv("DPX_THREADS"), 0);
    EXPECT_EQ(ThreadPool::threadsFromEnv(7), 7u);
    EXPECT_EQ(ThreadPool::threadsFromEnv(),
              ThreadPool::hardwareThreads());
}

TEST(ParallelSweep, ReportsPerCellTiming)
{
    std::vector<int> out(10, 0);
    SweepOptions options;
    options.threads = 2;
    SweepReport report = parallelSweep(
        out.size(), [&](std::size_t i) { out[i] = 1; }, options);
    EXPECT_EQ(report.cells, 10u);
    EXPECT_EQ(report.threads, 2u);
    EXPECT_EQ(report.cell_seconds.count(), 10u);
    EXPECT_EQ(report.per_cell_seconds.size(), 10u);
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
}

TEST(ParallelSweep, EmptySweepIsANoOp)
{
    SweepReport report =
        parallelSweep(0, [](std::size_t) { FAIL(); });
    EXPECT_EQ(report.cells, 0u);
    EXPECT_EQ(report.totalCellSeconds(), 0.0);
}

TEST(ParallelSweep, PoolNeverExceedsCellCount)
{
    SweepOptions options;
    options.threads = 64;
    SweepReport report =
        parallelSweep(3, [](std::size_t) {}, options);
    EXPECT_EQ(report.threads, 3u);
}

TEST(ParallelSweep, DeriveCellSeedIsPureAndSensitive)
{
    const std::uint64_t seed = deriveCellSeed(42, {1, 500000, 3});
    EXPECT_EQ(deriveCellSeed(42, {1, 500000, 3}), seed);
    EXPECT_NE(deriveCellSeed(43, {1, 500000, 3}), seed);
    EXPECT_NE(deriveCellSeed(42, {2, 500000, 3}), seed);
    EXPECT_NE(deriveCellSeed(42, {1, 500000, 4}), seed);
    EXPECT_NE(deriveCellSeed(42, {1, 500000}), seed);
}

TEST(ParallelSweep, CoordKeyStableForGridLoads)
{
    EXPECT_EQ(coordKey(0.3), 300000u);
    EXPECT_EQ(coordKey(0.5), 500000u);
    EXPECT_EQ(coordKey(0.7), 700000u);
}
