/**
 * @file
 * Property tests: every distribution's sample population must match
 * its declared mean, and structural combinators must compose.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/distributions.hh"

using namespace duplexity;

namespace
{

double
empiricalMean(const Distribution &dist, int n = 200000,
              std::uint64_t seed = 3)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += dist.sample(rng);
    return sum / n;
}

} // namespace

/** mean() and the sample mean must agree for every distribution. */
class MeanConsistency
    : public ::testing::TestWithParam<DistributionPtr>
{
};

TEST_P(MeanConsistency, SampleMeanMatchesDeclared)
{
    const DistributionPtr &dist = GetParam();
    double m = empiricalMean(*dist);
    EXPECT_NEAR(m, dist->mean(), 0.03 * dist->mean() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, MeanConsistency,
    ::testing::Values(
        makeDeterministic(4.2), makeExponential(2.5),
        makeUniform(1.0, 9.0), makeLogNormal(3.0, 0.5),
        makeBoundedPareto(1.0, 1000.0, 1.5),
        makeEmpirical({1.0, 2.0, 3.0, 10.0}),
        makeScaled(makeExponential(2.0), 3.0),
        makeSum(makeDeterministic(1.0), makeExponential(1.0))));

TEST(Deterministic, AlwaysSameValue)
{
    Rng rng(1);
    DeterministicDist d(7.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 7.5);
}

TEST(Uniform, WithinBounds)
{
    Rng rng(2);
    UniformDist d(2.0, 5.0);
    for (int i = 0; i < 10000; ++i) {
        double x = d.sample(rng);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(BoundedPareto, WithinBounds)
{
    Rng rng(3);
    BoundedParetoDist d(1.0, 100.0, 1.2);
    for (int i = 0; i < 20000; ++i) {
        double x = d.sample(rng);
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 100.0);
    }
}

TEST(BoundedPareto, HeavyTailedRelativeToExponential)
{
    // At matched means, the bounded Pareto should produce a larger
    // 99.9th percentile than the exponential.
    Rng r1(4), r2(4);
    BoundedParetoDist pareto(1.0, 10000.0, 1.1);
    ExponentialDist expo(pareto.mean());
    std::vector<double> a, b;
    for (int i = 0; i < 100000; ++i) {
        a.push_back(pareto.sample(r1));
        b.push_back(expo.sample(r2));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_GT(a[99900], b[99900]);
}

TEST(Empirical, SamplesComeFromPopulation)
{
    Rng rng(5);
    EmpiricalDist d({1.0, 5.0, 9.0});
    for (int i = 0; i < 1000; ++i) {
        double x = d.sample(rng);
        EXPECT_TRUE(x == 1.0 || x == 5.0 || x == 9.0);
    }
}

TEST(Empirical, SizeReported)
{
    EmpiricalDist d({1.0, 2.0, 3.0});
    EXPECT_EQ(d.size(), 3u);
}

TEST(Mixture, MeanIsWeightedAverage)
{
    MixtureDist mix({{1.0, makeDeterministic(10.0)},
                     {3.0, makeDeterministic(2.0)}});
    EXPECT_NEAR(mix.mean(), (10.0 + 3 * 2.0) / 4.0, 1e-12);
    EXPECT_NEAR(empiricalMean(mix), mix.mean(), 0.05);
}

TEST(Scaled, ScalesEverySample)
{
    Rng rng(6);
    ScaledDist d(makeDeterministic(3.0), 2.5);
    EXPECT_EQ(d.sample(rng), 7.5);
    EXPECT_EQ(d.mean(), 7.5);
}

TEST(Sum, AddsMeans)
{
    SumDist d(makeDeterministic(1.5), makeDeterministic(2.5));
    Rng rng(7);
    EXPECT_EQ(d.sample(rng), 4.0);
    EXPECT_EQ(d.mean(), 4.0);
}

TEST(LogNormal, AllPositive)
{
    Rng rng(8);
    LogNormalDist d(5.0, 1.0);
    for (int i = 0; i < 20000; ++i)
        EXPECT_GT(d.sample(rng), 0.0);
}

/**
 * The devirtualized fast path must be a perfect stand-in for the
 * virtual interface: bit-identical variates AND identical Rng stream
 * positions, for every distribution shape (including the fallback
 * kinds that stay virtual).
 */
class FastSamplerEquivalence
    : public ::testing::TestWithParam<DistributionPtr>
{
};

TEST_P(FastSamplerEquivalence, BitIdenticalSamplesAndRngPosition)
{
    const DistributionPtr &dist = GetParam();
    FastSampler fast(dist);
    Rng virt_rng(41);
    Rng fast_rng(41);
    for (int i = 0; i < 10000; ++i) {
        double expected = dist->sample(virt_rng);
        double got = fast.sample(fast_rng);
        ASSERT_EQ(expected, got) << "draw " << i;
    }
    // Same stream position: the next raw word must agree.
    EXPECT_EQ(virt_rng.next(), fast_rng.next());
}

TEST_P(FastSamplerEquivalence, SampleNMatchesDrawOrder)
{
    const DistributionPtr &dist = GetParam();
    FastSampler fast(dist);
    Rng one_rng(43);
    Rng block_rng(43);
    constexpr std::size_t n = 1000;
    std::vector<double> block(n);
    fast.sampleN(block_rng, block.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(dist->sample(one_rng), block[i]) << "draw " << i;
    EXPECT_EQ(one_rng.next(), block_rng.next());
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, FastSamplerEquivalence,
    ::testing::Values(
        makeDeterministic(4.2), makeExponential(2.5),
        makeUniform(1.0, 9.0), makeLogNormal(3.0, 0.5),
        makeBoundedPareto(1.0, 1000.0, 1.5),
        makeEmpirical({1.0, 2.0, 3.0, 10.0}),
        makeScaled(makeExponential(2.0), 3.0),
        makeScaled(makeEmpirical({1.0, 4.0, 7.0}), 0.25),
        makeScaled(makeScaled(makeExponential(1.0), 2.0), 3.0),
        makeSum(makeDeterministic(1.0), makeExponential(1.0)),
        std::make_shared<MixtureDist>(
            std::vector<std::pair<double, DistributionPtr>>{
                {1.0, makeExponential(1.0)},
                {2.0, makeUniform(0.0, 1.0)}})));

TEST(FastSampler, DevirtualizesKnownLeavesOnly)
{
    EXPECT_TRUE(FastSampler(makeExponential(1.0)).devirtualized());
    EXPECT_TRUE(FastSampler(makeDeterministic(1.0)).devirtualized());
    EXPECT_TRUE(FastSampler(makeEmpirical({1.0})).devirtualized());
    EXPECT_TRUE(
        FastSampler(makeScaled(makeExponential(1.0), 2.0))
            .devirtualized());
    // Composite shapes fall back to the virtual interface.
    EXPECT_FALSE(
        FastSampler(makeSum(makeDeterministic(1.0),
                            makeExponential(1.0)))
            .devirtualized());
    EXPECT_FALSE(
        FastSampler(
            makeScaled(makeScaled(makeExponential(1.0), 2.0), 3.0))
            .devirtualized());
}
