/**
 * @file
 * Unit and statistical tests for the deterministic RNG, plus the
 * fillBlock == sequential-next property wall for the SoA op pipeline
 * and a TSan-gated concurrent-stream independence suite (the CI
 * sanitizer job selects RngStreamConcurrency by name).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "sim/rng.hh"

using namespace duplexity;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount)
{
    Rng a(7);
    Rng fork_before = a.fork(3);
    a.next();
    a.next();
    Rng fork_after = a.fork(3);
    // Forks depend only on (seed, stream id), not on parent state.
    EXPECT_EQ(fork_before.next(), fork_after.next());
}

TEST(Rng, SiblingForksDecorrelated)
{
    Rng root(99);
    Rng a = root.fork(1), b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(3.0, 7.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(10);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

/** Statistical property sweep over distribution parameters. */
class RngExponential : public ::testing::TestWithParam<double>
{
};

TEST_P(RngExponential, MeanMatches)
{
    const double mean = GetParam();
    Rng rng(12);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, 0.02 * mean);
}

INSTANTIATE_TEST_SUITE_P(Means, RngExponential,
                         ::testing::Values(0.1, 1.0, 8.0, 100.0));

/**
 * The SoA draw contract: fillBlock(out, n) produces exactly the n
 * values n sequential next() calls would, for every stream the
 * simulation layers can derive — direct seeds, forks, and
 * deriveStreamSeed chains — and for block sizes from 0 through
 * several refills.
 */
TEST(RngFillBlock, MatchesSequentialNextForDerivedStreams)
{
    const std::uint64_t bases[] = {1, 42, 0xdeadbeefull};
    const std::size_t sizes[] = {0, 1, 2, 7, 63, 256, 1000};
    for (std::uint64_t base : bases) {
        // Representative stream identities: the raw seed, a fork, and
        // chained deriveStreamSeed coordinates as used by sweep cells
        // and queue replicas.
        std::vector<Rng> streams;
        streams.emplace_back(base);
        streams.push_back(Rng(base).fork(3));
        streams.emplace_back(Rng::deriveStreamSeed(base, {0}));
        streams.emplace_back(Rng::deriveStreamSeed(base, {7, 3}));
        streams.emplace_back(Rng::deriveStreamSeed(base, {2, 5, 9}));
        for (Rng &bulk : streams) {
            Rng scalar = bulk; // twin with identical state
            std::vector<std::uint64_t> buf;
            for (std::size_t n : sizes) {
                buf.assign(n, 0);
                bulk.fillBlock(buf.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(buf[i], scalar.next())
                        << "base " << base << " n " << n << " i " << i;
            }
        }
    }
}

/** fillBlock and scalar next() interleave on one stream without
 *  perturbing the sequence. */
TEST(RngFillBlock, InterleavesWithScalarDraws)
{
    Rng mixed(0x5eedull);
    Rng scalar(0x5eedull);
    std::array<std::uint64_t, 97> buf{};
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = (round * 13) % buf.size();
        mixed.fillBlock(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], scalar.next()) << "round " << round;
        ASSERT_EQ(mixed.next(), scalar.next()) << "round " << round;
    }
}

/**
 * Replica streams derived from (seed, index) fill blocks concurrently
 * without sharing any state: every thread's bulk output equals the
 * sequential reference for its own stream. TSan (CI selects this
 * suite by name) fails the test if fillBlock ever grows hidden shared
 * state; the value checks fail if streams correlate.
 */
TEST(RngStreamConcurrency, ConcurrentReplicaFillBlocksAreIndependent)
{
    constexpr int kStreams = 8;
    constexpr std::size_t kDraws = 4096;
    constexpr std::uint64_t kBase = 2026;

    // Sequential reference, one stream at a time.
    std::vector<std::vector<std::uint64_t>> want(kStreams);
    for (int s = 0; s < kStreams; ++s) {
        Rng rng(Rng::deriveStreamSeed(
            kBase, {99, static_cast<std::uint64_t>(s)}));
        want[s].resize(kDraws);
        for (std::size_t i = 0; i < kDraws; ++i)
            want[s][i] = rng.next();
    }

    std::vector<std::vector<std::uint64_t>> got(
        kStreams, std::vector<std::uint64_t>(kDraws, 0));
    std::vector<std::thread> threads;
    for (int s = 0; s < kStreams; ++s) {
        threads.emplace_back([&, s] {
            Rng rng(Rng::deriveStreamSeed(
                kBase, {99, static_cast<std::uint64_t>(s)}));
            // Odd chunk size so fills straddle every alignment.
            constexpr std::size_t kChunk = 173;
            std::size_t pos = 0;
            while (pos < kDraws) {
                const std::size_t n =
                    std::min(kChunk, kDraws - pos);
                rng.fillBlock(got[s].data() + pos, n);
                pos += n;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int s = 0; s < kStreams; ++s)
        EXPECT_EQ(got[s], want[s]) << "stream " << s;
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}
