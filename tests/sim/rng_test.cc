/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace duplexity;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount)
{
    Rng a(7);
    Rng fork_before = a.fork(3);
    a.next();
    a.next();
    Rng fork_after = a.fork(3);
    // Forks depend only on (seed, stream id), not on parent state.
    EXPECT_EQ(fork_before.next(), fork_after.next());
}

TEST(Rng, SiblingForksDecorrelated)
{
    Rng root(99);
    Rng a = root.fork(1), b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(6);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(3.0, 7.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(10);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

/** Statistical property sweep over distribution parameters. */
class RngExponential : public ::testing::TestWithParam<double>
{
};

TEST_P(RngExponential, MeanMatches)
{
    const double mean = GetParam();
    Rng rng(12);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, 0.02 * mean);
}

INSTANTIATE_TEST_SUITE_P(Means, RngExponential,
                         ::testing::Values(0.1, 1.0, 8.0, 100.0));

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}
