/**
 * @file
 * Time-domain conversion tests (cycles <-> seconds <-> microseconds).
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace duplexity;

TEST(Frequency, CyclesToSecondsRoundTrip)
{
    Frequency f(3.4e9);
    EXPECT_NEAR(f.cyclesToSeconds(3'400'000'000ull), 1.0, 1e-12);
    EXPECT_EQ(f.secondsToCycles(1.0), 3'400'000'000ull);
}

TEST(Frequency, MicrosToCycles)
{
    Frequency f(3.4e9);
    EXPECT_EQ(f.microsToCycles(1.0), 3400u);
    EXPECT_EQ(f.microsToCycles(10.0), 34000u);
    EXPECT_EQ(f.microsToCycles(0.0), 0u);
}

TEST(Frequency, GigahertzAccessor)
{
    EXPECT_NEAR(Frequency(3.25e9).gigahertz(), 3.25, 1e-12);
}

TEST(TimeConversions, MicrosRoundTrip)
{
    EXPECT_NEAR(toMicros(fromMicros(7.5)), 7.5, 1e-12);
    EXPECT_NEAR(fromMicros(1.0), 1e-6, 1e-18);
}

TEST(Frequency, DifferentClocksDifferentCycleCounts)
{
    // A 50 ns DRAM access costs more cycles on a faster clock.
    Frequency fast(3.4e9), slow(3.25e9);
    EXPECT_GT(fast.microsToCycles(0.05), slow.microsToCycles(0.05));
}

TEST(ThreadIds, InvalidSentinelDistinct)
{
    EXPECT_NE(invalid_thread_id, ThreadId(0));
}
