/**
 * @file
 * Golden differential wall for the vmath replica-log fast path
 * (sim/vmath.hh, DESIGN.md §4b.4).
 *
 * The vmath contract is stricter than "faster, never different": the
 * kernels must be bit-identical to this process's `std::log1p` on the
 * uniform-draw domain, in *every* switch state — vmath on/off crossed
 * with SIMD on/off, because the exponential sampleN pipeline composes
 * simd::toUniformBlock with vmath::log1pNegBlock and each stage has
 * its own forced-slow switch.  Every suite here asserts raw bit
 * equality (not double ==, which would let -0.0 alias 0.0) against
 * libm recomputed on the spot, so the wall holds whether the runtime
 * probe activated the kernels or failed closed to libm.  Runs in both
 * CI build legs; the -DDPX_VMATH=OFF build pins the compile-time-off
 * dispatch the same way -DDPX_SIMD=OFF pins the scalar lanes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/distributions.hh"
#include "sim/rng.hh"
#include "sim/simd.hh"
#include "sim/vmath.hh"
#include "workload/op_block.hh"
#include "workload/synthetic.hh"

using namespace duplexity;

namespace
{

std::uint64_t
bitsOf(double d)
{
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/** Restore the runtime vmath switch no matter how the test exits. */
class VmathFlagGuard
{
  public:
    explicit VmathFlagGuard(bool enable)
        : prev_(vmath::setVmathEnabled(enable))
    {
    }
    ~VmathFlagGuard() { vmath::setVmathEnabled(prev_); }
    VmathFlagGuard(const VmathFlagGuard &) = delete;
    VmathFlagGuard &operator=(const VmathFlagGuard &) = delete;

  private:
    bool prev_;
};

class SimdFlagGuard
{
  public:
    explicit SimdFlagGuard(bool enable)
        : prev_(simd::setSimdEnabled(enable))
    {
    }
    ~SimdFlagGuard() { simd::setSimdEnabled(prev_); }
    SimdFlagGuard(const SimdFlagGuard &) = delete;
    SimdFlagGuard &operator=(const SimdFlagGuard &) = delete;

  private:
    bool prev_;
};

/**
 * Raw draws aimed at every boundary the replica kernel branches or
 * masks on, at the 53-bit granularity of the uniform map: u == 0
 * (x == -0.0), the smallest nonzero draws, the |x| < 2^-29 rare
 * threshold, exponent steps, the k != 0 entry threshold
 * (x ~ -0.2928932…), the rebias threshold (u1 crossing sqrt(2)/2),
 * and u within ulps of 1 - 2^-53 (largest-magnitude x).
 */
std::vector<std::uint64_t>
boundaryRaws()
{
    std::vector<std::uint64_t> raws;
    auto fromK = [&](std::uint64_t k) { raws.push_back(k << 11); };
    constexpr std::uint64_t kFull = (1ull << 53) - 1;
    for (std::uint64_t k = 0; k <= 64; ++k) {
        fromK(k);
        fromK(kFull - k);
    }
    // Raw words whose low 11 bits are dropped by the >> 11 map.
    raws.push_back(1);
    raws.push_back((1ull << 11) - 1);
    raws.push_back(~std::uint64_t(0));
    const std::uint64_t bases[] = {1ull << 24, 1ull << 29, 1ull << 33,
                                   1ull << 52};
    for (std::uint64_t base : bases)
        for (std::int64_t d = -16; d <= 16; ++d)
            fromK(base + (std::uint64_t)d);
    const double centers[] = {0.25,
                              0.5,
                              0.75,
                              0.2928932188134525,
                              0.292893218813452475,
                              0.292893218813452586,
                              0.7071067811865475,
                              0.7071067811865476,
                              0.999999999};
    for (double center : centers) {
        const std::uint64_t kc =
            (std::uint64_t)(center * 9007199254740992.0);
        for (std::int64_t d = -32; d <= 32; ++d)
            fromK(kc + (std::uint64_t)d);
    }
    return raws;
}

/** The boundary set plus a deterministic random spread. */
std::vector<std::uint64_t>
domainRaws(int random_n)
{
    std::vector<std::uint64_t> raws = boundaryRaws();
    Rng rng(2024);
    for (int i = 0; i < random_n; ++i)
        raws.push_back(rng.next());
    return raws;
}

/** Run @p body under each of the four SIMD×VMATH runtime states. */
template <typename Fn>
void
forEachSwitchState(Fn &&body)
{
    for (bool simd_on : {true, false}) {
        for (bool vmath_on : {true, false}) {
            SimdFlagGuard sg(simd_on);
            VmathFlagGuard vg(vmath_on);
            body(simd_on, vmath_on);
        }
    }
}

constexpr std::uint64_t kSeeds[] = {1, 42, 0xdeadbeef};

} // namespace

/** Scalar entry point == libm, bit for bit, on boundary + random
 *  draws, in every switch state (active kernel and forced-libm route
 *  must be indistinguishable). */
TEST(VmathDiff, ScalarMatchesLibmEveryState)
{
    const std::vector<std::uint64_t> raws = domainRaws(200000);
    forEachSwitchState([&](bool simd_on, bool vmath_on) {
        for (std::uint64_t raw : raws) {
            const double u = Rng::toUniform(raw);
            ASSERT_EQ(bitsOf(vmath::log1pNeg(u)),
                      bitsOf(std::log1p(-u)))
                << "raw " << raw << " simd " << simd_on << " vmath "
                << vmath_on;
        }
    });
}

/** Block entry point == per-element libm across counts that exercise
 *  the vector body, the odd tail, and the rare-lane rescan, in every
 *  switch state. */
TEST(VmathDiff, BlockMatchesLibmEveryState)
{
    const std::vector<std::uint64_t> raws = domainRaws(4000);
    std::vector<double> unis(raws.size());
    for (std::size_t i = 0; i < raws.size(); ++i)
        unis[i] = Rng::toUniform(raws[i]);
    const std::size_t counts[] = {1, 2, 3, 17, 255, 256, 257,
                                  unis.size()};
    forEachSwitchState([&](bool simd_on, bool vmath_on) {
        for (std::size_t n : counts) {
            std::vector<double> out(n, 123.0);
            vmath::log1pNegBlock(unis.data(), out.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(bitsOf(out[i]), bitsOf(std::log1p(-unis[i])))
                    << "i " << i << " n " << n << " simd " << simd_on
                    << " vmath " << vmath_on;
        }
    });
}

/** The full batched pipeline — raw words through simd::toUniformBlock
 *  then vmath::log1pNegBlock — equals the scalar composition
 *  std::log1p(-Rng::toUniform(raw)) element-wise, in every switch
 *  state.  This is the exact stage pairing FastSampler::sampleN runs,
 *  pinned on the boundary raws (u == 0, 1-ulp-from-1, rare-threshold
 *  neighborhoods) where a lane-exactness bug would first show. */
TEST(VmathDiff, UniformToLogCompositionBitIdentical)
{
    const std::vector<std::uint64_t> raws = domainRaws(4000);
    const std::size_t n = raws.size();
    forEachSwitchState([&](bool simd_on, bool vmath_on) {
        std::vector<double> unis(n, -1.0), logs(n, 123.0);
        if (simd::simdEnabled()) {
            simd::toUniformBlock(raws.data(), unis.data(), n);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                unis[i] = Rng::toUniform(raws[i]);
        }
        vmath::log1pNegBlock(unis.data(), logs.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(bitsOf(logs[i]),
                      bitsOf(std::log1p(-Rng::toUniform(raws[i]))))
                << "raw " << raws[i] << " simd " << simd_on
                << " vmath " << vmath_on;
    });
}

/** Exponential sampleN (the batched vmath pipeline) == n per-sample
 *  draws, across sizes straddling the 256-draw chunk, seeds, and all
 *  switch states; and the emitted variates are state-invariant. */
TEST(VmathDiff, ExponentialSampleNMatchesPerSampleEveryState)
{
    DistributionPtr dist = makeExponential(1e-6);
    const std::size_t counts[] = {1, 5, 255, 256, 257, 1000};
    for (std::uint64_t seed : kSeeds) {
        for (std::size_t n : counts) {
            // Reference: per-sample draws in the default state.
            FastSampler per_sampler(dist);
            Rng per_rng(seed);
            std::vector<double> ref(n);
            for (std::size_t i = 0; i < n; ++i)
                ref[i] = per_sampler.sample(per_rng);
            forEachSwitchState([&](bool simd_on, bool vmath_on) {
                FastSampler bulk_sampler(dist);
                Rng bulk_rng(seed);
                std::vector<double> bulk(n, -1.0);
                bulk_sampler.sampleN(bulk_rng, bulk.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(bitsOf(bulk[i]), bitsOf(ref[i]))
                        << "seed " << seed << " n " << n << " i " << i
                        << " simd " << simd_on << " vmath "
                        << vmath_on;
            });
        }
    }
}

/** Bounded-Pareto sampleN (batched draw side, scalar pow) == n
 *  per-sample draws in every switch state. */
TEST(VmathDiff, ParetoSampleNMatchesPerSampleEveryState)
{
    DistributionPtr dist = makeBoundedPareto(1.0, 1000.0, 1.1);
    const std::size_t counts[] = {1, 5, 255, 256, 257, 1000};
    for (std::uint64_t seed : kSeeds) {
        for (std::size_t n : counts) {
            FastSampler per_sampler(dist);
            Rng per_rng(seed);
            std::vector<double> ref(n);
            for (std::size_t i = 0; i < n; ++i)
                ref[i] = per_sampler.sample(per_rng);
            forEachSwitchState([&](bool simd_on, bool vmath_on) {
                FastSampler bulk_sampler(dist);
                Rng bulk_rng(seed);
                std::vector<double> bulk(n, -1.0);
                bulk_sampler.sampleN(bulk_rng, bulk.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(bitsOf(bulk[i]), bitsOf(ref[i]))
                        << "seed " << seed << " n " << n << " i " << i
                        << " simd " << simd_on << " vmath "
                        << vmath_on;
            });
        }
    }
}

/** SyntheticStream's dep draws route through vmath: the op stream
 *  must be identical with the kernels forced off. */
TEST(VmathDiff, SyntheticStreamSwitchInvariant)
{
    WorkloadParams params; // defaults exercise every op class
    for (std::uint64_t seed : kSeeds) {
        SyntheticStream fast(params, Rng(seed).fork(2));
        SyntheticStream slow(params, Rng(seed).fork(2));
        const std::size_t sizes[] = {1, 3, 97, kOpBlockCapacity};
        for (int round = 0; round < 100; ++round) {
            const std::size_t bs = sizes[round % 4];
            OpBlock a, b;
            fast.fillOpsInto(a, bs);
            {
                VmathFlagGuard guard(false);
                slow.fillOpsInto(b, bs);
            }
            for (std::size_t i = 0; i < bs; ++i) {
                const MicroOp va = a.get(i);
                const MicroOp vb = b.get(i);
                ASSERT_EQ(static_cast<int>(va.cls),
                          static_cast<int>(vb.cls));
                ASSERT_EQ(va.pc, vb.pc);
                ASSERT_EQ(va.mem_addr, vb.mem_addr);
                ASSERT_EQ(va.taken, vb.taken);
                ASSERT_EQ(va.dep1, vb.dep1);
                ASSERT_EQ(va.dep2, vb.dep2);
                ASSERT_EQ(va.stall_us, vb.stall_us);
                ASSERT_EQ(va.end_of_request, vb.end_of_request);
            }
        }
    }
}

/** Rng::exponential routes through vmath and is switch-invariant. */
TEST(VmathDiff, RngExponentialSwitchInvariant)
{
    for (std::uint64_t seed : kSeeds) {
        Rng fast(seed), slow(seed);
        for (int i = 0; i < 10000; ++i) {
            const double a = fast.exponential(3.25);
            double b;
            {
                VmathFlagGuard guard(false);
                b = slow.exponential(3.25);
            }
            ASSERT_EQ(bitsOf(a), bitsOf(b)) << "draw " << i;
        }
    }
}

/** Switch mechanics: setVmathEnabled returns the previous value, the
 *  compile-time pin wins, and vmathActive() implies vmathEnabled(). */
TEST(VmathDiff, SwitchSemantics)
{
    ASSERT_EQ(vmath::vmathEnabled(), vmath::kVmathCompiled);
    {
        VmathFlagGuard guard(false);
        ASSERT_FALSE(vmath::vmathEnabled());
        ASSERT_FALSE(vmath::vmathActive());
        // Nested toggling must report the value it replaced.
        ASSERT_FALSE(vmath::setVmathEnabled(false));
    }
    ASSERT_EQ(vmath::vmathEnabled(), vmath::kVmathCompiled);
    if (vmath::vmathActive()) {
        // An active probe means the kernels ran somewhere above;
        // the activation counter must reflect block traffic.
        double u[4] = {0.5, 0.25, 0.75, 0.125};
        double o[4];
        const std::uint64_t before = vmath::vmathBlockLanes();
        vmath::log1pNegBlock(u, o, 4);
        ASSERT_EQ(vmath::vmathBlockLanes(), before + 4);
    }
}
