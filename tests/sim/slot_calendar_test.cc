/**
 * @file
 * Bandwidth-calendar tests: per-cycle slot limits, out-of-order
 * reservations, and window sliding.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/rng.hh"
#include "sim/slot_calendar.hh"

using namespace duplexity;

TEST(SlotCalendar, GrantsUpToWidthPerCycle)
{
    SlotCalendar cal(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(cal.reserve(10), 10u);
    EXPECT_EQ(cal.reserve(10), 11u);
}

TEST(SlotCalendar, SpillsAcrossSaturatedCycles)
{
    SlotCalendar cal(1);
    EXPECT_EQ(cal.reserve(5), 5u);
    EXPECT_EQ(cal.reserve(5), 6u);
    EXPECT_EQ(cal.reserve(5), 7u);
    EXPECT_EQ(cal.reserve(6), 8u);
}

TEST(SlotCalendar, OutOfOrderReservationsAreHonored)
{
    SlotCalendar cal(1);
    EXPECT_EQ(cal.reserve(100), 100u);
    // An earlier request still gets its own earlier slot.
    EXPECT_EQ(cal.reserve(50), 50u);
    EXPECT_EQ(cal.reserve(100), 101u);
}

TEST(SlotCalendar, TryReserveAtRespectsOccupancy)
{
    SlotCalendar cal(2);
    EXPECT_TRUE(cal.tryReserveAt(9));
    EXPECT_TRUE(cal.tryReserveAt(9));
    EXPECT_FALSE(cal.tryReserveAt(9));
    EXPECT_EQ(cal.occupancy(9), 2u);
}

TEST(SlotCalendar, RetireBeforeFreesSlots)
{
    SlotCalendar cal(1);
    cal.reserve(3);
    cal.retireBefore(10);
    // Requests before the retirement point are clamped forward.
    EXPECT_GE(cal.reserve(3), 10u);
}

TEST(SlotCalendar, FarFutureJumpSlidesWindow)
{
    SlotCalendar cal(1, 64);
    EXPECT_EQ(cal.reserve(1), 1u);
    // A reservation far past the window must still succeed.
    EXPECT_EQ(cal.reserve(1000000), 1000000u);
    EXPECT_EQ(cal.reserve(1000000), 1000001u);
}

TEST(SlotCalendar, ResetRestoresCleanState)
{
    SlotCalendar cal(1);
    cal.reserve(5);
    cal.reset();
    EXPECT_EQ(cal.reserve(5), 5u);
}

/** Property: with random arrivals, no cycle ever exceeds its width. */
class SlotCalendarWidth : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SlotCalendarWidth, NeverExceedsWidth)
{
    const std::uint32_t width = GetParam();
    SlotCalendar cal(width, 4096);
    Rng rng(42);
    std::map<Cycle, std::uint32_t> granted;
    for (int i = 0; i < 20000; ++i) {
        Cycle ask = 100 + rng.below(1000);
        Cycle got = cal.reserve(ask);
        EXPECT_GE(got, ask);
        ++granted[got];
    }
    for (const auto &[cycle, count] : granted)
        EXPECT_LE(count, width) << "cycle " << cycle;
}

INSTANTIATE_TEST_SUITE_P(Widths, SlotCalendarWidth,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(SlotCalendar, EarliestFreeSlotIsChosen)
{
    SlotCalendar cal(2);
    cal.reserve(10);
    cal.reserve(10);
    cal.reserve(11);
    // Cycle 11 has one slot left; a request for 10 lands there.
    EXPECT_EQ(cal.reserve(10), 11u);
}
