/**
 * @file
 * Dyad memory-system tests: path latencies, the +3-cycle dyad link,
 * L0 write-through + inclusion (the Section III-B3 mechanisms), and
 * prefetcher coverage.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

using namespace duplexity;

namespace
{

MemSystemConfig
config()
{
    return MemSystemConfig::makeDefault();
}

} // namespace

TEST(MemorySystem, MasterL1HitLatency)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.masterPath();
    path.load(0x4000, 0); // warm TLB + caches
    Cycle latency = path.load(0x4000, 100);
    EXPECT_EQ(latency, mem.config().l1d.hit_latency);
}

TEST(MemorySystem, ColdLoadReachesDram)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.masterPath();
    std::uint64_t dram_before = mem.dram().accesses();
    path.load(0x123450000, 0);
    EXPECT_EQ(mem.dram().accesses(), dram_before + 1);
}

TEST(MemorySystem, LlcHitCheaperThanDram)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.masterPath();
    path.load(0x8000, 0);             // fills L1 + LLC
    mem.masterL1d().invalidate(0x8000);
    Cycle llc_hit = path.load(0x8000, 1000);
    mem.masterL1d().invalidate(0x9990000);
    Cycle dram_ref = path.load(0x9990000, 2000);
    EXPECT_LT(llc_hit, dram_ref);
}

TEST(MemorySystem, RemoteFillerPathPaysLinkLatency)
{
    DyadMemorySystem mem(config());
    // Warm the lender L1 with the line.
    mem.lenderPath().load(0xA000, 0);
    // Access it through the filler remote path; the L0 misses and the
    // request crosses the dyad link to the lender L1.
    std::uint64_t link_before = mem.dyadLinkD().traversals();
    Cycle latency = mem.fillerRemotePath().load(0xA000, 100);
    EXPECT_EQ(mem.dyadLinkD().traversals(), link_before + 1);
    // L0 hit latency + link + lender L1 hit, plus TLB effects >= 6.
    EXPECT_GE(latency, mem.config().l0d.hit_latency +
                           mem.config().dyad_link_cycles +
                           mem.config().l1d.hit_latency);
}

TEST(MemorySystem, L0AbsorbsRepeatedAccess)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.fillerRemotePath();
    path.load(0xB000, 0);
    std::uint64_t link_before = mem.dyadLinkD().traversals();
    Cycle latency = path.load(0xB000, 50);
    // Second access hits the L0: no link traversal.
    EXPECT_EQ(mem.dyadLinkD().traversals(), link_before);
    EXPECT_EQ(latency, mem.config().l0d.hit_latency);
}

TEST(MemorySystem, L0StoresWriteThroughToLenderL1)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.fillerRemotePath();
    path.store(0xC000, 0);
    // The store propagated through the L0 into the lender L1.
    EXPECT_TRUE(mem.lenderL1d().probe(0xC000));
}

TEST(MemorySystem, LenderEvictionInvalidatesL0Inclusion)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.fillerRemotePath();
    path.load(0xD000, 0);
    ASSERT_TRUE(mem.l0d().probe(0xD000));
    // Force the lender L1 to drop the line; inclusion forwarding must
    // invalidate the L0 copy.
    mem.lenderL1d().invalidate(0xD000);
    EXPECT_FALSE(mem.l0d().probe(0xD000));
}

TEST(MemorySystem, FillerLocalPathSharesMasterCaches)
{
    DyadMemorySystem mem(config());
    mem.fillerLocalPath().load(0xE000, 0);
    EXPECT_TRUE(mem.masterL1d().probe(0xE000));
}

TEST(MemorySystem, ReplicatedPathLeavesMasterCachesAlone)
{
    DyadMemorySystem mem(config());
    mem.fillerReplicatedPath().load(0xF000, 0);
    EXPECT_FALSE(mem.masterL1d().probe(0xF000));
    EXPECT_TRUE(mem.replL1d().probe(0xF000));
}

TEST(MemorySystem, RemotePathLeavesMasterCachesAlone)
{
    DyadMemorySystem mem(config());
    mem.fillerRemotePath().load(0xF100, 0);
    mem.fillerRemotePath().fetch(0xF200, 0);
    EXPECT_FALSE(mem.masterL1d().probe(0xF100));
    EXPECT_FALSE(mem.masterL1i().probe(0xF200));
}

TEST(MemorySystem, MasterAndLenderTlbsAreSeparate)
{
    DyadMemorySystem mem(config());
    mem.masterPath().load(0x10000, 0);
    EXPECT_TRUE(mem.masterDtlb().probe(0x10000));
    EXPECT_FALSE(mem.fillerDtlb().probe(0x10000));
}

TEST(MemorySystem, PrefetcherCoversAscendingStream)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.masterPath();
    // Ascending line stream: after two misses train the stream, the
    // following misses should be covered (cheap).
    Cycle first = path.load(0x100000, 0);
    path.load(0x100040, 10);
    Cycle covered = path.load(0x100080, 20);
    EXPECT_GT(first, covered);
    EXPECT_LE(covered, mem.config().l1d.hit_latency +
                           mem.config().l1d.prefetch_latency +
                           mem.config().dtlb.l2_latency);
}

TEST(MemorySystem, DramLatencyFollowsFrequency)
{
    MemSystemConfig slow = config();
    slow.frequency = Frequency(1.0e9);
    MemSystemConfig fast = config();
    fast.frequency = Frequency(4.0e9);
    DyadMemorySystem a(slow), b(fast);
    Cycle la = a.masterPath().load(0x77770000, 0);
    Cycle lb = b.masterPath().load(0x77770000, 0);
    EXPECT_LT(la, lb); // fewer cycles for 50ns at 1 GHz
}

TEST(MemorySystem, ResetStatsClearsCounters)
{
    DyadMemorySystem mem(config());
    mem.masterPath().load(0x5000, 0);
    mem.resetStats();
    EXPECT_EQ(mem.masterL1d().stats().accesses(), 0u);
    EXPECT_EQ(mem.llc().stats().accesses(), 0u);
}

TEST(MemorySystem, StoresReachLowerLevelsOnlyOnEviction)
{
    DyadMemorySystem mem(config());
    MemPath path = mem.masterPath();
    path.store(0x20000, 0);
    std::uint64_t wb_before = mem.masterL1d().stats().writebacks;
    // Write-back cache: a clean re-read doesn't write back.
    path.load(0x20000, 10);
    EXPECT_EQ(mem.masterL1d().stats().writebacks, wb_before);
}
