/**
 * @file
 * Two-level TLB tests: hit/miss latencies, capacity, and flush.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

using namespace duplexity;

namespace
{

TlbConfig
smallTlb()
{
    TlbConfig cfg;
    cfg.entries = 16;
    cfg.l2_entries = 64;
    cfg.page_bytes = 4096;
    cfg.l2_latency = 8;
    cfg.walk_latency = 40;
    return cfg;
}

} // namespace

TEST(Tlb, ColdAccessWalks)
{
    Tlb tlb(smallTlb());
    EXPECT_EQ(tlb.access(0x1000), 40u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, WarmAccessHits)
{
    Tlb tlb(smallTlb());
    tlb.access(0x1000);
    EXPECT_EQ(tlb.access(0x1000), 0u);
    EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(Tlb, SamePageDifferentOffsetHits)
{
    Tlb tlb(smallTlb());
    tlb.access(0x2000);
    EXPECT_EQ(tlb.access(0x2FFF), 0u);
}

TEST(Tlb, L2CatchesL1CapacityEvictions)
{
    Tlb tlb(smallTlb());
    // Touch 32 pages: more than L1 (16) but within L2 (64).
    for (Addr p = 0; p < 32; ++p)
        tlb.access(p * 4096);
    // Re-touch the first page: L1 has evicted it, L2 should hit.
    Cycle latency = tlb.access(0);
    EXPECT_EQ(latency, 8u);
    EXPECT_GE(tlb.stats().l2_hits, 1u);
}

TEST(Tlb, BeyondL2CapacityWalksAgain)
{
    Tlb tlb(smallTlb());
    for (Addr p = 0; p < 512; ++p)
        tlb.access(p * 4096);
    std::uint64_t walks_before = tlb.stats().misses;
    tlb.access(0); // long evicted everywhere
    EXPECT_EQ(tlb.stats().misses, walks_before + 1);
}

TEST(Tlb, FlushForcesWalks)
{
    Tlb tlb(smallTlb());
    tlb.access(0x5000);
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0x5000));
    EXPECT_EQ(tlb.access(0x5000), 40u);
}

TEST(Tlb, ProbeDoesNotTrain)
{
    Tlb tlb(smallTlb());
    EXPECT_FALSE(tlb.probe(0x9000));
    EXPECT_EQ(tlb.stats().accesses(), 0u);
}

TEST(Tlb, MissRateComputed)
{
    Tlb tlb(smallTlb());
    tlb.access(0x1000);
    tlb.access(0x1000);
    EXPECT_NEAR(tlb.stats().missRate(), 0.5, 1e-12);
}

TEST(Tlb, DisabledL2GoesStraightToWalk)
{
    TlbConfig cfg = smallTlb();
    cfg.l2_entries = 0;
    Tlb tlb(cfg);
    for (Addr p = 0; p < 32; ++p)
        tlb.access(p * 4096);
    EXPECT_EQ(tlb.access(0), 40u);
    EXPECT_EQ(tlb.stats().l2_hits, 0u);
}

/** Property: a page set within L1 reach never misses after warmup. */
class TlbReach : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TlbReach, ResidentPagesHit)
{
    Tlb tlb(TlbConfig{});
    const std::uint32_t pages = GetParam();
    for (int round = 0; round < 3; ++round) {
        for (Addr p = 0; p < pages; ++p)
            tlb.access(p * 4096);
    }
    std::uint64_t misses = tlb.stats().misses;
    std::uint64_t l2 = tlb.stats().l2_hits;
    for (Addr p = 0; p < pages; ++p)
        tlb.access(p * 4096);
    EXPECT_EQ(tlb.stats().misses, misses);
    EXPECT_EQ(tlb.stats().l2_hits, l2);
}

INSTANTIATE_TEST_SUITE_P(PageCounts, TlbReach,
                         ::testing::Values(4u, 8u, 16u));
