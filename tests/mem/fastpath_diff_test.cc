/**
 * @file
 * Fast-path vs. slow-path differential wall for the memory hierarchy.
 *
 * Every suite drives the same deterministic access sequence through a
 * fast-path-enabled model and a forced-slow reference (the legacy
 * scan-only behaviour) and compares results access-by-access and the
 * stats structs field-by-field. This is the proof obligation behind
 * the bit-identical contract in DESIGN.md: the MRU line filter in
 * Cache, the one-entry VPN filter in Tlb, and the inline CachePort
 * hit path must be pure strength reductions — no observable output,
 * counter, or timestamp may change.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/tlb.hh"
#include "sim/rng.hh"

using namespace duplexity;

namespace
{

/** Thread-style disjoint address regions (workload/catalog.cc). */
Addr
region(std::uint64_t uid)
{
    return (Addr(0x100) + uid) << 32;
}

void
expectSameCacheStats(const CacheStats &fast, const CacheStats &slow)
{
    EXPECT_EQ(fast.hits, slow.hits);
    EXPECT_EQ(fast.misses, slow.misses);
    EXPECT_EQ(fast.evictions, slow.evictions);
    EXPECT_EQ(fast.writebacks, slow.writebacks);
    EXPECT_EQ(fast.invalidations, slow.invalidations);
}

void
expectSameTlbStats(const TlbStats &fast, const TlbStats &slow)
{
    EXPECT_EQ(fast.hits, slow.hits);
    EXPECT_EQ(fast.l2_hits, slow.l2_hits);
    EXPECT_EQ(fast.misses, slow.misses);
}

CacheConfig
smallCache(bool write_through)
{
    CacheConfig cfg;
    cfg.name = "diff";
    cfg.size_bytes = 16 * 64; // 8 sets x 2 ways
    cfg.line_bytes = 64;
    cfg.assoc = 2;
    cfg.hit_latency = 2;
    cfg.ports = 2;
    cfg.write_through = write_through;
    return cfg;
}

/** One deterministic access: address, write flag, issue cycle. */
struct Access
{
    Addr addr;
    bool write;
    Cycle now;
};

/** MRU-friendly bursts with conflict churn across two requestors. */
std::vector<Access>
mixedSequence(std::size_t n)
{
    std::vector<Access> seq;
    seq.reserve(n);
    Rng rng(0xfa57'd1ffull);
    Cycle now = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t uid = rng.next() % 2;
        // Small per-requestor footprint: repeats hit the MRU filter,
        // the tail forces conflict misses and evictions.
        const Addr line = rng.next() % 24;
        const Addr addr = region(uid) + line * 64 + (rng.next() % 64);
        const bool write = (rng.next() % 4) == 0;
        now += rng.next() % 3;
        seq.push_back({addr, write, now});
    }
    return seq;
}

} // namespace

TEST(CacheFastSlow, MixedSequenceIdentical)
{
    for (bool write_through : {false, true}) {
        Cache fast(smallCache(write_through));
        Cache slow(smallCache(write_through));
        slow.setFastPathEnabled(false);
        ASSERT_TRUE(fast.fastPathEnabled());
        ASSERT_FALSE(slow.fastPathEnabled());

        for (const Access &a : mixedSequence(20'000)) {
            CacheAccessResult rf = fast.access(a.addr, a.write, a.now);
            CacheAccessResult rs = slow.access(a.addr, a.write, a.now);
            ASSERT_EQ(rf.hit, rs.hit) << "addr " << a.addr;
            ASSERT_EQ(rf.latency, rs.latency) << "addr " << a.addr;
            ASSERT_EQ(rf.writeback, rs.writeback) << "addr " << a.addr;
        }
        expectSameCacheStats(fast.stats(), slow.stats());
        EXPECT_EQ(fast.validLines(), slow.validLines());
    }
}

TEST(CacheFastSlow, InvalidationsClearStaleMruEntries)
{
    Cache fast(smallCache(false));
    Cache slow(smallCache(false));
    slow.setFastPathEnabled(false);

    const Addr a = region(0) + 0x40;
    const Addr b = region(1) + 0x40;
    Rng rng(7);
    Cycle now = 0;
    for (int round = 0; round < 1'000; ++round) {
        // Warm the MRU filter, then invalidate the exact line it
        // records; the next access must miss identically.
        for (Cache *c : {&fast, &slow}) {
            c->access(a, false, now);
            c->access(a, true, now + 1);
            c->access(b, false, now + 2);
        }
        if (rng.next() % 2) {
            fast.invalidate(a);
            slow.invalidate(a);
        } else {
            fast.invalidateAll();
            slow.invalidateAll();
        }
        CacheAccessResult rf = fast.access(a, false, now + 3);
        CacheAccessResult rs = slow.access(a, false, now + 3);
        ASSERT_EQ(rf.hit, rs.hit);
        ASSERT_FALSE(rf.hit); // the invalidation really dropped it
        ASSERT_EQ(rf.latency, rs.latency);
        now += 8;
    }
    expectSameCacheStats(fast.stats(), slow.stats());
}

TEST(CacheFastSlow, EvictionListenerSeesIdenticalLines)
{
    Cache fast(smallCache(false));
    Cache slow(smallCache(false));
    slow.setFastPathEnabled(false);
    std::vector<Addr> fast_evicted;
    std::vector<Addr> slow_evicted;
    fast.setEvictionListener(
        [&fast_evicted](Addr line) { fast_evicted.push_back(line); });
    slow.setEvictionListener(
        [&slow_evicted](Addr line) { slow_evicted.push_back(line); });

    for (const Access &a : mixedSequence(20'000)) {
        fast.access(a.addr, a.write, a.now);
        slow.access(a.addr, a.write, a.now);
    }
    ASSERT_FALSE(fast_evicted.empty());
    EXPECT_EQ(fast_evicted, slow_evicted);
    expectSameCacheStats(fast.stats(), slow.stats());
}

TEST(CacheFastSlow, MruHitAfterEvictionOfRecordedLine)
{
    // Two lines in the same set from the same requestor: evicting the
    // MRU-recorded line via conflict pressure must not let the filter
    // lie (self-validation: the way no longer holds the tag).
    Cache fast(smallCache(false));
    Cache slow(smallCache(false));
    slow.setFastPathEnabled(false);
    const Addr base = region(0);
    // 8 sets: lines 0, 8, 16 alias into set 0.
    const Addr l0 = base + 0 * 64;
    const Addr l1 = base + 8 * 64;
    const Addr l2 = base + 16 * 64;
    for (int i = 0; i < 1'000; ++i) {
        for (Cache *c : {&fast, &slow}) {
            c->access(l0, false, 0); // MRU records l0
            c->access(l1, false, 1);
            c->access(l2, false, 2); // evicts l0 (LRU)
        }
        CacheAccessResult rf = fast.access(l0, false, 3);
        CacheAccessResult rs = slow.access(l0, false, 3);
        ASSERT_EQ(rf.hit, rs.hit);
        ASSERT_FALSE(rf.hit);
        ASSERT_EQ(rf.latency, rs.latency);
    }
    expectSameCacheStats(fast.stats(), slow.stats());
}

TEST(TlbFastSlow, MixedSequenceWithShootdownsIdentical)
{
    Tlb fast{TlbConfig{}};
    Tlb slow{TlbConfig{}};
    slow.setFastPathEnabled(false);
    ASSERT_TRUE(fast.fastPathEnabled());

    Rng rng(0x71b5ull);
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t uid = rng.next() % 2;
        // Page-grained bursts: repeats hit the VPN filter, the spread
        // exercises L1 displacement, L2 hits, and full walks.
        const Addr page = rng.next() % 300;
        const Addr addr = region(uid) + page * 4096 + (rng.next() % 4096);
        Cycle lf = fast.access(addr);
        Cycle ls = slow.access(addr);
        ASSERT_EQ(lf, ls) << "addr " << addr;
        ASSERT_EQ(fast.probe(addr), slow.probe(addr));
        if (rng.next() % 1024 == 0) {
            // TLB shootdown: the VPN filter must not survive it.
            fast.flush();
            slow.flush();
        }
    }
    expectSameTlbStats(fast.stats(), slow.stats());
}

TEST(DyadFastSlow, FillerPathInclusionIdentical)
{
    // Full-system differential: the Duplexity filler path (L0 filters
    // -> link -> lender L1s) exercises write-through posted stores,
    // the lender-L1 eviction listener, and the L0 invalidations that
    // maintain inclusion — all of which must be invisible to the MRU
    // and VPN filters.
    MemSystemConfig cfg = MemSystemConfig::makeDefault();
    DyadMemorySystem fast(cfg);
    DyadMemorySystem slow(cfg);
    slow.setFastPathsEnabled(false);

    MemPath fast_filler = fast.fillerRemotePath();
    MemPath slow_filler = slow.fillerRemotePath();
    MemPath fast_lender = fast.lenderPath();
    MemPath slow_lender = slow.lenderPath();

    Rng rng(0xdba9ull);
    Cycle now = 0;
    for (int i = 0; i < 60'000; ++i) {
        const Addr faddr =
            region(2) + (rng.next() % (512 * 1024));
        const Addr laddr =
            region(3) + (rng.next() % (256 * 1024));
        now += rng.next() % 4;
        const std::uint32_t kind = rng.next() % 4;
        Cycle lf;
        Cycle ls;
        if (kind == 0) {
            lf = fast_filler.store(faddr, now);
            ls = slow_filler.store(faddr, now);
        } else if (kind == 1) {
            lf = fast_filler.load(faddr, now);
            ls = slow_filler.load(faddr, now);
        } else if (kind == 2) {
            lf = fast_filler.fetch(faddr, now);
            ls = slow_filler.fetch(faddr, now);
        } else {
            // Lender-side churn evicts lender-L1 lines and triggers
            // the inclusion invalidations into the L0 filters.
            lf = fast_lender.load(laddr, now);
            ls = slow_lender.load(laddr, now);
        }
        ASSERT_EQ(lf, ls) << "op " << i;
    }

    // The sequence must actually have exercised the inclusion wiring.
    EXPECT_GT(fast.l0d().stats().invalidations +
                  fast.l0i().stats().invalidations,
              0u);

    expectSameCacheStats(fast.l0i().stats(), slow.l0i().stats());
    expectSameCacheStats(fast.l0d().stats(), slow.l0d().stats());
    expectSameCacheStats(fast.lenderL1i().stats(),
                         slow.lenderL1i().stats());
    expectSameCacheStats(fast.lenderL1d().stats(),
                         slow.lenderL1d().stats());
    expectSameCacheStats(fast.llc().stats(), slow.llc().stats());
    expectSameTlbStats(fast.fillerItlb().stats(),
                       slow.fillerItlb().stats());
    expectSameTlbStats(fast.fillerDtlb().stats(),
                       slow.fillerDtlb().stats());
    EXPECT_EQ(fast.dram().accesses(), slow.dram().accesses());
    EXPECT_EQ(fast.dyadLinkI().traversals(),
              slow.dyadLinkI().traversals());
    EXPECT_EQ(fast.dyadLinkD().traversals(),
              slow.dyadLinkD().traversals());
}
