/**
 * @file
 * Stream-prefetcher tests: stream detection, multi-stream tracking,
 * pollution resistance, and table replacement.
 */

#include <gtest/gtest.h>

#include "mem/prefetcher.hh"
#include "sim/rng.hh"

using namespace duplexity;

TEST(StreamPrefetcher, FirstAccessTrains)
{
    StreamPrefetcher pf;
    EXPECT_FALSE(pf.access(100));
    EXPECT_EQ(pf.trainedCount(), 1u);
    EXPECT_EQ(pf.coveredCount(), 0u);
}

TEST(StreamPrefetcher, AscendingStreamCoveredAfterFirstMiss)
{
    StreamPrefetcher pf;
    pf.access(100);
    for (Addr line = 101; line < 140; ++line)
        EXPECT_TRUE(pf.access(line)) << "line " << line;
    EXPECT_EQ(pf.coveredCount(), 39u);
}

TEST(StreamPrefetcher, RandomLinesNotCovered)
{
    StreamPrefetcher pf;
    Rng rng(1);
    int covered = 0;
    for (int i = 0; i < 1000; ++i)
        covered += pf.access(rng.below(1 << 24));
    EXPECT_LT(covered, 5);
}

TEST(StreamPrefetcher, TracksMultipleInterleavedStreams)
{
    StreamPrefetcher pf;
    // Four interleaved ascending streams.
    Addr bases[4] = {1000, 5000, 9000, 13000};
    for (Addr &b : bases)
        pf.access(b);
    int covered = 0;
    for (int step = 1; step <= 20; ++step) {
        for (Addr b : {1000, 5000, 9000, 13000})
            covered += pf.access(b + step);
    }
    EXPECT_EQ(covered, 80);
}

TEST(StreamPrefetcher, StrideTwoNotCovered)
{
    // Only unit-stride line streams are modeled.
    StreamPrefetcher pf;
    pf.access(100);
    int covered = 0;
    for (Addr line = 102; line < 140; line += 2)
        covered += pf.access(line);
    EXPECT_EQ(covered, 0);
}

TEST(StreamPrefetcher, SurvivesModeratePollution)
{
    StreamPrefetcher pf;
    Rng rng(2);
    pf.access(1000);
    int covered = 0;
    for (int i = 1; i <= 30; ++i) {
        // One random (polluting) miss per stream advance; the 16-entry
        // table keeps the stream alive.
        pf.access(rng.below(1 << 24));
        covered += pf.access(1000 + i);
    }
    EXPECT_GT(covered, 25);
}

TEST(StreamPrefetcher, HeavyPollutionEvictsStreams)
{
    StreamPrefetcher pf;
    Rng rng(3);
    pf.access(1000);
    // 40 random misses cycle the whole 16-entry table.
    for (int i = 0; i < 40; ++i)
        pf.access(rng.below(1 << 24));
    EXPECT_FALSE(pf.access(1001));
}
