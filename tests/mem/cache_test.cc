/**
 * @file
 * Cache model tests: hits/misses, LRU, write policies, invalidation,
 * eviction callbacks, and port contention.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"

using namespace duplexity;

namespace
{

CacheConfig
tinyCache()
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.size_bytes = 4 * 64;   // 4 lines
    cfg.line_bytes = 64;
    cfg.assoc = 2;             // 2 sets x 2 ways
    cfg.hit_latency = 2;
    cfg.ports = 4;
    return cfg;
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false, 0).hit);
    EXPECT_TRUE(cache.access(0x1000, false, 0).hit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache cache(tinyCache());
    cache.access(0x1000, false, 0);
    EXPECT_TRUE(cache.access(0x1038, false, 0).hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(tinyCache()); // 2 sets: line addr bit 6 selects set
    // Three lines mapping to set 0: line addrs 0, 2, 4 (x 64).
    cache.access(0 * 64, false, 0);
    cache.access(2 * 64, false, 0);
    cache.access(0 * 64, false, 1); // touch 0: now 2 is LRU
    cache.access(4 * 64, false, 2); // evicts 2
    EXPECT_TRUE(cache.probe(0 * 64));
    EXPECT_FALSE(cache.probe(2 * 64));
    EXPECT_TRUE(cache.probe(4 * 64));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache cache(tinyCache());
    cache.access(0 * 64, true, 0);  // dirty line in set 0
    cache.access(2 * 64, false, 0);
    CacheAccessResult res = cache.access(4 * 64, false, 0);
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughNeverDirty)
{
    CacheConfig cfg = tinyCache();
    cfg.write_through = true;
    Cache cache(cfg);
    cache.access(0 * 64, true, 0);
    cache.access(2 * 64, false, 0);
    CacheAccessResult res = cache.access(4 * 64, false, 0);
    EXPECT_FALSE(res.writeback); // line was clean
    // The store itself was propagated downstream.
    EXPECT_GE(cache.stats().writebacks, 1u);
}

TEST(Cache, NoWriteAllocateSkipsFill)
{
    CacheConfig cfg = tinyCache();
    cfg.write_allocate = false;
    Cache cache(cfg);
    cache.access(0x2000, true, 0);
    EXPECT_FALSE(cache.probe(0x2000));
}

TEST(Cache, InvalidateDropsLine)
{
    Cache cache(tinyCache());
    cache.access(0x1000, false, 0);
    cache.invalidate(0x1000);
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, InvalidateMissingLineIsNoop)
{
    Cache cache(tinyCache());
    cache.invalidate(0x1000);
    EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(Cache, InvalidateAllEmptiesCache)
{
    Cache cache(tinyCache());
    cache.access(0x0, false, 0);
    cache.access(0x40, false, 0);
    EXPECT_EQ(cache.validLines(), 2u);
    cache.invalidateAll();
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(Cache, EvictionListenerSeesVictimLineAddress)
{
    Cache cache(tinyCache());
    std::vector<Addr> evicted;
    cache.setEvictionListener(
        [&](Addr line) { evicted.push_back(line); });
    cache.access(0 * 64, false, 0);
    cache.access(2 * 64, false, 0);
    cache.access(4 * 64, false, 0); // evicts line 0
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0u * 64);
}

TEST(Cache, PortContentionDelaysBurst)
{
    CacheConfig cfg = tinyCache();
    cfg.ports = 1;
    Cache cache(cfg);
    cache.access(0x0, false, 10);
    CacheAccessResult second = cache.access(0x0, false, 10);
    EXPECT_EQ(second.latency, cfg.hit_latency + 1);
}

TEST(Cache, HitLatencyReportedWhenUncontended)
{
    Cache cache(tinyCache());
    CacheAccessResult res = cache.access(0x0, false, 100);
    EXPECT_EQ(res.latency, 2u);
}

TEST(Cache, StatsAccessorsConsistent)
{
    Cache cache(tinyCache());
    for (int i = 0; i < 10; ++i)
        cache.access(static_cast<Addr>(i) * 64, false, i);
    EXPECT_EQ(cache.stats().accesses(),
              cache.stats().hits + cache.stats().misses);
    EXPECT_GT(cache.stats().missRate(), 0.0);
}

/** Property: a working set within capacity converges to all hits. */
class CacheCapacity : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheCapacity, ResidentSetAlwaysHitsAfterWarmup)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cfg.line_bytes = 64;
    cfg.assoc = GetParam();
    Cache cache(cfg);
    const int lines = 256; // 16KB working set, fits easily
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < lines; ++i)
            cache.access(static_cast<Addr>(i) * 64, false, 0);
    }
    std::uint64_t misses_before = cache.stats().misses;
    for (int i = 0; i < lines; ++i)
        cache.access(static_cast<Addr>(i) * 64, false, 0);
    EXPECT_EQ(cache.stats().misses, misses_before);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheCapacity,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(CacheDeath, BadGeometryPanics)
{
    CacheConfig cfg;
    cfg.size_bytes = 3000; // not a power-of-two set count
    cfg.line_bytes = 64;
    cfg.assoc = 2;
    EXPECT_DEATH(Cache cache(cfg), "power of two");
}
