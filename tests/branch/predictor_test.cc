/**
 * @file
 * Branch hardware tests: learning behaviour of each predictor, the
 * tournament chooser, BTB replacement, and RAS semantics.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "sim/rng.hh"

using namespace duplexity;

namespace
{

/** Train on a deterministic generator; return mispredict rate. */
template <typename Gen>
double
trainRate(BranchPredictor &pred, Gen gen, int n = 20000,
          int warmup = 2000)
{
    int wrong = 0;
    for (int i = 0; i < n; ++i) {
        auto [pc, taken] = gen(i);
        bool correct = pred.predictAndUpdate(pc, taken);
        if (i >= warmup && !correct)
            ++wrong;
    }
    return static_cast<double>(wrong) / (n - warmup);
}

} // namespace

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor pred(1024);
    double rate = trainRate(
        pred, [](int) { return std::pair<Addr, bool>{0x40, true}; });
    EXPECT_EQ(rate, 0.0);
}

TEST(Bimodal, TracksBiasedRandomNearEntropy)
{
    BimodalPredictor pred(1024);
    Rng rng(1);
    double rate = trainRate(pred, [&](int) {
        return std::pair<Addr, bool>{0x40, rng.chance(0.9)};
    });
    // Best achievable is ~10% on a 90/10 branch.
    EXPECT_NEAR(rate, 0.10, 0.03);
}

TEST(Bimodal, IndependentCounters)
{
    BimodalPredictor pred(1024);
    trainRate(pred, [](int) {
        return std::pair<Addr, bool>{0x40, true};
    }, 100, 0);
    trainRate(pred, [](int) {
        return std::pair<Addr, bool>{0x44, false};
    }, 100, 0);
    EXPECT_TRUE(pred.predict(0x40));
    EXPECT_FALSE(pred.predict(0x44));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor pred(4096, 8);
    double rate = trainRate(pred, [](int i) {
        return std::pair<Addr, bool>{0x80, i % 2 == 0};
    });
    EXPECT_LT(rate, 0.01);
}

TEST(Gshare, LearnsShortLoopPattern)
{
    GsharePredictor pred(4096, 10);
    // Loop with period 5: taken 4x, not-taken once.
    double rate = trainRate(pred, [](int i) {
        return std::pair<Addr, bool>{0x80, i % 5 != 4};
    });
    EXPECT_LT(rate, 0.02);
}

TEST(Bimodal, CannotLearnAlternatingPattern)
{
    BimodalPredictor pred(4096);
    double rate = trainRate(pred, [](int i) {
        return std::pair<Addr, bool>{0x80, i % 2 == 0};
    });
    // A 2-bit counter oscillates on alternation.
    EXPECT_GT(rate, 0.4);
}

TEST(Tournament, MatchesGshareOnPatterns)
{
    TournamentPredictor pred(4096, 4096, 4096, 10);
    double rate = trainRate(pred, [](int i) {
        return std::pair<Addr, bool>{0x80, i % 4 != 3};
    });
    EXPECT_LT(rate, 0.02);
}

TEST(Tournament, MatchesBimodalOnBias)
{
    TournamentPredictor pred(4096, 4096, 4096, 10);
    Rng rng(2);
    // Many noisy-biased branches pollute global history; the chooser
    // should fall back to bimodal and stay near entropy.
    double rate = trainRate(pred, [&](int i) {
        Addr pc = 0x100 + 4 * (i % 64);
        return std::pair<Addr, bool>{pc, rng.chance(0.95)};
    }, 60000, 6000);
    EXPECT_LT(rate, 0.09);
}

TEST(Predictor, StatsCountLookupsAndMispredicts)
{
    BimodalPredictor pred(64);
    pred.predictAndUpdate(0x40, true);
    pred.predictAndUpdate(0x40, false);
    EXPECT_EQ(pred.stats().lookups, 2u);
    EXPECT_GE(pred.stats().mispredicts, 1u);
    pred.resetStats();
    EXPECT_EQ(pred.stats().lookups, 0u);
}

TEST(Factory, BuildsConfiguredKinds)
{
    auto t = makePredictor(PredictorConfig::Kind::Tournament);
    auto g = makePredictor(PredictorConfig::Kind::GshareSmall);
    ASSERT_NE(t, nullptr);
    ASSERT_NE(g, nullptr);
    t->predictAndUpdate(0x40, true);
    g->predictAndUpdate(0x40, true);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x1000));
    btb.update(0x1000, 0x2000);
    EXPECT_TRUE(btb.lookup(0x1000));
}

TEST(Btb, CapacityEvictsEntries)
{
    Btb btb(16, 4); // 16 entries total
    // Install 64 branches: at most 16 can survive.
    for (Addr i = 0; i < 64; ++i)
        btb.update(0x1000 + i * 4, 0x9000);
    int present = 0;
    for (Addr i = 0; i < 64; ++i)
        present += btb.lookup(0x1000 + i * 4);
    EXPECT_LE(present, 16);
    EXPECT_GT(present, 4); // but replacement is not pathological
}

TEST(Btb, UpdateExistingEntryKeepsOthers)
{
    Btb btb(16, 4);
    btb.update(0x1000, 0x9000);
    btb.update(0x1010, 0x9100);
    btb.update(0x1000, 0x9200); // overwrite target
    EXPECT_TRUE(btb.lookup(0x1000));
    EXPECT_TRUE(btb.lookup(0x1010));
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(8);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);
    EXPECT_EQ(ras.overflows(), 1u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), 0u); // 0x1 was dropped
}

TEST(Ras, SizeTracksDepth)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.depth(), 4u);
    ras.push(0x1);
    EXPECT_EQ(ras.size(), 1u);
    ras.pop();
    EXPECT_EQ(ras.size(), 0u);
}
